//! # rstp — the Real-Time Sequence Transmission Problem
//!
//! A complete, executable reproduction of Da-Wei Wang and Lenore D. Zuck,
//! *Real-Time Sequence Transmission Problem* (Yale YALEU/DCS/TR-856, May
//! 1991; PODC 1991): the timed I/O automata model, the bounded-delay
//! reordering channel, the paper's three protocols with their real multiset
//! encodings, the effort bounds of Theorems 5.3/5.6, and an adversarial
//! discrete-event simulator that measures protocol effort against those
//! bounds.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`automata`] | `rstp-automata` | I/O automata, composition, timed executions |
//! | [`check`] | `rstp-check` | coverage-guided schedule fuzzer, shrinking, repro corpus |
//! | [`combinatorics`] | `rstp-combinatorics` | multisets, `μ_k`/`ζ_k`, rank/unrank |
//! | [`codec`] | `rstp-codec` | bit-block ↔ multiset ↔ packet-burst codec |
//! | [`core`] | `rstp-core` | problem, channel, protocols `A^α`/`A^β(k)`/`A^γ(k)`, bounds |
//! | [`net`] | `rstp-net` | wire codec, real transports (memory/UDP), real-time driver |
//! | [`record`] | `rstp-record` | per-shard flight recorder: nonblocking ring, binary format, postmortem reader |
//! | [`serve`] | `rstp-serve` | sharded multi-session server: timer wheel, batched I/O, swarm harness |
//! | [`sim`] | `rstp-sim` | adversaries, event engine, checkers, effort harness |
//!
//! ## Quickstart
//!
//! ```
//! use rstp::core::TimingParams;
//! use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
//! use rstp::sim::harness::{run_configured, ProtocolKind, RunConfig};
//!
//! // Processes step every 1..=2 ticks; packets arrive within 6 ticks.
//! let params = TimingParams::from_ticks(1, 2, 6).unwrap();
//! let input = rstp::sim::harness::random_input(100, 42);
//!
//! let out = run_configured(
//!     &RunConfig {
//!         kind: ProtocolKind::Gamma { k: 4 },
//!         params,
//!         step: StepPolicy::AllSlow,
//!         delivery: DeliveryPolicy::ReverseBurst { burst: params.delta2() },
//!         ..RunConfig::default()
//!     },
//!     &input,
//! )
//! .unwrap();
//!
//! // The receiver wrote exactly X, the trace satisfies good(A), and the
//! // measured effort respects the paper's active-case upper bound.
//! assert!(out.report.all_good());
//! assert_eq!(out.trace.written(), input);
//! let effort = out.metrics.effort(input.len()).unwrap();
//! assert!(effort <= rstp::core::bounds::active_upper(params, 4));
//! ```
//!
//! See `examples/` for runnable scenarios and the `rstp-bench` crate's
//! `reproduce` binary for the full experiment tables (E1–E9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rstp_automata as automata;
pub use rstp_check as check;
pub use rstp_codec as codec;
pub use rstp_combinatorics as combinatorics;
pub use rstp_core as core;
pub use rstp_net as net;
pub use rstp_record as record;
pub use rstp_serve as serve;
pub use rstp_sim as sim;
