//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! Benchmarks run a short warm-up followed by a fixed-iteration timing loop
//! and print mean wall-clock time per iteration. When the binary is invoked
//! with `--test` (what `cargo test` passes to `harness = false` bench
//! targets) every routine runs exactly once, as upstream criterion does, so
//! `cargo test` stays fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Benchmarks a single routine.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.test_mode, name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the group's throughput basis (accepted, not used in reports).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a routine within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.test_mode, &label, &mut f);
        self
    }

    /// Benchmarks a routine parameterized by `input`.
    pub fn bench_with_input<I, F, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.test_mode, &label, &mut |b: &mut Bencher| {
            f(b, input);
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (mirrors `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter rendering.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Throughput basis (mirrors `criterion::Throughput`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-routine timing handle (mirrors `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(test_mode: bool, label: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }
    // Warm-up: one untimed call, then calibrate the iteration count to a
    // ~200 ms budget using the warm-up duration.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(200);
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    println!("{label:<50} {:>12.3} µs/iter ({iters} iters)", mean * 1e6);
}

/// Groups benchmark functions under one callable (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("encode", "k4").to_string(), "encode/k4");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { test_mode: true };
        let mut hits = 0u32;
        c.bench_function("probe", |b| b.iter(|| hits += 1));
        assert!(hits >= 1);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("g");
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(3), &7u64, |b, &x| {
            b.iter(|| seen = x)
        });
        g.finish();
        assert_eq!(seen, 7);
    }
}
