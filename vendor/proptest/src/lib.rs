//! Offline vendored subset of the `proptest` 1.x API.
//!
//! Implements the slice of proptest this workspace uses: the [`proptest!`]
//! macro, `prop_assert*` macros, [`prop_oneof!`], [`Just`], [`any`],
//! integer-range / tuple / [`collection::vec`] strategies, `prop_map`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, by design:
//!
//! * Cases are generated from a deterministic seed derived from the test's
//!   module path, name, and case index — runs are exactly reproducible.
//! * There is no shrinking. A failing case fails with the ordinary panic
//!   message of the underlying `assert!`.
//! * `Strategy` here is a one-shot value generator, not a value *tree*.

#![forbid(unsafe_code)]

use std::rc::Rc;

pub mod test_runner;

use test_runner::TestRng;

/// Run-count configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of arbitrary values (the subset of `proptest::strategy::
/// Strategy` this workspace needs: generation plus `prop_map`/`boxed`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (mirrors
/// `proptest::arbitrary::Arbitrary` for the primitives used here).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy namespace re-exports (mirrors `proptest::strategy`).
pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Map, Strategy, Union};
}

/// A uniform choice among boxed strategies (the engine of [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size specification for [`vec`] (mirrors
    /// `proptest::collection::SizeRange`).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `ProptestConfig::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut prop_rng =
                    $crate::test_runner::TestRng::deterministic(seed_name, case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                $body
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current generated case when the assumption fails. Upstream
/// proptest rejects and regenerates; this subset simply moves on to the
/// next case, which only reduces the effective case count.
///
/// Expands to `continue`, so it is only usable directly inside a
/// `proptest!` test body (where the body runs in the per-case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            continue;
        }
    };
}

/// A uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..=4, v in any::<u64>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            let _ = v;
        }

        #[test]
        fn vec_strategy_obeys_size(items in crate::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
        }

        #[test]
        fn tuples_and_map(pair in (1u64..=4, 0u64..=3).prop_map(|(a, b)| a + b)) {
            prop_assert!((1..=7).contains(&pair));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn oneof_covers_options(x in prop_oneof![Just(1u64), Just(2), 5u64..8]) {
            prop_assert!(x == 1 || x == 2 || (5..8).contains(&x));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        assert_ne!(
            crate::test_runner::TestRng::deterministic("t", 3).next_u64(),
            c.next_u64()
        );
    }
}
