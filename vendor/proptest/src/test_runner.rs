//! The deterministic RNG behind the vendored proptest (mirrors the role of
//! `proptest::test_runner::TestRng`).

/// A deterministic xoshiro256++ generator seeded from a test identifier and
/// case index.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator whose stream depends only on `(name, case)`.
    #[must_use]
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, span)`; `span` must be positive.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}
