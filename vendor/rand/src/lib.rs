//! Offline vendored subset of the `rand` 0.8 API.
//!
//! Implements exactly what this workspace uses: a seedable [`rngs::StdRng`]
//! plus the [`Rng::gen_range`] / [`Rng::gen_bool`] methods. The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic per seed, which is
//! the only property the workspace relies on (the upstream `StdRng` stream
//! is ChaCha12 and therefore produces different values for the same seed).

#![forbid(unsafe_code)]

/// The raw-output half of the RNG interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seed-based construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive integer range that can be sampled uniformly
/// (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (mul_shift(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (mul_shift(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u64, usize, u32, u16, u8);

/// Maps a uniform `u64` onto `[0, span)` by widening multiply (Lemire's
/// method without the rejection step — bias is < 2^-32 for the small spans
/// used here).
fn mul_shift(x: u64, span: u64) -> u64 {
    ((u128::from(x) * u128::from(span)) >> 64) as u64
}

/// Convenience sampling methods (mirrors `rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, exactly the upstream resolution.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64. Deterministic per seed; not reproducible against
    /// upstream `rand`'s `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16)
            .map(|_| StdRng::seed_from_u64(7).gen_range(0u64..u64::MAX))
            .collect();
        let other: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(0usize..=8);
            assert!(z <= 8);
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
    }
}
