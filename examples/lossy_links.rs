//! Failure injection: what happens when the channel breaks its contract?
//!
//! The paper's protocols are proved correct for a channel that never loses
//! or duplicates. This example injects exactly those faults and shows:
//!
//! * `A^β(k)` silently *stalls* under loss (the receiver waits forever for
//!   a burst that will never complete) — the perfect-channel assumption is
//!   load-bearing;
//! * the alternating-bit protocol ([BSW69], cited in the paper's intro as
//!   the loss+duplication solution) keeps delivering, paying
//!   retransmissions.
//!
//! Run with: `cargo run --example lossy_links`

use rstp::core::TimingParams;
use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp::sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};

fn main() {
    let params = TimingParams::from_ticks(1, 2, 6).expect("valid parameters");
    let n = 60;
    let input = random_input(n, 21);
    println!("lossy links — {params}, n = {n}\n");
    println!(
        "{:<12} {:>6} {:>6} {:>10} {:>8} {:>8} {:>9} {:>10}",
        "protocol", "loss%", "dup%", "delivered", "drops", "dups", "packets", "outcome"
    );

    for (loss, dup) in [(0.0, 0.0), (0.1, 0.0), (0.3, 0.0), (0.0, 0.3), (0.2, 0.2)] {
        for kind in [
            ProtocolKind::Beta { k: 4 },
            ProtocolKind::AltBit {
                timeout_steps: None,
            },
        ] {
            let delivery = if loss == 0.0 && dup == 0.0 {
                DeliveryPolicy::MaxDelay
            } else {
                DeliveryPolicy::Faulty {
                    loss,
                    duplication: dup,
                    seed: 13,
                }
            };
            let out = run_configured(
                &RunConfig {
                    kind,
                    params,
                    step: StepPolicy::AllSlow,
                    delivery,
                    max_events: 2_000_000,
                    ..RunConfig::default()
                },
                &input,
            )
            .expect("run");
            let delivered = out.trace.written().len();
            println!(
                "{:<12} {:>6.0} {:>6.0} {:>7}/{:<2} {:>8} {:>8} {:>9} {:>10?}",
                kind.name(),
                loss * 100.0,
                dup * 100.0,
                delivered,
                n,
                out.metrics.drops,
                out.metrics.duplicates,
                out.metrics.total_sends(),
                out.outcome
            );
        }
    }

    println!();
    println!("beta stalls as soon as one packet of a burst is lost; altbit retransmits");
    println!("until acknowledged and survives every fault mix (at a packet-count cost).");
}
