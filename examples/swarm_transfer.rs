//! Sixty-four concurrent transfers multiplexed through one sharded
//! server: a mixed plan of alpha, beta(k), and gamma(k) sessions with
//! different lengths `n`, all paced by the server's timer wheel and
//! carried over the in-process loopback hub. After the run, every
//! session's receiver output `Y` is checked against its own input `X` —
//! the paper's correctness obligation, held per session even though the
//! sessions share shards, queues, and one wire.
//!
//! Run with: `cargo run --example swarm_transfer`
//!
//! For the same experiment from the command line (including real UDP
//! datagrams), see `rstp swarm` and `docs/SERVE.md`.

use rstp::core::{SessionId, TimingParams};
use rstp::serve::{run_swarm_sessions, ServeConfig, SessionSpec, SwarmTransport};
use rstp::sim::harness::random_input;
use rstp::sim::ProtocolKind;
use std::time::Duration;

fn main() {
    let params = TimingParams::from_ticks(1, 2, 4).expect("valid parameters");
    // A coarse tick: 64 client threads plus the shards all share however
    // many cores the host has, and gamma's ack clocking needs every
    // round trip to land inside the schedule even on a loaded machine.
    let tick = Duration::from_millis(1);

    // 64 sessions cycling through the paper's three protocols, with
    // lengths spread over 8..=39 so no two neighbours look alike.
    let kinds = [
        ProtocolKind::Alpha,
        ProtocolKind::Beta { k: 4 },
        ProtocolKind::Gamma { k: 4 },
    ];
    let sessions: Vec<(SessionSpec, Vec<bool>)> = (0..64u32)
        .map(|i| {
            let kind = kinds[i as usize % kinds.len()];
            let n = 8 + (i as usize % 32);
            let spec = SessionSpec {
                id: SessionId::new(i + 1),
                kind,
                n,
            };
            (spec, random_input(n, 1000 + u64::from(i)))
        })
        .collect();

    // Queue capacity provisioned for the offered load: alpha tolerates
    // no loss at all, and beta is open-loop, so an ingress drop would
    // wedge a session rather than slow it down.
    let serve = ServeConfig::new(params, tick)
        .with_shards(4)
        .with_batch(32)
        .with_max_sessions(sessions.len())
        .with_queue_cap(sessions.len() * 32);

    println!(
        "swarm: {} sessions (alpha / beta(4) / gamma(4) interleaved), {params}, tick = {:?}, {} shards",
        sessions.len(),
        tick,
        serve.shards
    );

    let report = run_swarm_sessions(&sessions, &serve, SwarmTransport::Mem).expect("swarm run");
    print!("{}", report.summary());

    // The whole point: every one of the 64 outputs is exactly its input.
    assert!(
        report.mismatched.is_empty() && report.incomplete.is_empty(),
        "a session diverged:\n{}",
        report.summary()
    );
    for stats in report.serve.shards.iter().flat_map(|s| s.sessions.iter()) {
        let (_, input) = sessions
            .iter()
            .find(|(spec, _)| spec.id == stats.id)
            .expect("planned session");
        assert_eq!(&stats.written, input, "session {} diverged", stats.id);
    }
    assert_eq!(
        report.serve.timing_violations(),
        0,
        "timer wheel stepped a session outside [c1, c2]"
    );
    println!(
        "delivered  : Y = X for all {} sessions (mixed protocols, mixed n)",
        sessions.len()
    );
}
