//! A beta(k) transfer over real UDP loopback sockets, scheduled on the
//! wall clock by the real-time driver: both endpoints step inside their
//! `[c1, c2]` windows (scaled by a tick duration), packets cross an actual
//! `UdpSocket`, and the receiver's output is checked against the input.
//!
//! Run with: `cargo run --example udp_transfer`
//!
//! For a two-terminal version of the same transfer (separate processes,
//! real ports), see the walkthrough in `docs/NET.md` or run
//! `rstp net help`.

use rstp::core::protocols::{BetaReceiver, BetaTransmitter};
use rstp::core::TimingParams;
use rstp::net::{run_endpoint, DriverConfig, ProtocolId, TickClock, UdpTransport, WireCodec};
use rstp::sim::harness::random_input;
use std::time::{Duration, Instant};

fn main() {
    let params = TimingParams::from_ticks(1, 2, 8).expect("valid parameters");
    let k = 4u64;
    let n = 256;
    let tick = Duration::from_micros(500);
    let input = random_input(n, 42);

    println!(
        "beta(k={k}) over UDP loopback: {n} bits, {params}, tick = {:?}",
        tick
    );

    // Two cross-wired sockets on 127.0.0.1, one per endpoint.
    let codec = WireCodec::new(ProtocolId::Beta, k).expect("k fits the wire");
    let (mut t_end, mut r_end) = UdpTransport::loopback_pair(codec).expect("loopback sockets");
    println!(
        "transmitter {} <-> receiver {}",
        t_end.local_addr().expect("addr"),
        r_end.local_addr().expect("addr")
    );

    // A shared epoch a moment in the future, so both drivers take their
    // first step at tick 0 like the simulator's processes.
    let epoch = Instant::now() + Duration::from_millis(5);
    let t_clock = TickClock::with_epoch(epoch, tick);
    let r_clock = TickClock::with_epoch(epoch, tick);
    let t_cfg = DriverConfig::new(params, tick).with_max_wall(Duration::from_secs(30));
    let r_cfg = DriverConfig::new(params, tick)
        .with_expected_writes(n)
        .with_max_wall(Duration::from_secs(30));

    let t_input = input.clone();
    let transmitter = std::thread::spawn(move || {
        let automaton = BetaTransmitter::new(params, k, &t_input).expect("beta transmitter");
        run_endpoint(&automaton, &mut t_end, t_clock, &t_cfg)
    });
    let receiver = std::thread::spawn(move || {
        let automaton = BetaReceiver::new(params, k, n).expect("beta receiver");
        run_endpoint(&automaton, &mut r_end, r_clock, &r_cfg)
    });

    let t_report = transmitter.join().expect("join").expect("transmitter run");
    let r_report = receiver.join().expect("join").expect("receiver run");

    assert_eq!(
        r_report.written, input,
        "received sequence differs from input"
    );
    println!(
        "transmitter: {} steps, {} data packets, {} deadline misses, wall {:.3} s",
        t_report.steps,
        t_report.data_sends,
        t_report.deadline_misses,
        t_report.wall_elapsed.as_secs_f64()
    );
    println!(
        "receiver   : {} steps, {} packets received, latency {}",
        r_report.steps, r_report.recvs, r_report.latency
    );
    if let Some(effort) = t_report.effort_ticks(n, tick) {
        println!("wall effort: {effort:.3} ticks/message over a real socket");
    }
    println!("delivered  : Y = X (exact)");
}
