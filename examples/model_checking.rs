//! Model checking, three ways: the verification tooling that backs this
//! reproduction, demonstrated on small instances.
//!
//! 1. **State-space exploration** — every reachable state of a protocol
//!    automaton under arbitrary channel interleavings, with invariants.
//! 2. **Exhaustive schedule verification** — every assignment of delivery
//!    delays to every packet (the full delivery-adversary space for the
//!    instance).
//! 3. **Exhaustive distinguishability** — Lemma 5.1/5.4: all `2^n` inputs
//!    produce distinct interval-multiset signatures.
//!
//! Run with: `cargo run --release --example model_checking`

use rstp::automata::explore;
use rstp::core::protocols::{BetaReceiver, BetaTransmitter};
use rstp::core::{Packet, RstpAction, TimingParams};
use rstp::sim::distinguish::{check_beta, check_gamma};
use rstp::sim::verify_all_delay_schedules;

fn main() {
    let params = TimingParams::from_ticks(2, 3, 4).expect("valid parameters"); // δ1 = 2

    // ---- 1. Reachable-state exploration with invariants ----
    println!("1. exploring the beta(2) receiver under arbitrary packet arrivals…");
    let receiver = BetaReceiver::new(params, 2, 4).expect("receiver");
    let burst = receiver.burst_size();
    let inputs = [
        RstpAction::Recv(Packet::Data(0)),
        RstpAction::Recv(Packet::Data(1)),
    ];
    let result = explore(&receiver, &inputs, 2_000, |s| {
        if s.burst.len() >= burst {
            return Err(format!("burst overflow: |A| = {}", s.burst.len()));
        }
        if s.written > s.decoded.len() {
            return Err("written outran decoded".into());
        }
        Ok(())
    })
    .expect("invariants hold at every reachable state");
    println!(
        "   {} states, {} transitions, complete = {} — invariants hold everywhere\n",
        result.states, result.transitions, result.complete
    );

    // ---- 2. Exhaustive delay-schedule verification ----
    println!("2. verifying beta(2) over EVERY delivery schedule…");
    let input = vec![true, false, true];
    let verification = verify_all_delay_schedules(params, &input, &[0, 2, 4], || {
        (
            BetaTransmitter::new(params, 2, &input).expect("transmitter"),
            BetaReceiver::new(params, 2, input.len()).expect("receiver"),
        )
    })
    .unwrap_or_else(|ce| panic!("counterexample found: {ce:?}"));
    println!(
        "   {} packets per run; all {} (step-gap × delay-assignment) schedules deliver X exactly\n",
        verification.packets, verification.schedules
    );

    // ---- 3. Exhaustive distinguishability (Lemmas 5.1 / 5.4) ----
    println!("3. checking interval-multiset signatures over all inputs…");
    let passive = check_beta(params, 2, 10).expect("beta construction");
    println!("   r-passive (Lemma 5.1): {passive}");
    let active_params = TimingParams::from_ticks(1, 2, 4).expect("valid parameters");
    let active = check_gamma(active_params, 2, 8);
    println!("   active    (Lemma 5.4): {active}");
    assert!(passive.injective() && active.injective());
    assert!(passive.capacity_respected() && active.capacity_respected());
    println!("\nall three checks passed: the instance is exhaustively verified.");
}
