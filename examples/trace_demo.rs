//! Golden-trace demo: watch the Figure 1 / Figure 3 / Figure 4 protocols
//! run, event by event, on a tiny input.
//!
//! Run with: `cargo run --example trace_demo`

use rstp::core::TimingParams;
use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp::sim::harness::{run_configured, ProtocolKind, RunConfig};

fn show(kind: ProtocolKind, params: TimingParams, input: &[bool]) {
    let out = run_configured(
        &RunConfig {
            kind,
            params,
            step: StepPolicy::AllSlow,
            delivery: DeliveryPolicy::MaxDelay,
            ..RunConfig::default()
        },
        input,
    )
    .expect("run");
    println!("==== {} ({params}) ====", kind.name());
    print!("{}", out.trace.render());
    println!();
    print!("{}", rstp::sim::render_timeline(&out.trace, 28));
    println!(
        "  => wrote {:?}, last send at {:?}, checker: {}",
        out.trace
            .written()
            .iter()
            .map(|&b| u8::from(b))
            .collect::<Vec<_>>(),
        out.metrics.last_data_send.map(|t| t.ticks()),
        out.report
    );
    println!();
}

fn main() {
    let input = vec![true, false, true, true];
    let bits: Vec<u8> = input.iter().map(|&b| u8::from(b)).collect();
    println!("input X = {bits:?}\n");

    // Small parameters keep the traces readable: δ1 = 3, δ2 = 2.
    let params = TimingParams::from_ticks(2, 3, 6).expect("valid parameters");

    show(ProtocolKind::Alpha, params, &input); // Figure 1
    show(ProtocolKind::Beta { k: 2 }, params, &input); // Figure 3
    show(ProtocolKind::Gamma { k: 2 }, params, &input); // Figure 4
}
