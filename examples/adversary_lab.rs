//! Adversary lab: how much does each adversarial schedule actually hurt?
//!
//! Runs each protocol under every step × delivery adversary combination and
//! prints the measured effort grid — the executable version of the paper's
//! §5 proof constructions ("fast" executions, interval batching, burst
//! reversal).
//!
//! Run with: `cargo run --example adversary_lab`

use rstp::core::TimingParams;
use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp::sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};

fn step_name(p: StepPolicy) -> &'static str {
    match p {
        StepPolicy::AllFast => "fast",
        StepPolicy::AllSlow => "slow",
        StepPolicy::Alternate => "alternate",
        StepPolicy::SkewedPair {
            fast_transmitter: true,
        } => "fast-t/slow-r",
        StepPolicy::SkewedPair { .. } => "slow-t/fast-r",
        StepPolicy::Random { .. } => "random",
    }
}

fn delivery_name(p: DeliveryPolicy) -> &'static str {
    match p {
        DeliveryPolicy::Eager => "eager",
        DeliveryPolicy::MaxDelay => "max-delay",
        DeliveryPolicy::ReverseBurst { .. } => "reverse-burst",
        DeliveryPolicy::IntervalBatch => "interval-batch",
        DeliveryPolicy::Random { .. } => "random",
        DeliveryPolicy::Faulty { .. } | DeliveryPolicy::FaultyFifo { .. } => "faulty",
    }
}

fn main() {
    let params = TimingParams::from_ticks(1, 3, 9).expect("valid parameters");
    let n = 180;
    let input = random_input(n, 11);
    println!("adversary lab — {params}, n = {n}\n");

    for kind in [
        ProtocolKind::Alpha,
        ProtocolKind::Beta { k: 4 },
        ProtocolKind::Gamma { k: 4 },
    ] {
        let burst = kind.burst_size(params);
        let deliveries = DeliveryPolicy::sweep(burst, 5);
        println!("== {} (burst = {burst}) ==", kind.name());
        print!("{:<16}", "step \\ delivery");
        for d in &deliveries {
            print!("{:>15}", delivery_name(*d));
        }
        println!();
        let mut worst = (0.0f64, "", "");
        for step in StepPolicy::sweep(5) {
            print!("{:<16}", step_name(step));
            for delivery in &deliveries {
                let out = run_configured(
                    &RunConfig {
                        kind,
                        params,
                        step,
                        delivery: *delivery,
                        ..RunConfig::default()
                    },
                    &input,
                )
                .expect("run");
                assert!(out.report.all_good(), "{}", out.report);
                let effort = out.metrics.effort(n).unwrap_or(0.0);
                if effort > worst.0 {
                    worst = (effort, step_name(step), delivery_name(*delivery));
                }
                print!("{:>15.2}", effort);
            }
            println!();
        }
        println!(
            "   worst case: {:.2} ticks/message under ({}, {})\n",
            worst.0, worst.1, worst.2
        );
    }
    println!("note: step adversaries dominate for the r-passive protocols (counted");
    println!("idling pays c2 per step), while gamma's effort is delivery-bound (acks).");
}
