//! File transfer over the RSTP stack: sends a byte payload with the
//! self-delimiting framed protocol (no out-of-band length), verifies the
//! received bytes, and reports wall-clock (simulated) throughput.
//!
//! Run with: `cargo run --example file_transfer [-- "your text"]`

use rstp::codec::{bits_from_bytes, bits_to_bytes};
use rstp::core::TimingParams;
use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp::sim::harness::{run_configured, ProtocolKind, RunConfig};

fn main() {
    let payload: Vec<u8> = std::env::args()
        .nth(1)
        .map(|s| s.into_bytes())
        .unwrap_or_else(|| {
            b"In the sequence transmission problem one process, the transmitter, \
              wishes to reliably communicate a sequence of data items (messages) \
              to another process, the receiver."
                .to_vec()
        });

    let params = TimingParams::from_ticks(1, 2, 10).expect("valid parameters");
    let k = 8;
    let bits = bits_from_bytes(&payload);
    println!(
        "sending {} bytes = {} bits with framed beta(k={k}), {params}",
        payload.len(),
        bits.len()
    );

    let out = run_configured(
        &RunConfig {
            kind: ProtocolKind::Framed { k },
            params,
            step: StepPolicy::Random { seed: 2 },
            delivery: DeliveryPolicy::Random { seed: 3 },
            ..RunConfig::default()
        },
        &bits,
    )
    .expect("simulation");

    assert!(out.report.all_good(), "{}", out.report);
    let received_bits = out.trace.written();
    let received = bits_to_bytes(&received_bits);
    assert_eq!(received, payload, "payload corrupted in transit");

    let end = out.metrics.last_write.expect("something was written");
    let ticks = end.ticks().max(1);
    println!(
        "received {} bytes intact after {} ticks",
        received.len(),
        ticks
    );
    println!(
        "  data packets: {}, per byte: {:.1}, bits/tick: {:.4}",
        out.metrics.data_sends,
        out.metrics.data_sends as f64 / payload.len() as f64,
        bits.len() as f64 / ticks as f64
    );
    println!(
        "  checker: {} (safety, liveness, Σ step bounds, Δ delivery bounds)",
        out.report
    );
    println!();
    println!(
        "payload round-tripped: {:?}…",
        String::from_utf8_lossy(&received[..20.min(received.len())])
    );
}
