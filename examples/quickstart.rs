//! Quickstart: transmit a random bit sequence with each of the paper's
//! protocols and compare measured effort against the theoretical bounds.
//!
//! Run with: `cargo run --example quickstart`

use rstp::core::{bounds, TimingParams};
use rstp::sim::harness::{random_input, worst_case_effort, ProtocolKind};

fn main() {
    // The real-time model: steps every 1..=2 ticks, delivery within 8.
    let params = TimingParams::from_ticks(1, 2, 8).expect("valid parameters");
    println!("RSTP quickstart — {params}");
    println!();

    let n = 240;
    let input = random_input(n, 7);
    println!("transmitting {n} random message bits, worst case over the adversary sweep:\n");

    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14} {:>14}",
        "protocol", "effort", "learn", "lower bound", "upper (n→∞)", "upper (n)"
    );
    let k = 4;
    let rows = [
        (
            ProtocolKind::Alpha,
            f64::NAN, // no lower bound specific to alpha
            bounds::alpha_effort(params),
            bounds::alpha_effort(params),
        ),
        (
            ProtocolKind::Beta { k },
            bounds::passive_lower(params, k),
            bounds::passive_upper(params, k),
            bounds::passive_upper_finite(params, k, n),
        ),
        (
            ProtocolKind::Gamma { k },
            bounds::active_lower(params, k),
            bounds::active_upper(params, k),
            bounds::active_upper_finite(params, k, n),
        ),
    ];
    for (kind, lower, upper, upper_n) in rows {
        let sample = worst_case_effort(kind, params, &input, 1).expect("simulation must succeed");
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>14.2} {:>14.2} {:>14.2}",
            kind.name(),
            sample.effort,
            sample.learn_effort,
            lower,
            upper,
            upper_n
        );
        assert!(
            sample.effort <= upper_n + 1e-9,
            "measured effort exceeded the paper's upper bound!"
        );
    }

    println!();
    println!("ticks per message; lower = theorem bound, upper = protocol guarantee");
    println!("(asymptotic, and exact for this finite n). every measured effort sits");
    println!("inside the paper's sandwich.");
}
