//! Boundary legality: schedules pinned EXACTLY at the timing limits must
//! be accepted everywhere.
//!
//! The paper's Σ axiom admits the closed interval `[c1, c2]` and the Δ
//! axiom the closed window `[0, d]` — the endpoints are legal, not edge
//! cases. These tests pin all four endpoints:
//!
//! - simulator: every step gap exactly `c1`, then exactly `c2`; every
//!   delivery exactly at `d`, then exactly at `0`. The runs must not be
//!   rejected as `AdversaryOutOfBounds`, must satisfy every fuzzer oracle,
//!   and must deliver `X` exactly.
//! - wire driver: endpoints paced at `c1` (`Pace::Fast`) and `c2`
//!   (`Pace::Slow`) over eager and exactly-`d` channels must finish with
//!   ZERO entries in the driver's `timing_violations` accounting — pacing
//!   on the limit is conformant, not a violation.

use std::time::Duration;

use rstp::check::{run_scenario, Scenario};
use rstp::core::TimingParams;
use rstp::net::{run_transfer_mem, ChannelConfig, Pace, TransferConfig};
use rstp::sim::{ProtocolKind, ScriptedDelivery};

fn params() -> TimingParams {
    TimingParams::from_ticks(1, 2, 6).unwrap()
}

fn trio() -> [ProtocolKind; 3] {
    [
        ProtocolKind::Alpha,
        ProtocolKind::Beta { k: 4 },
        ProtocolKind::Gamma { k: 4 },
    ]
}

/// A scenario with every gap pinned to `gap` and every delivery pinned to
/// `delay` — empty scripts, everything rides the fallbacks.
fn pinned(kind: ProtocolKind, gap: u64, delay: u64) -> Scenario {
    Scenario {
        kind,
        params: params(),
        input: vec![true, false, true, true, false, true, false, false],
        t_gaps: Vec::new(),
        r_gaps: Vec::new(),
        gap_fallback: gap,
        data: ScriptedDelivery::new(Vec::new(), delay),
        ack: ScriptedDelivery::new(Vec::new(), delay),
        corruption: None,
    }
}

#[test]
fn sim_accepts_schedules_pinned_at_every_timing_endpoint() {
    let p = params();
    let (c1, c2, d) = (p.c1().ticks(), p.c2().ticks(), p.d().ticks());
    for kind in trio() {
        for gap in [c1, c2] {
            for delay in [0, d] {
                let run = run_scenario(&pinned(kind, gap, delay), 500_000);
                assert!(
                    run.failure.is_none(),
                    "{} gap={gap} delay={delay}: {}",
                    kind.name(),
                    run.failure.unwrap()
                );
                assert!(run.quiescent, "{} gap={gap} delay={delay}", kind.name());
            }
        }
    }
}

/// Runs one wall-clock transfer and asserts the driver's timing-violation
/// accounting stayed at zero on both endpoints.
/// Wide enough that the driver's quarter-tick slack (1 ms here) dwarfs
/// `thread::sleep` scheduling noise: the paces, not the wall clock, are
/// under test.
const TICK: Duration = Duration::from_millis(4);

fn assert_no_timing_violations(kind: ProtocolKind, pace: Pace, channel: ChannelConfig) {
    let p = params();
    let input = [true, false, true, false];
    let config = TransferConfig::new(p, TICK, 0)
        .with_channel(channel)
        .with_pace(pace);
    let report = run_transfer_mem(kind, &input, &config)
        .unwrap_or_else(|e| panic!("{} {pace:?}: {e}", kind.name()));
    assert_eq!(report.output(), input, "{} {pace:?}", kind.name());
    for (who, end) in [
        ("transmitter", &report.transmitter),
        ("receiver", &report.receiver),
    ] {
        assert_eq!(
            end.timing_violations,
            0,
            "{} {pace:?}: {who} paced on the limit must not be flagged",
            kind.name()
        );
    }
}

#[test]
fn driver_pacing_at_c1_is_not_a_timing_violation() {
    for kind in trio() {
        assert_no_timing_violations(kind, Pace::Fast, ChannelConfig::eager(TICK, 0));
    }
}

#[test]
fn driver_pacing_at_c2_with_deliveries_at_d_is_not_a_timing_violation() {
    let p = params();
    for kind in trio() {
        assert_no_timing_violations(kind, Pace::Slow, ChannelConfig::max_delay(p, TICK, 0));
    }
}
