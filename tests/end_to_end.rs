//! Cross-crate integration: protocols × adversaries × checkers, measured
//! effort vs the bounds crate, and protocol-vs-protocol orderings.

use rstp::core::{bounds, TimingParams};
use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp::sim::harness::{
    random_input, run_configured, worst_case_effort, ProtocolKind, RunConfig,
};
use rstp::sim::Outcome;

fn params() -> TimingParams {
    TimingParams::from_ticks(2, 5, 20).unwrap() // δ1 = 10, δ2 = 4
}

#[test]
fn all_protocols_deliver_on_a_parameter_grid() {
    let grid = [
        (1u64, 1, 2),
        (1, 1, 8),
        (1, 2, 8),
        (2, 3, 12),
        (3, 3, 9),
        (1, 4, 4),
        (5, 7, 35),
    ];
    let input = random_input(33, 17);
    for (c1, c2, d) in grid {
        let p = TimingParams::from_ticks(c1, c2, d).unwrap();
        for kind in [
            ProtocolKind::Alpha,
            ProtocolKind::Beta { k: 2 },
            ProtocolKind::Beta { k: 5 },
            ProtocolKind::Gamma { k: 2 },
            ProtocolKind::Gamma { k: 5 },
            ProtocolKind::AltBit {
                timeout_steps: None,
            },
            ProtocolKind::Framed { k: 3 },
        ] {
            let out = run_configured(
                &RunConfig {
                    kind,
                    params: p,
                    step: StepPolicy::Alternate,
                    delivery: DeliveryPolicy::Random { seed: 3 },
                    ..RunConfig::default()
                },
                &input,
            )
            .unwrap_or_else(|e| panic!("{} at {p}: {e}", kind.name()));
            assert_eq!(out.outcome, Outcome::Quiescent, "{} at {p}", kind.name());
            assert!(
                out.report.all_good(),
                "{} at {p}: {}",
                kind.name(),
                out.report
            );
            assert_eq!(out.trace.written(), input, "{} at {p}", kind.name());
        }
    }
}

#[test]
fn empty_and_singleton_inputs() {
    let p = params();
    for kind in [
        ProtocolKind::Alpha,
        ProtocolKind::Beta { k: 4 },
        ProtocolKind::Gamma { k: 4 },
        ProtocolKind::Framed { k: 4 },
    ] {
        for input in [vec![], vec![true], vec![false]] {
            let out = run_configured(
                &RunConfig {
                    kind,
                    params: p,
                    ..RunConfig::default()
                },
                &input,
            )
            .unwrap();
            assert_eq!(out.trace.written(), input, "{} on {input:?}", kind.name());
            assert!(out.report.all_good());
        }
    }
}

#[test]
fn beta_dominates_alpha_and_is_dominated_by_its_bounds() {
    let p = params();
    let n = 200;
    let input = random_input(n, 23);
    let alpha = worst_case_effort(ProtocolKind::Alpha, p, &input, 1).unwrap();
    let beta = worst_case_effort(ProtocolKind::Beta { k: 4 }, p, &input, 1).unwrap();
    // δ1 = 10, k = 4: b = ⌊log2 μ_4(10)⌋ = ⌊log2 286⌋ = 8 > 2, so beta's
    // 2δ1/b steps per bit beat alpha's δ1.
    assert!(beta.effort < alpha.effort);
    assert!(beta.effort >= bounds::passive_lower(p, 4) - 1e-9);
    assert!(beta.effort <= bounds::passive_upper_finite(p, 4, n) + 1e-9);
    assert!(alpha.effort <= bounds::alpha_effort(p) + 1e-9);
}

#[test]
fn gamma_beats_beta_at_this_high_uncertainty() {
    // c2/c1 = 2.5 with d = 20: passive pays 2·10·5 = 100 per 8 bits,
    // active pays ≤ 65 per ⌊log2 μ_4(4)⌋ = 5 bits.
    let p = params();
    let n = 200;
    let input = random_input(n, 29);
    let beta = worst_case_effort(ProtocolKind::Beta { k: 4 }, p, &input, 2).unwrap();
    let gamma = worst_case_effort(ProtocolKind::Gamma { k: 4 }, p, &input, 2).unwrap();
    assert!(
        gamma.effort < beta.effort,
        "gamma {} !< beta {}",
        gamma.effort,
        beta.effort
    );
}

#[test]
fn framed_pays_only_the_header_overhead() {
    let p = params();
    let n = 400;
    let input = random_input(n, 31);
    let plain = run_configured(
        &RunConfig {
            kind: ProtocolKind::Beta { k: 4 },
            params: p,
            ..RunConfig::default()
        },
        &input,
    )
    .unwrap();
    let framed = run_configured(
        &RunConfig {
            kind: ProtocolKind::Framed { k: 4 },
            params: p,
            ..RunConfig::default()
        },
        &input,
    )
    .unwrap();
    // The framed run sends ceil(64/b) extra bursts of δ1 packets.
    let extra = framed.metrics.data_sends - plain.metrics.data_sends;
    let b = rstp::core::bounds::block_bits(4, p.delta1()) as u64;
    assert!(extra <= (64_u64.div_ceil(b) + 1) * p.delta1());
    assert_eq!(framed.trace.written(), input);
}

#[test]
fn receiver_side_learn_effort_close_to_transmit_effort() {
    // The paper defines effort at the transmitter ("time of last send");
    // the receiver finishes within O(d + c2·writes-backlog) after it.
    let p = params();
    let n = 150;
    let input = random_input(n, 37);
    for kind in [ProtocolKind::Beta { k: 4 }, ProtocolKind::Gamma { k: 4 }] {
        let s = worst_case_effort(kind, p, &input, 3).unwrap();
        assert!(s.learn_effort >= s.effort, "{}", kind.name());
        let slack = (s.learn_effort - s.effort) * n as f64;
        // Tail latency after the last send: one delivery (≤ d) plus the
        // receiver draining at most one block of writes (c2 each) plus its
        // own step phase — comfortably under d + c2·(b + 2).
        let b = f64::from(rstp::core::bounds::block_bits(4, p.delta1()));
        let cap = p.d().ticks() as f64 + p.c2().ticks() as f64 * (b + 2.0);
        assert!(slack <= cap, "{}: slack {slack} > {cap}", kind.name());
    }
}

#[test]
fn budget_exhaustion_on_livelock_is_reported_not_hung() {
    // 100% loss + altbit = infinite retransmission; the runner must stop
    // at the event budget.
    let p = params();
    let out = run_configured(
        &RunConfig {
            kind: ProtocolKind::AltBit {
                timeout_steps: Some(4),
            },
            params: p,
            delivery: DeliveryPolicy::Faulty {
                loss: 1.0,
                duplication: 0.0,
                seed: 1,
            },
            max_events: 5_000,
            ..RunConfig::default()
        },
        &random_input(5, 41),
    )
    .unwrap();
    assert_eq!(out.outcome, Outcome::BudgetExhausted);
    assert_eq!(out.metrics.writes, 0);
    assert!(out.metrics.drops > 100);
}

#[test]
fn effort_converges_as_n_grows() {
    let p = params();
    let series =
        rstp::sim::harness::effort_series(ProtocolKind::Beta { k: 4 }, p, &[40, 80, 160, 320], 7)
            .unwrap();
    let asymptote = bounds::passive_upper(p, 4);
    let last = series.last().unwrap().1.effort;
    assert!(
        (last - asymptote).abs() / asymptote < 0.1,
        "effort {last} far from asymptote {asymptote}"
    );
}
