//! Golden traces: the exact event-by-event behavior of the Figure 1 and
//! Figure 3 protocols on a fixed tiny input under the deterministic
//! slow-step / max-delay schedule. These pin the protocols' wire behavior
//! — any change to round structure, packet contents, or timing shows up
//! as a diff here.

use rstp::core::TimingParams;
use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp::sim::harness::{run_configured, ProtocolKind, RunConfig};

fn run(kind: ProtocolKind, input: &[bool]) -> String {
    // c1 = 2, c2 = 3, d = 6: δ1 = 3, δ2 = 2.
    let params = TimingParams::from_ticks(2, 3, 6).unwrap();
    let out = run_configured(
        &RunConfig {
            kind,
            params,
            step: StepPolicy::AllSlow,
            delivery: DeliveryPolicy::MaxDelay,
            ..RunConfig::default()
        },
        input,
    )
    .unwrap();
    assert!(out.report.all_good(), "{}", out.report);
    out.trace.render()
}

#[test]
fn alpha_golden_trace_two_messages() {
    // Figure 1 with δ1 = 3: rounds of (send, wait, wait); the packet is
    // delivered d = 6 later; the receiver (stepping every 3) writes at its
    // next step after delivery.
    let got = run(ProtocolKind::Alpha, &[true, false]);
    let want = "\
[       0] send(data(1))
[       0] idle_r
[       3] wait_t
[       3] idle_r
[       6] recv(data(1))
[       6] wait_t
[       6] write(1)
[       9] send(data(0))
[       9] idle_r
[      12] wait_t
[      12] idle_r
[      15] recv(data(0))
[      15] wait_t
[      15] write(0)
";
    assert_eq!(got, want, "alpha trace drifted:\n{got}");
}

#[test]
fn beta_golden_trace_one_block() {
    // Figure 3 with k = 2, δ1 = 3: μ_2(3) = 4, so each burst of 3 packets
    // carries 2 bits. Input [1, 0] fits one burst. Bits "10" = rank 2 =
    // multiset {0, 1, 1}... lexicographic unrank of 2 over sorted
    // sequences of length 3: {0,0,0}=0, {0,0,1}=1, {0,1,1}=2 — packets
    // 0, 1, 1, sent sorted.
    let got = run(ProtocolKind::Beta { k: 2 }, &[true, false]);
    let want = "\
[       0] send(data(0))
[       0] idle_r
[       3] send(data(1))
[       3] idle_r
[       6] recv(data(0))
[       6] send(data(1))
[       6] idle_r
[       9] recv(data(1))
[       9] wait_t
[       9] idle_r
[      12] recv(data(1))
[      12] wait_t
[      12] write(1)
[      15] wait_t
[      15] write(0)
";
    assert_eq!(got, want, "beta trace drifted:\n{got}");
}

#[test]
fn gamma_golden_trace_one_block() {
    // Figure 4 with k = 2, δ2 = 2: μ_2(2) = 3, 1 bit per burst of 2.
    // Input [1]: one burst. The receiver acks each packet; the
    // transmitter idles (c = δ2) until both acks arrive.
    let got = run(ProtocolKind::Gamma { k: 2 }, &[true]);
    let want = "\
[       0] send(data(0))
[       0] idle_r
[       3] send(data(1))
[       3] idle_r
[       6] recv(data(0))
[       6] idle_t
[       6] send(ack(0))
[       9] recv(data(1))
[       9] idle_t
[       9] send(ack(0))
[      12] recv(ack(0))
[      12] idle_t
[      12] write(1)
[      15] recv(ack(0))
";
    assert_eq!(got, want, "gamma trace drifted:\n{got}");
}

#[test]
fn altbit_golden_trace_two_messages() {
    // Stop-and-wait with alternating tags over the loss-free channel: each
    // message is sent once (data symbol = 2·tag + bit), acked with its tag,
    // and the ack's arrival immediately releases the next message (the
    // timer reset makes send enabled at the transmitter's very next step,
    // here the same tick as the ack delivery).
    let params = TimingParams::from_ticks(2, 3, 6).unwrap();
    let out = run_configured(
        &RunConfig {
            kind: ProtocolKind::AltBit {
                timeout_steps: Some(10),
            },
            params,
            step: StepPolicy::AllSlow,
            delivery: DeliveryPolicy::MaxDelay,
            ..RunConfig::default()
        },
        &[true, false],
    )
    .unwrap();
    assert!(out.report.all_good(), "{}", out.report);
    let want = "\
[       0] send(data(1))
[       0] idle_r
[       3] wait_t
[       3] idle_r
[       6] recv(data(1))
[       6] wait_t
[       6] send(ack(0))
[       9] wait_t
[       9] write(1)
[      12] recv(ack(0))
[      12] send(data(2))
[      12] idle_r
[      15] wait_t
[      15] idle_r
[      18] recv(data(2))
[      18] wait_t
[      18] send(ack(1))
[      21] wait_t
[      21] write(0)
[      24] recv(ack(1))
";
    assert_eq!(out.trace.render(), want, "altbit trace drifted");
}

#[test]
fn golden_traces_are_deterministic() {
    for _ in 0..3 {
        let a = run(ProtocolKind::Beta { k: 2 }, &[true, false, true]);
        let b = run(ProtocolKind::Beta { k: 2 }, &[true, false, true]);
        assert_eq!(a, b);
    }
}
