//! Golden traces: the exact event-by-event behavior of the Figure 1 and
//! Figure 3 protocols on a fixed tiny input under the deterministic
//! slow-step / max-delay schedule. These pin the protocols' wire behavior
//! — any change to round structure, packet contents, or timing shows up
//! as a diff here.

use rstp::core::TimingParams;
use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp::sim::harness::{run_configured, ProtocolKind, RunConfig};

fn run(kind: ProtocolKind, input: &[bool]) -> String {
    // c1 = 2, c2 = 3, d = 6: δ1 = 3, δ2 = 2.
    let params = TimingParams::from_ticks(2, 3, 6).unwrap();
    let out = run_configured(
        &RunConfig {
            kind,
            params,
            step: StepPolicy::AllSlow,
            delivery: DeliveryPolicy::MaxDelay,
            ..RunConfig::default()
        },
        input,
    )
    .unwrap();
    assert!(out.report.all_good(), "{}", out.report);
    out.trace.render()
}

#[test]
fn alpha_golden_trace_two_messages() {
    // Figure 1 with δ1 = 3: rounds of (send, wait, wait); the packet is
    // delivered d = 6 later; the receiver (stepping every 3) writes at its
    // next step after delivery.
    let got = run(ProtocolKind::Alpha, &[true, false]);
    let want = "\
[       0] send(data(1))
[       0] idle_r
[       3] wait_t
[       3] idle_r
[       6] recv(data(1))
[       6] wait_t
[       6] write(1)
[       9] send(data(0))
[       9] idle_r
[      12] wait_t
[      12] idle_r
[      15] recv(data(0))
[      15] wait_t
[      15] write(0)
";
    assert_eq!(got, want, "alpha trace drifted:\n{got}");
}

#[test]
fn beta_golden_trace_one_block() {
    // Figure 3 with k = 2, δ1 = 3: μ_2(3) = 4, so each burst of 3 packets
    // carries 2 bits. Input [1, 0] fits one burst. Bits "10" = rank 2 =
    // multiset {0, 1, 1}... lexicographic unrank of 2 over sorted
    // sequences of length 3: {0,0,0}=0, {0,0,1}=1, {0,1,1}=2 — packets
    // 0, 1, 1, sent sorted.
    let got = run(ProtocolKind::Beta { k: 2 }, &[true, false]);
    let want = "\
[       0] send(data(0))
[       0] idle_r
[       3] send(data(1))
[       3] idle_r
[       6] recv(data(0))
[       6] send(data(1))
[       6] idle_r
[       9] recv(data(1))
[       9] wait_t
[       9] idle_r
[      12] recv(data(1))
[      12] wait_t
[      12] write(1)
[      15] wait_t
[      15] write(0)
";
    assert_eq!(got, want, "beta trace drifted:\n{got}");
}

#[test]
fn gamma_golden_trace_one_block() {
    // Figure 4 with k = 2, δ2 = 2: μ_2(2) = 3, 1 bit per burst of 2.
    // Input [1]: one burst. The receiver acks each packet; the
    // transmitter idles (c = δ2) until both acks arrive.
    let got = run(ProtocolKind::Gamma { k: 2 }, &[true]);
    let want = "\
[       0] send(data(0))
[       0] idle_r
[       3] send(data(1))
[       3] idle_r
[       6] recv(data(0))
[       6] idle_t
[       6] send(ack(0))
[       9] recv(data(1))
[       9] idle_t
[       9] send(ack(0))
[      12] recv(ack(0))
[      12] idle_t
[      12] write(1)
[      15] recv(ack(0))
";
    assert_eq!(got, want, "gamma trace drifted:\n{got}");
}

#[test]
fn altbit_golden_trace_two_messages() {
    // Stop-and-wait with alternating tags over the loss-free channel: each
    // message is sent once (data symbol = 2·tag + bit), acked with its tag,
    // and the ack's arrival immediately releases the next message (the
    // timer reset makes send enabled at the transmitter's very next step,
    // here the same tick as the ack delivery).
    let params = TimingParams::from_ticks(2, 3, 6).unwrap();
    let out = run_configured(
        &RunConfig {
            kind: ProtocolKind::AltBit {
                timeout_steps: Some(10),
            },
            params,
            step: StepPolicy::AllSlow,
            delivery: DeliveryPolicy::MaxDelay,
            ..RunConfig::default()
        },
        &[true, false],
    )
    .unwrap();
    assert!(out.report.all_good(), "{}", out.report);
    let want = "\
[       0] send(data(1))
[       0] idle_r
[       3] wait_t
[       3] idle_r
[       6] recv(data(1))
[       6] wait_t
[       6] send(ack(0))
[       9] wait_t
[       9] write(1)
[      12] recv(ack(0))
[      12] send(data(2))
[      12] idle_r
[      15] wait_t
[      15] idle_r
[      18] recv(data(2))
[      18] wait_t
[      18] send(ack(1))
[      21] wait_t
[      21] write(0)
[      24] recv(ack(1))
";
    assert_eq!(out.trace.render(), want, "altbit trace drifted");
}

#[test]
fn golden_traces_are_deterministic() {
    for _ in 0..3 {
        let a = run(ProtocolKind::Beta { k: 2 }, &[true, false, true]);
        let b = run(ProtocolKind::Beta { k: 2 }, &[true, false, true]);
        assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Fuzzer-promoted goldens: the two highest-coverage scenarios per protocol
// from `rstp check`'s seed-0 campaigns, committed with their exact traces.
// Unlike the policy-driven goldens above, these scripts came out of the
// coverage-guided search in `rstp-check` — each one reached channel/ordering
// structure the deterministic policies never produce.
// ---------------------------------------------------------------------------

/// Replays an `rstp-check` repro and returns the rendered trace, asserting
/// every fuzzer oracle passes on the way.
fn replay_repro(text: &str) -> String {
    let repro = rstp::check::parse_repro(text).expect("golden repro parses");
    assert_eq!(repro.expect, rstp::check::Expectation::Pass);
    let run = rstp::check::run_scenario(&repro.scenario, 500_000);
    assert!(run.failure.is_none(), "{}", run.failure.unwrap());
    run.trace.render()
}

#[test]
fn alpha_fuzzed_golden_eager_delivery_with_jittered_receiver() {
    // Stresses the Δ lower edge and the prefix property at its tightest:
    // the first packet is delivered with ZERO delay (legal in the classic
    // [0, d] window), so the receiver — stepping on an uneven 1/2-tick
    // script — writes bit 0 just one tick after transmission started. The
    // second round's packet lands 2 ticks out, interleaving writes with
    // the transmitter's wait steps.
    let got = replay_repro(
        "rstp-check repro v1\n\
         protocol = alpha\n\
         params = 1 2 6\n\
         expect = pass\n\
         reason = eager 0-tick delivery against a jittered receiver clock\n\
         input = 11\n\
         t_gaps =\n\
         r_gaps = 1 2 2 1\n\
         gap_fallback = 1\n\
         data_fates = 0 0 0 2\n\
         ack_fates =\n\
         data_fallback = 4\n\
         ack_fallback = 0\n",
    );
    let want = "\
[       0] send(data(1))
[       0] idle_r
[       0] recv(data(1))
[       1] wait_t
[       1] write(1)
[       2] wait_t
[       3] idle_r
[       3] wait_t
[       4] wait_t
[       5] idle_r
[       5] wait_t
[       6] idle_r
[       6] send(data(1))
[       6] recv(data(1))
[       7] write(1)
[       7] wait_t
[       8] idle_r
[       8] wait_t
[       9] idle_r
[       9] wait_t
[      10] idle_r
[      10] wait_t
[      11] idle_r
[      11] wait_t
";
    assert_eq!(got, want, "alpha fuzzed golden drifted:\n{got}");
}

#[test]
fn alpha_fuzzed_golden_delivery_at_the_exact_deadline() {
    // Stresses the Δ upper edge: the second packet rides the fallback
    // delay and arrives exactly d = 6 ticks after its send — the last
    // legal instant — while the first is held 4 ticks. Both writes must
    // still land in order (prefix property) and the step script must stay
    // inside Σ despite mixing 1- and 2-tick gaps.
    let got = replay_repro(
        "rstp-check repro v1\n\
         protocol = alpha\n\
         params = 1 2 6\n\
         expect = pass\n\
         reason = delivery pinned at the d = 6 deadline\n\
         input = 11\n\
         t_gaps = 1\n\
         r_gaps =\n\
         gap_fallback = 1\n\
         data_fates = 4 6 0 1\n\
         ack_fates = 2\n\
         data_fallback = 2\n\
         ack_fallback = 6\n",
    );
    let want = "\
[       0] send(data(1))
[       0] idle_r
[       1] wait_t
[       1] idle_r
[       2] wait_t
[       2] idle_r
[       3] wait_t
[       3] idle_r
[       4] recv(data(1))
[       4] wait_t
[       4] write(1)
[       5] wait_t
[       5] idle_r
[       6] send(data(1))
[       6] idle_r
[       7] wait_t
[       7] idle_r
[       8] wait_t
[       8] idle_r
[       9] wait_t
[       9] idle_r
[      10] wait_t
[      10] idle_r
[      11] wait_t
[      11] idle_r
[      12] recv(data(1))
[      12] write(1)
";
    assert_eq!(got, want, "alpha fuzzed golden drifted:\n{got}");
}

#[test]
fn beta_fuzzed_golden_tail_packet_delayed_past_the_burst() {
    // Stresses the multiset decode's order-independence: the burst's last
    // packet (the only data(1) carrying the block's high rank) is delayed
    // 2 ticks while earlier packets arrive instantly, so the receiver
    // holds a partial multiset across its wait boundary and may only
    // write once all δ2+1 packets of the burst are in.
    let got = replay_repro(
        "rstp-check repro v1\n\
         protocol = beta k=2\n\
         params = 1 2 6\n\
         expect = pass\n\
         reason = burst tail delayed past in-order siblings\n\
         input = 11\n\
         t_gaps =\n\
         r_gaps = 1 2 2 1\n\
         gap_fallback = 1\n\
         data_fates = 0 0 0 2\n\
         ack_fates =\n\
         data_fallback = 4\n\
         ack_fallback = 0\n",
    );
    let want = "\
[       0] send(data(0))
[       0] idle_r
[       0] recv(data(0))
[       1] send(data(0))
[       1] idle_r
[       1] recv(data(0))
[       2] send(data(0))
[       2] recv(data(0))
[       3] idle_r
[       3] send(data(1))
[       4] send(data(1))
[       5] idle_r
[       5] recv(data(1))
[       5] send(data(1))
[       6] idle_r
[       6] wait_t
[       7] idle_r
[       7] wait_t
[       8] recv(data(1))
[       8] idle_r
[       8] wait_t
[       9] recv(data(1))
[       9] write(1)
[       9] wait_t
[      10] write(1)
[      10] wait_t
[      11] idle_r
[      11] wait_t
";
    assert_eq!(got, want, "beta fuzzed golden drifted:\n{got}");
}

#[test]
fn beta_fuzzed_golden_cross_burst_reordering() {
    // Stresses Y ⊑ X under genuinely out-of-order delivery: delays
    // 4/6/0/1 invert the arrival order (packet 3 lands before packets 1
    // and 2, and the first send arrives SECOND-to-last at t = 7). The
    // receiver's multiset counting must absorb arrivals from two
    // interleaved bursts without mis-ranking either block.
    let got = replay_repro(
        "rstp-check repro v1\n\
         protocol = beta k=2\n\
         params = 1 2 6\n\
         expect = pass\n\
         reason = arrival order inverted across adjacent bursts\n\
         input = 11\n\
         t_gaps = 1\n\
         r_gaps =\n\
         gap_fallback = 1\n\
         data_fates = 4 6 0 1\n\
         ack_fates = 2\n\
         data_fallback = 2\n\
         ack_fallback = 6\n",
    );
    let want = "\
[       0] send(data(0))
[       0] idle_r
[       1] send(data(0))
[       1] idle_r
[       2] send(data(0))
[       2] idle_r
[       2] recv(data(0))
[       3] send(data(1))
[       3] idle_r
[       4] recv(data(0))
[       4] recv(data(1))
[       4] send(data(1))
[       4] idle_r
[       5] send(data(1))
[       5] idle_r
[       6] recv(data(1))
[       6] wait_t
[       6] idle_r
[       7] recv(data(0))
[       7] recv(data(1))
[       7] wait_t
[       7] write(1)
[       8] wait_t
[       8] write(1)
[       9] wait_t
[       9] idle_r
[      10] wait_t
[      10] idle_r
[      11] wait_t
";
    assert_eq!(got, want, "beta fuzzed golden drifted:\n{got}");
}

#[test]
fn gamma_fuzzed_golden_instant_acks_drive_fastest_rounds() {
    // Stresses the ack-clocked round structure at its fastest legal
    // cadence: every packet AND every ack is delivered with 0 delay, so
    // the transmitter's δ2 = 3 ack count fills while the burst is still
    // in flight and the whole 1-block transfer quiesces in 7 ticks —
    // effort far under the 3d + c2 worst case, which the Effort oracle
    // verifies on replay.
    let got = replay_repro(
        "rstp-check repro v1\n\
         protocol = gamma k=2\n\
         params = 1 2 6\n\
         expect = pass\n\
         reason = zero-delay acks clock rounds at maximum speed\n\
         input = 11\n\
         t_gaps =\n\
         r_gaps = 1 2 2 1\n\
         gap_fallback = 1\n\
         data_fates = 0 0 0 2\n\
         ack_fates =\n\
         data_fallback = 4\n\
         ack_fallback = 0\n",
    );
    let want = "\
[       0] send(data(1))
[       0] idle_r
[       0] recv(data(1))
[       1] send(data(1))
[       1] send(ack(0))
[       1] recv(data(1))
[       1] recv(ack(0))
[       2] send(data(1))
[       2] recv(data(1))
[       3] send(ack(0))
[       3] idle_t
[       3] recv(ack(0))
[       4] idle_t
[       5] send(ack(0))
[       5] idle_t
[       5] recv(ack(0))
[       6] write(1)
[       7] write(1)
";
    assert_eq!(got, want, "gamma fuzzed golden drifted:\n{got}");
}

#[test]
fn gamma_fuzzed_golden_straggling_acks_stall_the_transmitter() {
    // Stresses the active protocol's idle/ack interplay: acks crawl back
    // with delays up to 5 ticks, so the transmitter sits in idle_t steps
    // awaiting its δ2-th ack while stale acks from the same burst are
    // still in flight — the window where an ack-counting off-by-one
    // (see the injected-bug acceptance test) corrupts the next burst.
    let got = replay_repro(
        "rstp-check repro v1\n\
         protocol = gamma k=2\n\
         params = 1 2 6\n\
         expect = pass\n\
         reason = straggling acks force transmitter idling\n\
         input = 0\n\
         t_gaps =\n\
         r_gaps = 2\n\
         gap_fallback = 2\n\
         data_fates = 2 1\n\
         ack_fates = 5 2 0 2 2 4\n\
         data_fallback = 2\n\
         ack_fallback = 0\n",
    );
    let want = "\
[       0] send(data(0))
[       0] idle_r
[       2] recv(data(0))
[       2] send(data(0))
[       2] send(ack(0))
[       3] recv(data(0))
[       4] send(data(0))
[       4] send(ack(0))
[       6] recv(data(0))
[       6] idle_t
[       6] recv(ack(0))
[       6] send(ack(0))
[       6] recv(ack(0))
[       7] recv(ack(0))
[       8] write(0)
";
    assert_eq!(got, want, "gamma fuzzed golden drifted:\n{got}");
}
