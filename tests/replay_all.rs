//! Every protocol's simulated traces replay through the composed formal
//! automaton `A_t ∘ A_r ∘ C(P)` — the library-level [`rstp::sim::replay`]
//! applied across the whole protocol zoo and several adversaries.

use rstp::core::protocols::{
    AlphaReceiver, AlphaTransmitter, AltBitReceiver, AltBitTransmitter, BetaReceiver,
    BetaTransmitter, FramedReceiver, FramedTransmitter, GammaReceiver, GammaTransmitter,
    PipelinedReceiver, PipelinedTransmitter, StenningReceiver, StenningTransmitter,
};
use rstp::core::TimingParams;
use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp::sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};
use rstp::sim::replay::replay_trace;
use rstp::sim::SimTrace;

fn params() -> TimingParams {
    TimingParams::from_ticks(1, 2, 6).unwrap()
}

fn simulate(
    kind: ProtocolKind,
    input: &[bool],
    step: StepPolicy,
    delivery: DeliveryPolicy,
) -> SimTrace {
    let out = run_configured(
        &RunConfig {
            kind,
            params: params(),
            step,
            delivery,
            ..RunConfig::default()
        },
        input,
    )
    .unwrap();
    assert!(out.report.all_good(), "{}: {}", kind.name(), out.report);
    out.trace
}

fn adversary_menu(kind: ProtocolKind) -> Vec<(StepPolicy, DeliveryPolicy)> {
    let burst = kind.burst_size(params());
    vec![
        (StepPolicy::AllSlow, DeliveryPolicy::MaxDelay),
        (StepPolicy::AllFast, DeliveryPolicy::ReverseBurst { burst }),
        (
            StepPolicy::Random { seed: 5 },
            DeliveryPolicy::Random { seed: 6 },
        ),
    ]
}

#[test]
fn alpha_replays() {
    let p = params();
    let input = random_input(17, 1);
    for (step, delivery) in adversary_menu(ProtocolKind::Alpha) {
        let trace = simulate(ProtocolKind::Alpha, &input, step, delivery);
        let r = replay_trace(
            AlphaTransmitter::new(p, input.clone()),
            AlphaReceiver::new(),
            &trace,
        )
        .unwrap();
        assert!(r.transmitter_quiescent);
        assert_eq!(r.in_flight, 0);
    }
}

#[test]
fn beta_replays() {
    let p = params();
    let k = 4;
    let input = random_input(23, 2);
    for (step, delivery) in adversary_menu(ProtocolKind::Beta { k }) {
        let trace = simulate(ProtocolKind::Beta { k }, &input, step, delivery);
        replay_trace(
            BetaTransmitter::new(p, k, &input).unwrap(),
            BetaReceiver::new(p, k, input.len()).unwrap(),
            &trace,
        )
        .unwrap();
    }
}

#[test]
fn gamma_replays() {
    let p = params();
    let k = 3;
    let input = random_input(19, 3);
    for (step, delivery) in adversary_menu(ProtocolKind::Gamma { k }) {
        let trace = simulate(ProtocolKind::Gamma { k }, &input, step, delivery);
        let r = replay_trace(
            GammaTransmitter::new(p, k, &input).unwrap(),
            GammaReceiver::new(p, k, input.len()).unwrap(),
            &trace,
        )
        .unwrap();
        assert_eq!(r.in_flight, 0);
    }
}

#[test]
fn altbit_replays() {
    let p = params();
    let input = random_input(11, 4);
    let kind = ProtocolKind::AltBit {
        timeout_steps: Some(20),
    };
    {
        let (step, delivery) = (StepPolicy::AllSlow, DeliveryPolicy::MaxDelay);
        let trace = simulate(kind, &input, step, delivery);
        replay_trace(
            AltBitTransmitter::new(p, input.clone(), Some(20)),
            AltBitReceiver::new(),
            &trace,
        )
        .unwrap();
    }
}

#[test]
fn stenning_replays() {
    let p = params();
    let input = random_input(9, 5);
    let kind = ProtocolKind::Stenning {
        timeout_steps: Some(20),
    };
    let trace = simulate(kind, &input, StepPolicy::AllSlow, DeliveryPolicy::MaxDelay);
    replay_trace(
        StenningTransmitter::new(p, input.clone(), Some(20)),
        StenningReceiver::new(),
        &trace,
    )
    .unwrap();
}

#[test]
fn framed_replays() {
    let p = params();
    let k = 4;
    let input = random_input(15, 6);
    for (step, delivery) in adversary_menu(ProtocolKind::Framed { k }) {
        let trace = simulate(ProtocolKind::Framed { k }, &input, step, delivery);
        replay_trace(
            FramedTransmitter::new(p, k, &input).unwrap(),
            FramedReceiver::new(p, k).unwrap(),
            &trace,
        )
        .unwrap();
    }
}

#[test]
fn pipelined_replays_across_windows() {
    let p = params();
    let k = 4;
    let input = random_input(21, 7);
    for window in [1u64, 2, 3] {
        let kind = ProtocolKind::Pipelined { k, window };
        for (step, delivery) in adversary_menu(kind) {
            let trace = simulate(kind, &input, step, delivery);
            replay_trace(
                PipelinedTransmitter::with_window(p, k, window, &input).unwrap(),
                PipelinedReceiver::with_window(p, k, window, input.len()).unwrap(),
                &trace,
            )
            .unwrap_or_else(|e| panic!("w={window}: {e}"));
        }
    }
}
