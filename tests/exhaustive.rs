//! Exhaustive small-instance verification — bounded model checking rather
//! than sampling:
//!
//! * every assignment of delivery delays to every packet, for tiny
//!   protocol instances ([`rstp::sim::verify_all_delay_schedules`]);
//! * every reachable protocol state under arbitrary channel interleavings,
//!   with per-protocol invariants ([`rstp::automata::explore`]).

use rstp::automata::explore;
use rstp::core::protocols::{
    AlphaReceiver, AlphaTransmitter, BetaReceiver, BetaTransmitter, GammaReceiver, GammaTransmitter,
};
use rstp::core::{Packet, RstpAction, TimingParams};
use rstp::sim::verify_all_delay_schedules;

#[test]
fn alpha_exhaustive_over_all_delay_schedules_and_inputs() {
    // δ1 = 2, 2 messages -> 2 packets; menu of 5 delays -> 2·25 runs per
    // input, all 4 inputs: 200 full simulations, each checker-verified.
    let p = TimingParams::from_ticks(2, 3, 4).unwrap();
    for bits in 0..4u8 {
        let input = vec![bits & 1 != 0, bits & 2 != 0];
        let v = verify_all_delay_schedules(p, &input, &[0, 1, 2, 3, 4], || {
            (
                AlphaTransmitter::new(p, input.clone()),
                AlphaReceiver::new(),
            )
        })
        .unwrap_or_else(|ce| panic!("alpha broke on {input:?}: {ce:?}"));
        assert_eq!(v.packets, 2);
        assert_eq!(v.schedules, 2 * 25);
    }
}

#[test]
fn beta_exhaustive_over_all_delay_schedules_and_inputs() {
    // δ1 = 2, k = 2: μ_2(2) = 3 -> 1 bit per burst of 2. Three bits ->
    // 3 bursts = 6 packets; menu {0, 2, 4} -> 2·729 runs per input × 8
    // inputs = 11,664 simulations.
    let p = TimingParams::from_ticks(2, 3, 4).unwrap();
    for bits in 0..8u8 {
        let input = vec![bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
        let v = verify_all_delay_schedules(p, &input, &[0, 2, 4], || {
            (
                BetaTransmitter::new(p, 2, &input).unwrap(),
                BetaReceiver::new(p, 2, input.len()).unwrap(),
            )
        })
        .unwrap_or_else(|ce| panic!("beta broke on {input:?}: {ce:?}"));
        assert_eq!(v.packets, 6);
        assert_eq!(v.schedules, 2 * 729);
    }
}

#[test]
fn gamma_exhaustive_over_all_delay_schedules() {
    // δ2 = 2, k = 4: μ_4(2) = 10 -> 3 bits per burst of 2. Six bits ->
    // 2 bursts: 4 data + 4 acks = 8 packets; menu {0, 6} -> 2·256 runs.
    let p = TimingParams::from_ticks(2, 3, 6).unwrap();
    let input = vec![true, false, true, true, false, false];
    let v = verify_all_delay_schedules(p, &input, &[0, 6], || {
        (
            GammaTransmitter::new(p, 4, &input).unwrap(),
            GammaReceiver::new(p, 4, input.len()).unwrap(),
        )
    })
    .unwrap_or_else(|ce| panic!("gamma broke: {ce:?}"));
    assert_eq!(v.packets, 8);
    assert_eq!(v.schedules, 2 * 256);
}

#[test]
fn alpha_transmitter_invariants_over_full_reachable_space() {
    // The alpha transmitter has no inputs, so its reachable space is its
    // single execution path; explore verifies determinism and the Figure 1
    // counter invariants at every state.
    let p = TimingParams::from_ticks(1, 2, 4).unwrap(); // δ1 = 4
    let n = 5usize;
    let t = AlphaTransmitter::new(p, vec![true; n]);
    let delta1 = p.delta1();
    let r = explore(&t, &[], 10_000, |s| {
        if s.next > n {
            return Err(format!("i = {} exceeds |X| = {n}", s.next));
        }
        if s.idle_count >= delta1 {
            return Err(format!("j = {} not < δ1 = {delta1}", s.idle_count));
        }
        Ok(())
    })
    .unwrap();
    assert!(r.complete);
    // One state per (message round × step-in-round) plus the terminal.
    assert_eq!(r.states, n * delta1 as usize + 1);
}

#[test]
fn alpha_receiver_invariants_under_arbitrary_channel_interleavings() {
    // The receiver's inputs are arbitrary data packets: explore every
    // interleaving of {recv(0), recv(1)} with its own local actions, up to
    // a state budget, checking written <= received at every state.
    let r = AlphaReceiver::new();
    let inputs = [
        RstpAction::Recv(Packet::Data(0)),
        RstpAction::Recv(Packet::Data(1)),
    ];
    let result = explore(&r, &inputs, 3_000, |s| {
        if s.written > s.received.len() {
            return Err(format!(
                "written {} outruns received {}",
                s.written,
                s.received.len()
            ));
        }
        Ok(())
    })
    .unwrap();
    // The space is infinite (unbounded y array); the budget truncates it.
    assert!(!result.complete);
    assert_eq!(result.states, 3_000);
}

#[test]
fn beta_receiver_burst_invariant_under_arbitrary_packets() {
    let p = TimingParams::from_ticks(1, 2, 3).unwrap(); // δ1 = 3
    let k = 2u64;
    let receiver = BetaReceiver::new(p, k, 4).unwrap();
    let burst = receiver.burst_size();
    let inputs = [
        RstpAction::Recv(Packet::Data(0)),
        RstpAction::Recv(Packet::Data(1)),
        RstpAction::Recv(Packet::Data(9)), // out-of-alphabet garbage
    ];
    let result = explore(&receiver, &inputs, 5_000, |s| {
        if s.burst.len() >= burst {
            return Err(format!("burst |A| = {} not < δ1 = {burst}", s.burst.len()));
        }
        if s.written > s.decoded.len() {
            return Err("written outruns decoded".into());
        }
        if s.decoded.len() > 4 {
            return Err(format!(
                "decoded {} bits, expected at most 4",
                s.decoded.len()
            ));
        }
        Ok(())
    })
    .unwrap();
    assert!(
        result.states > 100,
        "explored only {} states",
        result.states
    );
}

#[test]
fn gamma_transmitter_invariants_under_arbitrary_acks() {
    let p = TimingParams::from_ticks(1, 2, 4).unwrap(); // δ2 = 2
    let input = vec![true, false, true];
    let t = GammaTransmitter::new(p, 2, &input).unwrap();
    let delta2 = t.delta2();
    let blocks = t.num_blocks();
    // Arbitrary ack arrivals — including spurious ones the channel could
    // never produce; the transmitter must stay within its counters. (With
    // fabricated acks it can advance early, but never out of range.)
    let inputs = [RstpAction::Recv(Packet::Ack(0))];
    let result = explore(&t, &inputs, 10_000, |s| {
        if s.acks >= delta2 {
            return Err(format!("a = {} not < δ2 = {delta2}", s.acks));
        }
        if s.step_in_burst > delta2 {
            return Err(format!("c = {} exceeds δ2 = {delta2}", s.step_in_burst));
        }
        if s.block > blocks {
            return Err(format!("block {} exceeds {}", s.block, blocks));
        }
        Ok(())
    })
    .unwrap();
    assert!(result.complete, "gamma transmitter space should be finite");
    // (block, c, a) ranges bound the state count.
    assert!(result.states <= (blocks + 1) * (delta2 as usize + 1) * delta2 as usize + 1);
}
