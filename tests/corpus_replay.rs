//! Replays every committed repro under `tests/corpus/` and asserts its
//! recorded expectation still holds — so any fuzzer-found failure that was
//! minimized and committed keeps regression-testing the fix forever, and
//! pass-expected boundary scenarios keep exercising their edge.
//!
//! Add files with `rstp check` (failures are written here automatically)
//! or by hand in the `rstp-check repro v1` format; see `docs/TESTING.md`.

use std::fs;

use rstp::check::{parse_repro, run_scenario, Expectation};

const MAX_EVENTS: u64 = 500_000;

#[test]
fn corpus_replays_with_expected_verdicts() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut paths: Vec<_> = fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("repro"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 3,
        "corpus must contain committed repros, found {}",
        paths.len()
    );

    for path in paths {
        let text = fs::read_to_string(&path).expect("readable repro");
        let repro = parse_repro(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let run = run_scenario(&repro.scenario, MAX_EVENTS);
        match repro.expect {
            Expectation::Pass => assert!(
                run.failure.is_none(),
                "{}: {}",
                path.display(),
                run.failure.unwrap()
            ),
            Expectation::Violation => assert!(
                run.failure.is_some(),
                "{}: expected a violation but every oracle passed — if the\
                 underlying bug was fixed, flip `expect` to pass or delete\
                 the file",
                path.display()
            ),
        }

        // Byte-for-byte replayability: a second run of the same scenario
        // is identical, and the parsed form re-renders losslessly.
        let again = run_scenario(&repro.scenario, MAX_EVENTS);
        assert_eq!(run.events, again.events, "{}", path.display());
        assert_eq!(run.failure, again.failure, "{}", path.display());
        assert_eq!(
            parse_repro(&rstp::check::render_repro(&repro)).unwrap(),
            repro,
            "{}",
            path.display()
        );
    }
}
