//! Property-based integration tests: randomized parameters, inputs, and
//! adversary seeds — every run must be a `good(A)` behavior that delivers
//! `X` exactly.

use proptest::prelude::*;
use rstp::core::{bounds, TimingParams};
use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp::sim::harness::{run_configured, ProtocolKind, RunConfig};
use rstp::sim::Outcome;

/// Strategy for valid `(c1, c2, d)` triples with nontrivial deltas.
fn timing_strategy() -> impl Strategy<Value = TimingParams> {
    (1u64..=4, 0u64..=3, 1u64..=6).prop_map(|(c1, c2_extra, d_mult)| {
        let c2 = c1 + c2_extra;
        let d = c2 * d_mult.max(1) + c2_extra;
        let d = d.max(c2);
        TimingParams::from_ticks(c1, c2, d).expect("constructed valid")
    })
}

fn step_strategy() -> impl Strategy<Value = StepPolicy> {
    prop_oneof![
        Just(StepPolicy::AllFast),
        Just(StepPolicy::AllSlow),
        Just(StepPolicy::Alternate),
        any::<u64>().prop_map(|seed| StepPolicy::Random { seed }),
        any::<bool>().prop_map(|fast_transmitter| StepPolicy::SkewedPair { fast_transmitter }),
    ]
}

fn delivery_strategy() -> impl Strategy<Value = DeliveryPolicy> {
    prop_oneof![
        Just(DeliveryPolicy::Eager),
        Just(DeliveryPolicy::MaxDelay),
        Just(DeliveryPolicy::IntervalBatch),
        (1u64..64).prop_map(|burst| DeliveryPolicy::ReverseBurst { burst }),
        any::<u64>().prop_map(|seed| DeliveryPolicy::Random { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn alpha_always_solves_rstp(
        params in timing_strategy(),
        input in proptest::collection::vec(any::<bool>(), 0..60),
        step in step_strategy(),
        delivery in delivery_strategy(),
    ) {
        let out = run_configured(&RunConfig {
            kind: ProtocolKind::Alpha,
            params,
            step,
            delivery,
            ..RunConfig::default()
        }, &input).unwrap();
        prop_assert_eq!(out.outcome, Outcome::Quiescent);
        prop_assert!(out.report.all_good(), "{}", out.report);
        prop_assert_eq!(out.trace.written(), input);
    }

    #[test]
    fn beta_always_solves_rstp(
        params in timing_strategy(),
        k in 2u64..9,
        input in proptest::collection::vec(any::<bool>(), 0..60),
        step in step_strategy(),
        delivery in delivery_strategy(),
    ) {
        let out = run_configured(&RunConfig {
            kind: ProtocolKind::Beta { k },
            params,
            step,
            delivery,
            ..RunConfig::default()
        }, &input).unwrap();
        prop_assert_eq!(out.outcome, Outcome::Quiescent);
        prop_assert!(out.report.all_good(), "{}", out.report);
        prop_assert_eq!(out.trace.written(), input);
    }

    #[test]
    fn gamma_always_solves_rstp(
        params in timing_strategy(),
        k in 2u64..9,
        input in proptest::collection::vec(any::<bool>(), 0..60),
        step in step_strategy(),
        delivery in delivery_strategy(),
    ) {
        let out = run_configured(&RunConfig {
            kind: ProtocolKind::Gamma { k },
            params,
            step,
            delivery,
            ..RunConfig::default()
        }, &input).unwrap();
        prop_assert_eq!(out.outcome, Outcome::Quiescent);
        prop_assert!(out.report.all_good(), "{}", out.report);
        prop_assert_eq!(out.trace.written(), input);
    }

    #[test]
    fn framed_always_solves_rstp_without_length_hint(
        params in timing_strategy(),
        k in 2u64..6,
        input in proptest::collection::vec(any::<bool>(), 0..40),
        step in step_strategy(),
    ) {
        let out = run_configured(&RunConfig {
            kind: ProtocolKind::Framed { k },
            params,
            step,
            ..RunConfig::default()
        }, &input).unwrap();
        prop_assert_eq!(out.outcome, Outcome::Quiescent);
        prop_assert!(out.report.all_good(), "{}", out.report);
        prop_assert_eq!(out.trace.written(), input);
    }

    #[test]
    fn altbit_always_solves_rstp_on_the_perfect_channel(
        params in timing_strategy(),
        input in proptest::collection::vec(any::<bool>(), 0..30),
        step in step_strategy(),
    ) {
        let out = run_configured(&RunConfig {
            kind: ProtocolKind::AltBit { timeout_steps: None },
            params,
            step,
            // FIFO-ish deliveries: altbit is only guaranteed under FIFO.
            delivery: DeliveryPolicy::MaxDelay,
            ..RunConfig::default()
        }, &input).unwrap();
        prop_assert_eq!(out.outcome, Outcome::Quiescent);
        prop_assert!(out.report.all_good(), "{}", out.report);
        prop_assert_eq!(out.trace.written(), input);
    }

    #[test]
    fn altbit_survives_fifo_faults(
        input in proptest::collection::vec(any::<bool>(), 1..25),
        loss in 0.0f64..0.5,
        dup in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let params = TimingParams::from_ticks(1, 2, 6).unwrap();
        let out = run_configured(&RunConfig {
            kind: ProtocolKind::AltBit { timeout_steps: None },
            params,
            delivery: DeliveryPolicy::FaultyFifo { loss, duplication: dup, seed },
            max_events: 5_000_000,
            ..RunConfig::default()
        }, &input).unwrap();
        prop_assert_eq!(out.outcome, Outcome::Quiescent);
        prop_assert_eq!(out.trace.written(), input);
    }

    #[test]
    fn measured_effort_never_beats_the_lower_bound(
        params in timing_strategy(),
        k in 2u64..6,
        seed in any::<u64>(),
    ) {
        // Theorem 5.3/5.6 are worst-case bounds; a single measured run can
        // be *below* them only because the adversary wasn't worst-case —
        // but never below zero nor above the upper guarantee.
        let n = 120usize;
        let input = rstp::sim::harness::random_input(n, seed);
        let beta = run_configured(&RunConfig {
            kind: ProtocolKind::Beta { k },
            params,
            step: StepPolicy::AllSlow,
            delivery: DeliveryPolicy::MaxDelay,
            ..RunConfig::default()
        }, &input).unwrap();
        let effort = beta.metrics.effort(n).unwrap();
        prop_assert!(effort <= bounds::passive_upper_finite(params, k, n) + 1e-9);
        // AllSlow *is* the binding schedule for beta: it should be within
        // a whisker of the finite upper bound.
        prop_assert!(effort >= bounds::passive_upper_finite(params, k, n) * 0.9 - 1e-9);
    }

    #[test]
    fn stream_decoder_and_beta_receiver_agree(
        k in 2u64..7,
        d in 2u64..10,
        input in proptest::collection::vec(any::<bool>(), 0..60),
        packet_seed in any::<u64>(),
    ) {
        // Differential test: the standalone StreamDecoder and the
        // BetaReceiver automaton implement the same decoding loop; feed
        // both the same (shuffled-within-burst) packet stream and compare.
        use rstp::automata::Automaton;
        use rstp::codec::{BlockCodec, StreamDecoder};
        use rstp::core::protocols::BetaReceiver;
        use rstp::core::{Packet, RstpAction};

        let params = TimingParams::from_ticks(1, 1, d).unwrap();
        let codec = BlockCodec::new(k, params.delta1()).unwrap();
        let mut decoder = StreamDecoder::new(codec.clone(), input.len());
        let receiver = BetaReceiver::new(params, k, input.len()).unwrap();
        let mut state = receiver.initial_state();

        let mut rng_state = packet_seed | 1;
        for block in codec.encode_stream(&input).unwrap() {
            let mut burst = block.packets().to_vec();
            for i in (1..burst.len()).rev() {
                rng_state = rng_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (rng_state >> 33) as usize % (i + 1);
                burst.swap(i, j);
            }
            for sym in burst {
                decoder.push(sym).unwrap();
                state = receiver
                    .step(&state, &RstpAction::Recv(Packet::Data(sym)))
                    .unwrap();
            }
        }
        prop_assert_eq!(decoder.bits(), &state.decoded[..]);
        prop_assert_eq!(decoder.bits(), &input[..]);
        prop_assert_eq!(decoder.failures(), state.decode_failures);
    }

    #[test]
    fn pipelined_always_solves_rstp(
        params in timing_strategy(),
        k in 2u64..7,
        input in proptest::collection::vec(any::<bool>(), 0..50),
        step in step_strategy(),
        delivery in delivery_strategy(),
    ) {
        let out = run_configured(&RunConfig {
            kind: ProtocolKind::Pipelined { k, window: 2 },
            params,
            step,
            delivery,
            ..RunConfig::default()
        }, &input).unwrap();
        prop_assert_eq!(out.outcome, Outcome::Quiescent);
        prop_assert!(out.report.all_good(), "{}", out.report);
        prop_assert_eq!(out.trace.written(), input);
    }

    #[test]
    fn pipelined_window_one_is_trace_identical_to_gamma(
        params in timing_strategy(),
        k in 2u64..7,
        input in proptest::collection::vec(any::<bool>(), 0..40),
        step in step_strategy(),
        delivery in delivery_strategy(),
    ) {
        // With w = 1 the tag is constant 0, the wire symbol equals the
        // base symbol, and the window discipline is exactly stop-and-wait:
        // the two automata must produce the same timed behavior event for
        // event under any shared schedule.
        let run = |kind| run_configured(&RunConfig {
            kind,
            params,
            step,
            delivery,
            ..RunConfig::default()
        }, &input).unwrap();
        let gamma = run(ProtocolKind::Gamma { k });
        let pipe = run(ProtocolKind::Pipelined { k, window: 1 });
        prop_assert_eq!(gamma.trace.events(), pipe.trace.events());
        prop_assert_eq!(gamma.metrics, pipe.metrics);
    }

    #[test]
    fn stenning_survives_arbitrary_faults(
        input in proptest::collection::vec(any::<bool>(), 1..20),
        loss in 0.0f64..0.4,
        dup in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        // Loss + duplication + reordering simultaneously: the unbounded
        // alphabet sidesteps [WZ89].
        let params = TimingParams::from_ticks(1, 2, 6).unwrap();
        let out = run_configured(&RunConfig {
            kind: ProtocolKind::Stenning { timeout_steps: None },
            params,
            delivery: DeliveryPolicy::Faulty { loss, duplication: dup, seed },
            max_events: 5_000_000,
            ..RunConfig::default()
        }, &input).unwrap();
        prop_assert_eq!(out.outcome, Outcome::Quiescent);
        prop_assert_eq!(out.trace.written(), input);
    }

    #[test]
    fn safety_holds_even_mid_run_with_tiny_budgets(
        budget in 10u64..400,
        seed in any::<u64>(),
    ) {
        // Truncated runs (budget exhausted) must still satisfy the safety
        // half of the spec: Y is a prefix of X at every point.
        let params = TimingParams::from_ticks(1, 2, 8).unwrap();
        let input = rstp::sim::harness::random_input(64, seed);
        let out = run_configured(&RunConfig {
            kind: ProtocolKind::Gamma { k: 4 },
            params,
            max_events: budget,
            ..RunConfig::default()
        }, &input).unwrap();
        let written = out.trace.written();
        prop_assert!(written.len() <= input.len());
        prop_assert_eq!(&written[..], &input[..written.len()]);
    }

    #[test]
    fn corrupted_stabilizing_runs_are_deterministic_per_seed(
        gen_seed in any::<u64>(),
        stab_beta in any::<bool>(),
    ) {
        // Same seed + same scenario ⇒ byte-identical corruption schedule
        // and identical verdicts: the whole corrupted run — register draws,
        // channel rewrites, trace, and oracle verdict — must be a pure
        // function of the scenario text, or the corpus format loses replay.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use rstp::check::{run_scenario, Scenario};

        let kind = if stab_beta {
            ProtocolKind::StabBeta { k: 4 }
        } else {
            ProtocolKind::StabStenning { timeout_steps: None }
        };
        let params = TimingParams::from_ticks(1, 2, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(gen_seed);
        let scenario = Scenario::generate(kind, params, &mut rng, 12);
        let run = |s: &Scenario| {
            let r = run_scenario(s, 500_000);
            (
                r.quiescent,
                r.events,
                r.trace.events().to_vec(),
                r.failure.map(|f| f.to_string()),
            )
        };
        let (a, b) = (run(&scenario), run(&scenario));
        prop_assert_eq!(&a, &b);
        prop_assert!(a.3.is_none(), "unexpected failure: {:?}", a.3);
        // Mutation is part of the schedule too: a mutated copy replays
        // identically against itself.
        let mutated = scenario.mutate(&mut rng);
        prop_assert_eq!(run(&mutated), run(&mutated));
    }
}
