//! The §7 extended model end-to-end: per-process step bounds and delivery
//! windows, driven through `Simulation` directly (the harness covers the
//! classical triple).

use rstp::automata::TimeDelta;
use rstp::core::protocols::{BetaReceiver, BetaTransmitter, GammaReceiver, GammaTransmitter};
use rstp::core::{Owner, ProcessTiming, TimingParamsExt};
use rstp::sim::adversary::{DeliveryPolicy, StepAdversary};
use rstp::sim::checker::{check_trace, CheckConfig};
use rstp::sim::harness::random_input;
use rstp::sim::runner::{Outcome, SimSettings, Simulation};

/// Each process runs at its own fixed pace (its slowest legal gap).
struct PerProcessSlowest {
    transmitter: TimeDelta,
    receiver: TimeDelta,
}

impl StepAdversary for PerProcessSlowest {
    fn next_gap(&mut self, owner: Owner, _step_index: u64) -> TimeDelta {
        match owner {
            Owner::Transmitter => self.transmitter,
            _ => self.receiver,
        }
    }
}

fn dt(n: u64) -> TimeDelta {
    TimeDelta::from_ticks(n)
}

fn ext_params() -> TimingParamsExt {
    // Fast transmitter (1..=2), slow receiver (3..=5), delivery in [2, 10].
    TimingParamsExt::new(
        ProcessTiming::from_ticks(1, 2).unwrap(),
        ProcessTiming::from_ticks(3, 5).unwrap(),
        dt(2),
        dt(10),
    )
    .unwrap()
}

#[test]
fn beta_solves_rstp_with_asymmetric_processes() {
    let ext = ext_params();
    let classic = ext.conservative().unwrap();
    let input = random_input(41, 5);
    let k = 4;
    // Protocol sized by the conservative collapse — guaranteed safe in the
    // extended model (its δ1 covers the worst case).
    let sim = Simulation::new(
        BetaTransmitter::new(classic, k, &input).unwrap(),
        BetaReceiver::new(classic, k, input.len()).unwrap(),
        SimSettings::from_ext(ext),
    );
    let mut steps = PerProcessSlowest {
        transmitter: ext.transmitter().c2(),
        receiver: ext.receiver().c2(),
    };
    let mut delivery = DeliveryPolicy::Random { seed: 9 }.build(ext.d_lo(), ext.d_hi());
    let run = sim.run(&input, &mut steps, delivery.as_mut()).unwrap();
    assert_eq!(run.outcome, Outcome::Quiescent);
    assert_eq!(run.trace.written(), input);

    let report = check_trace(&run.trace, &CheckConfig::from_ext(ext));
    assert!(report.all_good(), "{report}");
}

#[test]
fn gamma_benefits_from_a_fast_transmitter() {
    // With per-process bounds, gamma's burst pacing is set by the
    // *transmitter's* own c2 — a fast transmitter paired with a slow
    // receiver still finishes each burst quickly; the receiver only
    // bottlenecks the ack stream.
    let input = random_input(36, 6);
    let k = 4;
    let fast_t = TimingParamsExt::new(
        ProcessTiming::from_ticks(1, 1).unwrap(),
        ProcessTiming::from_ticks(4, 4).unwrap(),
        TimeDelta::ZERO,
        dt(8),
    )
    .unwrap();
    let slow_t = TimingParamsExt::new(
        ProcessTiming::from_ticks(4, 4).unwrap(),
        ProcessTiming::from_ticks(1, 1).unwrap(),
        TimeDelta::ZERO,
        dt(8),
    )
    .unwrap();

    let mut efforts = Vec::new();
    for ext in [fast_t, slow_t] {
        let classic = ext.conservative().unwrap();
        let sim = Simulation::new(
            GammaTransmitter::new(classic, k, &input).unwrap(),
            GammaReceiver::new(classic, k, input.len()).unwrap(),
            SimSettings::from_ext(ext),
        );
        let mut steps = PerProcessSlowest {
            transmitter: ext.transmitter().c2(),
            receiver: ext.receiver().c2(),
        };
        let mut delivery = DeliveryPolicy::MaxDelay.build(ext.d_lo(), ext.d_hi());
        let run = sim.run(&input, &mut steps, delivery.as_mut()).unwrap();
        assert_eq!(run.trace.written(), input);
        let report = check_trace(&run.trace, &CheckConfig::from_ext(ext));
        assert!(report.all_good(), "{report}");
        efforts.push(run.metrics.effort(input.len()).unwrap());
    }
    // The fast-transmitter system is strictly quicker: the burst phase is
    // 4x faster and only the ack drain is receiver-paced.
    assert!(
        efforts[0] < efforts[1],
        "fast-t {} !< slow-t {}",
        efforts[0],
        efforts[1]
    );
}

#[test]
fn runner_enforces_per_process_bounds() {
    // An adversary that paces the receiver faster than its own c1 must be
    // rejected — with per-process bounds, the *transmitter's* wider range
    // does not excuse it.
    let ext = ext_params(); // receiver c1 = 3
    let classic = ext.conservative().unwrap();
    let input = vec![true];
    let sim = Simulation::new(
        BetaTransmitter::new(classic, 2, &input).unwrap(),
        BetaReceiver::new(classic, 2, 1).unwrap(),
        SimSettings::from_ext(ext),
    );
    let mut steps = PerProcessSlowest {
        transmitter: ext.transmitter().c2(),
        receiver: dt(1), // < receiver c1 = 3: illegal
    };
    let mut delivery = DeliveryPolicy::Eager.build(ext.d_lo(), ext.d_hi());
    let err = sim.run(&input, &mut steps, delivery.as_mut()).unwrap_err();
    assert!(err.to_string().contains("Receiver"), "{err}");
}

#[test]
fn checker_flags_per_process_sigma_violations() {
    // A trace whose *receiver* events are legal for the transmitter's
    // bounds but not its own must be flagged.
    use rstp::automata::Time;
    use rstp::core::{Packet, RstpAction};
    use rstp::sim::SimTrace;

    let ext = ext_params(); // transmitter [1,2], receiver [3,5]
    let mut tr = SimTrace::new(vec![]);
    tr.push(Time::from_ticks(0), RstpAction::Write(false));
    tr.push(Time::from_ticks(2), RstpAction::Write(false)); // gap 2 < 3
    let mut cfg = CheckConfig::from_ext(ext);
    cfg.expect_complete = false;
    let report = check_trace(&tr, &cfg);
    assert!(
        report.has(|v| matches!(
            v,
            rstp::sim::Violation::StepSpacing {
                owner: Owner::Receiver,
                ..
            }
        )),
        "{report}"
    );
    // The same gaps attributed to the transmitter are fine.
    let mut tr = SimTrace::new(vec![]);
    tr.push(Time::from_ticks(0), RstpAction::Send(Packet::Data(0)));
    tr.push(Time::from_ticks(2), RstpAction::Send(Packet::Data(0)));
    tr.push(Time::from_ticks(3), RstpAction::Recv(Packet::Data(0)));
    tr.push(Time::from_ticks(4), RstpAction::Recv(Packet::Data(0)));
    let report = check_trace(&tr, &cfg);
    assert!(report.all_good(), "{report}");
}

#[test]
fn delivery_window_lower_bound_respected_and_checked() {
    // With d_lo = 2, an eager (delay = d_lo) delivery is legal; the checker
    // verifies nothing arrived earlier.
    let ext = ext_params();
    let classic = ext.conservative().unwrap();
    let input = random_input(10, 1);
    let sim = Simulation::new(
        BetaTransmitter::new(classic, 3, &input).unwrap(),
        BetaReceiver::new(classic, 3, input.len()).unwrap(),
        SimSettings::from_ext(ext),
    );
    let mut steps = PerProcessSlowest {
        transmitter: ext.transmitter().c1(),
        receiver: ext.receiver().c1(),
    };
    let mut delivery = DeliveryPolicy::Eager.build(ext.d_lo(), ext.d_hi());
    let run = sim.run(&input, &mut steps, delivery.as_mut()).unwrap();
    assert_eq!(run.trace.written(), input);
    let report = check_trace(&run.trace, &CheckConfig::from_ext(ext));
    assert!(report.all_good(), "{report}");
}
