//! Exhaustive self-stabilization verification — bounded model checking of
//! the corrupted-state space rather than sampling it:
//!
//! * every register vector a transient fault can force into either process
//!   of the stabilizing protocols, injected before the first event via
//!   [`rstp::sim::Simulation::run_hooked`], with convergence floors
//!   asserted on each run;
//! * fifty seeded arbitrary-corruption runs of both stabilizing variants
//!   judged by the real `rstp-check` oracles (convergence *and* the
//!   documented stabilization-time bound).
//!
//! See `docs/STABILIZATION.md` for the floors and bounds these tests pin.

use rstp::automata::{enumerate_register_vectors, Corruptible, TimeDelta};
use rstp::check::{run_scenario, Scenario};
use rstp::core::protocols::stabilizing::{
    stab_beta_bits_per_block, stab_beta_transmitter, stab_stenning_ack_alphabet, StabBetaReceiver,
    StabStenningReceiver, StabStenningTransmitter, GARBAGE_MAX, REG_BETA_R_PENDING_LEN,
    REG_BETA_T_BLOCK, REG_STAB_R_PENDING_ACK, REG_STAB_T_NEXT,
};
use rstp::core::{Message, TimingParams};
use rstp::sim::runner::{Outcome, SimSettings};
use rstp::sim::{
    CorruptionSpec, DeliveryPolicy, ProtocolKind, ScriptedDelivery, Simulation, StepPolicy,
};

fn params() -> TimingParams {
    TimingParams::from_ticks(1, 2, 2).unwrap()
}

/// Longest suffix of `written` that is also a suffix of `x`.
fn end_aligned_suffix(written: &[Message], x: &[Message]) -> usize {
    (0..=written.len().min(x.len()))
        .rev()
        .find(|&s| written[written.len() - s..] == x[x.len() - s..])
        .unwrap_or(0)
}

/// Longest tail of `x` appearing contiguously anywhere in `written` (the
/// stabilizing β receiver can flush bounded leftovers after the converged
/// tail, so the tail is not necessarily at the end of the written word).
fn input_tail_occurrence(written: &[Message], x: &[Message]) -> usize {
    (0..=written.len().min(x.len()))
        .rev()
        .find(|&s| s == 0 || written.windows(s).any(|w| *w == x[x.len() - s..]))
        .unwrap_or(0)
}

/// Runs one corrupted-from-the-start simulation: both processes are forced
/// to the given register vectors before the first event fires (at event 0
/// nothing is in flight, so the fault is exactly "start from an arbitrary
/// state" — the textbook self-stabilization obligation).
fn run_from_corrupted_state<T, R>(
    transmitter: T,
    receiver: R,
    input: &[Message],
    t_regs: &[u64],
    r_regs: &[u64],
) -> Vec<Message>
where
    T: Corruptible + Clone,
    R: Corruptible + Clone,
    T: rstp::automata::Automaton<Action = rstp::core::RstpAction>,
    R: rstp::automata::Automaton<Action = rstp::core::RstpAction>,
{
    let p = params();
    let t_probe = transmitter.clone();
    let r_probe = receiver.clone();
    let mut settings = SimSettings::from_params(p);
    settings.max_events = 100_000;
    let sim = Simulation::new(transmitter, receiver, settings);
    let mut step = StepPolicy::AllSlow.build(p);
    let mut delivery = DeliveryPolicy::MaxDelay.build(TimeDelta::ZERO, p.d());
    let mut mutate = |_now: rstp::automata::Time,
                      ts: &mut T::State,
                      rs: &mut R::State,
                      _packets: &mut [rstp::core::Packet]| {
        *ts = t_probe.state_from_registers(t_regs);
        *rs = r_probe.state_from_registers(r_regs);
    };
    let run = sim
        .run_hooked(
            input,
            step.as_mut(),
            delivery.as_mut(),
            Some((0, &mut mutate)),
        )
        .unwrap_or_else(|e| panic!("T={t_regs:?} R={r_regs:?}: model violation: {e}"));
    assert_eq!(
        run.outcome,
        Outcome::Quiescent,
        "T={t_regs:?} R={r_regs:?}: never quiesced"
    );
    run.trace.written()
}

/// Cycles two enumerations against each other so every register vector of
/// each side is exercised at least once while both sides are corrupted in
/// every run.
fn paired<'a>(
    t_vecs: &'a [Vec<u64>],
    r_vecs: &'a [Vec<u64>],
) -> impl Iterator<Item = (&'a Vec<u64>, &'a Vec<u64>)> {
    (0..t_vecs.len().max(r_vecs.len()))
        .map(move |i| (&t_vecs[i % t_vecs.len()], &r_vecs[i % r_vecs.len()]))
}

#[test]
fn stab_stenning_converges_from_every_corrupted_register_state() {
    let p = params();
    let input: Vec<Message> = vec![true, false, true, true];
    let n = input.len();
    let timeout = Some(2);
    let t_probe = StabStenningTransmitter::new(p, input.clone(), timeout);
    let r_probe = StabStenningReceiver::new();
    let t_vecs = enumerate_register_vectors(&t_probe.registers());
    let r_vecs = enumerate_register_vectors(&r_probe.registers());
    let mut positive_floors = 0usize;
    for (t_regs, r_regs) in paired(&t_vecs, &r_vecs) {
        let written = run_from_corrupted_state(
            StabStenningTransmitter::new(p, input.clone(), timeout),
            StabStenningReceiver::new(),
            &input,
            t_regs,
            r_regs,
        );
        // Completeness floor: everything from the corrupted `next` on,
        // minus one slot for a corrupted-in pending ack and the two-slot
        // seam allowance (nothing is in flight at event 0).
        let next_c = t_regs[REG_STAB_T_NEXT] as usize;
        let pending = usize::from(r_regs[REG_STAB_R_PENDING_ACK] != stab_stenning_ack_alphabet());
        let floor = n.saturating_sub(next_c + pending + 2);
        let matched = end_aligned_suffix(&written, &input);
        assert!(
            matched >= floor,
            "T={t_regs:?} R={r_regs:?}: converged tail {matched} < floor {floor} \
             (wrote {written:?})"
        );
        // Stabilization effort: garbage is bounded by the preloaded buffer
        // plus one aliased duplicate per 4-message tag cycle.
        assert!(
            written.len() <= n + GARBAGE_MAX as usize + n / 4 + 1,
            "T={t_regs:?} R={r_regs:?}: {} writes for n={n}",
            written.len()
        );
        positive_floors += usize::from(floor > 0);
    }
    assert!(
        positive_floors > 0,
        "test is vacuous: no corrupted state had a positive floor"
    );
}

#[test]
fn stab_beta_converges_from_every_corrupted_register_state() {
    let p = params();
    let k = 2u64;
    let input: Vec<Message> = vec![true, false, false, true];
    let n = input.len();
    let t_probe = stab_beta_transmitter(p, k, &input).unwrap();
    let r_probe = StabBetaReceiver::new(p, k, n).unwrap();
    let t_vecs = enumerate_register_vectors(&t_probe.registers());
    let r_vecs = enumerate_register_vectors(&r_probe.registers());
    let b = stab_beta_bits_per_block(p, k) as usize;
    let mut positive_floors = 0usize;
    for (t_regs, r_regs) in paired(&t_vecs, &r_vecs) {
        let written = run_from_corrupted_state(
            stab_beta_transmitter(p, k, &input).unwrap(),
            StabBetaReceiver::new(p, k, n).unwrap(),
            &input,
            t_regs,
            r_regs,
        );
        // Same floor the rstp-check oracle enforces, with in-flight = 0.
        let j0 = t_regs[REG_BETA_T_BLOCK] as usize;
        let pending = r_regs[REG_BETA_R_PENDING_LEN] as usize;
        let floor = n.saturating_sub((j0 + 1) * b + pending + 2 * b);
        let matched = input_tail_occurrence(&written, &input);
        assert!(
            matched >= floor,
            "T={t_regs:?} R={r_regs:?}: converged tail {matched} < floor {floor} \
             (wrote {written:?})"
        );
        positive_floors += usize::from(floor > 0);
    }
    assert!(
        positive_floors > 0,
        "test is vacuous: no corrupted state had a positive floor"
    );
}

/// The acceptance gate from the issue: fifty seeded arbitrary-corruption
/// runs of each stabilizing variant, each judged by the full rstp-check
/// oracle suite — convergence floor *and* the documented
/// stabilization-time bound.
#[test]
fn fifty_seeded_corruptions_converge_within_the_documented_bound() {
    let p = TimingParams::from_ticks(1, 2, 4).unwrap();
    let input: Vec<Message> = vec![true, false, true, true, false, false, true, false];
    for kind in [
        ProtocolKind::StabStenning {
            timeout_steps: None,
        },
        ProtocolKind::StabBeta { k: 4 },
    ] {
        let mut applied = 0usize;
        for seed in 0..50u64 {
            let scenario = Scenario {
                kind,
                params: p,
                input: input.clone(),
                t_gaps: Vec::new(),
                r_gaps: Vec::new(),
                gap_fallback: p.c1().ticks(),
                data: ScriptedDelivery::new(Vec::new(), seed % (p.d().ticks() + 1)),
                ack: ScriptedDelivery::new(Vec::new(), 0),
                corruption: Some(CorruptionSpec {
                    at_event: 5 + seed,
                    seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                }),
            };
            let run = run_scenario(&scenario, 500_000);
            assert!(
                run.failure.is_none(),
                "{} seed {seed}: {}",
                kind.name(),
                run.failure.unwrap()
            );
            assert!(run.quiescent, "{} seed {seed}: not quiescent", kind.name());
            applied += 1;
        }
        assert_eq!(applied, 50);
    }
}
