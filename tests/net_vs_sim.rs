//! Differential test: the simulator is the oracle for the wire subsystem.
//!
//! The same input is transferred (a) through `rstp-sim`'s discrete-event
//! engine under the worst-case deterministic adversary pair and (b) over a
//! real `MemTransport` channel driven by the wall-clock real-time driver.
//! Both must produce exactly the input at the receiver, and the wall-clock
//! effort (in ticks) must respect the paper's lower bounds scaled by the
//! tick duration.
//!
//! Deterministic by construction: no real sockets, generous ticks, and the
//! channel delay model fixed to the maximum (FIFO at delay `d`), matching
//! the simulator's `MaxDelay` policy.

use rstp::core::{bounds, TimingParams};
use rstp::net::{run_transfer_mem, ChannelConfig, Pace, TransferConfig};
use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp::sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};
use std::time::Duration;

fn params() -> TimingParams {
    TimingParams::from_ticks(1, 2, 8).unwrap() // δ1 = 8, δ2 = 4
}

/// Runs `input` through the simulator under slow steps + max delay and
/// over a `MemTransport` pair with the matching wall-clock channel, then
/// checks both outputs and the effort relation.
fn differential(kind: ProtocolKind, n: usize, lower: Option<f64>) {
    let p = params();
    let input = random_input(n, 7);
    let tick = Duration::from_micros(400);

    let sim = run_configured(
        &RunConfig {
            kind,
            params: p,
            step: StepPolicy::AllSlow,
            delivery: DeliveryPolicy::MaxDelay,
            record_trace: true,
            ..RunConfig::default()
        },
        &input,
    )
    .unwrap_or_else(|e| panic!("sim {}: {e}", kind.name()));
    assert_eq!(sim.trace.written(), input, "sim {}", kind.name());

    let config = TransferConfig::new(p, tick, 7)
        .with_channel(ChannelConfig::max_delay(p, tick, 7))
        .with_pace(Pace::Slow);
    let net = run_transfer_mem(kind, &input, &config)
        .unwrap_or_else(|e| panic!("net {}: {e}", kind.name()));

    // Identical receiver output: net == sim == X.
    assert_eq!(net.output(), input, "net {}", kind.name());
    assert_eq!(
        net.output(),
        sim.trace.written(),
        "net vs sim {}",
        kind.name()
    );

    // Wall-clock effort obeys the paper's lower bound scaled by the tick.
    let wall_effort = net
        .transmitter
        .effort_ticks(n, tick)
        .expect("transmitter sent data");
    if let Some(lower) = lower {
        assert!(
            wall_effort >= lower,
            "{}: wall effort {wall_effort:.3} below lower bound {lower:.3}",
            kind.name()
        );
    }

    // Under the same worst-case channel the wall-clock run cannot beat the
    // simulator by more than scheduling noise (the driver can only be late,
    // never early); allow generous slack for sleep jitter.
    if let Some(sim_effort) = sim.metrics.effort(n) {
        assert!(
            wall_effort >= sim_effort * 0.9,
            "{}: wall effort {wall_effort:.3} implausibly beats sim {sim_effort:.3}",
            kind.name()
        );
    }
}

#[test]
fn beta_k4_matches_simulator_and_respects_thm_5_3() {
    let p = params();
    differential(
        ProtocolKind::Beta { k: 4 },
        48,
        Some(bounds::passive_lower(p, 4)),
    );
}

#[test]
fn gamma_k4_matches_simulator_and_respects_thm_5_6() {
    let p = params();
    differential(
        ProtocolKind::Gamma { k: 4 },
        32,
        Some(bounds::active_lower(p, 4)),
    );
}

#[test]
fn alpha_matches_simulator() {
    differential(ProtocolKind::Alpha, 24, None);
}

#[test]
fn net_and_sim_agree_across_protocol_zoo() {
    for kind in [
        ProtocolKind::Beta { k: 2 },
        ProtocolKind::Framed { k: 3 },
        ProtocolKind::Pipelined { k: 4, window: 2 },
        ProtocolKind::AltBit {
            timeout_steps: None,
        },
        ProtocolKind::Stenning {
            timeout_steps: None,
        },
    ] {
        differential(kind, 16, None);
    }
}
