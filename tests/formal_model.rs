//! Formal-model fidelity: the simulator's traces must be *replayable*
//! through the composed I/O automaton `A_t ∘ A_r ∘ C(P)` of paper §4 —
//! i.e. every simulated run is a genuine execution of the formal object,
//! not just of the simulator's private bookkeeping.

use rstp::automata::{ActionClass, Automaton, Compose};
use rstp::core::protocols::{
    AlphaReceiver, AlphaTransmitter, BetaReceiver, BetaTransmitter, GammaReceiver, GammaTransmitter,
};
use rstp::core::{Channel, InternalKind, Packet, RstpAction, TimingParams};
use rstp::sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp::sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};

fn params() -> TimingParams {
    TimingParams::from_ticks(1, 2, 6).unwrap()
}

/// The full concrete action alphabet touched by a k-ary protocol.
fn alphabet(k: u64) -> Vec<RstpAction> {
    let mut acts = vec![
        RstpAction::Write(false),
        RstpAction::Write(true),
        RstpAction::TransmitterInternal(InternalKind::Wait),
        RstpAction::TransmitterInternal(InternalKind::Idle),
        RstpAction::ReceiverInternal(InternalKind::Idle),
        RstpAction::Send(Packet::Ack(0)),
        RstpAction::Recv(Packet::Ack(0)),
    ];
    for s in 0..k {
        acts.push(RstpAction::Send(Packet::Data(s)));
        acts.push(RstpAction::Recv(Packet::Data(s)));
    }
    acts
}

/// Replays each trace action through a composed automaton, verifying every
/// step applies (the trace is an execution of the composite).
fn replay<M: Automaton<Action = RstpAction>>(system: &M, trace: &rstp::sim::SimTrace) {
    let mut state = system.initial_state();
    for (i, ev) in trace.events().iter().enumerate() {
        state = system
            .step(&state, &ev.action)
            .unwrap_or_else(|e| panic!("event {i} ({}) rejected: {e}", ev.action));
    }
}

#[test]
fn alpha_traces_replay_through_the_composed_automaton() {
    let p = params();
    let input = random_input(25, 3);
    let out = run_configured(
        &RunConfig {
            kind: ProtocolKind::Alpha,
            params: p,
            step: StepPolicy::Alternate,
            delivery: DeliveryPolicy::Random { seed: 9 },
            ..RunConfig::default()
        },
        &input,
    )
    .unwrap();
    let system = Compose::new(
        Compose::new(
            AlphaTransmitter::new(p, input.clone()),
            AlphaReceiver::new(),
        ),
        Channel::new(),
    );
    system.check_composable_on(alphabet(2)).unwrap();
    replay(&system, &out.trace);
}

#[test]
fn beta_traces_replay_through_the_composed_automaton() {
    let p = params();
    let k = 3;
    let input = random_input(31, 5);
    let out = run_configured(
        &RunConfig {
            kind: ProtocolKind::Beta { k },
            params: p,
            step: StepPolicy::Random { seed: 1 },
            delivery: DeliveryPolicy::ReverseBurst { burst: p.delta1() },
            ..RunConfig::default()
        },
        &input,
    )
    .unwrap();
    let system = Compose::new(
        Compose::new(
            BetaTransmitter::new(p, k, &input).unwrap(),
            BetaReceiver::new(p, k, input.len()).unwrap(),
        ),
        Channel::new(),
    );
    system.check_composable_on(alphabet(k)).unwrap();
    replay(&system, &out.trace);
}

#[test]
fn gamma_traces_replay_through_the_composed_automaton() {
    let p = params();
    let k = 4;
    let input = random_input(29, 7);
    let out = run_configured(
        &RunConfig {
            kind: ProtocolKind::Gamma { k },
            params: p,
            step: StepPolicy::SkewedPair {
                fast_transmitter: false,
            },
            delivery: DeliveryPolicy::IntervalBatch,
            ..RunConfig::default()
        },
        &input,
    )
    .unwrap();
    let system = Compose::new(
        Compose::new(
            GammaTransmitter::new(p, k, &input).unwrap(),
            GammaReceiver::new(p, k, input.len()).unwrap(),
        ),
        Channel::new(),
    );
    system.check_composable_on(alphabet(k)).unwrap();
    replay(&system, &out.trace);
}

#[test]
fn composite_classification_matches_the_paper() {
    // In A_t ∘ A_r ∘ C: send/recv become outputs of the composite (output
    // of one component); write stays an output; internals stay internal.
    let p = params();
    let system = Compose::new(
        Compose::new(
            GammaTransmitter::new(p, 2, &[true]).unwrap(),
            GammaReceiver::new(p, 2, 1).unwrap(),
        ),
        Channel::new(),
    );
    assert_eq!(
        system.classify(&RstpAction::Send(Packet::Data(0))),
        Some(ActionClass::Output)
    );
    assert_eq!(
        system.classify(&RstpAction::Recv(Packet::Data(0))),
        Some(ActionClass::Output) // channel output consumed by receiver input
    );
    assert_eq!(
        system.classify(&RstpAction::Send(Packet::Ack(0))),
        Some(ActionClass::Output)
    );
    assert_eq!(
        system.classify(&RstpAction::Write(true)),
        Some(ActionClass::Output)
    );
    assert_eq!(
        system.classify(&RstpAction::TransmitterInternal(InternalKind::Idle)),
        Some(ActionClass::Internal)
    );
}

#[test]
fn projections_recover_component_executions() {
    // Build a composite execution by replay, then project it onto the
    // transmitter (paper §2.1: α|A) and validate the projection against
    // the standalone transmitter automaton.
    use rstp::automata::Execution;

    let p = params();
    let input = random_input(9, 2);
    let out = run_configured(
        &RunConfig {
            kind: ProtocolKind::Alpha,
            params: p,
            ..RunConfig::default()
        },
        &input,
    )
    .unwrap();
    let transmitter = AlphaTransmitter::new(p, input.clone());
    let system = Compose::new(
        Compose::new(
            AlphaTransmitter::new(p, input.clone()),
            AlphaReceiver::new(),
        ),
        Channel::new(),
    );

    // Composite execution with recorded post-states.
    let mut exec = Execution::new(system.initial_state());
    let mut state = system.initial_state();
    for ev in out.trace.events() {
        state = system.step(&state, &ev.action).unwrap();
        exec.push(ev.action, state.clone());
    }
    exec.validate(&system).unwrap();

    // Project onto the transmitter component and validate standalone.
    let projected = exec.project(|a| transmitter.classify(a).is_some(), |s| s.0 .0.clone());
    projected.validate(&transmitter).unwrap();
    assert_eq!(
        projected.len(),
        out.trace
            .events()
            .iter()
            .filter(|e| transmitter.classify(&e.action).is_some())
            .count()
    );
}

#[test]
fn fairness_of_completed_runs() {
    // At the end of a completed alpha run the transmitter is quiescent —
    // its finite execution is fair in the paper's sense.
    use rstp::automata::{finite_fairness, Execution};

    let p = params();
    let input = random_input(6, 11);
    let out = run_configured(
        &RunConfig {
            kind: ProtocolKind::Alpha,
            params: p,
            ..RunConfig::default()
        },
        &input,
    )
    .unwrap();
    let transmitter = AlphaTransmitter::new(p, input.clone());
    let mut exec = Execution::new(transmitter.initial_state());
    let mut state = transmitter.initial_state();
    for ev in out.trace.events() {
        if transmitter.classify(&ev.action).is_some() {
            state = transmitter.step(&state, &ev.action).unwrap();
            exec.push(ev.action, state.clone());
        }
    }
    assert!(finite_fairness(&transmitter, &exec).is_fair());
}
