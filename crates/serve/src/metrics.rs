//! Per-shard and aggregate server metrics.
//!
//! Each shard keeps its own counters with no sharing on the data path;
//! the server merges [`ShardReport`]s into one [`ServeReport`] when the
//! shards join. Latency aggregation relies on
//! [`LatencyHistogram::merge`], and the summary quantiles use the
//! interpolated estimator so 256 sessions' worth of samples do not
//! collapse onto power-of-two bucket edges.

use rstp_core::{Message, SessionId};
use rstp_net::LatencyHistogram;
use std::time::Duration;

/// Outcome and accounting of one completed (or failed) session.
#[derive(Clone, Debug)]
pub struct SessionStats {
    /// The session's wire id.
    pub id: SessionId,
    /// Short protocol name (`ProtocolKind::name()`).
    pub protocol: String,
    /// Messages the session was expected to deliver.
    pub n: usize,
    /// The receiver's output sequence `Y`.
    pub written: Vec<Message>,
    /// Local steps this session took.
    pub steps: u64,
    /// Data/ack frames this session received.
    pub recvs: u64,
    /// Frames this session sent (acks for receiver sessions).
    pub sends: u64,
    /// Wall-clock tick of the last write, if any — effort numerator.
    pub last_write_tick: Option<u64>,
    /// Whether the session completed (grace period drained quietly after
    /// all `n` writes).
    pub completed: bool,
}

impl SessionStats {
    /// Receiver-side effort in ticks per message: `t(last-write)/n`.
    #[must_use]
    pub fn learn_effort_ticks(&self) -> Option<f64> {
        let last = self.last_write_tick?;
        (self.n > 0).then(|| last as f64 / self.n as f64)
    }
}

/// Everything one shard observed.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Sessions admitted to this shard.
    pub admitted: u64,
    /// Sessions that completed all writes and drained their grace period.
    pub completed: u64,
    /// Sessions still open when the shard stopped.
    pub unfinished: u64,
    /// Wake-ups later than their deadline by more than the slack.
    pub deadline_misses: u64,
    /// Observed per-session step gaps outside `[c1·tick − slack, c2·tick + slack]`.
    pub timing_violations: u64,
    /// Frames dropped because an admitted session's ingress queue was full.
    pub ingress_overflow: u64,
    /// Total automaton steps across all sessions.
    pub steps: u64,
    /// Frames sent by this shard's sessions.
    pub frames_sent: u64,
    /// Frames delivered to this shard's sessions.
    pub frames_received: u64,
    /// Per-packet delivery latency across the shard's sessions.
    pub latency: LatencyHistogram,
    /// Flight-recorder events this shard's ring accepted (0 when
    /// recording is off).
    pub events_recorded: u64,
    /// Flight-recorder events shed because the ring was full or
    /// contended — recording is strictly nonblocking, so saturation
    /// drops events rather than pacing the data path.
    pub events_dropped: u64,
    /// Sessions this shard adopted from a peer (handover) or from a
    /// crash-recovery resume.
    pub adopted: u64,
    /// Sessions this shard handed over to a peer (drained, snapshot
    /// acknowledged, redirected).
    pub handed_off: u64,
    /// Handovers that exhausted their retries and fell back to local
    /// resume — the session kept running here.
    pub handover_failed: u64,
    /// Provisional adoptions dropped because no REDIRECT arrived before
    /// the TTL (the source resumed locally; dropping prevents a
    /// dual-active session).
    pub handover_aborted: u64,
    /// Timer-wheel deadlines that fired for a paused (mid-handover)
    /// session and were reported as migrated rather than stepped.
    pub deadlines_migrated: u64,
    /// Duplicate frames re-acknowledged for already-completed sessions
    /// (the retired-ghost path — a lost final ack or a scheduler-stalled
    /// client retransmitting past the session's grace).
    pub reacked: u64,
    /// True when the shard stopped via an injected crash fault (live
    /// sessions discarded, completed verdicts kept).
    pub crashed: bool,
    /// Per-session outcomes.
    pub sessions: Vec<SessionStats>,
}

impl ShardReport {
    /// An empty report for shard `shard`.
    #[must_use]
    pub fn new(shard: usize) -> Self {
        ShardReport {
            shard,
            admitted: 0,
            completed: 0,
            unfinished: 0,
            deadline_misses: 0,
            timing_violations: 0,
            ingress_overflow: 0,
            steps: 0,
            frames_sent: 0,
            frames_received: 0,
            latency: LatencyHistogram::new(),
            events_recorded: 0,
            events_dropped: 0,
            adopted: 0,
            handed_off: 0,
            handover_failed: 0,
            handover_aborted: 0,
            deadlines_migrated: 0,
            reacked: 0,
            crashed: false,
            sessions: Vec::new(),
        }
    }
}

/// The server-wide aggregate over all shards.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// Sessions rejected at admission (table full or queue full on first
    /// contact) — backpressure's reject-new-session policy at work.
    pub rejected_sessions: u64,
    /// The raw session ids rejected at admission, so a verifier can
    /// tell a planned-but-rejected session (expected to produce no
    /// output) from one lost in an unrecovered crash (a failure).
    pub rejected_ids: Vec<u32>,
    /// Frames that arrived for no admitted session and were dropped.
    pub orphan_frames: u64,
    /// Frames that failed strict decoding at the socket and were dropped.
    pub decode_errors: u64,
    /// Shard threads restarted by the fault plan.
    pub restarts: u64,
    /// Shard crashes (scripted kills and injected panics) executed.
    pub crashes: u64,
    /// Live sessions re-created from the flight recording across all
    /// restarts.
    pub recovered_sessions: u64,
    /// Live sessions a restart could not re-create (no snapshot, or the
    /// replay fell short of the acknowledged floor) — each one is lost.
    pub unrecoverable_sessions: u64,
    /// Ingress frames read and discarded inside a scripted `hubdrop`
    /// fault window.
    pub hub_dropped_frames: u64,
    /// Wall-clock duration of the whole run.
    pub wall_elapsed: Duration,
}

impl ServeReport {
    /// Total admitted sessions.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.shards.iter().map(|s| s.admitted).sum()
    }

    /// Total completed sessions.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed).sum()
    }

    /// Total deadline misses.
    #[must_use]
    pub fn deadline_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.deadline_misses).sum()
    }

    /// Total timing violations.
    #[must_use]
    pub fn timing_violations(&self) -> u64 {
        self.shards.iter().map(|s| s.timing_violations).sum()
    }

    /// Total ingress-queue overflow drops (admitted sessions only).
    #[must_use]
    pub fn ingress_overflow(&self) -> u64 {
        self.shards.iter().map(|s| s.ingress_overflow).sum()
    }

    /// Total flight-recorder events accepted.
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.shards.iter().map(|s| s.events_recorded).sum()
    }

    /// Total flight-recorder events shed under saturation.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.events_dropped).sum()
    }

    /// Total sessions adopted across shards (handover + resume).
    #[must_use]
    pub fn adopted(&self) -> u64 {
        self.shards.iter().map(|s| s.adopted).sum()
    }

    /// Total sessions handed over between shards.
    #[must_use]
    pub fn handed_off(&self) -> u64 {
        self.shards.iter().map(|s| s.handed_off).sum()
    }

    /// Total handovers that fell back to local resume.
    #[must_use]
    pub fn handovers_failed(&self) -> u64 {
        self.shards.iter().map(|s| s.handover_failed).sum()
    }

    /// Total provisional adoptions dropped at TTL.
    #[must_use]
    pub fn handovers_aborted(&self) -> u64 {
        self.shards.iter().map(|s| s.handover_aborted).sum()
    }

    /// Total deadlines reported as migrated across a handover.
    #[must_use]
    pub fn deadlines_migrated(&self) -> u64 {
        self.shards.iter().map(|s| s.deadlines_migrated).sum()
    }

    /// Total duplicate frames re-acknowledged after completion.
    #[must_use]
    pub fn reacked(&self) -> u64 {
        self.shards.iter().map(|s| s.reacked).sum()
    }

    /// All shards' latency histograms merged.
    #[must_use]
    pub fn latency(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::new();
        for s in &self.shards {
            all.merge(&s.latency);
        }
        all
    }

    /// Messages delivered per wall-clock second across all sessions.
    #[must_use]
    pub fn throughput_msgs_per_sec(&self) -> f64 {
        let written: usize = self
            .shards
            .iter()
            .flat_map(|s| s.sessions.iter())
            .map(|s| s.written.len())
            .sum();
        let secs = self.wall_elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        written as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(n: usize, last: Option<u64>) -> SessionStats {
        SessionStats {
            id: SessionId::new(1),
            protocol: "beta(k=4)".into(),
            n,
            written: vec![true; n],
            steps: 10,
            recvs: 5,
            sends: 0,
            last_write_tick: last,
            completed: true,
        }
    }

    #[test]
    fn learn_effort_divides_by_n() {
        assert_eq!(stats(4, Some(40)).learn_effort_ticks(), Some(10.0));
        assert_eq!(stats(4, None).learn_effort_ticks(), None);
        assert_eq!(stats(0, Some(40)).learn_effort_ticks(), None);
    }

    #[test]
    fn aggregate_sums_shards_and_merges_latency() {
        let mut a = ShardReport::new(0);
        a.admitted = 3;
        a.completed = 3;
        a.deadline_misses = 1;
        a.latency.record(10);
        a.sessions.push(stats(2, Some(8)));
        let mut b = ShardReport::new(1);
        b.admitted = 2;
        b.completed = 1;
        b.timing_violations = 2;
        b.latency.record(1000);
        b.sessions.push(stats(3, Some(9)));
        let report = ServeReport {
            shards: vec![a, b],
            rejected_sessions: 4,
            rejected_ids: vec![6, 7, 8, 9],
            orphan_frames: 0,
            decode_errors: 0,
            restarts: 0,
            crashes: 0,
            recovered_sessions: 0,
            unrecoverable_sessions: 0,
            hub_dropped_frames: 0,
            wall_elapsed: Duration::from_secs(1),
        };
        assert_eq!(report.admitted(), 5);
        assert_eq!(report.completed(), 4);
        assert_eq!(report.deadline_misses(), 1);
        assert_eq!(report.timing_violations(), 2);
        assert_eq!(report.latency().count(), 2);
        assert_eq!(report.latency().max_micros(), Some(1000));
        // 2 + 3 messages written over one second.
        assert!((report.throughput_msgs_per_sec() - 5.0).abs() < 1e-9);
    }
}
