//! The shard worker: one thread, one slice of the session table, one
//! timer wheel.
//!
//! A shard owns every session hashed to it — no other thread touches
//! their automata, so the data path takes no locks. Ingress arrives on a
//! *bounded* channel (the server drops, never blocks, when it is full:
//! an admitted session may lose a frame, which the protocols already
//! tolerate, but it is never stalled past its `c2` window by a slow
//! neighbour). Pacing uses the hierarchical [`TimerWheel`] instead of
//! one sleeping thread per session; the miss/violation accounting
//! mirrors `rstp_net`'s single-session driver exactly, deadline by
//! deadline, so a 256-session swarm is held to the same `[c1, c2]`
//! standard as a lone endpoint.

use crate::endpoint::{receiver_endpoint, SessionEndpoint, StepEffect};
use crate::metrics::{SessionStats, ShardReport};
use crate::server::{EgressSink, PumpMsg, SessionSpec};
use crate::snapshot::SessionSnapshot;
use crate::wheel::TimerWheel;
use rstp_core::{SessionId, TimingParams};
use rstp_net::{
    codec_for, decode_control, encode_control, ControlFrame, ControlKind, Frame, FrameBuf,
    NetError, Pace, TickClock, WireCodec,
};
use rstp_record::{Event, ShardRecorder};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A recovered session the server hands a restarted shard: the spec, a
/// restored endpoint (snapshot + event replay already applied), and the
/// outgoing sequence number to continue from.
pub struct ResumeSession {
    pub(crate) spec: SessionSpec,
    pub(crate) endpoint: Box<dyn SessionEndpoint>,
    pub(crate) seq: u64,
}

/// What the server sends a shard over its bounded ingress queue.
pub enum ShardMsg {
    /// Take ownership of a new session.
    Admit(SessionSpec),
    /// A decoded frame for a session this shard owns.
    Frame(SessionId, Frame),
    /// An encoded wire-v3 control frame: the pair-wise handover protocol
    /// (DRAIN → SNAPSHOT → SNAPSHOT_ACK → REDIRECT).
    Control(Vec<u8>),
    /// Injected fault: stop as if the shard's process segment died —
    /// live sessions are discarded (completed verdicts survive) and the
    /// thread returns its report with `crashed` set.
    Crash,
    /// Injected fault: panic the shard thread outright.
    Panic,
    /// Crash recovery: adopt a session re-created from the flight
    /// recording.
    Resume(Box<ResumeSession>),
    /// Finish up: account remaining sessions as unfinished and return.
    Shutdown,
}

/// First handover retry after this many step gaps without an ack.
const HANDOVER_BASE_BACKOFF_GAPS: u64 = 8;
/// Retry backoff doubles per attempt, capped at this many gaps.
const HANDOVER_MAX_BACKOFF_GAPS: u64 = 64;
/// Snapshot attempts before the source gives up and resumes locally.
const HANDOVER_MAX_ATTEMPTS: u32 = 4;
/// A provisionally adopted session is dropped if no REDIRECT activates
/// it within this many step gaps (the source has resumed locally by
/// then; keeping the copy would risk a dual-active session).
const PROVISIONAL_TTL_GAPS: u64 = 512;

/// An in-flight handover on the source side.
struct PendingHandover {
    idx: usize,
    session: u32,
    target: usize,
    attempts: u32,
    backoff_gaps: u64,
    next_retry_tick: u64,
}

/// Static configuration a shard runs under (crate-internal; the public
/// surface is [`crate::ServeConfig`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ShardParams {
    pub index: usize,
    pub params: TimingParams,
    pub tick: Duration,
    pub pace: Pace,
    pub slack: Duration,
    pub grace_ticks: u64,
    pub batch: usize,
}

/// One live session owned by a shard.
struct Live {
    spec: SessionSpec,
    endpoint: Box<dyn SessionEndpoint>,
    codec: WireCodec,
    seq: u64,
    /// Frames delivered but not yet applied — they become `recv` inputs
    /// at the session's next paced step, mirroring the driver's
    /// drain-before-step ordering.
    pending: VecDeque<Frame>,
    /// Mid-handover: deadlines are reported as migrated, not stepped.
    paused: bool,
    prev_wake: Option<Instant>,
    idle_streak: u64,
    steps: u64,
    recvs: u64,
    sends: u64,
    last_write_tick: Option<u64>,
    /// Injected-fault builds only: one in-flight frame held back to
    /// overlap adjacent δ2 bursts (see [`inject_defer`]).
    #[cfg(rstp_check_inject_ack_bug)]
    defer: Option<(u8, Frame)>,
}

impl Live {
    /// The session's full state as a handover/recovery snapshot.
    fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            session: self.spec.id.raw(),
            kind: self.spec.kind,
            n: u32::try_from(self.spec.n).unwrap_or(u32::MAX),
            seq: self.seq,
            written: self.endpoint.written().to_vec(),
            state: self.endpoint.state_bytes(),
        }
    }

    fn stats(&self, completed: bool) -> SessionStats {
        SessionStats {
            id: self.spec.id,
            protocol: self.spec.kind.name(),
            n: self.spec.n,
            written: self.endpoint.written().to_vec(),
            steps: self.steps,
            recvs: self.recvs,
            sends: self.sends,
            last_write_tick: self.last_write_tick,
            completed,
        }
    }
}

/// Runs one shard until it is told to shut down (or the server side of
/// its queue disappears). Returns the shard's full report.
pub(crate) fn run_shard(
    sp: ShardParams,
    clock: TickClock,
    rx: Receiver<ShardMsg>,
    mut egress: Box<dyn EgressSink>,
    completed_total: Arc<AtomicU64>,
    recorder: Option<ShardRecorder>,
    pump: Sender<PumpMsg>,
) -> Result<ShardReport, NetError> {
    #[cfg(rstp_check_inject_ack_bug)]
    let inject_delta2 = sp.params.delta2();
    let gap_ticks = sp.pace.gap_ticks(sp.params).max(1);
    let tick_micros = sp.tick.as_micros().max(1) as u64;
    let lo = (sp.tick * u32::try_from(sp.params.c1().ticks()).unwrap_or(u32::MAX))
        .saturating_sub(sp.slack);
    let hi = sp.tick * u32::try_from(sp.params.c2().ticks()).unwrap_or(u32::MAX) + sp.slack;
    let idle_steps_needed = sp.grace_ticks.div_ceil(gap_ticks).max(1);

    let mut report = ShardReport::new(sp.index);
    let mut wheel: TimerWheel<usize> = TimerWheel::new();
    let mut sessions: Vec<Option<Live>> = Vec::new();
    let mut by_id: HashMap<u32, usize> = HashMap::new();
    let mut due: Vec<(u64, usize)> = Vec::new();
    let mut out_buf: Vec<(u32, FrameBuf)> = Vec::new();
    // Handover bookkeeping, both directions. Source side: sessions
    // paused awaiting a SNAPSHOT_ACK. Target side: provisionally adopted
    // sessions awaiting their REDIRECT, with a drop deadline.
    let mut pending_handover: Vec<PendingHandover> = Vec::new();
    let mut provisional: Vec<(usize, u64)> = Vec::new();
    // Completed sessions, kept as ghost re-ackers: a late duplicate
    // still gets its acknowledgement (the paper's receiver never
    // terminates), so a client whose final ack was lost — or whose
    // thread the scheduler stalled past this shard's quiet grace — can
    // still finish. Ghosts hold no wheel deadlines and cost nothing
    // until a frame actually arrives for them.
    let mut retired: HashMap<u32, Live> = HashMap::new();
    let now_tick = |clock: &TickClock| clock.now_micros() / tick_micros;

    'run: loop {
        // Sleep until the next deadline (or new work arrives). The
        // channel doubles as the wake-up: one blocking point serves both
        // ingress and pacing.
        let timeout = match wheel.next_due() {
            Some(t) => clock
                .instant_of_tick(t)
                .saturating_duration_since(Instant::now()),
            None => sp.tick * u32::try_from(gap_ticks).unwrap_or(u32::MAX),
        };
        let mut first = match rx.recv_timeout(timeout) {
            Ok(msg) => Some(msg),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break 'run,
        };
        while let Some(msg) = first.take() {
            match msg {
                ShardMsg::Admit(spec) => {
                    let endpoint = receiver_endpoint(spec.kind, sp.params, spec.n)?;
                    let codec = codec_for(spec.kind)?;
                    let live = Live {
                        spec,
                        endpoint,
                        codec,
                        seq: 0,
                        pending: VecDeque::new(),
                        paused: false,
                        prev_wake: None,
                        idle_streak: 0,
                        steps: 0,
                        recvs: 0,
                        sends: 0,
                        last_write_tick: None,
                        #[cfg(rstp_check_inject_ack_bug)]
                        defer: None,
                    };
                    let idx = insert_live(&mut sessions, live);
                    by_id.insert(spec.id.raw(), idx);
                    // First step strictly in the future, like the
                    // driver's epoch anchor — an overdue first deadline
                    // would book a spurious miss at admission.
                    wheel.schedule(now_tick(&clock) + 1, idx);
                    report.admitted += 1;
                    if let Some(r) = &recorder {
                        r.record_durable(Event::Admit {
                            at_micros: clock.now_micros(),
                            session: spec.id.raw(),
                            kind: spec.kind,
                            n: u32::try_from(spec.n).unwrap_or(u32::MAX),
                        });
                        // Snapshot-on-admit: the recovery anchor a
                        // restarted shard replays forward from.
                        if let Some(live) = sessions.get(idx).and_then(Option::as_ref) {
                            r.record_durable(Event::Snapshot {
                                at_micros: clock.now_micros(),
                                session: spec.id.raw(),
                                state: live.snapshot().encode(),
                            });
                        }
                    }
                }
                ShardMsg::Frame(id, frame) => {
                    if let Some(&idx) = by_id.get(&id.raw()) {
                        if let Some(live) = sessions.get_mut(idx).and_then(Option::as_mut) {
                            live.pending.push_back(frame);
                        }
                    } else if let Some(ghost) = retired.get_mut(&id.raw()) {
                        // A duplicate for a completed session: re-ack
                        // event-driven. The session has no deadlines
                        // left, and answering a retransmission is the
                        // channel's business, not the [c1, c2] step
                        // schedule's. A ghost must never take down the
                        // shard, so automaton errors end the exchange
                        // instead of propagating.
                        if ghost.endpoint.apply_recv(frame.packet).is_ok() {
                            for _ in 0..4 {
                                match ghost.endpoint.step() {
                                    Ok(StepEffect::Sent(p)) => {
                                        let stamp = clock.now_micros();
                                        let bytes = ghost.codec.encode_with_session(
                                            p,
                                            ghost.seq,
                                            stamp,
                                            ghost.spec.id,
                                        );
                                        ghost.seq += 1;
                                        out_buf.push((ghost.spec.id.raw(), bytes.into()));
                                        report.reacked += 1;
                                    }
                                    Ok(StepEffect::Waited) => {}
                                    Ok(_) | Err(_) => break,
                                }
                            }
                        }
                    }
                    // Unknown id: trailing traffic for a session that
                    // completed on another epoch or shard. Dropped, like
                    // the driver ignoring frames after its grace period.
                }
                ShardMsg::Control(bytes) => {
                    handle_control(
                        &bytes,
                        &sp,
                        &clock,
                        &pump,
                        &recorder,
                        &mut report,
                        &mut sessions,
                        &mut by_id,
                        &mut wheel,
                        &mut pending_handover,
                        &mut provisional,
                        now_tick(&clock),
                        gap_ticks,
                    );
                }
                ShardMsg::Resume(resume) => {
                    let rs = *resume;
                    let codec = codec_for(rs.spec.kind)?;
                    let live = Live {
                        spec: rs.spec,
                        endpoint: rs.endpoint,
                        codec,
                        seq: rs.seq,
                        pending: VecDeque::new(),
                        paused: false,
                        prev_wake: None,
                        idle_streak: 0,
                        steps: 0,
                        recvs: 0,
                        sends: 0,
                        last_write_tick: None,
                        #[cfg(rstp_check_inject_ack_bug)]
                        defer: None,
                    };
                    let idx = insert_live(&mut sessions, live);
                    by_id.insert(rs.spec.id.raw(), idx);
                    wheel.schedule(now_tick(&clock) + 1, idx);
                    report.adopted += 1;
                    if let Some(r) = &recorder {
                        if let Some(live) = sessions.get(idx).and_then(Option::as_ref) {
                            // A fresh anchor, so a *second* crash can
                            // recover without replaying the first life.
                            r.record_durable(Event::Admit {
                                at_micros: clock.now_micros(),
                                session: rs.spec.id.raw(),
                                kind: rs.spec.kind,
                                n: u32::try_from(rs.spec.n).unwrap_or(u32::MAX),
                            });
                            r.record_durable(Event::Snapshot {
                                at_micros: clock.now_micros(),
                                session: rs.spec.id.raw(),
                                state: live.snapshot().encode(),
                            });
                        }
                    }
                }
                ShardMsg::Crash => {
                    // The scripted crash: drop live sessions without
                    // verdicts, keep everything already completed, and
                    // return. Recovery is the server's job.
                    report.crashed = true;
                    sessions.clear();
                    by_id.clear();
                    retired.clear();
                    break 'run;
                }
                ShardMsg::Panic => {
                    panic!("rstp-serve shard {}: injected panic fault", sp.index);
                }
                ShardMsg::Shutdown => break 'run,
            }
            first = rx.try_recv().ok();
        }

        // Handover housekeeping: resend unacked snapshots (capped
        // exponential backoff, then local resume) and drop provisional
        // adoptions whose REDIRECT never came.
        sweep_handover(
            &sp,
            &pump,
            &mut report,
            &mut sessions,
            &mut by_id,
            &mut wheel,
            &mut pending_handover,
            &mut provisional,
            now_tick(&clock),
            gap_ticks,
        );

        // Fire every deadline up to now.
        wheel.advance(now_tick(&clock), &mut due);
        for (due_tick, idx) in due.drain(..) {
            let Some(live) = sessions.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };

            // A deadline for a mid-handover session is *migrated*: the
            // target re-anchors its own schedule on activation, so the
            // deadline is accounted for, never silently dropped — and
            // never stepped here, which would fork the automaton.
            if live.paused {
                report.deadlines_migrated += 1;
                continue;
            }

            // Accounting identical to the single-session driver: a late
            // wake is one deadline miss and poisons the adjacent gap
            // measurements; a punctual wake's distance from the previous
            // punctual wake must sit inside [c1·tick − slack, c2·tick + slack].
            let wake = Instant::now();
            let overshoot = wake.saturating_duration_since(clock.instant_of_tick(due_tick));
            let late = overshoot > sp.slack;
            if late {
                report.deadline_misses += 1;
            } else if let Some(prev) = live.prev_wake {
                let observed = wake.saturating_duration_since(prev);
                if observed < lo || observed > hi {
                    report.timing_violations += 1;
                }
            }
            live.prev_wake = (!late).then_some(wake);
            if let Some(r) = &recorder {
                r.record(Event::WheelPop {
                    at_micros: clock.now_micros(),
                    session: live.spec.id.raw(),
                    due_tick,
                    late,
                });
                if late {
                    r.record(Event::DeadlineMiss {
                        at_micros: clock.now_micros(),
                        session: live.spec.id.raw(),
                        due_tick,
                    });
                }
            }

            #[cfg(rstp_check_inject_ack_bug)]
            inject_defer(live, inject_delta2);

            // Drain delivered frames as recv inputs before the local
            // step (inputs are channel outputs, not clocked).
            let received_any = !live.pending.is_empty();
            while let Some(frame) = live.pending.pop_front() {
                if let Some(r) = &recorder {
                    // Re-encode canonically: byte-identical to the wire,
                    // so the recording carries full frames, not summaries.
                    let wire = live.codec.encode_with_session(
                        frame.packet,
                        frame.seq,
                        frame.sent_at_micros,
                        live.spec.id,
                    );
                    r.record(Event::Rx {
                        at_micros: clock.now_micros(),
                        session: live.spec.id.raw(),
                        wire: wire.to_vec(),
                    });
                }
                live.endpoint.apply_recv(frame.packet)?;
                report
                    .latency
                    .record(clock.now_micros().saturating_sub(frame.sent_at_micros));
                live.recvs += 1;
                report.frames_received += 1;
            }

            // The unique enabled local action.
            let effect = live.endpoint.step()?;
            if effect != StepEffect::Quiescent {
                live.steps += 1;
                report.steps += 1;
            }
            let mut productive = received_any;
            match effect {
                StepEffect::Sent(p) => {
                    let stamp = clock.now_micros();
                    let bytes = live
                        .codec
                        .encode_with_session(p, live.seq, stamp, live.spec.id);
                    if let Some(r) = &recorder {
                        r.record(Event::Tx {
                            at_micros: stamp,
                            session: live.spec.id.raw(),
                            wire: bytes.to_vec(),
                        });
                    }
                    live.seq += 1;
                    out_buf.push((live.spec.id.raw(), bytes.into()));
                    live.sends += 1;
                    productive = true;
                }
                StepEffect::Wrote(m) => {
                    live.last_write_tick = Some(due_tick);
                    if let Some(r) = &recorder {
                        // The acknowledged-output ledger: cumulative
                        // count plus the bit, so the no-acknowledged-
                        // loss oracle can check Y's *content* prefix
                        // across a crash, not just its length.
                        r.record(Event::Write {
                            at_micros: clock.now_micros(),
                            session: live.spec.id.raw(),
                            written: live.endpoint.written().len() as u64,
                            bit: m,
                        });
                    }
                    productive = true;
                }
                StepEffect::Waited => productive = true,
                StepEffect::Idled | StepEffect::Quiescent => {}
            }

            // Completion: all writes in and a full grace period of quiet.
            let writes_done = live.endpoint.written().len() >= live.spec.n;
            if productive || !writes_done {
                live.idle_streak = 0;
            } else {
                live.idle_streak += 1;
                if live.idle_streak >= idle_steps_needed {
                    // `live` borrows this same slot, so it is occupied;
                    // a vacant slot just means nothing to retire.
                    let Some(done) = sessions.get_mut(idx).and_then(Option::take) else {
                        continue;
                    };
                    by_id.remove(&done.spec.id.raw());
                    report.completed += 1;
                    let stats = done.stats(true);
                    if let Some(r) = &recorder {
                        r.record_durable(Event::Verdict {
                            at_micros: clock.now_micros(),
                            session: stats.id.raw(),
                            completed: true,
                            written: stats.written.clone(),
                        });
                    }
                    report.sessions.push(stats);
                    completed_total.fetch_add(1, Ordering::Relaxed);
                    // Retire, don't discard: the paper's receiver never
                    // stops acknowledging, and the final ack can be
                    // lost or its client stalled past our grace by the
                    // scheduler. Late duplicates find the ghost below.
                    retired.insert(done.spec.id.raw(), done);
                    continue;
                }
            }

            // Reschedule; after a stall longer than a whole gap,
            // re-anchor from now rather than replaying missed deadlines
            // back-to-back faster than c1.
            let mut next = due_tick + gap_ticks;
            let now = now_tick(&clock);
            if now > next + gap_ticks {
                next = now;
                live.prev_wake = None;
            }
            wheel.schedule(next, idx);
        }

        // Flush egress in batches of B frames per call.
        for chunk in out_buf.chunks(sp.batch.max(1)) {
            report.frames_sent += egress.send_batch(chunk)? as u64;
        }
        out_buf.clear();
    }

    // Account whatever is still open.
    for slot in sessions.into_iter().flatten() {
        report.unfinished += 1;
        let stats = slot.stats(false);
        if let Some(r) = &recorder {
            r.record_durable(Event::Verdict {
                at_micros: clock.now_micros(),
                session: stats.id.raw(),
                completed: false,
                written: stats.written.clone(),
            });
        }
        report.sessions.push(stats);
    }
    if let Some(r) = &recorder {
        report.events_recorded = r.recorded();
        report.events_dropped = r.dropped();
    }
    Ok(report)
}

/// Places `live` in the first free slot (or a new one) and returns its
/// index.
fn insert_live(sessions: &mut Vec<Option<Live>>, live: Live) -> usize {
    let idx = match sessions.iter().position(Option::is_none) {
        Some(free) => free,
        None => {
            sessions.push(None);
            sessions.len() - 1
        }
    };
    if let Some(slot) = sessions.get_mut(idx) {
        *slot = Some(live);
    }
    idx
}

/// The shard-index payload (a big-endian `u32`) every handover frame
/// carries.
fn shard_payload(shard: usize) -> Vec<u8> {
    u32::try_from(shard)
        .unwrap_or(u32::MAX)
        .to_be_bytes()
        .to_vec()
}

fn payload_shard(payload: &[u8]) -> Option<usize> {
    payload
        .get(..4)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize)
}

/// Ships one SNAPSHOT frame (source shard, then the session snapshot)
/// toward `target` via the pump. `false` when the snapshot exceeds the
/// control payload cap or the pump is gone — the caller falls back to
/// local resume.
fn send_snapshot(pump: &Sender<PumpMsg>, src: usize, target: usize, live: &Live) -> bool {
    let mut payload = shard_payload(src);
    payload.extend_from_slice(&live.snapshot().encode());
    let frame = ControlFrame {
        kind: ControlKind::Snapshot,
        session: live.spec.id,
        payload,
    };
    match encode_control(&frame) {
        Ok(bytes) => pump
            .send(PumpMsg::ToShard {
                shard: target,
                bytes,
            })
            .is_ok(),
        Err(_) => false,
    }
}

fn send_ack(pump: &Sender<PumpMsg>, own: usize, src: usize, session: u32) {
    let frame = ControlFrame {
        kind: ControlKind::SnapshotAck,
        session: SessionId::new(session),
        payload: shard_payload(own),
    };
    if let Ok(bytes) = encode_control(&frame) {
        let _ = pump.send(PumpMsg::ToShard { shard: src, bytes });
    }
}

/// One incoming control frame: the four corners of the handover
/// protocol. Corrupt or stale frames are ignored — the retry/TTL
/// machinery recovers, and a shard must never die on peer input.
#[allow(clippy::too_many_arguments)]
fn handle_control(
    bytes: &[u8],
    sp: &ShardParams,
    clock: &TickClock,
    pump: &Sender<PumpMsg>,
    recorder: &Option<ShardRecorder>,
    report: &mut ShardReport,
    sessions: &mut Vec<Option<Live>>,
    by_id: &mut HashMap<u32, usize>,
    wheel: &mut TimerWheel<usize>,
    pending_handover: &mut Vec<PendingHandover>,
    provisional: &mut Vec<(usize, u64)>,
    now: u64,
    gap_ticks: u64,
) {
    let Ok(frame) = decode_control(bytes) else {
        return;
    };
    match frame.kind {
        ControlKind::Drain => {
            // Source side: pause every live session and offer each to
            // the target. Paused sessions stop stepping immediately;
            // their deadlines are reported as migrated.
            let Some(target) = payload_shard(&frame.payload) else {
                return;
            };
            if target == sp.index {
                return;
            }
            for (idx, slot) in sessions.iter_mut().enumerate() {
                let Some(live) = slot.as_mut() else { continue };
                if live.paused {
                    continue;
                }
                live.paused = true;
                if send_snapshot(pump, sp.index, target, live) {
                    pending_handover.push(PendingHandover {
                        idx,
                        session: live.spec.id.raw(),
                        target,
                        attempts: 1,
                        backoff_gaps: HANDOVER_BASE_BACKOFF_GAPS,
                        next_retry_tick: now + HANDOVER_BASE_BACKOFF_GAPS * gap_ticks,
                    });
                } else {
                    // Oversized snapshot or dead pump: keep running
                    // here rather than stranding the session.
                    live.paused = false;
                    report.handover_failed += 1;
                }
            }
        }
        ControlKind::Snapshot => {
            // Target side: restore a provisional copy and acknowledge.
            // It stays paused (frames queue, deadlines don't fire) until
            // the REDIRECT confirms the source has retired its copy.
            let Some(src) = payload_shard(&frame.payload) else {
                return;
            };
            let Ok(snap) = SessionSnapshot::decode(&frame.payload[4..]) else {
                return;
            };
            if snap.session != frame.session.raw() {
                return;
            }
            if by_id.contains_key(&snap.session) {
                // A retry of a snapshot we already hold: re-ack.
                send_ack(pump, sp.index, src, snap.session);
                return;
            }
            let spec = SessionSpec {
                id: SessionId::new(snap.session),
                kind: snap.kind,
                n: snap.n as usize,
            };
            let Ok(endpoint) = crate::endpoint::restore_receiver_endpoint(
                snap.kind,
                sp.params,
                spec.n,
                &snap.state,
                snap.written.clone(),
            ) else {
                return;
            };
            let Ok(codec) = codec_for(snap.kind) else {
                return;
            };
            let live = Live {
                spec,
                endpoint,
                codec,
                seq: snap.seq,
                pending: VecDeque::new(),
                paused: true,
                prev_wake: None,
                idle_streak: 0,
                steps: 0,
                recvs: 0,
                sends: 0,
                last_write_tick: None,
                #[cfg(rstp_check_inject_ack_bug)]
                defer: None,
            };
            let idx = insert_live(sessions, live);
            by_id.insert(snap.session, idx);
            provisional.push((idx, now + PROVISIONAL_TTL_GAPS * gap_ticks));
            if let Some(r) = recorder {
                if let Some(live) = sessions.get(idx).and_then(Option::as_ref) {
                    // Anchor the adopted session in *this* shard's
                    // recording, so a later crash here recovers it.
                    r.record_durable(Event::Admit {
                        at_micros: clock.now_micros(),
                        session: snap.session,
                        kind: snap.kind,
                        n: snap.n,
                    });
                    r.record_durable(Event::Snapshot {
                        at_micros: clock.now_micros(),
                        session: snap.session,
                        state: live.snapshot().encode(),
                    });
                }
            }
            send_ack(pump, sp.index, src, snap.session);
        }
        ControlKind::SnapshotAck => {
            // Source side: the target holds the session. Retire our
            // copy silently (its Y continues over there — no verdict,
            // no stats) and publish the REDIRECT through the pump so
            // routing flips atomically with the activation.
            let Some(pos) = pending_handover
                .iter()
                .position(|p| p.session == frame.session.raw())
            else {
                return; // stale ack (already resumed locally)
            };
            let p = pending_handover.swap_remove(pos);
            let retire = sessions
                .get(p.idx)
                .and_then(Option::as_ref)
                .is_some_and(|l| l.paused && l.spec.id.raw() == p.session);
            if retire {
                if let Some(slot) = sessions.get_mut(p.idx) {
                    *slot = None;
                }
                by_id.remove(&p.session);
                report.handed_off += 1;
            }
            let redirect = ControlFrame {
                kind: ControlKind::Redirect,
                session: SessionId::new(p.session),
                payload: shard_payload(p.target),
            };
            if let Ok(bytes) = encode_control(&redirect) {
                let _ = pump.send(PumpMsg::Redirect { bytes });
            }
        }
        ControlKind::Redirect => {
            // Target side: activation. Re-anchor pacing from now — the
            // deadlines the source reported as migrated resume here.
            let Some(&idx) = by_id.get(&frame.session.raw()) else {
                return;
            };
            if let Some(live) = sessions.get_mut(idx).and_then(Option::as_mut) {
                if live.paused {
                    live.paused = false;
                    live.prev_wake = None;
                    wheel.schedule(now + 1, idx);
                    report.adopted += 1;
                }
            }
            provisional.retain(|&(i, _)| i != idx);
        }
    }
}

/// Per-iteration handover housekeeping: source-side retries with capped
/// exponential backoff falling back to local resume, and target-side
/// TTL expiry of provisional adoptions.
#[allow(clippy::too_many_arguments)]
fn sweep_handover(
    sp: &ShardParams,
    pump: &Sender<PumpMsg>,
    report: &mut ShardReport,
    sessions: &mut [Option<Live>],
    by_id: &mut HashMap<u32, usize>,
    wheel: &mut TimerWheel<usize>,
    pending_handover: &mut Vec<PendingHandover>,
    provisional: &mut Vec<(usize, u64)>,
    now: u64,
    gap_ticks: u64,
) {
    pending_handover.retain_mut(|p| {
        if now < p.next_retry_tick {
            return true;
        }
        if p.attempts >= HANDOVER_MAX_ATTEMPTS {
            // Out of retries: the session keeps running here.
            if let Some(live) = sessions.get_mut(p.idx).and_then(Option::as_mut) {
                if live.paused && live.spec.id.raw() == p.session {
                    live.paused = false;
                    live.prev_wake = None;
                    wheel.schedule(now + 1, p.idx);
                }
            }
            report.handover_failed += 1;
            return false;
        }
        p.attempts += 1;
        p.backoff_gaps = (p.backoff_gaps * 2).min(HANDOVER_MAX_BACKOFF_GAPS);
        p.next_retry_tick = now + p.backoff_gaps * gap_ticks;
        if let Some(live) = sessions.get(p.idx).and_then(Option::as_ref) {
            let _ = send_snapshot(pump, sp.index, p.target, live);
        }
        true
    });

    provisional.retain(|&(idx, deadline)| {
        if now < deadline {
            return true;
        }
        // No REDIRECT before the TTL: the source has resumed locally by
        // now. Drop the copy — a dual-active session would fork Y.
        if let Some(slot) = sessions.get_mut(idx) {
            if slot.as_ref().is_some_and(|l| l.paused) {
                if let Some(live) = slot.take() {
                    by_id.remove(&live.spec.id.raw());
                    report.handover_aborted += 1;
                }
            }
        }
        false
    });
}

/// Injected-fault builds only: a channel adversary living in the shard.
///
/// Holds back the *last* data frame of a δ2 burst for up to two pops or
/// until newer traffic arrives, then re-queues it *behind* that traffic.
/// The detour stays within one `[0, d]` delivery window (≤ 2·c2 ticks),
/// so it is a legal reordering of the bounded-delay channel: a correct
/// `A^γ` transmitter waits for all δ2 acks before opening the next
/// burst, and the receiver's multiset decoding is order-insensitive
/// within a burst, so correct builds are unaffected. The seeded
/// early-ack transmitter bug advances one ack short, letting the next
/// burst's frames overtake the held one — a cross-burst misgrouping the
/// count-based receiver decodes into the wrong symbols.
#[cfg(rstp_check_inject_ack_bug)]
fn inject_defer(live: &mut Live, delta2: u64) {
    if let Some((pops, frame)) = live.defer.take() {
        if !live.pending.is_empty() || pops >= 1 {
            live.pending.push_back(frame);
            // Released this pop: no fresh capture until the next one,
            // or the frame just re-queued would be captured again.
            return;
        }
        live.defer = Some((pops + 1, frame));
        return;
    }
    if delta2 <= 1 {
        return;
    }
    if let Some(pos) = live.pending.iter().position(|f| {
        matches!(f.packet, rstp_core::Packet::Data(_)) && f.seq % delta2 == delta2 - 1
    }) {
        if let Some(frame) = live.pending.remove(pos) {
            live.defer = Some((0, frame));
        }
    }
}
