//! The shard worker: one thread, one slice of the session table, one
//! timer wheel.
//!
//! A shard owns every session hashed to it — no other thread touches
//! their automata, so the data path takes no locks. Ingress arrives on a
//! *bounded* channel (the server drops, never blocks, when it is full:
//! an admitted session may lose a frame, which the protocols already
//! tolerate, but it is never stalled past its `c2` window by a slow
//! neighbour). Pacing uses the hierarchical [`TimerWheel`] instead of
//! one sleeping thread per session; the miss/violation accounting
//! mirrors `rstp_net`'s single-session driver exactly, deadline by
//! deadline, so a 256-session swarm is held to the same `[c1, c2]`
//! standard as a lone endpoint.

use crate::endpoint::{receiver_endpoint, SessionEndpoint, StepEffect};
use crate::metrics::{SessionStats, ShardReport};
use crate::server::{EgressSink, SessionSpec};
use crate::wheel::TimerWheel;
use rstp_core::{SessionId, TimingParams};
use rstp_net::{codec_for, Frame, FrameBuf, NetError, Pace, TickClock, WireCodec};
use rstp_record::{Event, ShardRecorder};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the server sends a shard over its bounded ingress queue.
pub enum ShardMsg {
    /// Take ownership of a new session.
    Admit(SessionSpec),
    /// A decoded frame for a session this shard owns.
    Frame(SessionId, Frame),
    /// Finish up: account remaining sessions as unfinished and return.
    Shutdown,
}

/// Static configuration a shard runs under (crate-internal; the public
/// surface is [`crate::ServeConfig`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ShardParams {
    pub index: usize,
    pub params: TimingParams,
    pub tick: Duration,
    pub pace: Pace,
    pub slack: Duration,
    pub grace_ticks: u64,
    pub batch: usize,
}

/// One live session owned by a shard.
struct Live {
    spec: SessionSpec,
    endpoint: Box<dyn SessionEndpoint>,
    codec: WireCodec,
    seq: u64,
    /// Frames delivered but not yet applied — they become `recv` inputs
    /// at the session's next paced step, mirroring the driver's
    /// drain-before-step ordering.
    pending: VecDeque<Frame>,
    prev_wake: Option<Instant>,
    idle_streak: u64,
    steps: u64,
    recvs: u64,
    sends: u64,
    last_write_tick: Option<u64>,
    /// Injected-fault builds only: one in-flight frame held back to
    /// overlap adjacent δ2 bursts (see [`inject_defer`]).
    #[cfg(rstp_check_inject_ack_bug)]
    defer: Option<(u8, Frame)>,
}

impl Live {
    fn into_stats(self, completed: bool) -> SessionStats {
        SessionStats {
            id: self.spec.id,
            protocol: self.spec.kind.name(),
            n: self.spec.n,
            written: self.endpoint.written().to_vec(),
            steps: self.steps,
            recvs: self.recvs,
            sends: self.sends,
            last_write_tick: self.last_write_tick,
            completed,
        }
    }
}

/// Runs one shard until it is told to shut down (or the server side of
/// its queue disappears). Returns the shard's full report.
pub(crate) fn run_shard(
    sp: ShardParams,
    clock: TickClock,
    rx: Receiver<ShardMsg>,
    mut egress: Box<dyn EgressSink>,
    completed_total: Arc<AtomicU64>,
    recorder: Option<ShardRecorder>,
) -> Result<ShardReport, NetError> {
    #[cfg(rstp_check_inject_ack_bug)]
    let inject_delta2 = sp.params.delta2();
    let gap_ticks = sp.pace.gap_ticks(sp.params).max(1);
    let tick_micros = sp.tick.as_micros().max(1) as u64;
    let lo = (sp.tick * u32::try_from(sp.params.c1().ticks()).unwrap_or(u32::MAX))
        .saturating_sub(sp.slack);
    let hi = sp.tick * u32::try_from(sp.params.c2().ticks()).unwrap_or(u32::MAX) + sp.slack;
    let idle_steps_needed = sp.grace_ticks.div_ceil(gap_ticks).max(1);

    let mut report = ShardReport::new(sp.index);
    let mut wheel: TimerWheel<usize> = TimerWheel::new();
    let mut sessions: Vec<Option<Live>> = Vec::new();
    let mut by_id: HashMap<u32, usize> = HashMap::new();
    let mut due: Vec<(u64, usize)> = Vec::new();
    let mut out_buf: Vec<(u32, FrameBuf)> = Vec::new();
    let now_tick = |clock: &TickClock| clock.now_micros() / tick_micros;

    'run: loop {
        // Sleep until the next deadline (or new work arrives). The
        // channel doubles as the wake-up: one blocking point serves both
        // ingress and pacing.
        let timeout = match wheel.next_due() {
            Some(t) => clock
                .instant_of_tick(t)
                .saturating_duration_since(Instant::now()),
            None => sp.tick * u32::try_from(gap_ticks).unwrap_or(u32::MAX),
        };
        let mut first = match rx.recv_timeout(timeout) {
            Ok(msg) => Some(msg),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break 'run,
        };
        while let Some(msg) = first.take() {
            match msg {
                ShardMsg::Admit(spec) => {
                    let endpoint = receiver_endpoint(spec.kind, sp.params, spec.n)?;
                    let codec = codec_for(spec.kind)?;
                    let live = Live {
                        spec,
                        endpoint,
                        codec,
                        seq: 0,
                        pending: VecDeque::new(),
                        prev_wake: None,
                        idle_streak: 0,
                        steps: 0,
                        recvs: 0,
                        sends: 0,
                        last_write_tick: None,
                        #[cfg(rstp_check_inject_ack_bug)]
                        defer: None,
                    };
                    let idx = match sessions.iter().position(Option::is_none) {
                        Some(free) => free,
                        None => {
                            sessions.push(None);
                            sessions.len() - 1
                        }
                    };
                    if let Some(slot) = sessions.get_mut(idx) {
                        *slot = Some(live);
                    }
                    by_id.insert(spec.id.raw(), idx);
                    // First step strictly in the future, like the
                    // driver's epoch anchor — an overdue first deadline
                    // would book a spurious miss at admission.
                    wheel.schedule(now_tick(&clock) + 1, idx);
                    report.admitted += 1;
                    if let Some(r) = &recorder {
                        r.record(Event::Admit {
                            at_micros: clock.now_micros(),
                            session: spec.id.raw(),
                            kind: spec.kind,
                            n: u32::try_from(spec.n).unwrap_or(u32::MAX),
                        });
                    }
                }
                ShardMsg::Frame(id, frame) => {
                    if let Some(&idx) = by_id.get(&id.raw()) {
                        if let Some(live) = sessions.get_mut(idx).and_then(Option::as_mut) {
                            live.pending.push_back(frame);
                        }
                    }
                    // Unknown id: trailing traffic for a session that
                    // already completed. Dropped, like the driver
                    // ignoring frames after its grace period.
                }
                ShardMsg::Shutdown => break 'run,
            }
            first = rx.try_recv().ok();
        }

        // Fire every deadline up to now.
        wheel.advance(now_tick(&clock), &mut due);
        for (due_tick, idx) in due.drain(..) {
            let Some(live) = sessions.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };

            // Accounting identical to the single-session driver: a late
            // wake is one deadline miss and poisons the adjacent gap
            // measurements; a punctual wake's distance from the previous
            // punctual wake must sit inside [c1·tick − slack, c2·tick + slack].
            let wake = Instant::now();
            let overshoot = wake.saturating_duration_since(clock.instant_of_tick(due_tick));
            let late = overshoot > sp.slack;
            if late {
                report.deadline_misses += 1;
            } else if let Some(prev) = live.prev_wake {
                let observed = wake.saturating_duration_since(prev);
                if observed < lo || observed > hi {
                    report.timing_violations += 1;
                }
            }
            live.prev_wake = (!late).then_some(wake);
            if let Some(r) = &recorder {
                r.record(Event::WheelPop {
                    at_micros: clock.now_micros(),
                    session: live.spec.id.raw(),
                    due_tick,
                    late,
                });
                if late {
                    r.record(Event::DeadlineMiss {
                        at_micros: clock.now_micros(),
                        session: live.spec.id.raw(),
                        due_tick,
                    });
                }
            }

            #[cfg(rstp_check_inject_ack_bug)]
            inject_defer(live, inject_delta2);

            // Drain delivered frames as recv inputs before the local
            // step (inputs are channel outputs, not clocked).
            let received_any = !live.pending.is_empty();
            while let Some(frame) = live.pending.pop_front() {
                if let Some(r) = &recorder {
                    // Re-encode canonically: byte-identical to the wire,
                    // so the recording carries full frames, not summaries.
                    let wire = live.codec.encode_with_session(
                        frame.packet,
                        frame.seq,
                        frame.sent_at_micros,
                        live.spec.id,
                    );
                    r.record(Event::Rx {
                        at_micros: clock.now_micros(),
                        session: live.spec.id.raw(),
                        wire: wire.to_vec(),
                    });
                }
                live.endpoint.apply_recv(frame.packet)?;
                report
                    .latency
                    .record(clock.now_micros().saturating_sub(frame.sent_at_micros));
                live.recvs += 1;
                report.frames_received += 1;
            }

            // The unique enabled local action.
            let effect = live.endpoint.step()?;
            if effect != StepEffect::Quiescent {
                live.steps += 1;
                report.steps += 1;
            }
            let mut productive = received_any;
            match effect {
                StepEffect::Sent(p) => {
                    let stamp = clock.now_micros();
                    let bytes = live
                        .codec
                        .encode_with_session(p, live.seq, stamp, live.spec.id);
                    if let Some(r) = &recorder {
                        r.record(Event::Tx {
                            at_micros: stamp,
                            session: live.spec.id.raw(),
                            wire: bytes.to_vec(),
                        });
                    }
                    live.seq += 1;
                    out_buf.push((live.spec.id.raw(), bytes.into()));
                    live.sends += 1;
                    productive = true;
                }
                StepEffect::Wrote(_) => {
                    live.last_write_tick = Some(due_tick);
                    productive = true;
                }
                StepEffect::Waited => productive = true,
                StepEffect::Idled | StepEffect::Quiescent => {}
            }

            // Completion: all writes in and a full grace period of quiet.
            let writes_done = live.endpoint.written().len() >= live.spec.n;
            if productive || !writes_done {
                live.idle_streak = 0;
            } else {
                live.idle_streak += 1;
                if live.idle_streak >= idle_steps_needed {
                    // `live` borrows this same slot, so it is occupied;
                    // a vacant slot just means nothing to retire.
                    let Some(done) = sessions.get_mut(idx).and_then(Option::take) else {
                        continue;
                    };
                    by_id.remove(&done.spec.id.raw());
                    report.completed += 1;
                    let stats = done.into_stats(true);
                    if let Some(r) = &recorder {
                        r.record(Event::Verdict {
                            at_micros: clock.now_micros(),
                            session: stats.id.raw(),
                            completed: true,
                            written: stats.written.clone(),
                        });
                    }
                    report.sessions.push(stats);
                    completed_total.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }

            // Reschedule; after a stall longer than a whole gap,
            // re-anchor from now rather than replaying missed deadlines
            // back-to-back faster than c1.
            let mut next = due_tick + gap_ticks;
            let now = now_tick(&clock);
            if now > next + gap_ticks {
                next = now;
                live.prev_wake = None;
            }
            wheel.schedule(next, idx);
        }

        // Flush egress in batches of B frames per call.
        for chunk in out_buf.chunks(sp.batch.max(1)) {
            report.frames_sent += egress.send_batch(chunk)? as u64;
        }
        out_buf.clear();
    }

    // Account whatever is still open.
    for slot in sessions.into_iter().flatten() {
        report.unfinished += 1;
        let stats = slot.into_stats(false);
        if let Some(r) = &recorder {
            r.record(Event::Verdict {
                at_micros: clock.now_micros(),
                session: stats.id.raw(),
                completed: false,
                written: stats.written.clone(),
            });
        }
        report.sessions.push(stats);
    }
    if let Some(r) = &recorder {
        report.events_recorded = r.recorded();
        report.events_dropped = r.dropped();
    }
    Ok(report)
}

/// Injected-fault builds only: a channel adversary living in the shard.
///
/// Holds back the *last* data frame of a δ2 burst for up to two pops or
/// until newer traffic arrives, then re-queues it *behind* that traffic.
/// The detour stays within one `[0, d]` delivery window (≤ 2·c2 ticks),
/// so it is a legal reordering of the bounded-delay channel: a correct
/// `A^γ` transmitter waits for all δ2 acks before opening the next
/// burst, and the receiver's multiset decoding is order-insensitive
/// within a burst, so correct builds are unaffected. The seeded
/// early-ack transmitter bug advances one ack short, letting the next
/// burst's frames overtake the held one — a cross-burst misgrouping the
/// count-based receiver decodes into the wrong symbols.
#[cfg(rstp_check_inject_ack_bug)]
fn inject_defer(live: &mut Live, delta2: u64) {
    if let Some((pops, frame)) = live.defer.take() {
        if !live.pending.is_empty() || pops >= 1 {
            live.pending.push_back(frame);
            // Released this pop: no fresh capture until the next one,
            // or the frame just re-queued would be captured again.
            return;
        }
        live.defer = Some((pops + 1, frame));
        return;
    }
    if delta2 <= 1 {
        return;
    }
    if let Some(pos) = live.pending.iter().position(|f| {
        matches!(f.packet, rstp_core::Packet::Data(_)) && f.seq % delta2 == delta2 - 1
    }) {
        if let Some(frame) = live.pending.remove(pos) {
            live.defer = Some((0, frame));
        }
    }
}
