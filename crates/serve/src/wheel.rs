//! Hierarchical timer wheel: thousands of session deadlines, one sleeper.
//!
//! A per-session driver sleeps once per step; a server running `M`
//! sessions cannot afford `M` sleeping threads, nor a `BinaryHeap` whose
//! every reschedule costs `log M` comparisons on the hot path. The classic
//! answer (Varghese & Lauck) is a hierarchy of wheels: level 0 holds the
//! next [`SLOTS`] ticks at tick resolution, level `l` holds the next
//! `SLOTS^(l+1)` ticks at `SLOTS^l`-tick resolution. Scheduling and
//! per-tick advance are O(1) amortized; entries cascade one level down
//! when their coarse slot comes due.
//!
//! The wheel is deliberately *not* wall-clock-aware: it counts abstract
//! ticks and the shard maps them through its `TickClock`, the same
//! separation the real-time driver uses. Deadline-miss accounting
//! therefore stays where it already lives — in the shard's step loop —
//! and the wheel only answers "whose deadline is ≤ now?".

/// Slots per level. 64 keeps the cascade shallow (4 levels cover
/// 64⁴ ≈ 16.7M ticks) and makes slot arithmetic a mask.
pub const SLOTS: usize = 64;

/// Number of levels. Level 3 spans ~16.7M ticks; a session further out
/// than that is parked in the overflow list and re-examined on cascade.
pub const LEVELS: usize = 4;

/// Span of one slot at `level`, in ticks.
const fn slot_span(level: usize) -> u64 {
    (SLOTS as u64).pow(level as u32)
}

/// Span of the whole wheel at `level`, in ticks.
const fn level_span(level: usize) -> u64 {
    slot_span(level) * SLOTS as u64
}

/// One scheduled entry: an opaque token due at an absolute tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry<T> {
    due_tick: u64,
    token: T,
}

/// A hierarchical timer wheel over abstract ticks.
///
/// Tokens are opaque to the wheel (shards use session-table indices).
/// `advance(now)` returns every token whose deadline is ≤ `now`, in
/// deadline order within a tick.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// `levels[l][s]` holds entries due in that slot's span.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Entries beyond the top level's horizon.
    overflow: Vec<Entry<T>>,
    /// Entries scheduled at or before `now` — returned by the next
    /// `advance` without waiting a full lap.
    overdue: Vec<Entry<T>>,
    /// The last tick `advance` fully processed.
    now: u64,
    /// Live entry count.
    len: usize,
}

impl<T: Copy> TimerWheel<T> {
    /// An empty wheel positioned at tick 0.
    #[must_use]
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            overdue: Vec::new(),
            now: 0,
            len: 0,
        }
    }

    /// Number of scheduled entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tick `advance` has processed up to.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `token` at absolute tick `due_tick`. A deadline at or
    /// before the current tick is delivered by the next [`advance`]
    /// (deadlines in the past are the server's miss-accounting problem,
    /// not a scheduling error).
    ///
    /// [`advance`]: Self::advance
    pub fn schedule(&mut self, due_tick: u64, token: T) {
        self.len += 1;
        let entry = Entry { due_tick, token };
        if due_tick <= self.now {
            self.overdue.push(entry);
            return;
        }
        self.place(entry);
    }

    /// Files an entry (strictly in the future) into the finest level
    /// whose horizon reaches it.
    fn place(&mut self, entry: Entry<T>) {
        let delta = entry.due_tick - self.now;
        for level in 0..LEVELS {
            if delta < level_span(level) {
                let slot = (entry.due_tick / slot_span(level)) as usize % SLOTS;
                if let Some(entries) = self.slot_mut(level, slot) {
                    entries.push(entry);
                    return;
                }
            }
        }
        self.overflow.push(entry);
    }

    /// Advances the wheel to `to`, appending every token whose deadline
    /// is ≤ `to` onto `due` in deadline order. Ticks are processed one at
    /// a time so cascades land exactly on their boundaries; `advance` to
    /// a tick already processed is a no-op.
    pub fn advance(&mut self, to: u64, due: &mut Vec<(u64, T)>) {
        // Entries that were scheduled late: deliver first, oldest deadline
        // first, so miss accounting sees them in order.
        if !self.overdue.is_empty() {
            self.overdue.sort_by_key(|e| e.due_tick);
            for e in self.overdue.drain(..) {
                self.len -= 1;
                due.push((e.due_tick, e.token));
            }
        }
        while self.now < to {
            self.now += 1;
            let tick = self.now;
            // Cascade coarser levels whose slot boundary this tick crosses.
            for level in 1..LEVELS {
                if tick % slot_span(level) == 0 {
                    let slot = (tick / slot_span(level)) as usize % SLOTS;
                    let entries = self
                        .slot_mut(level, slot)
                        .map(std::mem::take)
                        .unwrap_or_default();
                    for e in entries {
                        if e.due_tick <= self.now {
                            self.len -= 1;
                            due.push((e.due_tick, e.token));
                        } else {
                            self.place(e);
                        }
                    }
                }
            }
            if tick % level_span(LEVELS - 1) == 0 {
                let entries = std::mem::take(&mut self.overflow);
                for e in entries {
                    if e.due_tick <= self.now {
                        self.len -= 1;
                        due.push((e.due_tick, e.token));
                    } else {
                        self.place(e);
                    }
                }
            }
            let slot = tick as usize % SLOTS;
            let entries = self
                .slot_mut(0, slot)
                .map(std::mem::take)
                .unwrap_or_default();
            for e in entries {
                // A level-0 slot only holds entries within one lap, and we
                // visit every tick, so everything here is due exactly now.
                debug_assert_eq!(e.due_tick, tick);
                self.len -= 1;
                due.push((e.due_tick, e.token));
            }
        }
    }

    /// Checked slot lookup. `level < LEVELS` and `slot < SLOTS` hold at
    /// every call site by construction (the slot index is taken `% SLOTS`),
    /// but the wheel sits on the shard's panic-free data path, so access
    /// is bounds-checked rather than trusted.
    fn slot_mut(&mut self, level: usize, slot: usize) -> Option<&mut Vec<Entry<T>>> {
        self.levels.get_mut(level)?.get_mut(slot)
    }

    /// The earliest scheduled deadline, or `None` when empty. O(wheel)
    /// scan — called once per shard loop to size the sleep, not per
    /// session, so linearity in the slot count is fine.
    #[must_use]
    pub fn next_due(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut consider = |d: u64| {
            best = Some(best.map_or(d, |b: u64| b.min(d)));
        };
        for e in &self.overdue {
            consider(e.due_tick);
        }
        for level in &self.levels {
            for slot in level {
                for e in slot {
                    consider(e.due_tick);
                }
            }
        }
        for e in &self.overflow {
            consider(e.due_tick);
        }
        best
    }
}

impl<T: Copy> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Drains the wheel up to `to` and returns `(due_tick, token)` pairs.
    fn drain_to(w: &mut TimerWheel<u32>, to: u64) -> Vec<(u64, u32)> {
        let mut due = Vec::new();
        w.advance(to, &mut due);
        due
    }

    #[test]
    fn single_entry_fires_at_its_tick() {
        let mut w = TimerWheel::new();
        w.schedule(5, 1u32);
        assert_eq!(w.len(), 1);
        assert!(drain_to(&mut w, 4).is_empty());
        assert_eq!(drain_to(&mut w, 5), vec![(5, 1)]);
        assert!(w.is_empty());
    }

    #[test]
    fn overdue_entries_fire_immediately() {
        let mut w = TimerWheel::new();
        drain_to(&mut w, 100);
        w.schedule(50, 7u32); // already past
        w.schedule(100, 8u32); // exactly now
        assert_eq!(drain_to(&mut w, 100), vec![(50, 7), (100, 8)]);
    }

    #[test]
    fn entries_cascade_across_level_boundaries() {
        // Deadlines straddling the level-0 lap (64) and the level-1 lap
        // (4096) — the classic off-by-one territory of wheel cascades.
        let mut w = TimerWheel::new();
        for due in [63u64, 64, 65, 4095, 4096, 4097, 300_000] {
            w.schedule(due, due as u32);
        }
        let mut fired = Vec::new();
        w.advance(300_000, &mut fired);
        let ticks: Vec<u64> = fired.iter().map(|&(d, _)| d).collect();
        assert_eq!(ticks, vec![63, 64, 65, 4095, 4096, 4097, 300_000]);
        for (d, t) in fired {
            assert_eq!(d as u32, t, "token must fire at its own deadline");
        }
    }

    #[test]
    fn matches_a_reference_model_under_pseudorandom_load() {
        // Differential test against a BTreeMap priority queue: same
        // deadlines in, same (sorted-by-deadline) tokens out at every
        // advance, across cascade boundaries. A simple LCG provides
        // deterministic "randomness" without a dependency.
        let mut w = TimerWheel::new();
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let mut lcg: u64 = 0x1234_5678;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut token = 0u32;
        let mut now = 0u64;
        for round in 0..200 {
            // Schedule a burst at mixed horizons: near, mid, far.
            for _ in 0..8 {
                let horizon = match next() % 3 {
                    0 => 1 + next() % 60,         // level 0
                    1 => 64 + next() % 4000,      // level 1
                    _ => 4096 + next() % 250_000, // level 2+
                };
                let due = now + horizon;
                w.schedule(due, token);
                model.entry(due).or_default().push(token);
                token += 1;
            }
            // Advance by an uneven stride, sometimes crossing boundaries.
            now += 1 + next() % (if round % 5 == 0 { 10_000 } else { 97 });
            let mut fired = Vec::new();
            w.advance(now, &mut fired);
            let mut expected = Vec::new();
            let still_due: BTreeMap<u64, Vec<u32>> = model.split_off(&(now + 1));
            for (d, toks) in std::mem::replace(&mut model, still_due) {
                for t in toks {
                    expected.push((d, t));
                }
            }
            // The wheel guarantees deadline order across ticks; entries
            // sharing a deadline may interleave differently than the
            // model (cascade timing), so compare as a multiset.
            assert!(
                fired.windows(2).all(|w| w[0].0 <= w[1].0),
                "deadline order violated at now={now}: {fired:?}"
            );
            let mut fired_sorted = fired.clone();
            fired_sorted.sort_unstable();
            expected.sort_unstable();
            assert_eq!(fired_sorted, expected, "divergence at now={now}");
        }
        // Drain everything left and check emptiness agreement.
        let mut fired = Vec::new();
        w.advance(now + 400_000, &mut fired);
        let remaining: usize = model.values().map(Vec::len).sum();
        assert_eq!(fired.len(), remaining);
        assert!(w.is_empty());
    }

    #[test]
    fn occupancy_is_conserved_through_every_drain() {
        // The wheel-level half of the handover invariant: a scheduled
        // deadline is either returned by `advance` — where the shard
        // steps it or, for a paused mid-handover session, reports it
        // migrated — or still occupies the wheel. It is never silently
        // dropped. Conservation (`scheduled == fired + len()`) is
        // checked after every operation under pseudorandom load across
        // cascade boundaries, with a "paused" subset standing in for
        // sessions mid-handover so both accounting flavors are
        // exercised at drain time.
        let mut w = TimerWheel::new();
        let mut lcg: u64 = 0x000D_EFAC_EDFA_CADE;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut scheduled: u64 = 0;
        let mut stepped: u64 = 0;
        let mut migrated: u64 = 0;
        let mut fired_once = Vec::new();
        let mut token = 0u32;
        let mut now = 0u64;
        for round in 0..300 {
            for _ in 0..6 {
                let horizon = match next() % 4 {
                    0 => next() % 64,             // level 0, possibly overdue
                    1 => 64 + next() % 4000,      // level 1
                    2 => 4096 + next() % 250_000, // level 2+
                    _ => 0,                       // due exactly now
                };
                w.schedule(now + horizon, token);
                fired_once.push(0u32);
                scheduled += 1;
                token += 1;
                assert_eq!(
                    u64::try_from(w.len()).unwrap(),
                    scheduled - stepped - migrated,
                    "occupancy drifted after schedule at now={now}"
                );
            }
            now += 1 + next() % (if round % 7 == 0 { 300_000 } else { 61 });
            let mut due = Vec::new();
            w.advance(now, &mut due);
            for (d, t) in due {
                assert!(d <= now, "future deadline fired: {d} > {now}");
                fired_once[t as usize] += 1;
                // Every third session is "paused" mid-handover: its
                // deadline still fires here and is accounted as
                // migrated, mirroring the shard's sweep.
                if t % 3 == 0 {
                    migrated += 1;
                } else {
                    stepped += 1;
                }
            }
            assert_eq!(
                u64::try_from(w.len()).unwrap(),
                scheduled - stepped - migrated,
                "occupancy drifted after drain at now={now}"
            );
        }
        // Final drain: everything scheduled has fired exactly once.
        let mut due = Vec::new();
        w.advance(now + 20_000_000, &mut due);
        for (_, t) in due {
            fired_once[t as usize] += 1;
        }
        assert!(w.is_empty());
        assert!(
            fired_once.iter().all(|&n| n == 1),
            "a deadline fired zero or multiple times: {:?}",
            fired_once
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n != 1)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn next_due_tracks_the_earliest_deadline() {
        let mut w = TimerWheel::new();
        assert_eq!(w.next_due(), None);
        w.schedule(500, 1u32);
        w.schedule(20, 2u32);
        w.schedule(70_000, 3u32);
        assert_eq!(w.next_due(), Some(20));
        drain_to(&mut w, 20);
        assert_eq!(w.next_due(), Some(500));
        drain_to(&mut w, 500);
        assert_eq!(w.next_due(), Some(70_000));
    }

    #[test]
    fn reschedule_pattern_of_a_paced_session() {
        // A session stepping every gap=2 ticks, rescheduled after each
        // firing — the shard's actual usage pattern.
        let mut w = TimerWheel::new();
        w.schedule(2, 0u32);
        let mut fires = Vec::new();
        let mut t = 0;
        while fires.len() < 50 {
            t += 1;
            let mut due = Vec::new();
            w.advance(t, &mut due);
            for (d, tok) in due {
                fires.push(d);
                w.schedule(d + 2, tok);
            }
        }
        let expected: Vec<u64> = (1..=50).map(|i| i * 2).collect();
        assert_eq!(fires, expected);
    }
}
