//! The multi-session server loop over one UDP socket.
//!
//! One bound socket carries every session; datagrams are demultiplexed
//! by the wire v2 session id. The server learns each session's return
//! address from the first datagram it sees (the cheap [`peek_session`]
//! probe — full validation happens in the owning shard), and shard
//! egress replies through a cloned handle of the same socket, so the
//! data path never funnels through a shared lock beyond the address map.

use crate::server::{EgressSink, ServeTransport};
use rstp_core::{Packet, SessionId};
use rstp_net::{
    decode_any, peek_session, Frame, FrameBuf, NetError, Transport, TransportStats, WireCodec,
    FRAME_BUF_CAP,
};
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::{Arc, Mutex, TryLockError};

/// Headroom over the largest legal frame so oversized datagrams surface
/// as [`rstp_net::WireError::TrailingBytes`] instead of silent truncation.
/// Equal to [`FRAME_BUF_CAP`] so every received datagram fits a
/// [`FrameBuf`] without a second copy or a heap allocation.
const RECV_BUF: usize = FRAME_BUF_CAP;

type AddrMap = Arc<Mutex<HashMap<u32, SocketAddr>>>;

/// The server's end of the shared UDP socket.
pub struct UdpServerTransport {
    socket: UdpSocket,
    addrs: AddrMap,
}

impl UdpServerTransport {
    /// Binds `local` (use port 0 for an ephemeral loopback port).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if binding fails.
    pub fn bind(local: impl ToSocketAddrs) -> Result<Self, NetError> {
        let socket = UdpSocket::bind(local)?;
        socket.set_nonblocking(true)?;
        Ok(UdpServerTransport {
            socket,
            addrs: Arc::default(),
        })
    }

    /// The bound address clients should send to.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.socket.local_addr()?)
    }
}

impl ServeTransport for UdpServerTransport {
    fn recv_batch(&mut self, out: &mut Vec<FrameBuf>, max: usize) -> Result<usize, NetError> {
        let mut buf = [0u8; RECV_BUF];
        let mut got = 0;
        while got < max {
            match self.socket.recv_from(&mut buf) {
                Ok((len, from)) => {
                    // `len ≤ RECV_BUF = FRAME_BUF_CAP`, so this never
                    // fails; the guard keeps the path panic-free anyway.
                    let Some(bytes) = buf.get(..len).and_then(FrameBuf::from_slice) else {
                        continue;
                    };
                    // Learn (or refresh) the session's return address so
                    // egress can answer. A forged id cannot make a shard
                    // act — the full decode there still checks everything
                    // — but it could redirect replies, which is exactly
                    // UDP's trust model for unauthenticated datagrams.
                    if let Some(session) = peek_session(&bytes) {
                        match self.addrs.try_lock() {
                            Ok(mut map) => {
                                map.insert(session.raw(), from);
                            }
                            // The map holds plain socket addresses:
                            // recover from poisoning rather than cascading
                            // a panic into the server pump.
                            Err(TryLockError::Poisoned(p)) => {
                                p.into_inner().insert(session.raw(), from);
                            }
                            // An egress thread holds the map: skip the
                            // refresh rather than blocking the pump; the
                            // session's next datagram re-learns it.
                            Err(TryLockError::WouldBlock) => {}
                        }
                    }
                    out.push(bytes);
                    got += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        Ok(got)
    }

    fn egress(&self) -> Result<Box<dyn EgressSink>, NetError> {
        Ok(Box::new(UdpEgress {
            socket: self.socket.try_clone()?,
            addrs: self.addrs.clone(),
        }))
    }
}

/// Shard-side egress through a cloned handle of the server socket.
struct UdpEgress {
    socket: UdpSocket,
    addrs: AddrMap,
}

impl EgressSink for UdpEgress {
    fn send_batch(&mut self, frames: &[(u32, FrameBuf)]) -> Result<usize, NetError> {
        let mut sent = 0;
        for (session, bytes) in frames {
            let addr = match self.addrs.try_lock() {
                Ok(map) => map.get(session).copied(),
                Err(TryLockError::Poisoned(p)) => p.into_inner().get(session).copied(),
                // The pump holds the map mid-refresh: drop the frame
                // (a channel loss the protocol tolerates) rather than
                // blocking the shard's egress flush.
                Err(TryLockError::WouldBlock) => None,
            };
            // No return address yet (the session has not sent anything):
            // drop, like any unroutable datagram.
            let Some(addr) = addr else { continue };
            match self.socket.send_to(bytes, addr) {
                Ok(_) => sent += 1,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        Ok(sent)
    }
}

/// One session's client endpoint: an ephemeral socket speaking wire v2
/// frames to the server, implementing the single-session [`Transport`]
/// so the ordinary real-time driver runs unchanged.
pub struct UdpSessionClient {
    socket: UdpSocket,
    server: SocketAddr,
    session: SessionId,
    codec: WireCodec,
    seq: u64,
    stats: TransportStats,
}

impl UdpSessionClient {
    /// Binds an ephemeral loopback socket for `session` talking to
    /// `server`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if binding fails or the server address does not
    /// resolve.
    pub fn connect(
        server: impl ToSocketAddrs,
        session: SessionId,
        codec: WireCodec,
    ) -> Result<Self, NetError> {
        let server = server
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "empty server address"))?;
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_nonblocking(true)?;
        Ok(UdpSessionClient {
            socket,
            server,
            session,
            codec,
            seq: 0,
            stats: TransportStats::default(),
        })
    }
}

impl Transport for UdpSessionClient {
    fn send(&mut self, packet: Packet, sent_at_micros: u64) -> Result<(), NetError> {
        let bytes = self
            .codec
            .encode_with_session(packet, self.seq, sent_at_micros, self.session);
        self.seq += 1;
        match self.socket.send_to(&bytes, self.server) {
            Ok(_) => {
                self.stats.frames_sent += 1;
                Ok(())
            }
            // A full socket buffer under load: the datagram is lost, which
            // the protocols already tolerate (UDP drops are channel drops).
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(NetError::Io(e)),
        }
    }

    fn poll_recv(&mut self) -> Result<Option<Frame>, NetError> {
        let mut buf = [0u8; RECV_BUF];
        loop {
            match self.socket.recv_from(&mut buf) {
                Ok((len, from)) => {
                    if from != self.server {
                        // Not our correspondent; ignore like rstp-net's
                        // single-session UDP transport does.
                        continue;
                    }
                    match decode_any(&buf[..len]) {
                        Ok(frame) if frame.session == Some(self.session) => {
                            self.stats.frames_received += 1;
                            return Ok(Some(frame));
                        }
                        Ok(_) | Err(_) => {
                            self.stats.decode_errors += 1;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    fn local_stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_net::ProtocolId;
    use std::time::Duration;

    fn codec() -> WireCodec {
        WireCodec::new(ProtocolId::Beta, 4).expect("codec")
    }

    fn recv_all(server: &mut UdpServerTransport, want: usize) -> Vec<FrameBuf> {
        let mut out = Vec::new();
        for _ in 0..200 {
            server.recv_batch(&mut out, 64).expect("recv");
            if out.len() >= want {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        out
    }

    #[test]
    fn datagrams_demux_by_session_and_replies_route_back() {
        let mut server = UdpServerTransport::bind(("127.0.0.1", 0)).expect("bind");
        let addr = server.local_addr().expect("addr");
        let mut a = UdpSessionClient::connect(addr, SessionId::new(1), codec()).expect("client");
        let mut b = UdpSessionClient::connect(addr, SessionId::new(2), codec()).expect("client");
        a.send(Packet::Data(10), 100).expect("send");
        b.send(Packet::Data(20), 200).expect("send");

        let batch = recv_all(&mut server, 2);
        assert_eq!(batch.len(), 2);
        let sessions: Vec<_> = batch.iter().filter_map(|b| peek_session(b)).collect();
        assert!(sessions.contains(&SessionId::new(1)));
        assert!(sessions.contains(&SessionId::new(2)));

        // Reply to session 2 only; only client b sees it.
        let mut sink = server.egress().expect("egress");
        let reply =
            FrameBuf::from(codec().encode_with_session(Packet::Ack(20), 0, 300, SessionId::new(2)));
        assert_eq!(sink.send_batch(&[(2, reply)]).expect("send"), 1);
        let got = loop {
            if let Some(frame) = b.poll_recv().expect("recv") {
                break frame;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(got.packet, Packet::Ack(20));
        assert_eq!(a.poll_recv().expect("recv"), None);
    }

    #[test]
    fn egress_without_a_learned_address_drops() {
        let server = UdpServerTransport::bind(("127.0.0.1", 0)).expect("bind");
        let mut sink = server.egress().expect("egress");
        let orphan =
            FrameBuf::from(codec().encode_with_session(Packet::Ack(1), 0, 0, SessionId::new(42)));
        assert_eq!(sink.send_batch(&[(42, orphan)]).expect("send"), 0);
    }

    #[test]
    fn garbage_datagrams_still_reach_the_batch_for_shard_triage() {
        // recv_batch does not validate — strict decoding happens at the
        // shard so decode errors are counted once, centrally.
        let mut server = UdpServerTransport::bind(("127.0.0.1", 0)).expect("bind");
        let addr = server.local_addr().expect("addr");
        let rogue = UdpSocket::bind(("127.0.0.1", 0)).expect("bind");
        rogue.send_to(&[0xAB; 10], addr).expect("send");
        let batch = recv_all(&mut server, 1);
        assert_eq!(batch.len(), 1);
        assert!(decode_any(&batch[0]).is_err());
    }
}
