//! Versioned session-state snapshots: the payload of a handover
//! `SNAPSHOT` control frame and the recovery anchor in a flight
//! recording.
//!
//! A [`SessionSnapshot`] captures everything a shard needs to re-create
//! a live receiver session elsewhere — on a peer shard during a
//! pair-wise handover, or on a restarted shard replaying its flight
//! recording after a crash. The encoding is explicitly versioned and
//! length-prefixed so a future layout can coexist with recordings and
//! control frames produced by this one; golden-byte tests below pin the
//! v1 layout.
//!
//! The per-protocol receiver state is serialized through [`StateCodec`],
//! implemented here for every receiver state type the server can host.
//! Decoding is strict: every count is bounds-checked against the
//! remaining input *before* allocation, multiset symbols are validated
//! against their declared universe (a corrupted snapshot must surface as
//! a decode error, never as a panic inside `Multiset::insert`), and
//! padding bits in packed booleans must be zero so each value has
//! exactly one encoding.

use rstp_codec::Multiset;
use rstp_core::protocols::{
    AlphaReceiverState, AltBitReceiverState, BetaReceiverState, FramedReceiverState,
    GammaReceiverState, PipelinedReceiverState, StabBetaReceiverState, StabStenningReceiverState,
    StenningReceiverState,
};
use rstp_core::Message;
use rstp_sim::ProtocolKind;
use std::collections::VecDeque;
use std::fmt;

/// Snapshot layout version written by this build.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Upper bound on any element count inside a snapshot (messages,
/// multiset symbols, queue entries). Checked before allocating.
pub const MAX_SNAPSHOT_ELEMS: usize = 1 << 20;

/// Upper bound on a multiset universe `k` inside a snapshot; matches
/// the wire's `MAX_WIRE_K` so nothing decodable off the wire is
/// rejected here, while a corrupted length cannot force a huge
/// allocation.
const MAX_SNAPSHOT_K: u64 = u16::MAX as u64;

/// Why a snapshot failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before the declared structure did.
    Truncated,
    /// Structurally invalid content (bad flag byte, out-of-range symbol,
    /// nonzero padding, unknown protocol tag, …).
    Malformed(&'static str),
    /// A version byte newer than [`SNAPSHOT_VERSION`].
    FutureVersion {
        /// The version byte found.
        got: u8,
    },
    /// Bytes remained after a complete snapshot.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::FutureVersion { got } => {
                write!(
                    f,
                    "snapshot version {got} is newer than supported {SNAPSHOT_VERSION}"
                )
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A bounds-checked read cursor over snapshot bytes.
pub struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Cur { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_be_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_be_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// A strict boolean byte: `0` or `1`, anything else is an error.
    fn flag(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Succeeds only when the cursor consumed every byte.
    #[must_use]
    pub fn finish(self) -> Option<()> {
        (self.remaining() == 0).then_some(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn take_usize(cur: &mut Cur<'_>) -> Option<usize> {
    usize::try_from(cur.u64()?).ok()
}

/// Packed booleans: a `u32` count, then `ceil(count / 8)` bytes,
/// LSB-first within each byte; padding bits must be zero.
fn put_bits(out: &mut Vec<u8>, bits: &[bool]) {
    put_u32(out, bits.len() as u32);
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if bits.len() % 8 != 0 {
        out.push(byte);
    }
}

fn take_bits(cur: &mut Cur<'_>) -> Option<Vec<bool>> {
    let n = cur.u32()? as usize;
    if n > MAX_SNAPSHOT_ELEMS {
        return None;
    }
    let raw = cur.take(n.div_ceil(8))?;
    let mut bits = Vec::with_capacity(n);
    'bytes: for (i, &byte) in raw.iter().enumerate() {
        for bit in 0..8 {
            if i * 8 + bit >= n {
                break 'bytes;
            }
            bits.push(byte >> bit & 1 == 1);
        }
    }
    // One encoding per value: padding bits past the count must be zero.
    if n % 8 != 0 && raw.last().is_some_and(|&b| b >> (n % 8) != 0) {
        return None;
    }
    Some(bits)
}

/// A `u32` count of `u64` values.
fn put_u64s(out: &mut Vec<u8>, vals: impl ExactSizeIterator<Item = u64>) {
    put_u32(out, vals.len() as u32);
    for v in vals {
        put_u64(out, v);
    }
}

fn take_u64s(cur: &mut Cur<'_>) -> Option<Vec<u64>> {
    let n = cur.u32()? as usize;
    if n > MAX_SNAPSHOT_ELEMS || n.checked_mul(8)? > cur.remaining() {
        return None;
    }
    (0..n).map(|_| cur.u64()).collect()
}

/// A multiset as `universe: u64`, then its sorted symbol sequence.
fn put_multiset(out: &mut Vec<u8>, m: &Multiset) {
    put_u64(out, m.universe());
    put_u64s(out, m.to_sorted_vec().into_iter());
}

fn take_multiset(cur: &mut Cur<'_>) -> Option<Multiset> {
    let k = cur.u64()?;
    if k == 0 || k > MAX_SNAPSHOT_K {
        return None;
    }
    let symbols = take_u64s(cur)?;
    // `Multiset::insert` panics on an out-of-universe symbol; a snapshot
    // from a corrupted file must decode-fail instead.
    if symbols.iter().any(|&s| s >= k) {
        return None;
    }
    Some(Multiset::from_symbols(k, &symbols))
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    out.push(u8::from(v.is_some()));
    put_u64(out, v.unwrap_or(0));
}

fn take_opt_u64(cur: &mut Cur<'_>) -> Option<Option<u64>> {
    let has = cur.flag()?;
    let v = cur.u64()?;
    Some(has.then_some(v))
}

/// Serialization of one protocol's receiver state, used to move a live
/// session between shards (handover) and to re-create one from a flight
/// recording (crash recovery).
pub trait StateCodec: Sized {
    /// Appends this state's encoding to `out`.
    fn encode_state(&self, out: &mut Vec<u8>);

    /// Decodes one state from the cursor; `None` on truncated or
    /// structurally invalid input. Callers check [`Cur::finish`] after.
    fn decode_state(cur: &mut Cur<'_>) -> Option<Self>;
}

impl StateCodec for AlphaReceiverState {
    fn encode_state(&self, out: &mut Vec<u8>) {
        put_bits(out, &self.received);
        put_usize(out, self.written);
    }

    fn decode_state(cur: &mut Cur<'_>) -> Option<Self> {
        Some(AlphaReceiverState {
            received: take_bits(cur)?,
            written: take_usize(cur)?,
        })
    }
}

impl StateCodec for BetaReceiverState {
    fn encode_state(&self, out: &mut Vec<u8>) {
        put_multiset(out, &self.burst);
        put_bits(out, &self.decoded);
        put_usize(out, self.written);
        put_u32(out, self.decode_failures);
    }

    fn decode_state(cur: &mut Cur<'_>) -> Option<Self> {
        Some(BetaReceiverState {
            burst: take_multiset(cur)?,
            decoded: take_bits(cur)?,
            written: take_usize(cur)?,
            decode_failures: cur.u32()?,
        })
    }
}

impl StateCodec for GammaReceiverState {
    fn encode_state(&self, out: &mut Vec<u8>) {
        put_multiset(out, &self.burst);
        put_u64(out, self.pending_acks);
        put_bits(out, &self.decoded);
        put_usize(out, self.written);
        put_u32(out, self.decode_failures);
    }

    fn decode_state(cur: &mut Cur<'_>) -> Option<Self> {
        Some(GammaReceiverState {
            burst: take_multiset(cur)?,
            pending_acks: cur.u64()?,
            decoded: take_bits(cur)?,
            written: take_usize(cur)?,
            decode_failures: cur.u32()?,
        })
    }
}

impl StateCodec for FramedReceiverState {
    fn encode_state(&self, out: &mut Vec<u8>) {
        put_multiset(out, &self.burst);
        put_bits(out, &self.decoded);
        put_usize(out, self.written);
        put_u32(out, self.decode_failures);
    }

    fn decode_state(cur: &mut Cur<'_>) -> Option<Self> {
        Some(FramedReceiverState {
            burst: take_multiset(cur)?,
            decoded: take_bits(cur)?,
            written: take_usize(cur)?,
            decode_failures: cur.u32()?,
        })
    }
}

impl StateCodec for PipelinedReceiverState {
    fn encode_state(&self, out: &mut Vec<u8>) {
        put_u32(out, self.bursts.len() as u32);
        for b in &self.bursts {
            put_multiset(out, b);
        }
        put_u32(out, self.staged.len() as u32);
        for s in &self.staged {
            out.push(u8::from(s.is_some()));
            if let Some(block) = s {
                put_bits(out, block);
            }
        }
        put_u64(out, self.commit_tag);
        put_bits(out, &self.decoded);
        put_usize(out, self.written);
        put_u64s(out, self.ack_queue.iter().copied());
        put_u32(out, self.decode_failures);
    }

    fn decode_state(cur: &mut Cur<'_>) -> Option<Self> {
        let n_bursts = cur.u32()? as usize;
        if n_bursts > MAX_SNAPSHOT_ELEMS {
            return None;
        }
        let bursts = (0..n_bursts)
            .map(|_| take_multiset(cur))
            .collect::<Option<Vec<_>>>()?;
        let n_staged = cur.u32()? as usize;
        if n_staged > MAX_SNAPSHOT_ELEMS {
            return None;
        }
        let mut staged = Vec::with_capacity(n_staged.min(64));
        for _ in 0..n_staged {
            staged.push(if cur.flag()? {
                Some(take_bits(cur)?)
            } else {
                None
            });
        }
        Some(PipelinedReceiverState {
            bursts,
            staged,
            commit_tag: cur.u64()?,
            decoded: take_bits(cur)?,
            written: take_usize(cur)?,
            ack_queue: VecDeque::from(take_u64s(cur)?),
            decode_failures: cur.u32()?,
        })
    }
}

impl StateCodec for StenningReceiverState {
    fn encode_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.expected_seq);
        put_bits(out, &self.received);
        put_usize(out, self.written);
        put_u64s(out, self.ack_queue.iter().copied());
    }

    fn decode_state(cur: &mut Cur<'_>) -> Option<Self> {
        Some(StenningReceiverState {
            expected_seq: cur.u64()?,
            received: take_bits(cur)?,
            written: take_usize(cur)?,
            ack_queue: VecDeque::from(take_u64s(cur)?),
        })
    }
}

impl StateCodec for AltBitReceiverState {
    fn encode_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.expected_tag);
        put_bits(out, &self.received);
        put_usize(out, self.written);
        put_u64s(out, self.ack_queue.iter().copied());
    }

    fn decode_state(cur: &mut Cur<'_>) -> Option<Self> {
        Some(AltBitReceiverState {
            expected_tag: cur.u64()?,
            received: take_bits(cur)?,
            written: take_usize(cur)?,
            ack_queue: VecDeque::from(take_u64s(cur)?),
        })
    }
}

impl StateCodec for StabStenningReceiverState {
    fn encode_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.expected);
        put_bits(out, &self.received);
        put_usize(out, self.written);
        put_opt_u64(out, self.pending_ack);
        out.push(u8::from(self.synced));
    }

    fn decode_state(cur: &mut Cur<'_>) -> Option<Self> {
        Some(StabStenningReceiverState {
            expected: cur.u64()?,
            received: take_bits(cur)?,
            written: take_usize(cur)?,
            pending_ack: take_opt_u64(cur)?,
            synced: cur.flag()?,
        })
    }
}

impl StateCodec for StabBetaReceiverState {
    fn encode_state(&self, out: &mut Vec<u8>) {
        put_multiset(out, &self.burst);
        put_bits(out, &self.decoded);
        put_usize(out, self.written);
        put_u64(out, self.silent_steps);
        put_u32(out, self.resets);
        put_u32(out, self.decode_failures);
    }

    fn decode_state(cur: &mut Cur<'_>) -> Option<Self> {
        Some(StabBetaReceiverState {
            burst: take_multiset(cur)?,
            decoded: take_bits(cur)?,
            written: take_usize(cur)?,
            silent_steps: cur.u64()?,
            resets: cur.u32()?,
            decode_failures: cur.u32()?,
        })
    }
}

fn put_kind(out: &mut Vec<u8>, kind: ProtocolKind) {
    // Same tag space as the flight-record format, so a postmortem can
    // name the protocol of a recovered snapshot without a second table.
    let (tag, k, window, timeout) = match kind {
        ProtocolKind::Alpha => (1, 0, 0, None),
        ProtocolKind::Beta { k } => (2, k, 0, None),
        ProtocolKind::Gamma { k } => (3, k, 0, None),
        ProtocolKind::AltBit { timeout_steps } => (4, 0, 0, timeout_steps),
        ProtocolKind::Framed { k } => (5, k, 0, None),
        ProtocolKind::BetaWindow { k } => (6, k, 0, None),
        ProtocolKind::Stenning { timeout_steps } => (7, 0, 0, timeout_steps),
        ProtocolKind::Pipelined { k, window } => (8, k, window, None),
        ProtocolKind::StabStenning { timeout_steps } => (9, 0, 0, timeout_steps),
        ProtocolKind::StabBeta { k } => (10, k, 0, None),
    };
    out.push(tag);
    put_u64(out, k);
    put_u64(out, window);
    out.push(u8::from(timeout.is_some()));
    put_u64(out, timeout.unwrap_or(0));
}

fn take_kind(cur: &mut Cur<'_>) -> Option<ProtocolKind> {
    let tag = cur.u8()?;
    let k = cur.u64()?;
    let window = cur.u64()?;
    let timeout_steps = take_opt_u64(cur)?;
    Some(match tag {
        1 => ProtocolKind::Alpha,
        2 => ProtocolKind::Beta { k },
        3 => ProtocolKind::Gamma { k },
        4 => ProtocolKind::AltBit { timeout_steps },
        5 => ProtocolKind::Framed { k },
        6 => ProtocolKind::BetaWindow { k },
        7 => ProtocolKind::Stenning { timeout_steps },
        8 => ProtocolKind::Pipelined { k, window },
        9 => ProtocolKind::StabStenning { timeout_steps },
        10 => ProtocolKind::StabBeta { k },
        _ => return None,
    })
}

/// Everything needed to re-create one live receiver session: identity,
/// protocol, progress, and the protocol automaton's serialized state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// The session id (wire-v2 demux key).
    pub session: u32,
    /// The protocol this session runs.
    pub kind: ProtocolKind,
    /// The expected transfer length `n`.
    pub n: u32,
    /// The shard's next outgoing frame sequence number for this session.
    pub seq: u64,
    /// The session's output `Y` so far (drives the prefix invariant).
    pub written: Vec<Message>,
    /// The receiver automaton's state, via [`StateCodec`].
    pub state: Vec<u8>,
}

impl SessionSnapshot {
    /// Encodes the snapshot. Layout (all integers big-endian):
    ///
    /// ```text
    /// version  u8     = 1
    /// session  u32
    /// kind     tag u8 | k u64 | window u64 | timeout flag u8 + u64
    /// n        u32
    /// seq      u64
    /// written  count u32 | packed bits (LSB-first, zero padding)
    /// state    len u16 | bytes
    /// ```
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.state.len());
        out.push(SNAPSHOT_VERSION);
        put_u32(&mut out, self.session);
        put_kind(&mut out, self.kind);
        put_u32(&mut out, self.n);
        put_u64(&mut out, self.seq);
        put_bits(&mut out, &self.written);
        put_u16(
            &mut out,
            u16::try_from(self.state.len()).unwrap_or(u16::MAX),
        );
        out.extend(self.state.iter().take(usize::from(u16::MAX)));
        out
    }

    /// Decodes a snapshot, requiring the input to be exactly one
    /// snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on truncation, structural corruption, a future
    /// version byte, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<SessionSnapshot, SnapshotError> {
        let mut cur = Cur::new(bytes);
        let version = cur.u8().ok_or(SnapshotError::Truncated)?;
        if version > SNAPSHOT_VERSION {
            return Err(SnapshotError::FutureVersion { got: version });
        }
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Malformed("unknown snapshot version 0"));
        }
        let session = cur.u32().ok_or(SnapshotError::Truncated)?;
        let kind = take_kind(&mut cur).ok_or(SnapshotError::Malformed("protocol kind"))?;
        let n = cur.u32().ok_or(SnapshotError::Truncated)?;
        let seq = cur.u64().ok_or(SnapshotError::Truncated)?;
        let written = take_bits(&mut cur).ok_or(SnapshotError::Malformed("written bits"))?;
        let state_len = usize::from(cur.u16().ok_or(SnapshotError::Truncated)?);
        let state = cur
            .take(state_len)
            .ok_or(SnapshotError::Truncated)?
            .to_vec();
        let extra = cur.remaining();
        cur.finish().ok_or(SnapshotError::TrailingBytes { extra })?;
        Ok(SessionSnapshot {
            session,
            kind,
            n,
            seq,
            written,
            state,
        })
    }
}

/// Encodes one state value to standalone bytes (the
/// [`SessionSnapshot::state`] field).
pub fn state_to_bytes<S: StateCodec>(state: &S) -> Vec<u8> {
    let mut out = Vec::new();
    state.encode_state(&mut out);
    out
}

/// Decodes one state value from standalone bytes, requiring full
/// consumption.
#[must_use]
pub fn state_from_bytes<S: StateCodec>(bytes: &[u8]) -> Option<S> {
    let mut cur = Cur::new(bytes);
    let state = S::decode_state(&mut cur)?;
    cur.finish()?;
    Some(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<S: StateCodec + PartialEq + std::fmt::Debug>(state: &S) {
        let bytes = state_to_bytes(state);
        let back: S = state_from_bytes(&bytes).expect("own encoding must decode");
        assert_eq!(&back, state);
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let _ = state_from_bytes::<S>(&bytes[..cut]);
        }
    }

    #[test]
    fn every_receiver_state_round_trips() {
        roundtrip(&AlphaReceiverState {
            received: vec![true, false, true],
            written: 2,
        });
        roundtrip(&BetaReceiverState {
            burst: Multiset::from_symbols(4, &[1, 1, 3]),
            decoded: vec![false, true],
            written: 1,
            decode_failures: 0,
        });
        roundtrip(&GammaReceiverState {
            burst: Multiset::from_symbols(8, &[7]),
            pending_acks: 3,
            decoded: vec![true; 9],
            written: 9,
            decode_failures: 1,
        });
        roundtrip(&FramedReceiverState {
            burst: Multiset::empty(4),
            decoded: Vec::new(),
            written: 0,
            decode_failures: 0,
        });
        roundtrip(&PipelinedReceiverState {
            bursts: vec![Multiset::from_symbols(4, &[0, 2]), Multiset::empty(4)],
            staged: vec![Some(vec![true, true, false]), None],
            commit_tag: 1,
            decoded: vec![false; 8],
            written: 8,
            ack_queue: VecDeque::from(vec![4, 5, 6]),
            decode_failures: 2,
        });
        roundtrip(&StenningReceiverState {
            expected_seq: 12,
            received: vec![true, false],
            written: 2,
            ack_queue: VecDeque::from(vec![10, 11]),
        });
        roundtrip(&AltBitReceiverState {
            expected_tag: 1,
            received: vec![false],
            written: 1,
            ack_queue: VecDeque::new(),
        });
        roundtrip(&StabStenningReceiverState {
            expected: 3,
            received: vec![true, true, true],
            written: 3,
            pending_ack: Some(2),
            synced: false,
        });
        roundtrip(&StabBetaReceiverState {
            burst: Multiset::from_symbols(4, &[3, 3]),
            decoded: vec![true],
            written: 1,
            silent_steps: 4,
            resets: 1,
            decode_failures: 0,
        });
    }

    #[test]
    fn session_snapshot_round_trips() {
        let snap = SessionSnapshot {
            session: 42,
            kind: ProtocolKind::Beta { k: 4 },
            n: 16,
            seq: 7,
            written: vec![true, false, true, true, false],
            state: state_to_bytes(&BetaReceiverState {
                burst: Multiset::from_symbols(4, &[2]),
                decoded: vec![true, false, true, true, false],
                written: 5,
                decode_failures: 0,
            }),
        };
        let bytes = snap.encode();
        assert_eq!(SessionSnapshot::decode(&bytes).expect("decode"), snap);
        for cut in 0..bytes.len() {
            assert!(
                SessionSnapshot::decode(&bytes[..cut]).is_err(),
                "prefix {cut} must not decode"
            );
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(
            SessionSnapshot::decode(&trailing),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn golden_bytes_are_pinned() {
        // An alpha session: the simplest non-trivial snapshot. Any layout
        // change must bump SNAPSHOT_VERSION, not silently re-pin these.
        let snap = SessionSnapshot {
            session: 7,
            kind: ProtocolKind::Alpha,
            n: 2,
            seq: 3,
            written: vec![true, false, true],
            state: state_to_bytes(&AlphaReceiverState {
                received: vec![true, false, true],
                written: 3,
            }),
        };
        let bytes = snap.encode();
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            1,                                  // version
            0, 0, 0, 7,                         // session
            1,                                  // kind tag: alpha
            0, 0, 0, 0, 0, 0, 0, 0,             // k
            0, 0, 0, 0, 0, 0, 0, 0,             // window
            0,                                  // timeout flag
            0, 0, 0, 0, 0, 0, 0, 0,             // timeout value
            0, 0, 0, 2,                         // n
            0, 0, 0, 0, 0, 0, 0, 3,             // seq
            0, 0, 0, 3, 0b101,                  // written: 3 bits, LSB-first
            0, 13,                              // state length
            0, 0, 0, 3, 0b101,                  // state.received
            0, 0, 0, 0, 0, 0, 0, 3,             // state.written
        ];
        assert_eq!(bytes, expected);
    }

    #[test]
    fn every_protocol_kind_round_trips_through_the_header() {
        for kind in [
            ProtocolKind::Alpha,
            ProtocolKind::Beta { k: 4 },
            ProtocolKind::Gamma { k: 9 },
            ProtocolKind::AltBit {
                timeout_steps: Some(12),
            },
            ProtocolKind::Framed { k: 2 },
            ProtocolKind::BetaWindow { k: 5 },
            ProtocolKind::Stenning {
                timeout_steps: None,
            },
            ProtocolKind::Pipelined { k: 4, window: 2 },
            ProtocolKind::StabStenning {
                timeout_steps: Some(1),
            },
            ProtocolKind::StabBeta { k: 3 },
        ] {
            let snap = SessionSnapshot {
                session: 1,
                kind,
                n: 8,
                seq: 0,
                written: Vec::new(),
                state: Vec::new(),
            };
            assert_eq!(
                SessionSnapshot::decode(&snap.encode())
                    .expect("roundtrip")
                    .kind,
                kind
            );
        }
    }

    #[test]
    fn corrupted_snapshots_fail_cleanly() {
        // Out-of-universe multiset symbol: decode error, not a panic.
        let mut bad_burst = Vec::new();
        put_u64(&mut bad_burst, 4); // universe k = 4
        put_u64s(&mut bad_burst, [9u64].into_iter()); // symbol 9 >= 4
        put_bits(&mut bad_burst, &[]);
        put_usize(&mut bad_burst, 0);
        put_u32(&mut bad_burst, 0);
        assert!(state_from_bytes::<BetaReceiverState>(&bad_burst).is_none());

        // Zero universe is rejected before Multiset::empty can assert.
        let mut zero_k = Vec::new();
        put_u64(&mut zero_k, 0);
        put_u64s(&mut zero_k, [].into_iter());
        assert!(state_from_bytes::<BetaReceiverState>(&zero_k).is_none());

        // Absurd declared element count larger than the input: no
        // allocation, clean failure.
        let mut huge = Vec::new();
        put_u64(&mut huge, 4);
        put_u32(&mut huge, u32::MAX); // claims 4 billion symbols
        assert!(state_from_bytes::<BetaReceiverState>(&huge).is_none());

        // Nonzero padding bits break the one-encoding rule.
        let mut padded = Vec::new();
        put_bits(&mut padded, &[true]);
        *padded.last_mut().expect("bit byte") |= 0b1000_0000;
        put_usize(&mut padded, 1);
        assert!(state_from_bytes::<AlphaReceiverState>(&padded).is_none());

        // Bad flag byte in an Option<u64>.
        let mut bad_flag = Vec::new();
        put_u64(&mut bad_flag, 0);
        put_bits(&mut bad_flag, &[]);
        put_usize(&mut bad_flag, 0);
        bad_flag.push(7); // pending_ack flag must be 0 or 1
        put_u64(&mut bad_flag, 0);
        bad_flag.push(0);
        assert!(state_from_bytes::<StabStenningReceiverState>(&bad_flag).is_none());
    }

    #[test]
    fn future_version_is_rejected() {
        let snap = SessionSnapshot {
            session: 1,
            kind: ProtocolKind::Alpha,
            n: 1,
            seq: 0,
            written: Vec::new(),
            state: Vec::new(),
        };
        let mut bytes = snap.encode();
        bytes[0] = SNAPSHOT_VERSION + 1;
        assert_eq!(
            SessionSnapshot::decode(&bytes),
            Err(SnapshotError::FutureVersion {
                got: SNAPSHOT_VERSION + 1
            })
        );
    }
}
