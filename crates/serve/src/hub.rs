//! The loopback transport: many clients, one server, zero sockets.
//!
//! A [`MemHub`] is a shared mailbox fabric. Every client pushes encoded
//! v2 frames into one central server inbox; the server drains that inbox
//! in whole batches (one lock acquisition per batch, the in-process
//! analogue of `recvmmsg`), and shard egress pushes reply frames into
//! per-client inboxes keyed by session id. [`HubClientTransport`] adapts
//! a client's view of the hub to the ordinary [`Transport`] trait, so
//! the existing single-session real-time driver runs over it unchanged.

use crate::server::{EgressSink, ServeTransport};
use rstp_core::{Packet, SessionId};
use rstp_net::{decode_any, Frame, FrameBuf, NetError, Transport, TransportStats, WireCodec};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError, TryLockError};

type Inbox = Arc<Mutex<VecDeque<FrameBuf>>>;

/// The shared loopback fabric joining one server to many clients.
#[derive(Clone, Default)]
pub struct MemHub {
    /// All client → server datagrams, in arrival order.
    server_inbox: Inbox,
    /// Per-session client inboxes for server → client datagrams.
    clients: Arc<Mutex<HashMap<u32, Inbox>>>,
}

impl MemHub {
    /// An empty hub.
    #[must_use]
    pub fn new() -> Self {
        MemHub::default()
    }

    /// Registers a client for `session` and returns its [`Transport`]
    /// endpoint. Frames the client sends carry `session` in the wire v2
    /// extension; frames the server addresses to `session` land in this
    /// client's inbox.
    #[must_use]
    pub fn client_transport(&self, session: SessionId, codec: WireCodec) -> HubClientTransport {
        let inbox: Inbox = Arc::default();
        self.clients
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(session.raw(), inbox.clone());
        HubClientTransport {
            session,
            codec,
            seq: 0,
            server_inbox: self.server_inbox.clone(),
            inbox,
            stats: TransportStats::default(),
        }
    }
}

impl ServeTransport for MemHub {
    fn recv_batch(&mut self, out: &mut Vec<FrameBuf>, max: usize) -> Result<usize, NetError> {
        // Nonblocking, like a socket: a contended inbox yields an empty
        // batch and the pump's next round retries, instead of parking the
        // pump behind a client mid-push. A poisoned mutex means some peer
        // thread panicked while holding it; the queue holds plain bytes,
        // so recover the data and keep serving the surviving sessions.
        let mut inbox = match self.server_inbox.try_lock() {
            Ok(inbox) => inbox,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return Ok(0),
        };
        let take = inbox.len().min(max);
        out.extend(inbox.drain(..take));
        Ok(take)
    }

    fn egress(&self) -> Result<Box<dyn EgressSink>, NetError> {
        Ok(Box::new(HubEgress {
            clients: self.clients.clone(),
            cached: HashMap::new(),
        }))
    }
}

/// Shard-side egress into the per-client inboxes.
struct HubEgress {
    clients: Arc<Mutex<HashMap<u32, Inbox>>>,
    /// Sessions are pinned to one shard, so each egress handle caches the
    /// inboxes it has resolved and touches the shared map only on first
    /// contact with a session.
    cached: HashMap<u32, Inbox>,
}

impl EgressSink for HubEgress {
    fn send_batch(&mut self, frames: &[(u32, FrameBuf)]) -> Result<usize, NetError> {
        let mut delivered = 0;
        for (session, bytes) in frames {
            if !self.cached.contains_key(session) {
                // First contact with a session: resolve its inbox from the
                // shared map. Registration happens before any traffic, so
                // contention here means another shard is mid-registration
                // for a *different* session — skip, and this frame drops
                // like any unroutable datagram (the hub mirrors UDP).
                let map = match self.clients.try_lock() {
                    Ok(map) => map,
                    Err(TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(TryLockError::WouldBlock) => continue,
                };
                match map.get(session) {
                    Some(inbox) => {
                        self.cached.insert(*session, Arc::clone(inbox));
                    }
                    // A frame for a client that never registered is
                    // dropped: the hub mirrors UDP, not TCP.
                    None => continue,
                }
            }
            let Some(inbox) = self.cached.get(session) else {
                continue;
            };
            // A contended client inbox drops the frame rather than
            // stalling the whole batch behind one slow client.
            let mut queue = match inbox.try_lock() {
                Ok(queue) => queue,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => continue,
            };
            queue.push_back(*bytes);
            delivered += 1;
        }
        Ok(delivered)
    }
}

/// One client's [`Transport`] endpoint over a [`MemHub`].
pub struct HubClientTransport {
    session: SessionId,
    codec: WireCodec,
    seq: u64,
    server_inbox: Inbox,
    inbox: Inbox,
    stats: TransportStats,
}

impl Transport for HubClientTransport {
    fn send(&mut self, packet: Packet, sent_at_micros: u64) -> Result<(), NetError> {
        let bytes = self
            .codec
            .encode_with_session(packet, self.seq, sent_at_micros, self.session);
        self.seq += 1;
        self.server_inbox
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(bytes.into());
        self.stats.frames_sent += 1;
        Ok(())
    }

    fn poll_recv(&mut self) -> Result<Option<Frame>, NetError> {
        loop {
            let bytes = {
                let mut inbox = self.inbox.lock().unwrap_or_else(PoisonError::into_inner);
                match inbox.pop_front() {
                    Some(bytes) => bytes,
                    None => return Ok(None),
                }
            };
            match decode_any(&bytes) {
                Ok(frame) if frame.session == Some(self.session) => {
                    self.stats.frames_received += 1;
                    return Ok(Some(frame));
                }
                // Misrouted or malformed: drop and keep draining. The
                // server only writes to the inbox it resolved by id, so
                // this is defence in depth, not an expected path.
                Ok(_) | Err(_) => {
                    self.stats.decode_errors += 1;
                }
            }
        }
    }

    fn local_stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_net::ProtocolId;

    fn codec() -> WireCodec {
        WireCodec::new(ProtocolId::Beta, 4).expect("codec")
    }

    #[test]
    fn client_sends_land_in_the_server_inbox_with_their_session() {
        let mut hub = MemHub::new();
        let mut a = hub.client_transport(SessionId::new(7), codec());
        let mut b = hub.client_transport(SessionId::new(9), codec());
        a.send(Packet::Data(1), 100).expect("send");
        b.send(Packet::Data(2), 200).expect("send");

        let mut batch = Vec::new();
        let got = hub.recv_batch(&mut batch, 16).expect("drain");
        assert_eq!(got, 2);
        let f0 = decode_any(&batch[0]).expect("frame");
        let f1 = decode_any(&batch[1]).expect("frame");
        assert_eq!(f0.session, Some(SessionId::new(7)));
        assert_eq!(f1.session, Some(SessionId::new(9)));
        assert_eq!(f0.packet, Packet::Data(1));
    }

    #[test]
    fn recv_batch_respects_the_batch_cap() {
        let mut hub = MemHub::new();
        let mut a = hub.client_transport(SessionId::new(1), codec());
        for i in 0..10 {
            a.send(Packet::Data(i), 0).expect("send");
        }
        let mut batch = Vec::new();
        assert_eq!(hub.recv_batch(&mut batch, 4).expect("drain"), 4);
        assert_eq!(hub.recv_batch(&mut batch, 100).expect("drain"), 6);
        assert_eq!(batch.len(), 10);
    }

    #[test]
    fn egress_routes_by_session_and_drops_unknown_clients() {
        let hub = MemHub::new();
        let mut a = hub.client_transport(SessionId::new(3), codec());
        let mut sink = hub.egress().expect("egress");
        let frame =
            FrameBuf::from(codec().encode_with_session(Packet::Ack(5), 0, 42, SessionId::new(3)));
        let stranger =
            FrameBuf::from(codec().encode_with_session(Packet::Ack(5), 0, 42, SessionId::new(99)));
        let delivered = sink
            .send_batch(&[(3, frame), (99, stranger)])
            .expect("send");
        assert_eq!(delivered, 1);
        let got = a.poll_recv().expect("recv").expect("frame");
        assert_eq!(got.packet, Packet::Ack(5));
        assert_eq!(a.poll_recv().expect("recv"), None);
    }

    #[test]
    fn client_drops_misrouted_frames() {
        let hub = MemHub::new();
        let mut a = hub.client_transport(SessionId::new(3), codec());
        let mut sink = hub.egress().expect("egress");
        // A frame whose body says session 8 pushed into client 3's inbox.
        let lying =
            FrameBuf::from(codec().encode_with_session(Packet::Ack(1), 0, 0, SessionId::new(8)));
        sink.send_batch(&[(3, lying)]).expect("send");
        assert_eq!(a.poll_recv().expect("recv"), None);
        assert_eq!(a.local_stats().decode_errors, 1);
    }
}
