//! # rstp-serve — sharded multi-session RSTP transfer server
//!
//! Everything below `rstp-net` drives exactly one transmitter–receiver
//! pair: one automaton, one transport, one thread sleeping through one
//! `[c1, c2]` schedule. This crate is the server-side answer to *many*
//! concurrent transfers multiplexed over one socket, while preserving
//! each session's paper semantics — per-process pacing in `[c1, c2]`,
//! `d`-bounded delivery, and the prefix-safety obligation that every
//! receiver output `Y` is exactly its session's input `X`.
//!
//! The architecture (see `docs/SERVE.md` for the full discussion):
//!
//! * [`wheel`] — a hierarchical timer wheel: one thread paces thousands
//!   of session deadlines without one sleeper per session.
//! * [`endpoint`] — object-safe wrapper over the protocol automata, so a
//!   shard can own a heterogeneous session table (α next to β(k) next to
//!   γ(k)) behind one trait.
//! * [`metrics`] — per-shard and aggregate counters: active/completed
//!   sessions, per-session effort, latency percentiles, deadline misses.
//! * [`shard`] — the worker: a session table slice, its timer wheel, a
//!   bounded ingress queue, and batched egress. No global lock is taken
//!   on the data path.
//! * [`hub`] — the loopback transport: a server inbox and per-client
//!   inboxes, drained whole batches at a time.
//! * [`udp`] — the same server loop over one UDP socket, demultiplexing
//!   by the frame-v2 session id.
//! * [`server`] — session admission, frame routing, shard lifecycle.
//! * [`swarm`] — the M-client loopback load harness behind `rstp swarm`,
//!   including the simulator-oracle cross-check.
//!
//! Frames carry their session in the wire v2 extension
//! ([`rstp_net::FLAG_SESSION`]); single-session v1 traffic is untouched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod endpoint;
pub mod faults;
pub mod hub;
pub mod metrics;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod swarm;
pub mod udp;
pub mod wheel;

pub use endpoint::{receiver_endpoint, restore_receiver_endpoint, SessionEndpoint, StepEffect};
pub use faults::{FaultEvent, FaultPlan};
pub use hub::{HubClientTransport, MemHub};
pub use metrics::{ServeReport, SessionStats, ShardReport};
pub use server::{run_server, EgressSink, ServeConfig, ServeTransport, SessionSpec};
pub use shard::ShardMsg;
pub use snapshot::{SessionSnapshot, SnapshotError, StateCodec, SNAPSHOT_VERSION};
pub use swarm::{
    overload_diagnosis, run_swarm, run_swarm_sessions, SwarmConfig, SwarmReport, SwarmTransport,
};
pub use udp::{UdpServerTransport, UdpSessionClient};
pub use wheel::TimerWheel;
