//! Session admission, frame routing, and shard lifecycle.
//!
//! [`run_server`] is the pump: it drains the transport in batches of up
//! to `B` datagrams per call, peels each frame's wire v2 session id, and
//! hands the frame to the owning shard over a bounded queue. Admission
//! is strict — a session beyond `max_sessions`, with a duplicate id, or
//! arriving while its shard's queue is full is *rejected*, because the
//! alternative (blocking the pump) would stall every admitted session
//! past its `c2` window. Frames for admitted sessions likewise drop
//! rather than block when a queue is full; the protocols already
//! tolerate channel loss, they do not tolerate a frozen clock.

use crate::endpoint::restore_receiver_endpoint;
use crate::faults::{FaultEvent, FaultPlan};
use crate::metrics::{ServeReport, ShardReport};
use crate::shard::{run_shard, ResumeSession, ShardMsg, ShardParams};
use crate::snapshot::SessionSnapshot;
use rstp_core::{SessionId, TimingParams};
use rstp_net::{decode_any, decode_control, ControlKind, FrameBuf, NetError, Pace, TickClock};
use rstp_record::{
    shard_file_name, Event, RecStats, RecorderSet, Recording, RunMeta, ShardRecorder,
};
use rstp_sim::ProtocolKind;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// A shard-side egress sink: ships encoded frames, addressed by raw
/// session id, back toward their clients in batches.
pub trait EgressSink: Send {
    /// Sends a batch of `(session id, frame bytes)` pairs. Returns how
    /// many were actually shipped (unroutable frames drop silently —
    /// the sink mirrors UDP, not TCP).
    ///
    /// Frames travel as [`FrameBuf`] — fixed-capacity, `Copy` — so a
    /// conforming sink neither allocates nor blocks per frame on the
    /// steady-state path (the `blocking-in-nonblocking` and
    /// `alloc-in-steady-state` analysis passes enforce this).
    ///
    /// # Errors
    ///
    /// [`NetError`] only for unrecoverable transport failure.
    fn send_batch(&mut self, frames: &[(u32, FrameBuf)]) -> Result<usize, NetError>;
}

/// The server's ingress side: a source of raw datagrams plus a factory
/// for per-shard egress sinks.
pub trait ServeTransport {
    /// Drains up to `max` datagrams into `out` without blocking. Returns
    /// how many were appended.
    ///
    /// # Errors
    ///
    /// [`NetError`] on unrecoverable transport failure.
    fn recv_batch(&mut self, out: &mut Vec<FrameBuf>, max: usize) -> Result<usize, NetError>;

    /// A new egress sink (one per shard, so shards never share a lock
    /// on the send path).
    ///
    /// # Errors
    ///
    /// [`NetError`] if the underlying socket cannot be cloned.
    fn egress(&self) -> Result<Box<dyn EgressSink>, NetError>;
}

/// One planned transfer: the server runs this session's *receiver*.
#[derive(Clone, Copy, Debug)]
pub struct SessionSpec {
    /// Wire session id (must be unique across the run).
    pub id: SessionId,
    /// Protocol the session speaks.
    pub kind: ProtocolKind,
    /// Messages the transfer carries.
    pub n: usize,
}

/// Configuration of a server run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Timing parameters `(c1, c2, d)` in ticks.
    pub params: TimingParams,
    /// Wall-clock length of one tick.
    pub tick: Duration,
    /// Step pace of every server-side session within `[c1, c2]`.
    pub pace: Pace,
    /// Worker shard count; sessions are hashed by `id % shards`.
    pub shards: usize,
    /// Batch bound `B`: datagrams drained per ingress call and frames
    /// flushed per egress call.
    pub batch: usize,
    /// Bound of each shard's ingress queue (frames + admissions).
    pub queue_cap: usize,
    /// Admission ceiling across all shards.
    pub max_sessions: usize,
    /// Timing tolerance for miss/violation accounting (driver-identical).
    pub slack: Duration,
    /// Quiet ticks a session must drain after its last write to count
    /// as completed.
    pub grace_ticks: u64,
    /// Hard wall-clock cap on the whole run.
    pub max_wall: Duration,
    /// Directory for the flight recording (one `shard-NN.rec` per
    /// shard); `None` disables recording entirely.
    pub record_dir: Option<PathBuf>,
    /// Input seed stamped into each recording's metadata so a
    /// postmortem can regenerate the swarm inputs (`rstp replay`).
    pub record_seed: Option<u64>,
    /// Scripted fault-injection plan the pump executes (`None` runs
    /// fault-free). See [`crate::faults`] for the grammar.
    pub faults: Option<FaultPlan>,
}

impl ServeConfig {
    /// Defaults mirroring the single-session driver where the knobs
    /// overlap: slow pace, slack of a quarter tick, grace of
    /// `2·(d + c2)` ticks; plus 4 shards, batches of 32, queues of 256,
    /// and room for 1024 sessions.
    #[must_use]
    pub fn new(params: TimingParams, tick: Duration) -> Self {
        ServeConfig {
            params,
            tick,
            pace: Pace::Slow,
            shards: 4,
            batch: 32,
            queue_cap: 256,
            max_sessions: 1024,
            slack: tick / 4,
            grace_ticks: 2 * (params.d().ticks() + params.c2().ticks()),
            max_wall: Duration::from_secs(60),
            record_dir: None,
            record_seed: None,
            faults: None,
        }
    }

    /// Sets the shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the I/O batch bound.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the per-shard ingress queue bound.
    #[must_use]
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    /// Sets the admission ceiling.
    #[must_use]
    pub fn with_max_sessions(mut self, max: usize) -> Self {
        self.max_sessions = max;
        self
    }

    /// Sets the pace.
    #[must_use]
    pub fn with_pace(mut self, pace: Pace) -> Self {
        self.pace = pace;
        self
    }

    /// Sets the hard wall-clock cap.
    #[must_use]
    pub fn with_max_wall(mut self, cap: Duration) -> Self {
        self.max_wall = cap;
        self
    }

    /// Enables the per-shard flight recorder, writing under `dir`.
    #[must_use]
    pub fn with_record(mut self, dir: impl Into<PathBuf>) -> Self {
        self.record_dir = Some(dir.into());
        self
    }

    /// Stamps the swarm input seed into the recording metadata.
    #[must_use]
    pub fn with_record_seed(mut self, seed: u64) -> Self {
        self.record_seed = Some(seed);
        self
    }

    /// Attaches a scripted fault-injection plan.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// Shard → pump messages: the handover control plane. Control frames
/// ride through the pump rather than shard-to-shard channels so a
/// routing flip (REDIRECT) lands in the owner table atomically with the
/// frame's delivery order.
pub(crate) enum PumpMsg {
    /// Deliver an encoded wire-v3 control frame to a shard's queue.
    ToShard {
        /// Destination shard index.
        shard: usize,
        /// The encoded control frame.
        bytes: Vec<u8>,
    },
    /// A REDIRECT: re-route the session's ownership to the shard named
    /// in the payload, then deliver the frame there for activation.
    Redirect {
        /// The encoded REDIRECT frame.
        bytes: Vec<u8>,
    },
}

/// The pump tick a scheduled fault fires at.
fn fault_tick(ev: &FaultEvent) -> u64 {
    match *ev {
        FaultEvent::Kill { tick, .. }
        | FaultEvent::Restart { tick, .. }
        | FaultEvent::Panic { tick, .. }
        | FaultEvent::Drain { tick, .. } => tick,
        FaultEvent::Stall { from_tick, .. } | FaultEvent::HubDrop { from_tick, .. } => from_tick,
        FaultEvent::Auto { .. } => 0,
    }
}

/// Best-effort control-frame delivery: a full queue parks the frame for
/// retry on the next pump iteration (bounded — the handover protocol
/// retries end-to-end anyway), a dead shard drops it.
fn deliver_ctl(
    txs: &[SyncSender<ShardMsg>],
    dead: &[bool],
    pending_ctl: &mut VecDeque<(usize, Vec<u8>)>,
    shard: usize,
    bytes: Vec<u8>,
) {
    if shard >= txs.len() || dead.get(shard).copied().unwrap_or(true) {
        return;
    }
    match txs[shard].try_send(ShardMsg::Control(bytes)) {
        Ok(()) => {}
        Err(TrySendError::Full(ShardMsg::Control(b))) => {
            if pending_ctl.len() < 1024 {
                pending_ctl.push_back((shard, b));
            }
        }
        Err(_) => {}
    }
}

/// Delivers a must-arrive message (Crash/Panic/Resume) to a shard,
/// waiting out a full queue briefly. `false` if the shard is gone.
fn send_shard(tx: &SyncSender<ShardMsg>, mut msg: ShardMsg) -> bool {
    for _ in 0..2000 {
        match tx.try_send(msg) {
            Ok(()) => return true,
            Err(TrySendError::Full(m)) => {
                msg = m;
                thread::sleep(Duration::from_micros(100));
            }
            Err(TrySendError::Disconnected(_)) => return false,
        }
    }
    false
}

/// A live shard's command queue plus its worker's join handle.
type ShardHandle = (
    SyncSender<ShardMsg>,
    JoinHandle<Result<ShardReport, NetError>>,
);

/// Spawns one shard worker thread (initial bring-up and crash restarts
/// share this path).
fn spawn_shard(
    index: usize,
    config: &ServeConfig,
    clock: TickClock,
    egress: Box<dyn EgressSink>,
    completed: Arc<AtomicU64>,
    recorder: Option<ShardRecorder>,
    pump: Sender<PumpMsg>,
) -> Result<ShardHandle, NetError> {
    let (tx, rx) = sync_channel::<ShardMsg>(config.queue_cap.max(1));
    let sp = ShardParams {
        index,
        params: config.params,
        tick: config.tick,
        pace: config.pace,
        slack: config.slack,
        grace_ticks: config.grace_ticks,
        batch: config.batch.max(1),
    };
    let handle = thread::Builder::new()
        .name(format!("rstp-serve-shard-{index}"))
        .spawn(move || run_shard(sp, clock, rx, egress, completed, recorder, pump))
        .map_err(|e| NetError::Thread {
            what: format!("spawn shard {index}: {e}"),
        })?;
    Ok((tx, handle))
}

/// Outcome of trying to re-create one session from a shard recording.
enum Recovered {
    /// Restored and replayed to (at least) the acknowledged floor.
    Resumed(Box<ResumeSession>),
    /// The recording holds a completed verdict — nothing to recover.
    AlreadyComplete,
    /// No usable snapshot, a replay failure, or the replay fell short
    /// of the acknowledged floor: the session is lost.
    Lost,
}

/// Re-creates session `id` from its shard's flight recording: latest
/// snapshot, then replay of the events after it (recvs re-applied, pops
/// re-stepped, sends discarded — a duplicated ack is legal channel
/// behavior). The restart is accepted only if every `Write` in the
/// ledger — the acknowledged floor — is present *by content* in the
/// restored `Y`; anything less would be acknowledged loss.
fn recover_session(rec: &Recording, id: u32, params: TimingParams) -> Recovered {
    if rec.events.iter().any(
        |ev| matches!(ev, Event::Verdict { session, completed, .. } if *session == id && *completed),
    ) {
        return Recovered::AlreadyComplete;
    }

    let mut anchor: Option<(usize, &[u8])> = None;
    for (i, ev) in rec.events.iter().enumerate() {
        if let Event::Snapshot { session, state, .. } = ev {
            if *session == id {
                anchor = Some((i, state));
            }
        }
    }
    let Some((start, state)) = anchor else {
        return Recovered::Lost;
    };
    let Ok(snap) = SessionSnapshot::decode(state) else {
        return Recovered::Lost;
    };
    if snap.session != id {
        return Recovered::Lost;
    }
    let Ok(mut endpoint) = restore_receiver_endpoint(
        snap.kind,
        params,
        snap.n as usize,
        &snap.state,
        snap.written.clone(),
    ) else {
        return Recovered::Lost;
    };

    // Replay. Recorded order per deadline is pop, drained recvs, then
    // the step's effects — so a pop's step runs once its recvs are in:
    // when the *next* pop (or the end of the file) is reached.
    let mut seq = snap.seq;
    let mut open_pop = false;
    for ev in rec.events.iter().skip(start + 1) {
        match ev {
            Event::Rx { session, wire, .. } if *session == id => {
                let Ok(frame) = decode_any(wire) else {
                    return Recovered::Lost;
                };
                if endpoint.apply_recv(frame.packet).is_err() {
                    return Recovered::Lost;
                }
            }
            Event::WheelPop { session, .. } if *session == id => {
                if open_pop && endpoint.step().is_err() {
                    return Recovered::Lost;
                }
                open_pop = true;
            }
            Event::Tx { session, .. } if *session == id => seq += 1,
            _ => {}
        }
    }
    if open_pop && endpoint.step().is_err() {
        return Recovered::Lost;
    }

    // The no-acknowledged-loss floor, checked by content: `written` is
    // the cumulative count after each acknowledged write, `bit` its
    // value, so position `written − 1` of the restored Y must hold it.
    for ev in &rec.events {
        if let Event::Write {
            session,
            written,
            bit,
            ..
        } = ev
        {
            if *session != id {
                continue;
            }
            let ok = (*written as usize)
                .checked_sub(1)
                .and_then(|i| endpoint.written().get(i))
                .is_some_and(|got| got == bit);
            if !ok {
                return Recovered::Lost;
            }
        }
    }

    Recovered::Resumed(Box::new(ResumeSession {
        spec: SessionSpec {
            id: SessionId::new(id),
            kind: snap.kind,
            n: snap.n as usize,
        },
        endpoint,
        seq,
    }))
}

/// Recorder failures surface as I/O errors: recording is infrastructure
/// around the protocol run, not part of the model.
fn record_err(e: &rstp_record::RecordError) -> NetError {
    NetError::Io(std::io::Error::other(e.to_string()))
}

/// Runs the receiver side of every admitted session in `specs` over
/// `transport` until they all complete or `max_wall` expires.
///
/// The caller owns the clock so client endpoints can share its epoch
/// (latency stamps are only comparable on one epoch).
///
/// # Errors
///
/// [`NetError`] on transport failure, a shard hitting a model violation
/// (determinism, automaton rejection), or a panicked shard thread.
pub fn run_server<T: ServeTransport>(
    transport: &mut T,
    clock: TickClock,
    specs: &[SessionSpec],
    config: &ServeConfig,
) -> Result<ServeReport, NetError> {
    let shard_count = config.shards.max(1);
    let completed = Arc::new(AtomicU64::new(0));
    // Shard → pump control channel (handover frames and redirects).
    let (pump_tx, pump_rx) = channel::<PumpMsg>();

    // Flight recorder: one ring + writer thread per shard, created
    // before the shards so each takes its nonblocking handle with it.
    let (recorder_set, shard_recorders) = match &config.record_dir {
        Some(dir) => {
            let tick_micros = config.tick.as_micros().max(1) as u64;
            let (params, seed) = (config.params, config.record_seed);
            let (set, recorders) = RecorderSet::create(dir, shard_count, |shard| RunMeta {
                shard,
                c1: params.c1().ticks(),
                c2: params.c2().ticks(),
                d: params.d().ticks(),
                tick_micros,
                seed,
            })
            .map_err(|e| record_err(&e))?;
            (Some(set), recorders)
        }
        None => (None, Vec::new()),
    };
    let mut shard_recorders = shard_recorders.into_iter();

    // `handles` grows past `shard_count` when faults restart shards:
    // every epoch of every shard is joined at the end, so a panicked
    // thread is never silently forgotten.
    let mut txs: Vec<SyncSender<ShardMsg>> = Vec::with_capacity(shard_count);
    let mut handles: Vec<(usize, JoinHandle<Result<ShardReport, NetError>>)> = Vec::new();
    for index in 0..shard_count {
        let (tx, handle) = spawn_shard(
            index,
            config,
            clock,
            transport.egress()?,
            completed.clone(),
            shard_recorders.next(),
            pump_tx.clone(),
        )?;
        txs.push(tx);
        handles.push((index, handle));
    }

    // Admission: strict, non-blocking. Duplicates, table overflow, and a
    // full shard queue all reject.
    let mut owner: HashMap<u32, usize> = HashMap::new();
    let mut rejected: u64 = 0;
    let mut rejected_ids: Vec<u32> = Vec::new();
    let mut admitted: u64 = 0;
    for spec in specs {
        let raw = spec.id.raw();
        if owner.contains_key(&raw) || owner.len() >= config.max_sessions {
            rejected += 1;
            rejected_ids.push(raw);
            continue;
        }
        let shard = raw as usize % shard_count;
        match txs[shard].try_send(ShardMsg::Admit(*spec)) {
            Ok(()) => {
                owner.insert(raw, shard);
                admitted += 1;
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                rejected += 1;
                rejected_ids.push(raw);
            }
        }
    }

    // The pump: drain → demux → route, B datagrams at a time, with the
    // scripted fault schedule and the handover control plane threaded
    // through the same loop.
    let mut orphan_frames: u64 = 0;
    let mut decode_errors: u64 = 0;
    let mut overflow = vec![0u64; shard_count];
    let mut batch: Vec<FrameBuf> = Vec::with_capacity(config.batch.max(1));
    let schedule: Vec<FaultEvent> = config
        .faults
        .as_ref()
        .map(|p| p.schedule(shard_count))
        .unwrap_or_default();
    let mut next_fault = 0usize;
    let mut dead = vec![false; shard_count];
    let mut stall_end: u64 = 0;
    let mut drop_end: u64 = 0;
    let mut pending_ctl: VecDeque<(usize, Vec<u8>)> = VecDeque::new();
    let mut restarts: u64 = 0;
    let mut crashes: u64 = 0;
    let mut recovered_sessions: u64 = 0;
    let mut unrecoverable_sessions: u64 = 0;
    let mut hub_dropped_frames: u64 = 0;
    let tick_micros = config.tick.as_micros().max(1) as u64;
    // Nap briefly when the socket is dry — but never so long that a
    // kernel receive buffer (a few hundred datagrams on most systems)
    // could fill behind our back at coarse ticks.
    let idle_nap = (config.tick / 2).clamp(Duration::from_micros(50), Duration::from_micros(500));
    // Lame-duck linger: once every session has completed, keep pumping
    // until ingress has been dry for a grace period rather than exiting
    // on the spot. A client the scheduler stalled past its session's
    // quiet grace may still be owed its final acknowledgement — its
    // retransmission must reach the shard's retired-ghost re-acker, not
    // a torn-down hub. Every arriving frame re-arms the window, so the
    // pump stays up exactly as long as someone is still talking to it.
    let linger_ticks = config.grace_ticks.max(1);
    let mut last_ingress_tick: u64 = 0;
    let mut all_done_tick: Option<u64> = None;
    let pump_result = 'pump: loop {
        let now_tick = clock.now_micros() / tick_micros;
        if completed.load(Ordering::Relaxed) >= admitted {
            let done_at = *all_done_tick.get_or_insert(now_tick);
            let quiet_since = last_ingress_tick.max(done_at);
            if now_tick.saturating_sub(quiet_since) >= linger_ticks {
                break Ok(());
            }
        } else {
            all_done_tick = None;
        }
        if clock.epoch().elapsed() > config.max_wall {
            break Ok(());
        }

        // Fire every scripted fault whose tick has arrived.
        while next_fault < schedule.len() && fault_tick(&schedule[next_fault]) <= now_tick {
            let ev = schedule[next_fault];
            next_fault += 1;
            match ev {
                FaultEvent::Kill { shard, .. } if shard < shard_count && !dead[shard] => {
                    let _ = send_shard(&txs[shard], ShardMsg::Crash);
                    dead[shard] = true;
                    crashes += 1;
                }
                FaultEvent::Panic { shard, .. } if shard < shard_count && !dead[shard] => {
                    let _ = send_shard(&txs[shard], ShardMsg::Panic);
                    dead[shard] = true;
                    crashes += 1;
                }
                FaultEvent::Restart { shard, .. } if shard < shard_count && dead[shard] => {
                    // Recovery: barrier-flush the shard's recording so
                    // everything its last life pushed is on disk, read
                    // it back (a torn tail is tolerated), and re-create
                    // each still-owned session from its latest snapshot
                    // plus replay. Sessions that cannot reach their
                    // acknowledged floor are dropped from the run.
                    let mine: Vec<u32> = owner
                        .iter()
                        .filter(|&(_, &sh)| sh == shard)
                        .map(|(&id, _)| id)
                        .collect();
                    let mut resumed: Vec<Box<ResumeSession>> = Vec::new();
                    let recording = match (&recorder_set, &config.record_dir) {
                        (Some(set), Some(dir)) => {
                            if let Some(r) = set.recorder(shard) {
                                r.push_stats(RecStats {
                                    recorded: r.recorded(),
                                    dropped: r.dropped(),
                                    epoch: 0,
                                });
                                let _ = r.flush_barrier(Duration::from_secs(2));
                            }
                            let path =
                                dir.join(shard_file_name(u32::try_from(shard).unwrap_or(u32::MAX)));
                            Recording::load(&path).ok()
                        }
                        _ => None,
                    };
                    for id in mine {
                        let outcome = match &recording {
                            Some(rec) => recover_session(rec, id, config.params),
                            None => Recovered::Lost,
                        };
                        match outcome {
                            Recovered::Resumed(rs) => resumed.push(rs),
                            Recovered::AlreadyComplete => {
                                // Counted at completion; late client
                                // traffic orphans at the pump.
                                owner.remove(&id);
                            }
                            Recovered::Lost => {
                                owner.remove(&id);
                                admitted = admitted.saturating_sub(1);
                                unrecoverable_sessions += 1;
                            }
                        }
                    }
                    let recorder = recorder_set.as_ref().and_then(|set| set.recorder(shard));
                    let egress = match transport.egress() {
                        Ok(e) => e,
                        Err(e) => break 'pump Err(e),
                    };
                    let (tx, handle) = match spawn_shard(
                        shard,
                        config,
                        clock,
                        egress,
                        completed.clone(),
                        recorder,
                        pump_tx.clone(),
                    ) {
                        Ok(pair) => pair,
                        Err(e) => break 'pump Err(e),
                    };
                    txs[shard] = tx;
                    handles.push((shard, handle));
                    dead[shard] = false;
                    restarts += 1;
                    for rs in resumed {
                        let id = rs.spec.id.raw();
                        if send_shard(&txs[shard], ShardMsg::Resume(rs)) {
                            recovered_sessions += 1;
                        } else {
                            owner.remove(&id);
                            admitted = admitted.saturating_sub(1);
                            unrecoverable_sessions += 1;
                        }
                    }
                }
                FaultEvent::Drain { from, to, .. }
                    if from < shard_count && to < shard_count && from != to && !dead[from] =>
                {
                    let frame = rstp_net::ControlFrame {
                        kind: ControlKind::Drain,
                        session: SessionId::new(0),
                        payload: u32::try_from(to).unwrap_or(u32::MAX).to_be_bytes().to_vec(),
                    };
                    if let Ok(bytes) = rstp_net::encode_control(&frame) {
                        deliver_ctl(&txs, &dead, &mut pending_ctl, from, bytes);
                    }
                }
                FaultEvent::Stall { to_tick, .. } => stall_end = stall_end.max(to_tick),
                FaultEvent::HubDrop { to_tick, .. } => drop_end = drop_end.max(to_tick),
                // Out-of-range shard, kill of a dead shard, restart of a
                // live one, `auto` (expanded by `schedule`): no-ops.
                _ => {}
            }
        }

        // Drain the handover control plane.
        while let Ok(msg) = pump_rx.try_recv() {
            match msg {
                PumpMsg::ToShard { shard, bytes } => {
                    deliver_ctl(&txs, &dead, &mut pending_ctl, shard, bytes);
                }
                PumpMsg::Redirect { bytes } => {
                    // Ownership flips here, in the pump, so no frame
                    // routed after this point can reach the source's
                    // retired copy.
                    let Ok(frame) = decode_control(&bytes) else {
                        continue;
                    };
                    if frame.kind != ControlKind::Redirect || frame.payload.len() < 4 {
                        continue;
                    }
                    let target = u32::from_be_bytes([
                        frame.payload[0],
                        frame.payload[1],
                        frame.payload[2],
                        frame.payload[3],
                    ]) as usize;
                    if target >= shard_count {
                        continue;
                    }
                    owner.insert(frame.session.raw(), target);
                    deliver_ctl(&txs, &dead, &mut pending_ctl, target, bytes);
                }
            }
        }
        // Retry control frames parked on a full queue.
        for _ in 0..pending_ctl.len() {
            if let Some((shard, bytes)) = pending_ctl.pop_front() {
                deliver_ctl(&txs, &dead, &mut pending_ctl, shard, bytes);
            }
        }

        // A scripted socket stall: the pump does not touch ingress.
        if now_tick < stall_end {
            thread::sleep(idle_nap);
            continue;
        }
        batch.clear();
        let got = match transport.recv_batch(&mut batch, config.batch.max(1)) {
            Ok(got) => got,
            Err(e) => break Err(e),
        };
        if got > 0 {
            last_ingress_tick = now_tick;
        }
        // A scripted hub drop: read and discard, mid-transfer loss.
        if now_tick < drop_end {
            hub_dropped_frames += got as u64;
            if got == 0 {
                thread::sleep(idle_nap);
            }
            continue;
        }
        if got == 0 {
            thread::sleep(idle_nap);
            continue;
        }
        for bytes in &batch {
            // Full strict decode before routing: the frame crosses a
            // thread boundary, so the checksum is verified exactly once,
            // here, rather than trusting the cheap peek.
            let frame = match decode_any(bytes) {
                Ok(frame) => frame,
                Err(_) => {
                    decode_errors += 1;
                    continue;
                }
            };
            let Some(id) = frame.session else {
                // A v1 single-session frame has no place in a
                // multi-session table.
                orphan_frames += 1;
                continue;
            };
            let Some(&shard) = owner.get(&id.raw()) else {
                orphan_frames += 1;
                continue;
            };
            match txs[shard].try_send(ShardMsg::Frame(id, frame)) {
                Ok(()) => {}
                // Backpressure: drop the frame (a channel loss the
                // protocol tolerates) instead of stalling the pump.
                Err(TrySendError::Full(_)) => overflow[shard] += 1,
                // The shard died; its error surfaces at join.
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
    };

    // Shutdown: best-effort message, then close the queues — a shard
    // whose queue was full still sees the hangup.
    for (index, tx) in txs.iter().enumerate() {
        if !dead[index] {
            let _ = tx.try_send(ShardMsg::Shutdown);
        }
    }
    drop(txs);
    drop(pump_tx);

    // Join *every* epoch of every shard — including threads that
    // crashed or panicked long before shutdown. A panic anywhere is a
    // run failure, never a silent exit-0.
    let mut shards: Vec<ShardReport> = Vec::with_capacity(handles.len());
    let mut overflow_applied = vec![false; shard_count];
    let mut first_err: Option<NetError> = pump_result.err();
    for (index, handle) in handles {
        match handle.join() {
            Ok(Ok(mut report)) => {
                // Pump-side overflow is per shard index, not per epoch;
                // book it once, against the index's first-joined epoch.
                if !overflow_applied[index] {
                    report.ingress_overflow = overflow[index];
                    overflow_applied[index] = true;
                }
                shards.push(report);
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or(Some(NetError::Thread {
                    what: format!("shard {index} panicked"),
                }))
            }
        }
    }
    shards.sort_by_key(|s| s.shard);
    // Seal the recording even on a failing run — a postmortem of the
    // failure is exactly when the files matter.
    if let Some(set) = recorder_set {
        if let Err(e) = set.finish() {
            first_err = first_err.or(Some(record_err(&e)));
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    Ok(ServeReport {
        shards,
        rejected_sessions: rejected,
        rejected_ids,
        orphan_frames,
        decode_errors,
        restarts,
        crashes,
        recovered_sessions,
        unrecoverable_sessions,
        hub_dropped_frames,
        wall_elapsed: clock.epoch().elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::MemHub;
    use std::time::Instant;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 4).expect("valid")
    }

    fn spec(id: u32, n: usize) -> SessionSpec {
        SessionSpec {
            id: SessionId::new(id),
            kind: ProtocolKind::Beta { k: 4 },
            n,
        }
    }

    fn clock(tick: Duration) -> TickClock {
        TickClock::with_epoch(Instant::now() + Duration::from_millis(2), tick)
    }

    #[test]
    fn empty_sessions_complete_without_any_traffic() {
        // n = 0 receivers are done as soon as their grace period drains:
        // the full admit → pace → complete → join path with no clients.
        let tick = Duration::from_micros(200);
        let mut hub = MemHub::new();
        let cfg = ServeConfig::new(params(), tick).with_shards(2);
        let specs: Vec<_> = (1..=6).map(|i| spec(i, 0)).collect();
        let report = run_server(&mut hub, clock(tick), &specs, &cfg).expect("serve");
        assert_eq!(report.admitted(), 6);
        assert_eq!(report.completed(), 6);
        assert_eq!(report.rejected_sessions, 0);
        // Sessions landed on both shards.
        assert!(report.shards.iter().all(|s| s.admitted == 3));
    }

    #[test]
    fn duplicates_and_table_overflow_are_rejected() {
        let tick = Duration::from_micros(200);
        let mut hub = MemHub::new();
        let cfg = ServeConfig::new(params(), tick)
            .with_shards(1)
            .with_max_sessions(2);
        let specs = vec![spec(1, 0), spec(1, 0), spec(2, 0), spec(3, 0)];
        let report = run_server(&mut hub, clock(tick), &specs, &cfg).expect("serve");
        assert_eq!(report.admitted(), 2);
        assert_eq!(report.rejected_sessions, 2);
        assert_eq!(report.completed(), 2);
    }

    #[test]
    fn frames_for_unadmitted_sessions_count_as_orphans() {
        let tick = Duration::from_micros(200);
        let mut hub = MemHub::new();
        // Two clients whose ids the server never admitted.
        let codec = rstp_net::WireCodec::new(rstp_net::ProtocolId::Beta, 4).expect("codec");
        use rstp_net::Transport as _;
        let mut ghost_a = hub.client_transport(SessionId::new(99), codec);
        let mut ghost_b = hub.client_transport(SessionId::new(98), codec);
        ghost_a.send(rstp_core::Packet::Data(1), 0).expect("send");
        ghost_b.send(rstp_core::Packet::Data(0), 0).expect("send");
        let cfg = ServeConfig::new(params(), tick)
            .with_shards(1)
            .with_max_wall(Duration::from_millis(500));
        let report = run_server(&mut hub, clock(tick), &[spec(1, 0)], &cfg).expect("serve");
        assert_eq!(report.orphan_frames, 2);
        assert_eq!(report.completed(), 1);
    }
}
