//! Session admission, frame routing, and shard lifecycle.
//!
//! [`run_server`] is the pump: it drains the transport in batches of up
//! to `B` datagrams per call, peels each frame's wire v2 session id, and
//! hands the frame to the owning shard over a bounded queue. Admission
//! is strict — a session beyond `max_sessions`, with a duplicate id, or
//! arriving while its shard's queue is full is *rejected*, because the
//! alternative (blocking the pump) would stall every admitted session
//! past its `c2` window. Frames for admitted sessions likewise drop
//! rather than block when a queue is full; the protocols already
//! tolerate channel loss, they do not tolerate a frozen clock.

use crate::metrics::{ServeReport, ShardReport};
use crate::shard::{run_shard, ShardMsg, ShardParams};
use rstp_core::{SessionId, TimingParams};
use rstp_net::{decode_any, FrameBuf, NetError, Pace, TickClock};
use rstp_record::{RecorderSet, RunMeta};
use rstp_sim::ProtocolKind;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A shard-side egress sink: ships encoded frames, addressed by raw
/// session id, back toward their clients in batches.
pub trait EgressSink: Send {
    /// Sends a batch of `(session id, frame bytes)` pairs. Returns how
    /// many were actually shipped (unroutable frames drop silently —
    /// the sink mirrors UDP, not TCP).
    ///
    /// Frames travel as [`FrameBuf`] — fixed-capacity, `Copy` — so a
    /// conforming sink neither allocates nor blocks per frame on the
    /// steady-state path (the `blocking-in-nonblocking` and
    /// `alloc-in-steady-state` analysis passes enforce this).
    ///
    /// # Errors
    ///
    /// [`NetError`] only for unrecoverable transport failure.
    fn send_batch(&mut self, frames: &[(u32, FrameBuf)]) -> Result<usize, NetError>;
}

/// The server's ingress side: a source of raw datagrams plus a factory
/// for per-shard egress sinks.
pub trait ServeTransport {
    /// Drains up to `max` datagrams into `out` without blocking. Returns
    /// how many were appended.
    ///
    /// # Errors
    ///
    /// [`NetError`] on unrecoverable transport failure.
    fn recv_batch(&mut self, out: &mut Vec<FrameBuf>, max: usize) -> Result<usize, NetError>;

    /// A new egress sink (one per shard, so shards never share a lock
    /// on the send path).
    ///
    /// # Errors
    ///
    /// [`NetError`] if the underlying socket cannot be cloned.
    fn egress(&self) -> Result<Box<dyn EgressSink>, NetError>;
}

/// One planned transfer: the server runs this session's *receiver*.
#[derive(Clone, Copy, Debug)]
pub struct SessionSpec {
    /// Wire session id (must be unique across the run).
    pub id: SessionId,
    /// Protocol the session speaks.
    pub kind: ProtocolKind,
    /// Messages the transfer carries.
    pub n: usize,
}

/// Configuration of a server run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Timing parameters `(c1, c2, d)` in ticks.
    pub params: TimingParams,
    /// Wall-clock length of one tick.
    pub tick: Duration,
    /// Step pace of every server-side session within `[c1, c2]`.
    pub pace: Pace,
    /// Worker shard count; sessions are hashed by `id % shards`.
    pub shards: usize,
    /// Batch bound `B`: datagrams drained per ingress call and frames
    /// flushed per egress call.
    pub batch: usize,
    /// Bound of each shard's ingress queue (frames + admissions).
    pub queue_cap: usize,
    /// Admission ceiling across all shards.
    pub max_sessions: usize,
    /// Timing tolerance for miss/violation accounting (driver-identical).
    pub slack: Duration,
    /// Quiet ticks a session must drain after its last write to count
    /// as completed.
    pub grace_ticks: u64,
    /// Hard wall-clock cap on the whole run.
    pub max_wall: Duration,
    /// Directory for the flight recording (one `shard-NN.rec` per
    /// shard); `None` disables recording entirely.
    pub record_dir: Option<PathBuf>,
    /// Input seed stamped into each recording's metadata so a
    /// postmortem can regenerate the swarm inputs (`rstp replay`).
    pub record_seed: Option<u64>,
}

impl ServeConfig {
    /// Defaults mirroring the single-session driver where the knobs
    /// overlap: slow pace, slack of a quarter tick, grace of
    /// `2·(d + c2)` ticks; plus 4 shards, batches of 32, queues of 256,
    /// and room for 1024 sessions.
    #[must_use]
    pub fn new(params: TimingParams, tick: Duration) -> Self {
        ServeConfig {
            params,
            tick,
            pace: Pace::Slow,
            shards: 4,
            batch: 32,
            queue_cap: 256,
            max_sessions: 1024,
            slack: tick / 4,
            grace_ticks: 2 * (params.d().ticks() + params.c2().ticks()),
            max_wall: Duration::from_secs(60),
            record_dir: None,
            record_seed: None,
        }
    }

    /// Sets the shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the I/O batch bound.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the per-shard ingress queue bound.
    #[must_use]
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    /// Sets the admission ceiling.
    #[must_use]
    pub fn with_max_sessions(mut self, max: usize) -> Self {
        self.max_sessions = max;
        self
    }

    /// Sets the pace.
    #[must_use]
    pub fn with_pace(mut self, pace: Pace) -> Self {
        self.pace = pace;
        self
    }

    /// Sets the hard wall-clock cap.
    #[must_use]
    pub fn with_max_wall(mut self, cap: Duration) -> Self {
        self.max_wall = cap;
        self
    }

    /// Enables the per-shard flight recorder, writing under `dir`.
    #[must_use]
    pub fn with_record(mut self, dir: impl Into<PathBuf>) -> Self {
        self.record_dir = Some(dir.into());
        self
    }

    /// Stamps the swarm input seed into the recording metadata.
    #[must_use]
    pub fn with_record_seed(mut self, seed: u64) -> Self {
        self.record_seed = Some(seed);
        self
    }
}

/// Recorder failures surface as I/O errors: recording is infrastructure
/// around the protocol run, not part of the model.
fn record_err(e: &rstp_record::RecordError) -> NetError {
    NetError::Io(std::io::Error::other(e.to_string()))
}

/// Runs the receiver side of every admitted session in `specs` over
/// `transport` until they all complete or `max_wall` expires.
///
/// The caller owns the clock so client endpoints can share its epoch
/// (latency stamps are only comparable on one epoch).
///
/// # Errors
///
/// [`NetError`] on transport failure, a shard hitting a model violation
/// (determinism, automaton rejection), or a panicked shard thread.
pub fn run_server<T: ServeTransport>(
    transport: &mut T,
    clock: TickClock,
    specs: &[SessionSpec],
    config: &ServeConfig,
) -> Result<ServeReport, NetError> {
    let shard_count = config.shards.max(1);
    let completed = Arc::new(AtomicU64::new(0));

    // Flight recorder: one ring + writer thread per shard, created
    // before the shards so each takes its nonblocking handle with it.
    let (recorder_set, shard_recorders) = match &config.record_dir {
        Some(dir) => {
            let tick_micros = config.tick.as_micros().max(1) as u64;
            let (params, seed) = (config.params, config.record_seed);
            let (set, recorders) = RecorderSet::create(dir, shard_count, |shard| RunMeta {
                shard,
                c1: params.c1().ticks(),
                c2: params.c2().ticks(),
                d: params.d().ticks(),
                tick_micros,
                seed,
            })
            .map_err(|e| record_err(&e))?;
            (Some(set), recorders)
        }
        None => (None, Vec::new()),
    };
    let mut shard_recorders = shard_recorders.into_iter();

    let mut txs = Vec::with_capacity(shard_count);
    let mut handles = Vec::with_capacity(shard_count);
    for index in 0..shard_count {
        let (tx, rx) = sync_channel::<ShardMsg>(config.queue_cap.max(1));
        let sp = ShardParams {
            index,
            params: config.params,
            tick: config.tick,
            pace: config.pace,
            slack: config.slack,
            grace_ticks: config.grace_ticks,
            batch: config.batch.max(1),
        };
        let egress = transport.egress()?;
        let counter = completed.clone();
        let recorder = shard_recorders.next();
        let handle = thread::Builder::new()
            .name(format!("rstp-serve-shard-{index}"))
            .spawn(move || run_shard(sp, clock, rx, egress, counter, recorder))
            .map_err(|e| NetError::Thread {
                what: format!("spawn shard {index}: {e}"),
            })?;
        txs.push(tx);
        handles.push(handle);
    }

    // Admission: strict, non-blocking. Duplicates, table overflow, and a
    // full shard queue all reject.
    let mut owner: HashMap<u32, usize> = HashMap::new();
    let mut rejected: u64 = 0;
    let mut admitted: u64 = 0;
    for spec in specs {
        let raw = spec.id.raw();
        if owner.contains_key(&raw) || owner.len() >= config.max_sessions {
            rejected += 1;
            continue;
        }
        let shard = raw as usize % shard_count;
        match txs[shard].try_send(ShardMsg::Admit(*spec)) {
            Ok(()) => {
                owner.insert(raw, shard);
                admitted += 1;
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => rejected += 1,
        }
    }

    // The pump: drain → demux → route, B datagrams at a time.
    let mut orphan_frames: u64 = 0;
    let mut decode_errors: u64 = 0;
    let mut overflow = vec![0u64; shard_count];
    let mut batch: Vec<FrameBuf> = Vec::with_capacity(config.batch.max(1));
    // Nap briefly when the socket is dry — but never so long that a
    // kernel receive buffer (a few hundred datagrams on most systems)
    // could fill behind our back at coarse ticks.
    let idle_nap = (config.tick / 2).clamp(Duration::from_micros(50), Duration::from_micros(500));
    let pump_result = loop {
        if completed.load(Ordering::Relaxed) >= admitted {
            break Ok(());
        }
        if clock.epoch().elapsed() > config.max_wall {
            break Ok(());
        }
        batch.clear();
        let got = match transport.recv_batch(&mut batch, config.batch.max(1)) {
            Ok(got) => got,
            Err(e) => break Err(e),
        };
        if got == 0 {
            thread::sleep(idle_nap);
            continue;
        }
        for bytes in &batch {
            // Full strict decode before routing: the frame crosses a
            // thread boundary, so the checksum is verified exactly once,
            // here, rather than trusting the cheap peek.
            let frame = match decode_any(bytes) {
                Ok(frame) => frame,
                Err(_) => {
                    decode_errors += 1;
                    continue;
                }
            };
            let Some(id) = frame.session else {
                // A v1 single-session frame has no place in a
                // multi-session table.
                orphan_frames += 1;
                continue;
            };
            let Some(&shard) = owner.get(&id.raw()) else {
                orphan_frames += 1;
                continue;
            };
            match txs[shard].try_send(ShardMsg::Frame(id, frame)) {
                Ok(()) => {}
                // Backpressure: drop the frame (a channel loss the
                // protocol tolerates) instead of stalling the pump.
                Err(TrySendError::Full(_)) => overflow[shard] += 1,
                // The shard died; its error surfaces at join.
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
    };

    // Shutdown: best-effort message, then close the queues — a shard
    // whose queue was full still sees the hangup.
    for tx in &txs {
        let _ = tx.try_send(ShardMsg::Shutdown);
    }
    drop(txs);

    let mut shards: Vec<ShardReport> = Vec::with_capacity(shard_count);
    let mut first_err: Option<NetError> = pump_result.err();
    for (index, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(mut report)) => {
                report.ingress_overflow = overflow[index];
                shards.push(report);
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or(Some(NetError::Thread {
                    what: format!("shard {index} panicked"),
                }))
            }
        }
    }
    // Seal the recording even on a failing run — a postmortem of the
    // failure is exactly when the files matter.
    if let Some(set) = recorder_set {
        if let Err(e) = set.finish() {
            first_err = first_err.or(Some(record_err(&e)));
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    Ok(ServeReport {
        shards,
        rejected_sessions: rejected,
        orphan_frames,
        decode_errors,
        wall_elapsed: clock.epoch().elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::MemHub;
    use std::time::Instant;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 4).expect("valid")
    }

    fn spec(id: u32, n: usize) -> SessionSpec {
        SessionSpec {
            id: SessionId::new(id),
            kind: ProtocolKind::Beta { k: 4 },
            n,
        }
    }

    fn clock(tick: Duration) -> TickClock {
        TickClock::with_epoch(Instant::now() + Duration::from_millis(2), tick)
    }

    #[test]
    fn empty_sessions_complete_without_any_traffic() {
        // n = 0 receivers are done as soon as their grace period drains:
        // the full admit → pace → complete → join path with no clients.
        let tick = Duration::from_micros(200);
        let mut hub = MemHub::new();
        let cfg = ServeConfig::new(params(), tick).with_shards(2);
        let specs: Vec<_> = (1..=6).map(|i| spec(i, 0)).collect();
        let report = run_server(&mut hub, clock(tick), &specs, &cfg).expect("serve");
        assert_eq!(report.admitted(), 6);
        assert_eq!(report.completed(), 6);
        assert_eq!(report.rejected_sessions, 0);
        // Sessions landed on both shards.
        assert!(report.shards.iter().all(|s| s.admitted == 3));
    }

    #[test]
    fn duplicates_and_table_overflow_are_rejected() {
        let tick = Duration::from_micros(200);
        let mut hub = MemHub::new();
        let cfg = ServeConfig::new(params(), tick)
            .with_shards(1)
            .with_max_sessions(2);
        let specs = vec![spec(1, 0), spec(1, 0), spec(2, 0), spec(3, 0)];
        let report = run_server(&mut hub, clock(tick), &specs, &cfg).expect("serve");
        assert_eq!(report.admitted(), 2);
        assert_eq!(report.rejected_sessions, 2);
        assert_eq!(report.completed(), 2);
    }

    #[test]
    fn frames_for_unadmitted_sessions_count_as_orphans() {
        let tick = Duration::from_micros(200);
        let mut hub = MemHub::new();
        // Two clients whose ids the server never admitted.
        let codec = rstp_net::WireCodec::new(rstp_net::ProtocolId::Beta, 4).expect("codec");
        use rstp_net::Transport as _;
        let mut ghost_a = hub.client_transport(SessionId::new(99), codec);
        let mut ghost_b = hub.client_transport(SessionId::new(98), codec);
        ghost_a.send(rstp_core::Packet::Data(1), 0).expect("send");
        ghost_b.send(rstp_core::Packet::Data(0), 0).expect("send");
        let cfg = ServeConfig::new(params(), tick)
            .with_shards(1)
            .with_max_wall(Duration::from_millis(500));
        let report = run_server(&mut hub, clock(tick), &[spec(1, 0)], &cfg).expect("serve");
        assert_eq!(report.orphan_frames, 2);
        assert_eq!(report.completed(), 1);
    }
}
