//! Deterministic, seeded fault-injection plans for `rstp serve` and
//! `rstp swarm`.
//!
//! A [`FaultPlan`] is a scripted sequence of faults the server pump
//! executes at fixed tick offsets: shard kills and restarts, injected
//! panics, pair-wise session drains (handover), ingress stalls, and
//! hub drops. Plans are parsed from a compact grammar so CI jobs and
//! shrunk repro commands can carry one on the command line:
//!
//! ```text
//! kill=1@40;restart=1@80;drain=0->1@30;stall=20..25;hubdrop=10..12;
//! panic=1@50;auto=2@12345
//! ```
//!
//! * `kill=S@T` — at tick `T`, shard `S` is told to crash: its thread
//!   returns after discarding live (unfinished) sessions, exactly as if
//!   the process segment died. Completed verdicts survive.
//! * `restart=S@T` — at tick `T`, a fresh thread for shard `S` is
//!   spawned; with a flight recorder attached, live sessions are
//!   recovered from the shard's recording (snapshot + replay).
//! * `panic=S@T` — like `kill`, but the shard thread *panics*, testing
//!   that the server and `rstp swarm` report a nonzero verdict instead
//!   of unwinding silently.
//! * `drain=A->B@T` — at tick `T`, shard `A` hands every live session
//!   over to shard `B` via the wire-v3 DRAIN → SNAPSHOT → REDIRECT
//!   protocol.
//! * `stall=T1..T2` — the pump stops reading ingress for ticks
//!   `[T1, T2)`: a socket stall. Frames queue in the transport.
//! * `hubdrop=T1..T2` — the pump reads and *discards* ingress for
//!   ticks `[T1, T2)`: the hub dropping mid-transfer.
//! * `auto=N@SEED` — expands to `N` kill+restart pairs at deterministic
//!   ticks and shards derived from `SEED` (a splitmix-style LCG), so a
//!   single seed reproduces an entire fault schedule.
//!
//! Ticks are the server pump's polling ticks (one `tick_micros` each),
//! counted from pump start. [`FaultPlan::parse`] round-trips with its
//! `Display` so a plan echoed in a failure report can be pasted back.

use std::fmt;
use std::str::FromStr;

/// One scripted fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash shard `shard` at `tick` (clean thread exit, live sessions
    /// lost until a restart recovers them).
    Kill {
        /// Target shard index.
        shard: usize,
        /// Pump tick at which the fault fires.
        tick: u64,
    },
    /// Restart shard `shard` at `tick`, recovering live sessions from
    /// its flight recording when one is attached.
    Restart {
        /// Target shard index.
        shard: usize,
        /// Pump tick at which the fault fires.
        tick: u64,
    },
    /// Panic shard `shard`'s thread at `tick`.
    Panic {
        /// Target shard index.
        shard: usize,
        /// Pump tick at which the fault fires.
        tick: u64,
    },
    /// Hand every live session on `from` over to `to` at `tick`.
    Drain {
        /// Source shard (drained).
        from: usize,
        /// Target shard (adopter).
        to: usize,
        /// Pump tick at which the drain starts.
        tick: u64,
    },
    /// Stop reading ingress for ticks `[from_tick, to_tick)`.
    Stall {
        /// First stalled tick.
        from_tick: u64,
        /// First tick after the stall.
        to_tick: u64,
    },
    /// Read and discard ingress for ticks `[from_tick, to_tick)`.
    HubDrop {
        /// First dropping tick.
        from_tick: u64,
        /// First tick after the drop window.
        to_tick: u64,
    },
    /// Seeded expansion: `count` kill+restart pairs at derived ticks.
    Auto {
        /// Number of kill+restart pairs to synthesize.
        count: u32,
        /// Seed for the deterministic expansion.
        seed: u64,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::Kill { shard, tick } => write!(f, "kill={shard}@{tick}"),
            FaultEvent::Restart { shard, tick } => write!(f, "restart={shard}@{tick}"),
            FaultEvent::Panic { shard, tick } => write!(f, "panic={shard}@{tick}"),
            FaultEvent::Drain { from, to, tick } => write!(f, "drain={from}->{to}@{tick}"),
            FaultEvent::Stall { from_tick, to_tick } => write!(f, "stall={from_tick}..{to_tick}"),
            FaultEvent::HubDrop { from_tick, to_tick } => {
                write!(f, "hubdrop={from_tick}..{to_tick}")
            }
            FaultEvent::Auto { count, seed } => write!(f, "auto={count}@{seed}"),
        }
    }
}

/// A parsed fault plan: the scripted events, in source order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scripted events, as written (before `auto` expansion).
    pub events: Vec<FaultEvent>,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{ev}")?;
        }
        Ok(())
    }
}

fn split_once_req<'a>(s: &'a str, sep: char, what: &str) -> Result<(&'a str, &'a str), String> {
    s.split_once(sep)
        .ok_or_else(|| format!("fault `{what}`: expected `{sep}` in `{s}`"))
}

fn num<T: FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.trim()
        .parse()
        .map_err(|_| format!("fault `{what}`: bad number `{s}`"))
}

fn parse_window(rest: &str, what: &str) -> Result<(u64, u64), String> {
    let (a, b) = rest
        .split_once("..")
        .ok_or_else(|| format!("fault `{what}`: expected `T1..T2` in `{rest}`"))?;
    let from_tick: u64 = num(a, what)?;
    let to_tick: u64 = num(b, what)?;
    if to_tick <= from_tick {
        return Err(format!("fault `{what}`: empty window `{rest}`"));
    }
    Ok((from_tick, to_tick))
}

impl FaultPlan {
    /// Parses a plan from the grammar in the module docs.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending clause.
    pub fn parse(input: &str) -> Result<FaultPlan, String> {
        let mut events = Vec::new();
        for clause in input.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, rest) = split_once_req(clause, '=', clause)?;
            let ev = match name.trim() {
                "kill" | "restart" | "panic" => {
                    let (s, t) = split_once_req(rest, '@', name)?;
                    let shard: usize = num(s, name)?;
                    let tick: u64 = num(t, name)?;
                    match name.trim() {
                        "kill" => FaultEvent::Kill { shard, tick },
                        "restart" => FaultEvent::Restart { shard, tick },
                        _ => FaultEvent::Panic { shard, tick },
                    }
                }
                "drain" => {
                    let (pair, t) = split_once_req(rest, '@', "drain")?;
                    let (a, b) = pair
                        .split_once("->")
                        .ok_or_else(|| format!("fault `drain`: expected `A->B` in `{pair}`"))?;
                    let from: usize = num(a, "drain")?;
                    let to: usize = num(b, "drain")?;
                    if from == to {
                        return Err("fault `drain`: source and target shard are equal".into());
                    }
                    FaultEvent::Drain {
                        from,
                        to,
                        tick: num(t, "drain")?,
                    }
                }
                "stall" => {
                    let (from_tick, to_tick) = parse_window(rest, "stall")?;
                    FaultEvent::Stall { from_tick, to_tick }
                }
                "hubdrop" => {
                    let (from_tick, to_tick) = parse_window(rest, "hubdrop")?;
                    FaultEvent::HubDrop { from_tick, to_tick }
                }
                "auto" => {
                    let (c, s) = split_once_req(rest, '@', "auto")?;
                    let count: u32 = num(c, "auto")?;
                    if count == 0 || count > 64 {
                        return Err("fault `auto`: count must be in 1..=64".into());
                    }
                    FaultEvent::Auto {
                        count,
                        seed: num(s, "auto")?,
                    }
                }
                other => return Err(format!("unknown fault `{other}` in `{clause}`")),
            };
            events.push(ev);
        }
        if events.is_empty() {
            return Err("empty fault plan".into());
        }
        Ok(FaultPlan { events })
    }

    /// Expands the plan into a concrete, tick-sorted schedule for a
    /// server with `shards` shards. `auto` clauses become kill+restart
    /// pairs at ticks and shards derived deterministically from the
    /// seed; the sort is stable, so same-tick events keep source order.
    #[must_use]
    pub fn schedule(&self, shards: usize) -> Vec<FaultEvent> {
        let mut out = Vec::new();
        for ev in &self.events {
            match *ev {
                FaultEvent::Auto { count, seed } => {
                    let mut state = seed | 1;
                    for i in 0..u64::from(count) {
                        // A small multiplicative LCG: deterministic,
                        // seed-reproducible shard choice per pair.
                        state = state
                            .wrapping_mul(6_364_136_223_846_793_005)
                            .wrapping_add(1_442_695_040_888_963_407);
                        let shard = (state >> 33) as usize % shards.max(1);
                        let kill_tick = 60 + i * 80;
                        out.push(FaultEvent::Kill {
                            shard,
                            tick: kill_tick,
                        });
                        out.push(FaultEvent::Restart {
                            shard,
                            tick: kill_tick + 30,
                        });
                    }
                }
                other => out.push(other),
            }
        }
        out.sort_by_key(|ev| match *ev {
            FaultEvent::Kill { tick, .. }
            | FaultEvent::Restart { tick, .. }
            | FaultEvent::Panic { tick, .. }
            | FaultEvent::Drain { tick, .. } => tick,
            FaultEvent::Stall { from_tick, .. } | FaultEvent::HubDrop { from_tick, .. } => {
                from_tick
            }
            // Expanded above; an impossible leftover sorts last.
            FaultEvent::Auto { .. } => u64::MAX,
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grammar_parses_and_round_trips() {
        let src = "kill=1@40;restart=1@80;drain=0->1@30;stall=20..25;hubdrop=10..12;panic=1@50;auto=2@12345";
        let plan = FaultPlan::parse(src).expect("parse");
        assert_eq!(plan.events.len(), 7);
        assert_eq!(plan.to_string(), src);
        assert_eq!(FaultPlan::parse(&plan.to_string()).expect("reparse"), plan);
    }

    #[test]
    fn whitespace_and_empty_clauses_are_tolerated() {
        let plan = FaultPlan::parse(" kill = 1 @ 40 ; ; restart = 1 @ 80 ").expect("parse");
        assert_eq!(
            plan.events,
            vec![
                FaultEvent::Kill { shard: 1, tick: 40 },
                FaultEvent::Restart { shard: 1, tick: 80 },
            ]
        );
    }

    #[test]
    fn schedule_is_tick_sorted_and_auto_expands_deterministically() {
        let plan = FaultPlan::parse("restart=0@90;kill=0@10;auto=2@7").expect("parse");
        let a = plan.schedule(4);
        let b = plan.schedule(4);
        assert_eq!(a, b, "same seed, same schedule");
        let ticks: Vec<u64> = a
            .iter()
            .map(|ev| match *ev {
                FaultEvent::Kill { tick, .. }
                | FaultEvent::Restart { tick, .. }
                | FaultEvent::Panic { tick, .. }
                | FaultEvent::Drain { tick, .. } => tick,
                FaultEvent::Stall { from_tick, .. } | FaultEvent::HubDrop { from_tick, .. } => {
                    from_tick
                }
                FaultEvent::Auto { .. } => unreachable!(),
            })
            .collect();
        let mut sorted = ticks.clone();
        sorted.sort_unstable();
        assert_eq!(ticks, sorted);
        // 2 scripted + 2 auto pairs.
        assert_eq!(a.len(), 6);
        // Every auto shard is in range.
        for ev in &a {
            if let FaultEvent::Kill { shard, .. } | FaultEvent::Restart { shard, .. } = ev {
                assert!(*shard < 4);
            }
        }
    }

    #[test]
    fn different_seeds_can_differ() {
        let a = FaultPlan::parse("auto=8@1").expect("parse").schedule(16);
        let b = FaultPlan::parse("auto=8@2").expect("parse").schedule(16);
        assert_ne!(a, b, "seed must reach the shard choice");
    }

    #[test]
    fn bad_grammar_is_rejected_with_a_reason() {
        for (src, needle) in [
            ("", "empty fault plan"),
            ("kill=1", "expected `@`"),
            ("kill=x@2", "bad number"),
            ("drain=1->1@5", "source and target"),
            ("drain=1@5", "expected `A->B`"),
            ("stall=9..9", "empty window"),
            ("stall=9", "expected `T1..T2`"),
            ("auto=0@1", "count must be"),
            ("auto=65@1", "count must be"),
            ("explode=1@2", "unknown fault"),
        ] {
            let err = FaultPlan::parse(src).expect_err(src);
            assert!(err.contains(needle), "`{src}` → `{err}` missing `{needle}`");
        }
    }
}
