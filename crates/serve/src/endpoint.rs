//! Object-safe session endpoints: heterogeneous automata in one table.
//!
//! [`Automaton`] has an associated `State` type, so a shard cannot store
//! `Box<dyn Automaton>` directly. [`Driven`] pairs a concrete automaton
//! with its current state behind the object-safe [`SessionEndpoint`]
//! trait: `apply_recv` feeds a delivered packet as a `recv` input, `step`
//! fires the unique enabled local action and reports its visible effect.
//! The single-enabled-action determinism check mirrors the real-time
//! driver and the simulator exactly — a shard must not weaken the model
//! just because it runs many sessions.

use crate::snapshot::{state_from_bytes, state_to_bytes, StateCodec};
use rstp_automata::Automaton;
use rstp_core::protocols::{
    AlphaReceiver, AltBitReceiver, BetaReceiver, FramedReceiver, GammaReceiver, PipelinedReceiver,
    StabBetaReceiver, StabStenningReceiver, StenningReceiver,
};
use rstp_core::{InternalKind, Message, Packet, RstpAction, TimingParams};
use rstp_net::NetError;
use rstp_sim::ProtocolKind;

/// The externally visible effect of one local step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEffect {
    /// The automaton sent a packet (to be framed and flushed by the shard).
    Sent(Packet),
    /// The automaton wrote the next output message.
    Wrote(Message),
    /// A counted `wait` step — productive work, not idling.
    Waited,
    /// A pure `idle` step — the endpoint may be done.
    Idled,
    /// No local action is enabled: the automaton has quiesced.
    Quiescent,
}

/// One session's protocol endpoint, statically erased so shards can own a
/// mixed-protocol table.
pub trait SessionEndpoint: Send {
    /// Applies a delivered packet as a `recv` input (input-enabled: this
    /// must succeed in every state for well-formed automata).
    fn apply_recv(&mut self, packet: Packet) -> Result<(), NetError>;

    /// Fires the unique enabled local action, enforcing the paper's
    /// determinism condition (more than one enabled action is a model
    /// bug, reported exactly like the single-session driver does).
    fn step(&mut self) -> Result<StepEffect, NetError>;

    /// Messages written so far — the session's output sequence `Y`.
    fn written(&self) -> &[Message];

    /// The automaton state serialized via the session snapshot codec —
    /// the payload a handover `SNAPSHOT` frame or a crash-recovery
    /// record carries. Paired with [`restore_receiver_endpoint`].
    fn state_bytes(&self) -> Vec<u8>;
}

/// A concrete automaton plus its evolving state.
struct Driven<A: Automaton<Action = RstpAction>> {
    automaton: A,
    state: A::State,
    written: Vec<Message>,
}

impl<A> SessionEndpoint for Driven<A>
where
    A: Automaton<Action = RstpAction> + Send,
    A::State: Send + StateCodec,
{
    fn apply_recv(&mut self, packet: Packet) -> Result<(), NetError> {
        self.state = self
            .automaton
            .step(&self.state, &RstpAction::Recv(packet))
            .map_err(|e| NetError::Automaton {
                what: e.to_string(),
            })?;
        Ok(())
    }

    fn step(&mut self) -> Result<StepEffect, NetError> {
        let enabled = self.automaton.enabled(&self.state);
        let action = match enabled.as_slice() {
            [] => return Ok(StepEffect::Quiescent),
            [a] => *a,
            many => {
                return Err(NetError::Determinism {
                    enabled: many.iter().map(|a| format!("{a:?}")).collect(),
                })
            }
        };
        self.state =
            self.automaton
                .step(&self.state, &action)
                .map_err(|e| NetError::Automaton {
                    what: e.to_string(),
                })?;
        Ok(match action {
            RstpAction::Send(p) => StepEffect::Sent(p),
            RstpAction::Write(m) => {
                self.written.push(m);
                StepEffect::Wrote(m)
            }
            RstpAction::TransmitterInternal(k) | RstpAction::ReceiverInternal(k) => {
                if k == InternalKind::Wait {
                    StepEffect::Waited
                } else {
                    StepEffect::Idled
                }
            }
            RstpAction::Recv(_) => {
                return Err(NetError::Automaton {
                    what: "recv reported as a locally controlled action".into(),
                })
            }
        })
    }

    fn written(&self) -> &[Message] {
        &self.written
    }

    fn state_bytes(&self) -> Vec<u8> {
        state_to_bytes(&self.state)
    }
}

fn boxed<A>(automaton: A) -> Box<dyn SessionEndpoint>
where
    A: Automaton<Action = RstpAction> + Send + 'static,
    A::State: Send + StateCodec,
{
    let state = automaton.initial_state();
    Box::new(Driven {
        automaton,
        state,
        written: Vec::new(),
    })
}

fn unboxed<A>(
    automaton: A,
    state_bytes: &[u8],
    written: Vec<Message>,
) -> Result<Box<dyn SessionEndpoint>, NetError>
where
    A: Automaton<Action = RstpAction> + Send + 'static,
    A::State: Send + StateCodec,
{
    let state = state_from_bytes::<A::State>(state_bytes).ok_or_else(|| NetError::Automaton {
        what: "session snapshot state failed to decode".into(),
    })?;
    Ok(Box::new(Driven {
        automaton,
        state,
        written,
    }))
}

/// Builds the *receiver* endpoint of `kind` expecting `n` messages — the
/// server side of a transfer (clients run the transmitter through the
/// ordinary single-session driver).
///
/// # Errors
///
/// [`NetError::Unsupported`] for [`ProtocolKind::BetaWindow`] (same
/// reason the wire rejects it: no in-band `d_lo` agreement), or a
/// construction error from the protocol itself.
pub fn receiver_endpoint(
    kind: ProtocolKind,
    params: TimingParams,
    n: usize,
) -> Result<Box<dyn SessionEndpoint>, NetError> {
    Ok(match kind {
        ProtocolKind::Alpha => boxed(AlphaReceiver::new()),
        ProtocolKind::Beta { k } => boxed(BetaReceiver::new(params, k, n)?),
        ProtocolKind::Gamma { k } => boxed(GammaReceiver::new(params, k, n)?),
        ProtocolKind::AltBit { .. } => boxed(AltBitReceiver::new()),
        ProtocolKind::Framed { k } => boxed(FramedReceiver::new(params, k)?),
        ProtocolKind::Stenning { .. } => boxed(StenningReceiver::new()),
        ProtocolKind::StabStenning { .. } => boxed(StabStenningReceiver::new()),
        ProtocolKind::StabBeta { k } => boxed(StabBetaReceiver::new(params, k, n)?),
        ProtocolKind::Pipelined { k, window } => {
            boxed(PipelinedReceiver::with_window(params, k, window, n)?)
        }
        ProtocolKind::BetaWindow { .. } => {
            return Err(NetError::Unsupported {
                what: "beta-window needs an out-of-band d_lo agreement; \
                       run it in the simulator instead"
                    .into(),
            })
        }
    })
}

/// Re-creates a *live* receiver endpoint from serialized automaton
/// state (as produced by [`SessionEndpoint::state_bytes`]) plus the
/// output prefix `written` already committed for the session. This is
/// the adopting side of a handover and the replay anchor of crash
/// recovery.
///
/// # Errors
///
/// [`NetError::Unsupported`] for [`ProtocolKind::BetaWindow`], a
/// construction error from the protocol itself, or
/// [`NetError::Automaton`] when `state` does not decode as `kind`'s
/// receiver state (a corrupted or protocol-mismatched snapshot).
pub fn restore_receiver_endpoint(
    kind: ProtocolKind,
    params: TimingParams,
    n: usize,
    state: &[u8],
    written: Vec<Message>,
) -> Result<Box<dyn SessionEndpoint>, NetError> {
    match kind {
        ProtocolKind::Alpha => unboxed(AlphaReceiver::new(), state, written),
        ProtocolKind::Beta { k } => unboxed(BetaReceiver::new(params, k, n)?, state, written),
        ProtocolKind::Gamma { k } => unboxed(GammaReceiver::new(params, k, n)?, state, written),
        ProtocolKind::AltBit { .. } => unboxed(AltBitReceiver::new(), state, written),
        ProtocolKind::Framed { k } => unboxed(FramedReceiver::new(params, k)?, state, written),
        ProtocolKind::Stenning { .. } => unboxed(StenningReceiver::new(), state, written),
        ProtocolKind::StabStenning { .. } => unboxed(StabStenningReceiver::new(), state, written),
        ProtocolKind::StabBeta { k } => {
            unboxed(StabBetaReceiver::new(params, k, n)?, state, written)
        }
        ProtocolKind::Pipelined { k, window } => unboxed(
            PipelinedReceiver::with_window(params, k, window, n)?,
            state,
            written,
        ),
        ProtocolKind::BetaWindow { .. } => Err(NetError::Unsupported {
            what: "beta-window needs an out-of-band d_lo agreement; \
                   run it in the simulator instead"
                .into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 4).expect("valid")
    }

    #[test]
    fn alpha_receiver_writes_in_symbol_order() {
        let mut ep = receiver_endpoint(ProtocolKind::Alpha, params(), 2).expect("build");
        // Alpha's receiver writes each arriving raw bit in order.
        ep.apply_recv(Packet::Data(1)).expect("recv");
        let eff = ep.step().expect("step");
        assert_eq!(eff, StepEffect::Wrote(true));
        ep.apply_recv(Packet::Data(0)).expect("recv");
        assert_eq!(ep.step().expect("step"), StepEffect::Wrote(false));
        assert_eq!(ep.written(), &[true, false]);
    }

    #[test]
    fn gamma_receiver_acks_each_data_packet() {
        let mut ep = receiver_endpoint(ProtocolKind::Gamma { k: 4 }, params(), 4).expect("build");
        // With nothing received, the receiver idles.
        assert_eq!(ep.step().expect("step"), StepEffect::Idled);
        // After a data packet, the next local step is the ack.
        ep.apply_recv(Packet::Data(0)).expect("recv");
        let eff = ep.step().expect("step");
        assert!(
            matches!(eff, StepEffect::Sent(Packet::Ack(_))),
            "expected an ack, got {eff:?}"
        );
    }

    #[test]
    fn beta_window_is_rejected() {
        let Err(err) = receiver_endpoint(ProtocolKind::BetaWindow { k: 4 }, params(), 1) else {
            panic!("beta-window must be rejected");
        };
        assert!(matches!(err, NetError::Unsupported { .. }));
    }

    #[test]
    fn state_bytes_round_trip_resumes_mid_transfer() {
        // Drive a stenning receiver halfway, snapshot it, restore it,
        // and check the restored endpoint continues identically.
        let kind = ProtocolKind::Stenning {
            timeout_steps: None,
        };
        let mut ep = receiver_endpoint(kind, params(), 4).expect("build");
        // Seq 0 arrives: the receiver writes it and owes an ack.
        ep.apply_recv(Packet::Data(0)).expect("recv");
        while !matches!(ep.step().expect("step"), StepEffect::Idled) {}
        assert_eq!(ep.written(), &[false]);

        let state = ep.state_bytes();
        let mut restored =
            restore_receiver_endpoint(kind, params(), 4, &state, ep.written().to_vec())
                .expect("restore");
        assert_eq!(restored.written(), &[false]);

        // Both continue with the same next packet and agree on output.
        let next = Packet::Data(0b11); // seq 1, payload bit 1
        ep.apply_recv(next).expect("recv original");
        restored.apply_recv(next).expect("recv restored");
        for _ in 0..8 {
            let a = ep.step().expect("step original");
            let b = restored.step().expect("step restored");
            assert_eq!(a, b);
        }
        assert_eq!(ep.written(), restored.written());
    }

    #[test]
    fn restore_rejects_garbage_state() {
        let Err(err) = restore_receiver_endpoint(
            ProtocolKind::Beta { k: 4 },
            params(),
            8,
            &[0xFF, 0xEE],
            Vec::new(),
        ) else {
            panic!("garbage must not restore");
        };
        assert!(matches!(err, NetError::Automaton { .. }), "{err}");
    }

    #[test]
    fn every_wire_protocol_constructs() {
        for kind in [
            ProtocolKind::Alpha,
            ProtocolKind::Beta { k: 4 },
            ProtocolKind::Gamma { k: 4 },
            ProtocolKind::AltBit {
                timeout_steps: None,
            },
            ProtocolKind::Framed { k: 4 },
            ProtocolKind::Stenning {
                timeout_steps: None,
            },
            ProtocolKind::Pipelined { k: 4, window: 2 },
        ] {
            assert!(receiver_endpoint(kind, params(), 8).is_ok(), "{kind:?}");
        }
    }
}
