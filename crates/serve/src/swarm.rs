//! The M-client loopback load harness behind `rstp swarm`.
//!
//! One server process (sharded, timer-wheel paced) runs the receiver of
//! every session; M client threads each run the ordinary single-session
//! transmitter driver over its own [`Transport`] endpoint, all sharing
//! one clock epoch so latency stamps are comparable. After the run the
//! harness verifies the paper's correctness obligation end to end —
//! every receiver output `Y` must equal its session's input `X` — and
//! cross-checks a sample of sessions against the simulator oracle
//! (`rstp_sim::harness::expected_output`), so the wall-clock stack is
//! held to the same answer as the discrete-time model.

use crate::hub::MemHub;
use crate::metrics::ServeReport;
use crate::server::{run_server, ServeConfig, SessionSpec};
use crate::udp::{UdpServerTransport, UdpSessionClient};
use rstp_core::{Message, SessionId, TimingParams};
use rstp_net::{
    codec_for, run_transmitter, DriverConfig, DriverOutcome, DriverReport, NetError, Pace,
    TickClock, Transport,
};
use rstp_sim::harness::{expected_output, random_input};
use rstp_sim::ProtocolKind;
use std::collections::HashMap;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Which fabric carries the swarm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwarmTransport {
    /// In-process loopback ([`MemHub`]): lossless, no syscalls.
    Mem,
    /// One shared UDP socket on 127.0.0.1: real datagrams, real drops.
    Udp,
}

/// Configuration of a uniform swarm (same protocol and `n` everywhere;
/// [`run_swarm_sessions`] takes an explicit mixed plan instead).
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Server-side configuration (shards, batching, pacing, caps).
    pub serve: ServeConfig,
    /// Concurrent sessions `M`.
    pub sessions: usize,
    /// Protocol every session speaks.
    pub kind: ProtocolKind,
    /// Messages per session.
    pub n: usize,
    /// Seed for the per-session pseudorandom inputs.
    pub seed: u64,
    /// Fabric to run over.
    pub transport: SwarmTransport,
    /// How many sessions to cross-check against the simulator oracle.
    pub oracle_sample: usize,
}

impl SwarmConfig {
    /// A swarm of `sessions` × `kind` transfers of `n` messages each,
    /// over the loopback hub, with server defaults sized to admit them
    /// all.
    #[must_use]
    pub fn new(
        kind: ProtocolKind,
        n: usize,
        sessions: usize,
        params: TimingParams,
        tick: Duration,
    ) -> Self {
        // Queue bound sized to the offered load: on an oversubscribed
        // box the shards can lag the clients by entire bursts, and a
        // drop kills an open-loop session (β sends each symbol exactly
        // k times — lose all k and the receiver stalls forever). The
        // bound still exists; the load harness just provisions it, as a
        // deployment would. The dedicated backpressure tests shrink it
        // on purpose.
        let queue_cap = (sessions.saturating_mul(32)).max(256);
        SwarmConfig {
            serve: ServeConfig::new(params, tick)
                .with_max_sessions(sessions.max(1))
                .with_queue_cap(queue_cap),
            sessions,
            kind,
            n,
            seed: 1,
            transport: SwarmTransport::Mem,
            oracle_sample: 2,
        }
    }
}

/// Everything a swarm run observed, server and client side.
#[derive(Clone, Debug)]
pub struct SwarmReport {
    /// The server's aggregate report.
    pub serve: ServeReport,
    /// Sessions the plan asked for.
    pub planned: usize,
    /// Deadline misses across all client drivers.
    pub client_deadline_misses: u64,
    /// Timing violations across all client drivers.
    pub client_timing_violations: u64,
    /// Ids of clients whose driver hit its wall-clock cap.
    pub clients_timed_out: Vec<u32>,
    /// One diagnostic line per timed-out client — what its driver did
    /// before giving up, so an ack-loss race leaves a postmortem trail
    /// in the summary instead of a bare id.
    pub clients_timed_out_detail: Vec<String>,
    /// Ids whose receiver output `Y` differs from the input `X` — any
    /// entry here is a safety violation.
    pub mismatched: Vec<u32>,
    /// Ids admitted but not completed when the server stopped.
    pub incomplete: Vec<u32>,
    /// Sessions cross-checked against the simulator oracle.
    pub oracle_checked: usize,
    /// Ids where the wall-clock output diverged from the oracle's.
    pub oracle_mismatched: Vec<u32>,
}

impl SwarmReport {
    /// `true` iff every planned session was admitted, completed, matched
    /// its input exactly, and agreed with the simulator oracle.
    #[must_use]
    pub fn all_good(&self) -> bool {
        self.serve.rejected_sessions == 0
            && self.mismatched.is_empty()
            && self.incomplete.is_empty()
            && self.clients_timed_out.is_empty()
            && self.oracle_mismatched.is_empty()
    }

    /// The human-readable summary table `rstp swarm` prints.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let lat = self.serve.latency();
        let q = |p: f64| {
            lat.quantile_interp_micros(p)
                .map_or_else(|| "-".into(), |v| format!("{v:.0}µs"))
        };
        let _ = writeln!(
            out,
            "sessions  : {} planned, {} admitted, {} completed, {} rejected",
            self.planned,
            self.serve.admitted(),
            self.serve.completed(),
            self.serve.rejected_sessions
        );
        let _ = writeln!(
            out,
            "wall      : {:.3}s, {:.0} msg/s aggregate",
            self.serve.wall_elapsed.as_secs_f64(),
            self.serve.throughput_msgs_per_sec()
        );
        let _ = writeln!(
            out,
            "latency   : p50 {} p99 {} max {} ({} samples)",
            q(0.50),
            q(0.99),
            lat.max_micros()
                .map_or_else(|| "-".into(), |v| format!("{v}µs")),
            lat.count()
        );
        let _ = writeln!(
            out,
            "deadlines : misses {} server / {} clients, violations {} server / {} clients",
            self.serve.deadline_misses(),
            self.client_deadline_misses,
            self.serve.timing_violations(),
            self.client_timing_violations
        );
        let _ = writeln!(
            out,
            "drops     : {} ingress overflow, {} orphan frames, {} decode errors",
            self.serve.ingress_overflow(),
            self.serve.orphan_frames,
            self.serve.decode_errors
        );
        if self.serve.crashes > 0 || self.serve.restarts > 0 || self.serve.hub_dropped_frames > 0 {
            let _ = writeln!(
                out,
                "faults    : {} crashes, {} restarts, {} sessions recovered, {} lost, \
                 {} hub-dropped frames",
                self.serve.crashes,
                self.serve.restarts,
                self.serve.recovered_sessions,
                self.serve.unrecoverable_sessions,
                self.serve.hub_dropped_frames
            );
        }
        let handover_any = self.serve.handed_off()
            + self.serve.adopted()
            + self.serve.handovers_failed()
            + self.serve.handovers_aborted()
            + self.serve.deadlines_migrated();
        if handover_any > 0 {
            let _ = writeln!(
                out,
                "handover  : {} handed off, {} adopted, {} failed, {} aborted, \
                 {} deadlines migrated",
                self.serve.handed_off(),
                self.serve.adopted(),
                self.serve.handovers_failed(),
                self.serve.handovers_aborted(),
                self.serve.deadlines_migrated()
            );
        }
        if self.serve.reacked() > 0 {
            let _ = writeln!(
                out,
                "late acks : {} duplicate frame(s) re-acknowledged after completion",
                self.serve.reacked()
            );
        }
        if self.serve.events_recorded() > 0 || self.serve.events_dropped() > 0 {
            let _ = writeln!(
                out,
                "recorder  : {} events recorded, {} shed",
                self.serve.events_recorded(),
                self.serve.events_dropped()
            );
        }
        for s in &self.serve.shards {
            let _ = writeln!(
                out,
                "  shard {:>2}: {:>4} admitted, {:>4} completed, {:>8} steps, \
                 {:>4} misses, {:>4} violations, {:>4} drops",
                s.shard,
                s.admitted,
                s.completed,
                s.steps,
                s.deadline_misses,
                s.timing_violations,
                s.ingress_overflow
            );
        }
        if self.oracle_checked > 0 {
            let _ = writeln!(
                out,
                "oracle    : {} sessions cross-checked against the simulator, {} diverged",
                self.oracle_checked,
                self.oracle_mismatched.len()
            );
        }
        if !self.mismatched.is_empty() {
            let _ = writeln!(out, "MISMATCHED: {:?}", self.mismatched);
        }
        if !self.incomplete.is_empty() {
            let _ = writeln!(out, "INCOMPLETE: {:?}", self.incomplete);
        }
        if !self.clients_timed_out.is_empty() {
            let _ = writeln!(out, "TIMED OUT : {:?}", self.clients_timed_out);
            for line in &self.clients_timed_out_detail {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }
}

/// Per-shard step budget (steps per second) a commodity CI box sustains
/// before the timer wheel lags the clock and deadline misses cascade.
/// Calibrated against the γ(4) stall in ROADMAP item 5: 64 active
/// sessions at a 200 µs tick offer 80k steps/s/shard on 4 shards and
/// reliably starve the wall clock, while β at 256 sessions (passive,
/// demand-driven) is fine.
const SHARD_STEP_BUDGET_PER_SEC: u64 = 50_000;

/// Deterministic pre-flight overload check for a swarm shape.
///
/// An *active* receiver (γ, pipelined) takes a local step — and sends an
/// ack — every `[c1, c2]` window for the whole transfer, whether or not
/// data arrived. Each session therefore offers about `1 / (c1 · tick)`
/// server steps per second regardless of progress, and past the shard
/// budget the wheel lags, misses cascade, and transfers stall past any
/// wall clock instead of failing. Rather than flake, the harness
/// predicts that load from the shape alone and refuses up front: the
/// returned diagnosis names the offered and budgeted rates and the
/// knobs that bring the shape back inside them. Passive receivers
/// (α, β and the framed/windowed/stabilizing variants) step on demand,
/// so their load is bounded by the client send rate and they pass.
#[must_use]
pub fn overload_diagnosis(config: &SwarmConfig) -> Option<String> {
    let active = matches!(
        config.kind,
        ProtocolKind::Gamma { .. } | ProtocolKind::Pipelined { .. }
    );
    if !active {
        return None;
    }
    let tick_us = config.serve.tick.as_micros().max(1) as u64;
    let c1 = config.serve.params.c1().ticks().max(1);
    let per_session = 1_000_000 / (c1 * tick_us).max(1);
    let shards = config.serve.shards.max(1) as u64;
    let offered = (config.sessions as u64) * per_session / shards;
    if offered <= SHARD_STEP_BUDGET_PER_SEC {
        return None;
    }
    Some(format!(
        "predicted overload: {} active {} sessions at a {} µs tick offer \
         ~{offered} steps/s per shard ({} shards), over the {} steps/s \
         budget; transfers would stall, not fail. Raise --tick-us, add \
         --shards, or lower --sessions.",
        config.sessions,
        config.kind.name(),
        tick_us,
        shards,
        SHARD_STEP_BUDGET_PER_SEC
    ))
}

/// Runs a uniform swarm per `config`, including the simulator-oracle
/// cross-check on the first `oracle_sample` sessions.
///
/// # Errors
///
/// [`NetError`] on transport failure, a model violation on either side,
/// or a panicked thread. (A session merely failing to complete or to
/// match its input is a *finding*, reported in the [`SwarmReport`], not
/// an `Err`.)
pub fn run_swarm(config: &SwarmConfig) -> Result<SwarmReport, NetError> {
    let sessions: Vec<(SessionSpec, Vec<Message>)> = (0..config.sessions)
        .map(|i| {
            let spec = SessionSpec {
                id: SessionId::new(u32::try_from(i).unwrap_or(u32::MAX).wrapping_add(1)),
                kind: config.kind,
                n: config.n,
            };
            let input = random_input(config.n, config.seed.wrapping_add(i as u64));
            (spec, input)
        })
        .collect();
    let mut report = run_swarm_sessions(&sessions, &config.serve, config.transport)?;

    // Independent oracle: the simulator (with its checker enabled) must
    // produce the same output the wall-clock stack did. Fault runs can
    // leave duplicate stats per id (a handover or crash epoch next to
    // the completing one); the completed entry is the outcome.
    let mut written: HashMap<u32, (bool, &[Message])> = HashMap::new();
    for s in report.serve.shards.iter().flat_map(|s| s.sessions.iter()) {
        let e = written
            .entry(s.id.raw())
            .or_insert((s.completed, s.written.as_slice()));
        if s.completed && !e.0 {
            *e = (true, s.written.as_slice());
        }
    }
    for (spec, input) in sessions.iter().take(config.oracle_sample) {
        let expected = expected_output(config.kind, config.serve.params, input).map_err(|e| {
            NetError::Automaton {
                what: format!("sim oracle: {e}"),
            }
        })?;
        report.oracle_checked += 1;
        if written.get(&spec.id.raw()).map(|&(_, w)| w) != Some(expected.as_slice()) {
            report.oracle_mismatched.push(spec.id.raw());
        }
    }
    Ok(report)
}

/// Runs an explicit (possibly mixed-protocol, mixed-`n`) session plan:
/// each `(spec, input)` pair becomes one client thread transmitting
/// `input` while the server runs the matching receiver.
///
/// # Errors
///
/// [`NetError`] as for [`run_swarm`].
pub fn run_swarm_sessions(
    sessions: &[(SessionSpec, Vec<Message>)],
    serve: &ServeConfig,
    transport: SwarmTransport,
) -> Result<SwarmReport, NetError> {
    // Anchor tick 0 far enough ahead that every client thread exists
    // before its first deadline (spawning M threads takes real time).
    let headroom = Duration::from_millis(20)
        + Duration::from_micros(100) * u32::try_from(sessions.len()).unwrap_or(u32::MAX);
    let clock = TickClock::start_after(headroom, serve.tick);
    let base = DriverConfig::new(serve.params, serve.tick)
        .with_pace(serve.pace)
        .with_max_wall(serve.max_wall);
    let specs: Vec<SessionSpec> = sessions.iter().map(|(s, _)| *s).collect();

    let (serve_report, clients) = match transport {
        SwarmTransport::Mem => {
            let mut hub = MemHub::new();
            let mut ends = Vec::with_capacity(sessions.len());
            for (spec, input) in sessions {
                let end = hub.client_transport(spec.id, codec_for(spec.kind)?);
                ends.push((*spec, input.clone(), end));
            }
            let spawner = spawn_clients_async(ends, clock, base)?;
            let report = run_server(&mut hub, clock, &specs, serve)?;
            (report, join_clients(join_spawner(spawner)?)?)
        }
        SwarmTransport::Udp => {
            let mut server = UdpServerTransport::bind(("127.0.0.1", 0))?;
            let addr = server.local_addr()?;
            let mut ends = Vec::with_capacity(sessions.len());
            for (spec, input) in sessions {
                let end = UdpSessionClient::connect(addr, spec.id, codec_for(spec.kind)?)?;
                ends.push((*spec, input.clone(), end));
            }
            let spawner = spawn_clients_async(ends, clock, base)?;
            let report = run_server(&mut server, clock, &specs, serve)?;
            (report, join_clients(join_spawner(spawner)?)?)
        }
    };

    // Verify the safety obligation per session: Y == X exactly. Fault
    // and handover runs can emit more than one stats entry per id (a
    // crash epoch's unfinished entry next to the epoch that completed
    // it); the completed entry is the session's outcome. A planned
    // session with no stats at all — lost in an unrecovered crash, or
    // never admitted — is incomplete.
    let mut outcomes: HashMap<u32, &crate::metrics::SessionStats> = HashMap::new();
    for stats in serve_report.shards.iter().flat_map(|s| s.sessions.iter()) {
        use std::collections::hash_map::Entry;
        match outcomes.entry(stats.id.raw()) {
            Entry::Occupied(mut e) => {
                if stats.completed && !e.get().completed {
                    e.insert(stats);
                }
            }
            Entry::Vacant(e) => {
                e.insert(stats);
            }
        }
    }
    let mut mismatched = Vec::new();
    let mut incomplete = Vec::new();
    for (spec, input) in sessions {
        let raw = spec.id.raw();
        match outcomes.get(&raw) {
            Some(stats) => {
                if !stats.completed {
                    incomplete.push(raw);
                }
                if stats.written.as_slice() != input.as_slice() {
                    mismatched.push(raw);
                }
            }
            // A session with no stats at all was either rejected at
            // admission — a legitimate backpressure outcome, already
            // counted in `rejected_sessions` — or lost in an
            // unrecovered crash, which is incomplete.
            None => {
                if !serve_report.rejected_ids.contains(&raw) {
                    incomplete.push(raw);
                }
            }
        }
    }
    mismatched.sort_unstable();
    incomplete.sort_unstable();

    let mut client_deadline_misses = 0;
    let mut client_timing_violations = 0;
    let mut clients_timed_out = Vec::new();
    let mut clients_timed_out_detail = Vec::new();
    for (spec, report) in specs.iter().zip(&clients) {
        client_deadline_misses += report.deadline_misses;
        client_timing_violations += report.timing_violations;
        if report.outcome == DriverOutcome::TimedOut {
            clients_timed_out.push(spec.id.raw());
            clients_timed_out_detail.push(format!(
                "client {}: {} steps, {} data sends, {} acks sent, {} recvs, \
                 {} writes, {} misses, gave up after {:.3}s",
                spec.id.raw(),
                report.steps,
                report.data_sends,
                report.ack_sends,
                report.recvs,
                report.written.len(),
                report.deadline_misses,
                report.wall_elapsed.as_secs_f64(),
            ));
        }
    }

    Ok(SwarmReport {
        serve: serve_report,
        planned: sessions.len(),
        client_deadline_misses,
        client_timing_violations,
        clients_timed_out,
        clients_timed_out_detail,
        mismatched,
        incomplete,
        oracle_checked: 0,
        oracle_mismatched: Vec::new(),
    })
}

type ClientHandles = Vec<JoinHandle<Result<DriverReport, NetError>>>;

/// Spawns the client threads from a helper thread so the caller can
/// start the server pump *immediately*. Spawning hundreds of threads
/// takes real time; if the clients were all spawned before the pump ran,
/// their first sends could overrun a kernel socket buffer with nobody
/// draining it — a correlated loss of every session's first symbol.
fn spawn_clients_async<T: Transport + Send + 'static>(
    ends: Vec<(SessionSpec, Vec<Message>, T)>,
    clock: TickClock,
    base: DriverConfig,
) -> Result<JoinHandle<Result<ClientHandles, NetError>>, NetError> {
    thread::Builder::new()
        .name("rstp-swarm-spawner".into())
        .spawn(move || spawn_clients(ends, clock, base))
        .map_err(|e| NetError::Thread {
            what: format!("spawn client spawner: {e}"),
        })
}

fn join_spawner(
    spawner: JoinHandle<Result<ClientHandles, NetError>>,
) -> Result<ClientHandles, NetError> {
    spawner.join().map_err(|_| NetError::Thread {
        what: "swarm client spawner panicked".into(),
    })?
}

/// At most this many clients are in their send phase at once; later
/// clients start whole waves later (see [`spawn_clients`]).
const WAVE: usize = 64;

fn spawn_clients<T: Transport + Send + 'static>(
    ends: Vec<(SessionSpec, Vec<Message>, T)>,
    clock: TickClock,
    base: DriverConfig,
) -> Result<ClientHandles, NetError> {
    // Client arrivals are ramped, in two tiers. Within a wave of WAVE
    // clients, epochs spread across one step window: a shared epoch
    // would send the whole wave's datagrams as one synchronized impulse
    // per step. Successive waves start a conservatively overestimated
    // transfer duration apart, so at most ~WAVE clients are in their
    // send phase at once. Both tiers exist for the same reason: a
    // default kernel UDP receive buffer holds only a few hundred
    // datagrams, and on a small host the scheduler can hold the pump
    // off for tens of milliseconds — 256 concurrent senders overrun the
    // buffer in that gap, and losing all k copies of a symbol stalls an
    // open-loop session forever. The ramp shapes client arrivals only;
    // the server admits every session up front and paces all of their
    // receivers on the wheel for the whole run.
    let p = base.params;
    let gap_ticks = match base.pace {
        Pace::Fast => p.c1().ticks(),
        Pace::Slow => p.c2().ticks(),
    };
    // One worst-case delivery + ack round, in ticks.
    let round = p.c2().ticks() + p.d().ticks();
    let n_max = ends
        .iter()
        .map(|(s, _, _)| u64::try_from(s.n).unwrap_or(u64::MAX))
        .max()
        .unwrap_or(0);
    // Upper bound on one transfer: every message costs at most two send
    // steps plus a round trip (covers ack-clocked gamma), plus the
    // driver's terminal idle streak. A ramp estimate, not a correctness
    // bound — overshooting only stretches the run.
    let span_ticks = n_max
        .saturating_mul(2 * gap_ticks + round)
        .saturating_add(4 * round);
    let wave_span = clock.tick() * u32::try_from(span_ticks).unwrap_or(u32::MAX);
    let window = clock.tick() * u32::try_from(p.c2().ticks()).unwrap_or(u32::MAX);
    let in_wave = u32::try_from(ends.len().min(WAVE))
        .unwrap_or(u32::MAX)
        .max(1);
    let mut handles = Vec::with_capacity(ends.len());
    for (i, (spec, input, mut end)) in ends.into_iter().enumerate() {
        let wave = u32::try_from(i / WAVE).unwrap_or(u32::MAX);
        let jitter = window * u32::try_from(i % WAVE).unwrap_or(u32::MAX) / in_wave;
        let offset = wave_span * wave + jitter;
        let clock = TickClock::with_epoch(clock.epoch() + offset, clock.tick());
        let params = base.params;
        let handle = thread::Builder::new()
            .name(format!("rstp-swarm-client-{}", spec.id))
            .spawn(move || run_transmitter(spec.kind, params, &input, &mut end, clock, &base))
            .map_err(|e| NetError::Thread {
                what: format!("spawn client {}: {e}", spec.id),
            })?;
        handles.push(handle);
    }
    Ok(handles)
}

fn join_clients(handles: ClientHandles) -> Result<Vec<DriverReport>, NetError> {
    handles
        .into_iter()
        .map(|h| {
            h.join().map_err(|_| NetError::Thread {
                what: "swarm client panicked".into(),
            })?
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_model_flags_the_roadmap_gamma_shape_and_nothing_passive() {
        let params = TimingParams::from_ticks(1, 2, 8).expect("valid");
        let tick = Duration::from_micros(200);
        // The documented stall: 64 γ(4) sessions on the mem hub.
        let gamma = SwarmConfig::new(ProtocolKind::Gamma { k: 4 }, 32, 64, params, tick);
        let diag = overload_diagnosis(&gamma).expect("the 64×γ shape must be flagged");
        assert!(diag.contains("predicted overload"), "{diag}");
        assert!(diag.contains("gamma"), "{diag}");
        // Passive β is fine even at 4× the sessions.
        let beta = SwarmConfig::new(ProtocolKind::Beta { k: 4 }, 32, 256, params, tick);
        assert!(overload_diagnosis(&beta).is_none());
        // So are the stabilizing kinds — demand-driven receivers.
        let stab = SwarmConfig::new(
            ProtocolKind::StabStenning {
                timeout_steps: None,
            },
            32,
            64,
            params,
            tick,
        );
        assert!(overload_diagnosis(&stab).is_none());
        // And γ itself passes once the tick is coarse enough.
        let coarse = SwarmConfig::new(
            ProtocolKind::Gamma { k: 4 },
            32,
            64,
            params,
            Duration::from_micros(2000),
        );
        assert!(overload_diagnosis(&coarse).is_none());
    }

    #[test]
    fn stabilizing_swarm_holds_y_equals_x_at_64_sessions() {
        // The CI swarm shape pinning the stabilizing family at scale:
        // 64 concurrent stop-and-wait stabilizing sessions on the mem
        // hub, each held to Y = X and the simulator oracle.
        let params = TimingParams::from_ticks(1, 2, 4).expect("valid");
        let config = SwarmConfig::new(
            ProtocolKind::StabStenning {
                timeout_steps: None,
            },
            8,
            64,
            params,
            Duration::from_micros(200),
        );
        let report = run_swarm(&config).expect("swarm");
        assert!(report.all_good(), "{}", report.summary());
        assert_eq!(report.serve.completed(), 64);
    }

    #[test]
    fn small_mem_swarm_reproduces_every_input() {
        let params = TimingParams::from_ticks(1, 2, 4).expect("valid");
        let config = SwarmConfig::new(
            ProtocolKind::Beta { k: 4 },
            16,
            8,
            params,
            Duration::from_micros(200),
        );
        let report = run_swarm(&config).expect("swarm");
        assert!(report.all_good(), "{}", report.summary());
        assert_eq!(report.serve.completed(), 8);
        assert_eq!(report.oracle_checked, 2);
        assert!(report.serve.latency().count() > 0);
    }

    #[test]
    fn recorded_mem_swarm_stays_clean_and_indexable() {
        let params = TimingParams::from_ticks(1, 2, 4).expect("valid");
        let dir = std::env::temp_dir().join(format!("rstp-swarm-rec-{}", std::process::id()));
        let mut config = SwarmConfig::new(
            ProtocolKind::Gamma { k: 4 },
            8,
            6,
            params,
            Duration::from_micros(200),
        );
        config.serve = config.serve.with_record(&dir).with_record_seed(config.seed);
        let report = run_swarm(&config).expect("swarm");
        assert!(report.all_good(), "{}", report.summary());
        assert!(report.serve.events_recorded() > 0);
        assert_eq!(report.serve.events_dropped(), 0);
        assert!(report.summary().contains("recorder  :"));

        // The recording is complete: every session has its admit,
        // frames, and a completed verdict matching its input.
        let ix = rstp_record::SessionIndex::from_dir(&dir).expect("index");
        assert_eq!(ix.len(), 6);
        assert_eq!(ix.params, Some((1, 2, 4)));
        assert_eq!(ix.seed, Some(config.seed));
        assert!(!ix.truncated);
        for h in ix.sessions() {
            assert_eq!(h.kind, Some(ProtocolKind::Gamma { k: 4 }));
            assert!(!h.rx.is_empty(), "session {} recorded no frames", h.session);
            assert!(!h.pops.is_empty());
            let (_, completed, written) = h.verdict.clone().expect("verdict");
            assert!(completed);
            let expect = random_input(8, config.seed.wrapping_add(u64::from(h.session) - 1));
            assert_eq!(written, expect, "recorded Y != X for session {}", h.session);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_restart_recovers_every_acknowledged_write() {
        // The tentpole scenario: a shard is killed mid-transfer and
        // restarted from its flight recording. Stop-and-wait clients
        // retransmit through the outage, the restarted shard resumes
        // each session from snapshot + replay, and the run must end
        // with zero acknowledged symbols lost and every Y = X — which
        // `all_good` asserts via the per-session mismatch check.
        let params = TimingParams::from_ticks(1, 2, 4).expect("valid");
        let tick = Duration::from_micros(200);
        let dir = std::env::temp_dir().join(format!(
            "rstp-swarm-crash-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        let plan = crate::FaultPlan::parse("kill=1@20;restart=1@60").expect("plan");
        let serve = ServeConfig::new(params, tick)
            .with_shards(2)
            .with_max_sessions(8)
            .with_queue_cap(512)
            .with_max_wall(Duration::from_secs(30))
            .with_record(&dir)
            .with_record_seed(7)
            .with_faults(plan);
        let sessions: Vec<(SessionSpec, Vec<Message>)> = (1..=8u32)
            .map(|i| {
                let spec = SessionSpec {
                    id: SessionId::new(i),
                    kind: ProtocolKind::Stenning {
                        timeout_steps: None,
                    },
                    n: 8,
                };
                (spec, random_input(8, 7 + u64::from(i)))
            })
            .collect();
        let report = run_swarm_sessions(&sessions, &serve, SwarmTransport::Mem).expect("swarm");
        assert!(report.all_good(), "{}", report.summary());
        assert_eq!(report.serve.completed(), 8);
        assert_eq!(report.serve.crashes, 1, "{}", report.summary());
        assert_eq!(report.serve.restarts, 1, "{}", report.summary());
        assert_eq!(
            report.serve.unrecoverable_sessions,
            0,
            "{}",
            report.summary()
        );
        assert!(
            report.serve.recovered_sessions >= 1,
            "the kill must land mid-transfer: {}",
            report.summary()
        );
        // The crashed epoch is visible in the per-shard reports, and
        // the summary renders the fault line.
        assert!(report.serve.shards.iter().any(|s| s.crashed));
        assert!(
            report.summary().contains("faults    :"),
            "{}",
            report.summary()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_handover_migrates_sessions_without_losing_output() {
        // Pair-wise handover: shard 0 drains every live session to
        // shard 1 mid-transfer (DRAIN → SNAPSHOT → ACK → REDIRECT).
        // The adopted sessions must finish with Y = X, and deadlines
        // that fired while paused are reported as migrated, not lost.
        let params = TimingParams::from_ticks(1, 2, 4).expect("valid");
        let tick = Duration::from_micros(200);
        let plan = crate::FaultPlan::parse("drain=0->1@15").expect("plan");
        let serve = ServeConfig::new(params, tick)
            .with_shards(2)
            .with_max_sessions(8)
            .with_queue_cap(512)
            .with_max_wall(Duration::from_secs(30))
            .with_faults(plan);
        let sessions: Vec<(SessionSpec, Vec<Message>)> = (1..=8u32)
            .map(|i| {
                let spec = SessionSpec {
                    id: SessionId::new(i),
                    kind: ProtocolKind::Stenning {
                        timeout_steps: None,
                    },
                    n: 8,
                };
                (spec, random_input(8, 100 + u64::from(i)))
            })
            .collect();
        let report = run_swarm_sessions(&sessions, &serve, SwarmTransport::Mem).expect("swarm");
        assert!(report.all_good(), "{}", report.summary());
        assert_eq!(report.serve.completed(), 8);
        assert!(
            report.serve.handed_off() >= 1,
            "the drain must move sessions: {}",
            report.summary()
        );
        assert_eq!(
            report.serve.handed_off(),
            report.serve.adopted(),
            "every handoff must be adopted exactly once: {}",
            report.summary()
        );
        assert!(
            report.summary().contains("handover  :"),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn injected_panic_is_a_run_failure_not_a_silent_exit() {
        // A shard thread panic must surface as an error from the run —
        // the pre-fix behavior (`rstp swarm` exiting 0 after a shard
        // panic) is exactly what this pins against.
        let params = TimingParams::from_ticks(1, 2, 4).expect("valid");
        let tick = Duration::from_micros(200);
        let plan = crate::FaultPlan::parse("panic=0@5").expect("plan");
        let serve = ServeConfig::new(params, tick)
            .with_shards(2)
            .with_max_sessions(4)
            .with_max_wall(Duration::from_secs(2))
            .with_faults(plan);
        let sessions: Vec<(SessionSpec, Vec<Message>)> = (1..=4u32)
            .map(|i| {
                let spec = SessionSpec {
                    id: SessionId::new(i),
                    kind: ProtocolKind::Stenning {
                        timeout_steps: None,
                    },
                    n: 4,
                };
                (spec, random_input(4, u64::from(i)))
            })
            .collect();
        let err = match run_swarm_sessions(&sessions, &serve, SwarmTransport::Mem) {
            Err(e) => e,
            Ok(report) => panic!("panic fault must fail the run: {}", report.summary()),
        };
        assert!(
            matches!(err, NetError::Thread { .. }),
            "expected a thread error, got: {err}"
        );
    }

    #[test]
    fn summary_renders_every_section() {
        let params = TimingParams::from_ticks(1, 2, 4).expect("valid");
        let mut config = SwarmConfig::new(
            ProtocolKind::Gamma { k: 4 },
            8,
            4,
            params,
            Duration::from_micros(200),
        );
        config.oracle_sample = 1;
        let report = run_swarm(&config).expect("swarm");
        let text = report.summary();
        assert!(text.contains("sessions  :"), "{text}");
        assert!(text.contains("latency   :"), "{text}");
        assert!(text.contains("shard"), "{text}");
        assert!(text.contains("oracle    :"), "{text}");
    }
}
