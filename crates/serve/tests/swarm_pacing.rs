//! Integration: swarms over both fabrics keep every session exact, and
//! timer-wheel pacing holds each admitted session's step gaps inside
//! `[c1, c2]` under load.
//!
//! The `timing_violations == 0` assertions are *not* wall-clock-flaky
//! and run unconditionally: the shard schedules consecutive deadlines
//! exactly `gap` ticks apart, measures gaps only between wakes that were
//! punctual (within the slack of their own deadline), and books anything
//! late as a deadline miss instead. Two punctual wakes `gap` ticks apart
//! are inside `[c1·tick − slack, c2·tick + slack]` by construction, so a
//! violation can only come from a scheduling bug, never from a loaded
//! CI machine — load surfaces as misses, which these tests permit.

use rstp_core::{SessionId, TimingParams};
use rstp_serve::{
    run_swarm, run_swarm_sessions, ServeConfig, SessionSpec, SwarmConfig, SwarmTransport,
};
use rstp_sim::harness::random_input;
use rstp_sim::ProtocolKind;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

fn params() -> TimingParams {
    TimingParams::from_ticks(1, 2, 4).expect("valid")
}

/// Each swarm spins up dozens of real-time threads; running two swarms
/// concurrently on a small CI box starves both of CPU. Serialize.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn mem_swarm_is_exact_and_paced_within_the_window() {
    let _guard = serial();
    let mut config = SwarmConfig::new(
        ProtocolKind::Beta { k: 4 },
        32,
        64,
        params(),
        Duration::from_micros(200),
    );
    config.serve = config.serve.with_shards(4).with_batch(32);
    config.seed = 7;
    let report = run_swarm(&config).expect("swarm");

    assert!(report.all_good(), "swarm failed:\n{}", report.summary());
    assert_eq!(report.serve.completed(), 64);
    assert!(report.mismatched.is_empty(), "prefix-safety violated");
    // The tentpole pacing claim: under 64 concurrent sessions the wheel
    // never stepped an admitted session outside its [c1, c2] window
    // (driver-identical accounting; see the module comment for why this
    // is load-independent).
    assert_eq!(
        report.serve.timing_violations(),
        0,
        "wheel pacing broke [c1, c2]:\n{}",
        report.summary()
    );
    // Every session exchanged real traffic (β(k) packs k bits per
    // symbol, so the frame count is far below n·sessions, but no
    // session can complete without at least one delivered frame).
    assert!(report.serve.latency().count() >= 64);
}

#[test]
fn udp_swarm_reproduces_every_input() {
    let _guard = serial();
    let mut config = SwarmConfig::new(
        ProtocolKind::Beta { k: 4 },
        16,
        16,
        params(),
        Duration::from_micros(300),
    );
    config.transport = SwarmTransport::Udp;
    config.serve = config.serve.with_shards(2);
    config.seed = 11;
    let report = run_swarm(&config).expect("swarm");

    assert!(report.all_good(), "udp swarm failed:\n{}", report.summary());
    assert_eq!(report.serve.completed(), 16);
    assert_eq!(report.serve.timing_violations(), 0);
}

#[test]
fn mixed_protocol_plan_isolates_sessions() {
    let _guard = serial();
    // Heterogeneous table: different protocols and different n side by
    // side on the same shards; every session must still reproduce its
    // own input exactly.
    let kinds = [
        ProtocolKind::Alpha,
        ProtocolKind::Beta { k: 4 },
        ProtocolKind::Gamma { k: 4 },
        ProtocolKind::Framed { k: 4 },
        ProtocolKind::Stenning {
            timeout_steps: None,
        },
        ProtocolKind::Pipelined { k: 4, window: 2 },
        ProtocolKind::AltBit {
            timeout_steps: None,
        },
    ];
    let sessions: Vec<(SessionSpec, Vec<bool>)> = kinds
        .iter()
        .enumerate()
        .flat_map(|(i, &kind)| {
            (0..3).map(move |j| {
                let id = SessionId::new((i * 3 + j) as u32 + 1);
                let n = 4 + (i * 3 + j) % 9; // mixed lengths 4..=12
                (
                    SessionSpec { id, kind, n },
                    random_input(n, 31 * i as u64 + j as u64),
                )
            })
        })
        .collect();
    let serve = ServeConfig::new(params(), Duration::from_micros(200))
        .with_shards(3)
        .with_max_sessions(sessions.len());
    let report = run_swarm_sessions(&sessions, &serve, SwarmTransport::Mem).expect("swarm");

    assert!(
        report.all_good(),
        "mixed swarm failed:\n{}",
        report.summary()
    );
    assert_eq!(report.serve.completed(), sessions.len() as u64);
    assert_eq!(report.serve.timing_violations(), 0);
    // Outputs are per-session exact, so nothing leaked across sessions
    // even with seven different automata interleaved on three shards.
    for stats in report.serve.shards.iter().flat_map(|s| s.sessions.iter()) {
        let input = &sessions
            .iter()
            .find(|(spec, _)| spec.id == stats.id)
            .expect("planned session")
            .1;
        assert_eq!(&stats.written, input, "session {} diverged", stats.id);
    }
}

#[test]
fn backpressure_rejects_rather_than_stalls() {
    let _guard = serial();
    // An admission plan bigger than the table: the surplus is rejected
    // at admission, and every admitted session still completes exactly.
    let mut config = SwarmConfig::new(
        ProtocolKind::Beta { k: 4 },
        8,
        12,
        params(),
        Duration::from_micros(200),
    );
    config.serve = config
        .serve
        .with_shards(2)
        .with_max_sessions(8)
        .with_max_wall(Duration::from_secs(10));
    config.oracle_sample = 0;
    let report = run_swarm(&config).expect("swarm");

    assert_eq!(report.serve.rejected_sessions, 4);
    assert_eq!(report.serve.admitted(), 8);
    assert_eq!(report.serve.completed(), 8);
    assert!(report.mismatched.is_empty());
    assert!(report.incomplete.is_empty());
    // The surplus was rejected at admission rather than wedged into the
    // table, so the admitted sessions' pacing never degraded.
    assert_eq!(report.serve.timing_violations(), 0);
    // (Beta transmitters are open-loop, so the rejected *clients* still
    // finish on their own — rejection starves no one of CPU.)
    assert!(report.clients_timed_out.is_empty());
}
