//! Step and delivery adversaries.
//!
//! A timed execution of an RSTP system is determined by (a) when each
//! process takes its local steps — any spacing in `[c1, c2]` — and (b) when
//! each in-flight packet is delivered — any delay in `[d_lo, d_hi]`
//! (classically `[0, d]`). The paper's lower-bound proofs are specific
//! choices of (a) and (b); this module makes those choices pluggable
//! strategy objects so a protocol's effort can be measured under the
//! schedule that hurts it most.
//!
//! Step adversaries (paper §5.1 uses "fast" executions, §5.2 uses `c2`-paced
//! ones):
//!
//! * [`StepPolicy::AllFast`] — every step exactly `c1` apart (Lemma 5.1's
//!   construction),
//! * [`StepPolicy::AllSlow`] — every step exactly `c2` apart (worst case
//!   for counted idling; Lemma 5.2's `(ℓ(n)-1)·δ1·c2` bound),
//! * [`StepPolicy::Alternate`] — alternates `c1`/`c2` per process,
//! * [`StepPolicy::SkewedPair`] — fast transmitter, slow receiver (or vice
//!   versa) to stress ack turnaround,
//! * [`StepPolicy::Random`] — seeded uniform in `[c1, c2]`.
//!
//! Delivery adversaries:
//!
//! * [`DeliveryPolicy::Eager`] — delay 0 (best case; FIFO order),
//! * [`DeliveryPolicy::MaxDelay`] — delay exactly `d` (worst latency, still
//!   FIFO),
//! * [`DeliveryPolicy::ReverseBurst`] — delivers each `burst`-sized group
//!   in *reverse* send order with valid delays — the within-window
//!   reordering that forces multiset (rather than sequence) encodings
//!   (Lemma 5.1),
//! * [`DeliveryPolicy::IntervalBatch`] — the Figure 2 construction: packets
//!   sent during interval `t_i = [i·w, (i+1)·w)` are all delivered in a
//!   tight cluster at the start of `t_{i+1}`,
//! * [`DeliveryPolicy::Random`] — seeded uniform delay in `[d_lo, d_hi]`,
//! * [`DeliveryPolicy::Faulty`] — seeded loss and duplication on top of a
//!   base delay: **violates** the paper's channel (used for experiment E9
//!   to show the perfect-channel assumption is necessary).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rstp_automata::{Time, TimeDelta};
use rstp_core::{Owner, Packet, TimingParams};

/// Chooses the spacing of a process's local steps within `[c1, c2]`.
pub trait StepAdversary {
    /// The delay from process `owner`'s current step to its next one.
    /// Must lie in `[c1, c2]`; the runner asserts this.
    fn next_gap(&mut self, owner: Owner, step_index: u64) -> TimeDelta;
}

/// What the channel does with one sent packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Deliver once after `delay`.
    Deliver(TimeDelta),
    /// Never deliver — **outside** the paper's channel model.
    Drop,
    /// Deliver twice (duplication) — **outside** the paper's channel model.
    Duplicate(TimeDelta, TimeDelta),
}

/// Chooses delivery timing (and, for fault injection, loss/duplication).
pub trait DeliveryAdversary {
    /// Decides the fate of `packet`, sent at `send_time` as the
    /// `send_index`-th data-or-ack send. Returned delays must lie in
    /// `[d_lo, d_hi]`; the runner asserts this.
    fn dispose(&mut self, packet: Packet, send_time: Time, send_index: u64) -> Disposition;
}

/// Declarative step-adversary configuration (constructs a boxed
/// [`StepAdversary`] via [`StepPolicy::build`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepPolicy {
    /// Every step `c1` apart — the "fast executions" of Lemma 5.1.
    AllFast,
    /// Every step `c2` apart — maximizes counted-idling cost (Lemma 5.2).
    AllSlow,
    /// Alternate `c1`, `c2`, `c1`, … per process.
    Alternate,
    /// Transmitter at `c1`, receiver at `c2` (ack-turnaround stress) or the
    /// reverse.
    SkewedPair {
        /// If true the transmitter is the fast process.
        fast_transmitter: bool,
    },
    /// Uniform seeded choice in `[c1, c2]` per step.
    Random {
        /// RNG seed (runs are reproducible per seed).
        seed: u64,
    },
}

impl StepPolicy {
    /// All deterministic policies plus one seeded-random instance — the
    /// default worst-case sweep used by effort measurement.
    #[must_use]
    pub fn sweep(seed: u64) -> Vec<StepPolicy> {
        vec![
            StepPolicy::AllFast,
            StepPolicy::AllSlow,
            StepPolicy::Alternate,
            StepPolicy::SkewedPair {
                fast_transmitter: true,
            },
            StepPolicy::SkewedPair {
                fast_transmitter: false,
            },
            StepPolicy::Random { seed },
        ]
    }

    /// Builds the adversary for the given parameters.
    #[must_use]
    pub fn build(self, params: TimingParams) -> Box<dyn StepAdversary> {
        let c1 = params.c1();
        let c2 = params.c2();
        match self {
            StepPolicy::AllFast => Box::new(FixedGap { gap: c1 }),
            StepPolicy::AllSlow => Box::new(FixedGap { gap: c2 }),
            StepPolicy::Alternate => Box::new(Alternating { c1, c2 }),
            StepPolicy::SkewedPair { fast_transmitter } => Box::new(Skewed {
                c1,
                c2,
                fast_transmitter,
            }),
            StepPolicy::Random { seed } => Box::new(RandomGap {
                c1,
                c2,
                rng: StdRng::seed_from_u64(seed ^ 0x5354_4550), // "STEP"
            }),
        }
    }
}

struct FixedGap {
    gap: TimeDelta,
}

impl StepAdversary for FixedGap {
    fn next_gap(&mut self, _owner: Owner, _step_index: u64) -> TimeDelta {
        self.gap
    }
}

struct Alternating {
    c1: TimeDelta,
    c2: TimeDelta,
}

impl StepAdversary for Alternating {
    fn next_gap(&mut self, _owner: Owner, step_index: u64) -> TimeDelta {
        if step_index.is_multiple_of(2) {
            self.c1
        } else {
            self.c2
        }
    }
}

struct Skewed {
    c1: TimeDelta,
    c2: TimeDelta,
    fast_transmitter: bool,
}

impl StepAdversary for Skewed {
    fn next_gap(&mut self, owner: Owner, _step_index: u64) -> TimeDelta {
        let fast = matches!(owner, Owner::Transmitter) == self.fast_transmitter;
        if fast {
            self.c1
        } else {
            self.c2
        }
    }
}

struct RandomGap {
    c1: TimeDelta,
    c2: TimeDelta,
    rng: StdRng,
}

impl StepAdversary for RandomGap {
    fn next_gap(&mut self, _owner: Owner, _step_index: u64) -> TimeDelta {
        TimeDelta::from_ticks(self.rng.gen_range(self.c1.ticks()..=self.c2.ticks()))
    }
}

/// Declarative delivery-adversary configuration (constructs a boxed
/// [`DeliveryAdversary`] via [`DeliveryPolicy::build`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeliveryPolicy {
    /// Immediate delivery (`delay = d_lo`), FIFO.
    Eager,
    /// Maximum delay (`delay = d_hi`), FIFO.
    MaxDelay,
    /// Reverse the order of every `burst`-sized group of data packets
    /// (acks are delivered FIFO at `d_lo`): arrival times within a group
    /// decrease by one tick per position, staying within `[d_lo, d_hi]`.
    ReverseBurst {
        /// Group size; use the protocol's burst size (`δ1` or `δ2`).
        burst: u64,
    },
    /// Figure 2: every packet sent during `[i·w, (i+1)·w)` is delivered in
    /// a tight reverse-order cluster at the start of `[(i+1)·w, …)`, where
    /// `w = d_hi` (the paper's `d - ε` with `ε → 0`).
    IntervalBatch,
    /// Seeded uniform delay in `[d_lo, d_hi]` — random reordering.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Loss/duplication injection with *unordered* delivery — breaks the
    /// `C(P)` contract on purpose. Note that duplication + reordering is
    /// the regime in which STP is unsolvable outright (\[WZ89\], cited in
    /// the paper's introduction): even the alternating-bit protocol loses
    /// messages here, because a stale duplicated ack can alias a later
    /// message with the same tag parity.
    Faulty {
        /// Probability a packet is dropped.
        loss: f64,
        /// Probability a (non-dropped) packet is duplicated.
        duplication: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Loss/duplication injection with **FIFO-preserving** delivery (per
    /// direction): the classic \[BSW69\] channel on which the
    /// alternating-bit protocol is actually correct.
    FaultyFifo {
        /// Probability a packet is dropped.
        loss: f64,
        /// Probability a (non-dropped) packet is duplicated.
        duplication: f64,
        /// RNG seed.
        seed: u64,
    },
}

impl DeliveryPolicy {
    /// The faithful (non-faulty) policies — the worst-case sweep used by
    /// effort measurement.
    #[must_use]
    pub fn sweep(burst: u64, seed: u64) -> Vec<DeliveryPolicy> {
        vec![
            DeliveryPolicy::Eager,
            DeliveryPolicy::MaxDelay,
            DeliveryPolicy::ReverseBurst { burst },
            DeliveryPolicy::IntervalBatch,
            DeliveryPolicy::Random { seed },
        ]
    }

    /// Builds the adversary for a delivery window `[d_lo, d_hi]`
    /// (classically `[0, d]`).
    #[must_use]
    pub fn build(self, d_lo: TimeDelta, d_hi: TimeDelta) -> Box<dyn DeliveryAdversary> {
        match self {
            DeliveryPolicy::Eager => Box::new(FixedDelay { delay: d_lo }),
            DeliveryPolicy::MaxDelay => Box::new(FixedDelay { delay: d_hi }),
            DeliveryPolicy::ReverseBurst { burst } => Box::new(ReverseBurst {
                burst: burst.max(1),
                d_lo,
                d_hi,
                data_count: 0,
                burst_start: Time::ZERO,
            }),
            DeliveryPolicy::IntervalBatch => Box::new(IntervalBatch {
                width: d_hi.max(TimeDelta::from_ticks(1)),
                d_lo,
                d_hi,
            }),
            DeliveryPolicy::Random { seed } => Box::new(RandomDelay {
                d_lo,
                d_hi,
                rng: StdRng::seed_from_u64(seed ^ 0x4445_4C56), // "DELV"
            }),
            DeliveryPolicy::Faulty {
                loss,
                duplication,
                seed,
            } => Box::new(Faulty {
                loss,
                duplication,
                d_hi,
                rng: StdRng::seed_from_u64(seed ^ 0x464C_5459), // "FLTY"
            }),
            DeliveryPolicy::FaultyFifo {
                loss,
                duplication,
                seed,
            } => Box::new(FaultyFifo {
                loss,
                duplication,
                d_hi,
                last_data_arrival: Time::ZERO,
                last_ack_arrival: Time::ZERO,
                rng: StdRng::seed_from_u64(seed ^ 0x4649_464F), // "FIFO"
            }),
        }
    }
}

struct FixedDelay {
    delay: TimeDelta,
}

impl DeliveryAdversary for FixedDelay {
    fn dispose(&mut self, _packet: Packet, _send_time: Time, _send_index: u64) -> Disposition {
        Disposition::Deliver(self.delay)
    }
}

struct ReverseBurst {
    burst: u64,
    d_lo: TimeDelta,
    d_hi: TimeDelta,
    data_count: u64,
    burst_start: Time,
}

impl DeliveryAdversary for ReverseBurst {
    /// Targets arrival `t0 + d_hi - p` for the burst's `p`-th packet,
    /// where `t0` is the burst's *first* send time — so arrival times
    /// strictly decrease with send position wherever that target is
    /// reachable (`send + d_lo ≤ target`), and clamp to the earliest legal
    /// arrival otherwise. The result is a maximally scrambled burst using
    /// only legal delays; acks travel FIFO at `d_lo`.
    fn dispose(&mut self, packet: Packet, send_time: Time, _send_index: u64) -> Disposition {
        match packet {
            Packet::Data(_) => {
                let pos = self.data_count % self.burst;
                self.data_count += 1;
                if pos == 0 {
                    self.burst_start = send_time;
                }
                let target = (self.burst_start + self.d_hi)
                    .saturating_sub_ticks(pos)
                    .max(send_time + self.d_lo)
                    .min(send_time + self.d_hi);
                Disposition::Deliver(target - send_time)
            }
            Packet::Ack(_) => Disposition::Deliver(self.d_lo),
        }
    }
}

/// Saturating `Time - ticks` helper local to the adversary.
trait SaturatingSubTicks {
    fn saturating_sub_ticks(self, ticks: u64) -> Time;
}

impl SaturatingSubTicks for Time {
    fn saturating_sub_ticks(self, ticks: u64) -> Time {
        Time::from_ticks(self.ticks().saturating_sub(ticks))
    }
}

struct IntervalBatch {
    width: TimeDelta,
    d_lo: TimeDelta,
    d_hi: TimeDelta,
}

impl DeliveryAdversary for IntervalBatch {
    fn dispose(&mut self, _packet: Packet, send_time: Time, _send_index: u64) -> Disposition {
        // Target: the start of the next interval boundary after send_time.
        let w = self.width.ticks();
        let boundary = Time::from_ticks((send_time.ticks() / w + 1) * w);
        let delay = boundary - send_time; // in (0, w] ⊆ (0, d_hi]
        let delay = delay.max(self.d_lo).min(self.d_hi);
        Disposition::Deliver(delay)
    }
}

struct RandomDelay {
    d_lo: TimeDelta,
    d_hi: TimeDelta,
    rng: StdRng,
}

impl DeliveryAdversary for RandomDelay {
    fn dispose(&mut self, _packet: Packet, _send_time: Time, _send_index: u64) -> Disposition {
        Disposition::Deliver(TimeDelta::from_ticks(
            self.rng.gen_range(self.d_lo.ticks()..=self.d_hi.ticks()),
        ))
    }
}

struct Faulty {
    loss: f64,
    duplication: f64,
    d_hi: TimeDelta,
    rng: StdRng,
}

impl DeliveryAdversary for Faulty {
    fn dispose(&mut self, _packet: Packet, _send_time: Time, _send_index: u64) -> Disposition {
        if self.rng.gen_bool(self.loss.clamp(0.0, 1.0)) {
            return Disposition::Drop;
        }
        let delay = TimeDelta::from_ticks(self.rng.gen_range(0..=self.d_hi.ticks()));
        if self.rng.gen_bool(self.duplication.clamp(0.0, 1.0)) {
            let second = TimeDelta::from_ticks(self.rng.gen_range(0..=self.d_hi.ticks()));
            Disposition::Duplicate(delay, second)
        } else {
            Disposition::Deliver(delay)
        }
    }
}

struct FaultyFifo {
    loss: f64,
    duplication: f64,
    d_hi: TimeDelta,
    last_data_arrival: Time,
    last_ack_arrival: Time,
    rng: StdRng,
}

impl FaultyFifo {
    /// Picks an arrival no earlier than the direction's previous arrival
    /// (same-tick ties are processed in scheduling order, which is send
    /// order — FIFO either way), clamped into `[send, send + d]`.
    fn fifo_arrival(&mut self, send_time: Time, is_data: bool) -> Time {
        let jitter = TimeDelta::from_ticks(self.rng.gen_range(0..=self.d_hi.ticks()));
        let last = if is_data {
            self.last_data_arrival
        } else {
            self.last_ack_arrival
        };
        let arrival = (send_time + jitter).max(last).min(send_time + self.d_hi);
        if is_data {
            self.last_data_arrival = arrival;
        } else {
            self.last_ack_arrival = arrival;
        }
        arrival
    }
}

impl DeliveryAdversary for FaultyFifo {
    fn dispose(&mut self, packet: Packet, send_time: Time, _send_index: u64) -> Disposition {
        if self.rng.gen_bool(self.loss.clamp(0.0, 1.0)) {
            return Disposition::Drop;
        }
        let is_data = packet.is_data();
        let first = self.fifo_arrival(send_time, is_data) - send_time;
        if self.rng.gen_bool(self.duplication.clamp(0.0, 1.0)) {
            let second = self.fifo_arrival(send_time, is_data) - send_time;
            Disposition::Duplicate(first, second)
        } else {
            Disposition::Deliver(first)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TimingParams {
        TimingParams::from_ticks(2, 5, 20).unwrap()
    }

    fn dt(n: u64) -> TimeDelta {
        TimeDelta::from_ticks(n)
    }

    #[test]
    fn fixed_policies_produce_extremes() {
        let p = params();
        let mut fast = StepPolicy::AllFast.build(p);
        let mut slow = StepPolicy::AllSlow.build(p);
        for i in 0..10 {
            assert_eq!(fast.next_gap(Owner::Transmitter, i), p.c1());
            assert_eq!(slow.next_gap(Owner::Receiver, i), p.c2());
        }
    }

    #[test]
    fn alternate_alternates() {
        let p = params();
        let mut a = StepPolicy::Alternate.build(p);
        assert_eq!(a.next_gap(Owner::Transmitter, 0), p.c1());
        assert_eq!(a.next_gap(Owner::Transmitter, 1), p.c2());
        assert_eq!(a.next_gap(Owner::Transmitter, 2), p.c1());
    }

    #[test]
    fn skew_is_per_owner() {
        let p = params();
        let mut s = StepPolicy::SkewedPair {
            fast_transmitter: true,
        }
        .build(p);
        assert_eq!(s.next_gap(Owner::Transmitter, 0), p.c1());
        assert_eq!(s.next_gap(Owner::Receiver, 0), p.c2());
        let mut s = StepPolicy::SkewedPair {
            fast_transmitter: false,
        }
        .build(p);
        assert_eq!(s.next_gap(Owner::Transmitter, 0), p.c2());
        assert_eq!(s.next_gap(Owner::Receiver, 0), p.c1());
    }

    #[test]
    fn random_steps_stay_in_bounds_and_reproduce() {
        let p = params();
        let gaps = |seed| {
            let mut a = StepPolicy::Random { seed }.build(p);
            (0..100)
                .map(|i| a.next_gap(Owner::Transmitter, i).ticks())
                .collect::<Vec<_>>()
        };
        let g1 = gaps(42);
        let g2 = gaps(42);
        assert_eq!(g1, g2, "same seed, same schedule");
        assert!(g1
            .iter()
            .all(|&g| g >= p.c1().ticks() && g <= p.c2().ticks()));
        assert_ne!(g1, gaps(43), "different seed, different schedule");
    }

    #[test]
    fn eager_and_max_delay() {
        let mut e = DeliveryPolicy::Eager.build(dt(0), dt(9));
        let mut m = DeliveryPolicy::MaxDelay.build(dt(0), dt(9));
        assert_eq!(
            e.dispose(Packet::Data(0), Time::ZERO, 0),
            Disposition::Deliver(dt(0))
        );
        assert_eq!(
            m.dispose(Packet::Data(0), Time::ZERO, 0),
            Disposition::Deliver(dt(9))
        );
    }

    #[test]
    fn reverse_burst_strictly_reverses_arrivals() {
        // Burst of 4 sent 1 tick apart starting at t = 100, d = 10:
        // targets 110, 109, 108, 107 — strictly decreasing, all legal.
        let mut adv = DeliveryPolicy::ReverseBurst { burst: 4 }.build(dt(0), dt(10));
        let mut arrivals = Vec::new();
        for pos in 0..4u64 {
            let send = Time::from_ticks(100 + pos);
            match adv.dispose(Packet::Data(0), send, pos) {
                Disposition::Deliver(delay) => {
                    assert!(delay <= dt(10));
                    arrivals.push((send + delay).ticks());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(arrivals, vec![110, 109, 108, 107]);
        // The next burst restarts the anchor.
        let send = Time::from_ticks(200);
        match adv.dispose(Packet::Data(0), send, 4) {
            Disposition::Deliver(delay) => assert_eq!(delay, dt(10)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reverse_burst_clamps_to_legal_delays() {
        // Wide spacing: late positions cannot reach the decreasing target
        // and clamp to the earliest legal arrival (send + d_lo).
        let mut adv = DeliveryPolicy::ReverseBurst { burst: 3 }.build(dt(2), dt(4));
        let sends = [0u64, 4, 8];
        for (pos, &s) in sends.iter().enumerate() {
            match adv.dispose(Packet::Data(0), Time::from_ticks(s), pos as u64) {
                Disposition::Deliver(delay) => {
                    assert!(delay >= dt(2) && delay <= dt(4), "pos {pos}: {delay}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn reverse_burst_acks_fifo() {
        let mut adv = DeliveryPolicy::ReverseBurst { burst: 4 }.build(dt(0), dt(10));
        assert_eq!(
            adv.dispose(Packet::Ack(0), Time::from_ticks(5), 3),
            Disposition::Deliver(dt(0))
        );
    }

    #[test]
    fn interval_batch_hits_next_boundary() {
        let mut adv = DeliveryPolicy::IntervalBatch.build(dt(0), dt(10));
        // Sent at t = 13, width 10 -> boundary 20, delay 7.
        match adv.dispose(Packet::Data(0), Time::from_ticks(13), 0) {
            Disposition::Deliver(delay) => assert_eq!(delay, dt(7)),
            other => panic!("unexpected {other:?}"),
        }
        // Sent exactly on a boundary -> full width delay.
        match adv.dispose(Packet::Data(0), Time::from_ticks(20), 1) {
            Disposition::Deliver(delay) => assert_eq!(delay, dt(10)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn random_delay_in_window_and_reproducible() {
        let run = |seed| {
            let mut adv = DeliveryPolicy::Random { seed }.build(dt(3), dt(9));
            (0..100u64)
                .map(|i| match adv.dispose(Packet::Data(0), Time::ZERO, i) {
                    Disposition::Deliver(d) => d.ticks(),
                    other => panic!("unexpected {other:?}"),
                })
                .collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7));
        assert!(a.iter().all(|&d| (3..=9).contains(&d)));
    }

    #[test]
    fn faulty_drops_and_duplicates_at_extremes() {
        let mut all_loss = DeliveryPolicy::Faulty {
            loss: 1.0,
            duplication: 0.0,
            seed: 1,
        }
        .build(dt(0), dt(5));
        assert_eq!(
            all_loss.dispose(Packet::Data(0), Time::ZERO, 0),
            Disposition::Drop
        );
        let mut all_dup = DeliveryPolicy::Faulty {
            loss: 0.0,
            duplication: 1.0,
            seed: 1,
        }
        .build(dt(0), dt(5));
        assert!(matches!(
            all_dup.dispose(Packet::Data(0), Time::ZERO, 0),
            Disposition::Duplicate(_, _)
        ));
    }

    #[test]
    fn faulty_fifo_preserves_per_direction_order() {
        let mut adv = DeliveryPolicy::FaultyFifo {
            loss: 0.0,
            duplication: 0.0,
            seed: 3,
        }
        .build(dt(0), dt(20));
        let mut last_data = 0u64;
        let mut last_ack = 0u64;
        for i in 0..200u64 {
            let send = Time::from_ticks(i * 2);
            match adv.dispose(Packet::Data(0), send, i) {
                Disposition::Deliver(delay) => {
                    let arrival = (send + delay).ticks();
                    assert!(arrival >= last_data, "data reordered at {i}");
                    assert!(delay <= dt(20));
                    last_data = arrival;
                }
                other => panic!("unexpected {other:?}"),
            }
            match adv.dispose(Packet::Ack(0), send, i) {
                Disposition::Deliver(delay) => {
                    let arrival = (send + delay).ticks();
                    assert!(arrival >= last_ack, "acks reordered at {i}");
                    last_ack = arrival;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn faulty_fifo_still_drops_and_duplicates() {
        let mut adv = DeliveryPolicy::FaultyFifo {
            loss: 1.0,
            duplication: 0.0,
            seed: 3,
        }
        .build(dt(0), dt(5));
        assert_eq!(
            adv.dispose(Packet::Data(0), Time::ZERO, 0),
            Disposition::Drop
        );
        let mut adv = DeliveryPolicy::FaultyFifo {
            loss: 0.0,
            duplication: 1.0,
            seed: 3,
        }
        .build(dt(0), dt(5));
        assert!(matches!(
            adv.dispose(Packet::Data(0), Time::ZERO, 0),
            Disposition::Duplicate(_, _)
        ));
    }

    #[test]
    fn sweeps_are_nonempty_and_distinct() {
        let steps = StepPolicy::sweep(1);
        assert!(steps.len() >= 5);
        let deliveries = DeliveryPolicy::sweep(4, 1);
        assert!(deliveries.len() >= 5);
    }
}
