//! Scripted adversaries and exhaustive schedule-space verification.
//!
//! The policy adversaries of [`crate::adversary`] sample the schedule
//! space; for *small* instances the space can be enumerated outright:
//! every assignment of a delivery delay from a finite menu to every
//! packet, crossed with the extreme step schedules. [`verify_all_delay_schedules`]
//! does exactly that — a bounded model check of a protocol over the
//! delivery-timing adversary, far stronger evidence than sampling.
//!
//! [`ScriptedSteps`] and [`ScriptedDelays`] are also exported on their own:
//! they let tests (and bug reproducers) pin an exact timed execution.

use crate::adversary::{DeliveryAdversary, Disposition, StepAdversary};
use crate::checker::{check_trace, CheckConfig};
use crate::runner::{Outcome, SimError, SimSettings, Simulation};
use rstp_automata::{Automaton, Time, TimeDelta};
use rstp_core::{Message, Owner, Packet, RstpAction, TimingParams};

/// A step adversary that replays fixed per-process gap scripts, repeating
/// the final entry forever (an empty script pins every gap to `fallback`).
#[derive(Clone, Debug)]
pub struct ScriptedSteps {
    transmitter: Vec<TimeDelta>,
    receiver: Vec<TimeDelta>,
    fallback: TimeDelta,
}

impl ScriptedSteps {
    /// Creates the scripted adversary. `fallback` is used when a script
    /// runs out (and must itself lie in `[c1, c2]`).
    #[must_use]
    pub fn new(transmitter: Vec<TimeDelta>, receiver: Vec<TimeDelta>, fallback: TimeDelta) -> Self {
        ScriptedSteps {
            transmitter,
            receiver,
            fallback,
        }
    }
}

impl StepAdversary for ScriptedSteps {
    fn next_gap(&mut self, owner: Owner, step_index: u64) -> TimeDelta {
        let script = match owner {
            Owner::Transmitter => &self.transmitter,
            _ => &self.receiver,
        };
        script
            .get(usize::try_from(step_index).unwrap_or(usize::MAX))
            .copied()
            .unwrap_or(self.fallback)
    }
}

/// A delivery adversary that assigns the `i`-th sent packet the `i`-th
/// scripted delay, repeating the final entry (or `fallback`) beyond the
/// script's end.
#[derive(Clone, Debug)]
pub struct ScriptedDelays {
    delays: Vec<TimeDelta>,
    fallback: TimeDelta,
}

impl ScriptedDelays {
    /// Creates the scripted adversary.
    #[must_use]
    pub fn new(delays: Vec<TimeDelta>, fallback: TimeDelta) -> Self {
        ScriptedDelays { delays, fallback }
    }
}

impl DeliveryAdversary for ScriptedDelays {
    fn dispose(&mut self, _packet: Packet, _send_time: Time, send_index: u64) -> Disposition {
        let delay = self
            .delays
            .get(usize::try_from(send_index).unwrap_or(usize::MAX))
            .copied()
            .unwrap_or(self.fallback);
        Disposition::Deliver(delay)
    }
}

/// One counterexample from [`verify_all_delay_schedules`].
#[derive(Clone, Debug)]
pub struct ScheduleCounterexample {
    /// The per-packet delays (ticks) that broke the protocol.
    pub delays: Vec<u64>,
    /// The step gap (ticks) used for both processes.
    pub step_gap: u64,
    /// What went wrong.
    pub reason: String,
}

/// Statistics from an exhaustive schedule verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleVerification {
    /// Total (step-gap, delay-assignment) schedules checked.
    pub schedules: u64,
    /// Total packets per run (the exponent's base count).
    pub packets: usize,
}

/// Exhaustively verifies a protocol pair over **every** assignment of a
/// delay from `delay_menu` to each of the run's packets, crossed with both
/// extreme step schedules (`c1`-paced and `c2`-paced).
///
/// `make` builds a fresh transmitter/receiver pair per run. The number of
/// packets is probed with a first run; the full check costs
/// `2 · |menu|^packets` simulations, so keep instances tiny (≤ ~6 packets
/// with a 3-delay menu ≈ 1458 runs).
///
/// # Errors
///
/// Returns the first [`ScheduleCounterexample`] (a schedule under which the
/// run fails to deliver `X` exactly, or violates `good(A)`), or a
/// [`SimError`] string if the simulation itself breaks.
pub fn verify_all_delay_schedules<T, R, F>(
    params: TimingParams,
    input: &[Message],
    delay_menu: &[u64],
    make: F,
) -> Result<ScheduleVerification, Box<ScheduleCounterexample>>
where
    T: Automaton<Action = RstpAction>,
    R: Automaton<Action = RstpAction>,
    F: Fn() -> (T, R),
{
    assert!(!delay_menu.is_empty(), "delay menu must be nonempty");
    assert!(
        delay_menu.iter().all(|&d| d <= params.d().ticks()),
        "delay menu exceeds d"
    );

    // Probe run to count packets.
    let packets = {
        let (t, r) = make();
        run_once(params, t, r, input, params.c2().ticks(), &[], delay_menu[0]).map_err(|e| {
            Box::new(ScheduleCounterexample {
                delays: vec![],
                step_gap: params.c2().ticks(),
                reason: e,
            })
        })?
    };

    let mut schedules = 0u64;
    let mut assignment = vec![0usize; packets];
    for &gap in &[params.c1().ticks(), params.c2().ticks()] {
        loop {
            let delays: Vec<u64> = assignment.iter().map(|&i| delay_menu[i]).collect();
            let (t, r) = make();
            run_once(params, t, r, input, gap, &delays, delay_menu[0]).map_err(|reason| {
                Box::new(ScheduleCounterexample {
                    delays: delays.clone(),
                    step_gap: gap,
                    reason,
                })
            })?;
            schedules += 1;
            // Next assignment (odometer).
            let mut i = 0;
            loop {
                if i == assignment.len() {
                    break;
                }
                assignment[i] += 1;
                if assignment[i] < delay_menu.len() {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
            if i == assignment.len() {
                break; // odometer wrapped: done with this gap
            }
        }
    }
    Ok(ScheduleVerification { schedules, packets })
}

/// Runs one scripted schedule; returns the packet count on success or a
/// failure description.
fn run_once<T, R>(
    params: TimingParams,
    transmitter: T,
    receiver: R,
    input: &[Message],
    gap: u64,
    delays: &[u64],
    fallback_delay: u64,
) -> Result<usize, String>
where
    T: Automaton<Action = RstpAction>,
    R: Automaton<Action = RstpAction>,
{
    let sim = Simulation::new(
        transmitter,
        receiver,
        SimSettings {
            max_events: 1_000_000,
            ..SimSettings::from_params(params)
        },
    );
    let mut steps = ScriptedSteps::new(vec![], vec![], TimeDelta::from_ticks(gap));
    let mut deliveries = ScriptedDelays::new(
        delays.iter().map(|&d| TimeDelta::from_ticks(d)).collect(),
        TimeDelta::from_ticks(fallback_delay),
    );
    let run = sim
        .run(input, &mut steps, &mut deliveries)
        .map_err(|e: SimError| e.to_string())?;
    if run.outcome != Outcome::Quiescent {
        return Err("budget exhausted".into());
    }
    let report = check_trace(&run.trace, &CheckConfig::from_params(params));
    if !report.all_good() {
        return Err(report.to_string());
    }
    if run.trace.written() != input {
        return Err(format!(
            "wrote {:?}, expected {:?}",
            run.trace.written(),
            input
        ));
    }
    Ok(run.metrics.data_sends as usize + run.metrics.ack_sends as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_core::protocols::{
        AlphaReceiver, AlphaTransmitter, BetaReceiver, BetaTransmitter, GammaReceiver,
        GammaTransmitter,
    };

    #[test]
    fn scripted_steps_replay_and_fall_back() {
        let mut s = ScriptedSteps::new(
            vec![TimeDelta::from_ticks(1), TimeDelta::from_ticks(2)],
            vec![],
            TimeDelta::from_ticks(9),
        );
        assert_eq!(s.next_gap(Owner::Transmitter, 0).ticks(), 1);
        assert_eq!(s.next_gap(Owner::Transmitter, 1).ticks(), 2);
        assert_eq!(s.next_gap(Owner::Transmitter, 2).ticks(), 9);
        assert_eq!(s.next_gap(Owner::Receiver, 0).ticks(), 9);
    }

    #[test]
    fn scripted_delays_replay_in_send_order() {
        let mut d = ScriptedDelays::new(vec![TimeDelta::from_ticks(3)], TimeDelta::from_ticks(0));
        assert_eq!(
            d.dispose(Packet::Data(0), Time::ZERO, 0),
            Disposition::Deliver(TimeDelta::from_ticks(3))
        );
        assert_eq!(
            d.dispose(Packet::Data(0), Time::ZERO, 1),
            Disposition::Deliver(TimeDelta::from_ticks(0))
        );
    }

    #[test]
    fn alpha_survives_every_delay_schedule() {
        // 3 messages, δ1 = 2 -> 3 packets; menu {0, d/2, d} -> 2·27 runs.
        let p = TimingParams::from_ticks(2, 3, 4).unwrap();
        let input = vec![true, false, true];
        let v = verify_all_delay_schedules(p, &input, &[0, 2, 4], || {
            (
                AlphaTransmitter::new(p, input.clone()),
                AlphaReceiver::new(),
            )
        })
        .unwrap();
        assert_eq!(v.packets, 3);
        assert_eq!(v.schedules, 2 * 27);
    }

    #[test]
    fn beta_survives_every_delay_schedule() {
        // δ1 = 2, k = 3: μ_3(2) = 6 -> 2 bits per burst of 2; 4 bits ->
        // 2 bursts = 4 packets; menu {0, 2, 4} -> 2·81 runs.
        let p = TimingParams::from_ticks(2, 3, 4).unwrap();
        let input = vec![true, false, false, true];
        let v = verify_all_delay_schedules(p, &input, &[0, 2, 4], || {
            (
                BetaTransmitter::new(p, 3, &input).unwrap(),
                BetaReceiver::new(p, 3, input.len()).unwrap(),
            )
        })
        .unwrap();
        assert_eq!(v.packets, 4);
        assert_eq!(v.schedules, 2 * 81);
    }

    #[test]
    fn gamma_survives_every_delay_schedule() {
        // δ2 = 1, k = 4: 2 bits per burst of 1; 2 bits -> 1 data + 1 ack;
        // menu of 3 -> 2·9 runs.
        let p = TimingParams::from_ticks(2, 3, 4).unwrap();
        let input = vec![true, false];
        let v = verify_all_delay_schedules(p, &input, &[0, 1, 4], || {
            (
                GammaTransmitter::new(p, 4, &input).unwrap(),
                GammaReceiver::new(p, 4, input.len()).unwrap(),
            )
        })
        .unwrap();
        assert_eq!(v.packets, 2);
        assert_eq!(v.schedules, 2 * 9);
    }

    #[test]
    fn out_of_window_delivery_is_a_model_violation() {
        // A scripted delay beyond d must be rejected by the runner, not
        // silently accepted.
        let p = TimingParams::from_ticks(1, 1, 3).unwrap();
        let input = vec![true];
        let sim = Simulation::new(
            AlphaTransmitter::new(p, input.clone()),
            AlphaReceiver::new(),
            SimSettings::from_params(p),
        );
        let mut steps = ScriptedSteps::new(vec![], vec![], TimeDelta::from_ticks(1));
        let mut delays = ScriptedDelays::new(vec![TimeDelta::from_ticks(99)], TimeDelta::ZERO);
        let err = sim.run(&input, &mut steps, &mut delays).unwrap_err();
        assert!(
            err.to_string().contains("delivery delay"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn out_of_bounds_step_gap_is_a_model_violation() {
        let p = TimingParams::from_ticks(2, 3, 6).unwrap();
        let input = vec![true];
        let sim = Simulation::new(
            AlphaTransmitter::new(p, input.clone()),
            AlphaReceiver::new(),
            SimSettings::from_params(p),
        );
        // Gap 1 < c1 = 2.
        let mut steps = ScriptedSteps::new(vec![], vec![], TimeDelta::from_ticks(1));
        let mut delays = ScriptedDelays::new(vec![], TimeDelta::ZERO);
        let err = sim.run(&input, &mut steps, &mut delays).unwrap_err();
        assert!(err.to_string().contains("step gap"), "{err}");
    }

    #[test]
    fn menu_validation() {
        let p = TimingParams::from_ticks(1, 1, 2).unwrap();
        let input = vec![true];
        let result = std::panic::catch_unwind(|| {
            let _ = verify_all_delay_schedules(p, &input, &[99], || {
                (
                    AlphaTransmitter::new(p, input.clone()),
                    AlphaReceiver::new(),
                )
            });
        });
        assert!(result.is_err(), "menu beyond d must be rejected");
    }
}
