//! Scripted adversaries and exhaustive schedule-space verification.
//!
//! The policy adversaries of [`crate::adversary`] sample the schedule
//! space; for *small* instances the space can be enumerated outright:
//! every assignment of a delivery delay from a finite menu to every
//! packet, crossed with the extreme step schedules. [`verify_all_delay_schedules`]
//! does exactly that — a bounded model check of a protocol over the
//! delivery-timing adversary, far stronger evidence than sampling.
//!
//! [`ScriptedSteps`] and [`ScriptedDelays`] are also exported on their own:
//! they let tests (and bug reproducers) pin an exact timed execution.

use crate::adversary::{DeliveryAdversary, Disposition, StepAdversary};
use crate::checker::{check_trace, CheckConfig};
use crate::runner::{Outcome, SimError, SimSettings, Simulation};
use rstp_automata::{Automaton, Time, TimeDelta};
use rstp_core::{Message, Owner, Packet, RstpAction, TimingParams};

/// A step adversary that replays fixed per-process gap scripts, repeating
/// the final entry forever (an empty script pins every gap to `fallback`).
#[derive(Clone, Debug)]
pub struct ScriptedSteps {
    transmitter: Vec<TimeDelta>,
    receiver: Vec<TimeDelta>,
    fallback: TimeDelta,
}

impl ScriptedSteps {
    /// Creates the scripted adversary. `fallback` is used when a script
    /// runs out (and must itself lie in `[c1, c2]`).
    #[must_use]
    pub fn new(transmitter: Vec<TimeDelta>, receiver: Vec<TimeDelta>, fallback: TimeDelta) -> Self {
        ScriptedSteps {
            transmitter,
            receiver,
            fallback,
        }
    }
}

impl StepAdversary for ScriptedSteps {
    fn next_gap(&mut self, owner: Owner, step_index: u64) -> TimeDelta {
        let script = match owner {
            Owner::Transmitter => &self.transmitter,
            _ => &self.receiver,
        };
        script
            .get(usize::try_from(step_index).unwrap_or(usize::MAX))
            .copied()
            .unwrap_or(self.fallback)
    }
}

/// A delivery adversary that assigns the `i`-th sent packet the `i`-th
/// scripted delay, repeating the final entry (or `fallback`) beyond the
/// script's end.
#[derive(Clone, Debug)]
pub struct ScriptedDelays {
    delays: Vec<TimeDelta>,
    fallback: TimeDelta,
}

impl ScriptedDelays {
    /// Creates the scripted adversary.
    #[must_use]
    pub fn new(delays: Vec<TimeDelta>, fallback: TimeDelta) -> Self {
        ScriptedDelays { delays, fallback }
    }
}

impl DeliveryAdversary for ScriptedDelays {
    fn dispose(&mut self, _packet: Packet, _send_time: Time, send_index: u64) -> Disposition {
        let delay = self
            .delays
            .get(usize::try_from(send_index).unwrap_or(usize::MAX))
            .copied()
            .unwrap_or(self.fallback);
        Disposition::Deliver(delay)
    }
}

/// The scripted fate of one packet, delays measured in ticks.
///
/// `Deliver(t)` hands the packet over `t` ticks after the send;
/// `Duplicate(a, b)` delivers two copies at delays `a` and `b`. All delays
/// must lie in the run's delivery window (the runner rejects anything
/// outside `[d_lo, d_hi]`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketFate {
    /// Deliver after the given number of ticks.
    Deliver(u64),
    /// Lose the packet.
    Drop,
    /// Deliver two copies after the given tick delays.
    Duplicate(u64, u64),
}

impl PacketFate {
    /// The largest delay this fate schedules (0 for a drop).
    #[must_use]
    pub fn max_delay(self) -> u64 {
        match self {
            PacketFate::Deliver(t) => t,
            PacketFate::Drop => 0,
            PacketFate::Duplicate(a, b) => a.max(b),
        }
    }

    /// Whether this fate neither loses nor duplicates.
    #[must_use]
    pub fn is_clean(self) -> bool {
        matches!(self, PacketFate::Deliver(_))
    }
}

/// A single-direction delivery plan: the `i`-th packet sent in that
/// direction receives `fates[i]`, and every packet past the script's end is
/// delivered after `fallback` ticks.
///
/// This is the scenario currency shared by the simulator (via
/// [`ScriptedDeliveryAdversary`], which runs one plan per direction) and by
/// `rstp-net`'s in-memory transport (whose scripted channel realizes the
/// same plan in wall-clock time, one plan per direction) — one plan drives
/// both backends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptedDelivery {
    fates: Vec<PacketFate>,
    fallback: u64,
}

impl ScriptedDelivery {
    /// Creates a plan from explicit fates plus a fallback delay (ticks).
    #[must_use]
    pub fn new(fates: Vec<PacketFate>, fallback: u64) -> Self {
        ScriptedDelivery { fates, fallback }
    }

    /// A fault-free plan from plain per-packet delays.
    #[must_use]
    pub fn deliver_all(delays: &[u64], fallback: u64) -> Self {
        ScriptedDelivery {
            fates: delays.iter().map(|&t| PacketFate::Deliver(t)).collect(),
            fallback,
        }
    }

    /// The fate of the `index`-th packet in this direction.
    #[must_use]
    pub fn fate(&self, index: u64) -> PacketFate {
        usize::try_from(index)
            .ok()
            .and_then(|i| self.fates.get(i).copied())
            .unwrap_or(PacketFate::Deliver(self.fallback))
    }

    /// The scripted fates (without the fallback tail).
    #[must_use]
    pub fn fates(&self) -> &[PacketFate] {
        &self.fates
    }

    /// Mutable access for shrinkers.
    pub fn fates_mut(&mut self) -> &mut Vec<PacketFate> {
        &mut self.fates
    }

    /// The fallback delay in ticks.
    #[must_use]
    pub fn fallback(&self) -> u64 {
        self.fallback
    }

    /// Replaces the fallback delay.
    pub fn set_fallback(&mut self, fallback: u64) {
        self.fallback = fallback;
    }

    /// The largest delay any packet can receive under this plan.
    #[must_use]
    pub fn max_delay(&self) -> u64 {
        self.fates
            .iter()
            .map(|f| f.max_delay())
            .max()
            .unwrap_or(0)
            .max(self.fallback)
    }

    /// Whether the plan contains no drops or duplications.
    #[must_use]
    pub fn is_fault_free(&self) -> bool {
        self.fates.iter().all(|f| f.is_clean())
    }
}

/// The simulator-side adapter for a pair of [`ScriptedDelivery`] plans:
/// data packets consume the `data` plan, acknowledgements the `ack` plan,
/// each indexed by its own send counter — exactly the per-direction
/// indexing a wire transport sees, so the same scenario drives both the
/// discrete-event and the wall-clock backend.
#[derive(Clone, Debug)]
pub struct ScriptedDeliveryAdversary {
    data: ScriptedDelivery,
    ack: ScriptedDelivery,
    data_index: u64,
    ack_index: u64,
}

impl ScriptedDeliveryAdversary {
    /// Creates the adapter from one plan per direction.
    #[must_use]
    pub fn new(data: ScriptedDelivery, ack: ScriptedDelivery) -> Self {
        ScriptedDeliveryAdversary {
            data,
            ack,
            data_index: 0,
            ack_index: 0,
        }
    }
}

impl DeliveryAdversary for ScriptedDeliveryAdversary {
    fn dispose(&mut self, packet: Packet, _send_time: Time, _send_index: u64) -> Disposition {
        let fate = if packet.is_data() {
            let f = self.data.fate(self.data_index);
            self.data_index += 1;
            f
        } else {
            let f = self.ack.fate(self.ack_index);
            self.ack_index += 1;
            f
        };
        match fate {
            PacketFate::Deliver(t) => Disposition::Deliver(TimeDelta::from_ticks(t)),
            PacketFate::Drop => Disposition::Drop,
            PacketFate::Duplicate(a, b) => {
                Disposition::Duplicate(TimeDelta::from_ticks(a), TimeDelta::from_ticks(b))
            }
        }
    }
}

/// One counterexample from [`verify_all_delay_schedules`].
#[derive(Clone, Debug)]
pub struct ScheduleCounterexample {
    /// The per-packet delays (ticks) that broke the protocol.
    pub delays: Vec<u64>,
    /// The step gap (ticks) used for both processes.
    pub step_gap: u64,
    /// What went wrong.
    pub reason: String,
}

/// Statistics from an exhaustive schedule verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleVerification {
    /// Total (step-gap, delay-assignment) schedules checked.
    pub schedules: u64,
    /// Total packets per run (the exponent's base count).
    pub packets: usize,
}

/// Exhaustively verifies a protocol pair over **every** assignment of a
/// delay from `delay_menu` to each of the run's packets, crossed with both
/// extreme step schedules (`c1`-paced and `c2`-paced).
///
/// `make` builds a fresh transmitter/receiver pair per run. The number of
/// packets is probed with a first run; the full check costs
/// `2 · |menu|^packets` simulations, so keep instances tiny (≤ ~6 packets
/// with a 3-delay menu ≈ 1458 runs).
///
/// # Errors
///
/// Returns the first [`ScheduleCounterexample`] (a schedule under which the
/// run fails to deliver `X` exactly, or violates `good(A)`), or a
/// [`SimError`] string if the simulation itself breaks.
pub fn verify_all_delay_schedules<T, R, F>(
    params: TimingParams,
    input: &[Message],
    delay_menu: &[u64],
    make: F,
) -> Result<ScheduleVerification, Box<ScheduleCounterexample>>
where
    T: Automaton<Action = RstpAction>,
    R: Automaton<Action = RstpAction>,
    F: Fn() -> (T, R),
{
    assert!(!delay_menu.is_empty(), "delay menu must be nonempty");
    assert!(
        delay_menu.iter().all(|&d| d <= params.d().ticks()),
        "delay menu exceeds d"
    );

    // Probe run to count packets.
    let packets = {
        let (t, r) = make();
        run_once(params, t, r, input, params.c2().ticks(), &[], delay_menu[0]).map_err(|e| {
            Box::new(ScheduleCounterexample {
                delays: vec![],
                step_gap: params.c2().ticks(),
                reason: e,
            })
        })?
    };

    let mut schedules = 0u64;
    let mut assignment = vec![0usize; packets];
    for &gap in &[params.c1().ticks(), params.c2().ticks()] {
        loop {
            let delays: Vec<u64> = assignment.iter().map(|&i| delay_menu[i]).collect();
            let (t, r) = make();
            run_once(params, t, r, input, gap, &delays, delay_menu[0]).map_err(|reason| {
                Box::new(ScheduleCounterexample {
                    delays: delays.clone(),
                    step_gap: gap,
                    reason,
                })
            })?;
            schedules += 1;
            // Next assignment (odometer).
            let mut i = 0;
            loop {
                if i == assignment.len() {
                    break;
                }
                assignment[i] += 1;
                if assignment[i] < delay_menu.len() {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
            if i == assignment.len() {
                break; // odometer wrapped: done with this gap
            }
        }
    }
    Ok(ScheduleVerification { schedules, packets })
}

/// Runs one scripted schedule; returns the packet count on success or a
/// failure description.
fn run_once<T, R>(
    params: TimingParams,
    transmitter: T,
    receiver: R,
    input: &[Message],
    gap: u64,
    delays: &[u64],
    fallback_delay: u64,
) -> Result<usize, String>
where
    T: Automaton<Action = RstpAction>,
    R: Automaton<Action = RstpAction>,
{
    let sim = Simulation::new(
        transmitter,
        receiver,
        SimSettings {
            max_events: 1_000_000,
            ..SimSettings::from_params(params)
        },
    );
    let mut steps = ScriptedSteps::new(vec![], vec![], TimeDelta::from_ticks(gap));
    let mut deliveries = ScriptedDelays::new(
        delays.iter().map(|&d| TimeDelta::from_ticks(d)).collect(),
        TimeDelta::from_ticks(fallback_delay),
    );
    let run = sim
        .run(input, &mut steps, &mut deliveries)
        .map_err(|e: SimError| e.to_string())?;
    if run.outcome != Outcome::Quiescent {
        return Err("budget exhausted".into());
    }
    let report = check_trace(&run.trace, &CheckConfig::from_params(params));
    if !report.all_good() {
        return Err(report.to_string());
    }
    if run.trace.written() != input {
        return Err(format!(
            "wrote {:?}, expected {:?}",
            run.trace.written(),
            input
        ));
    }
    Ok(run.metrics.data_sends as usize + run.metrics.ack_sends as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_core::protocols::{
        AlphaReceiver, AlphaTransmitter, BetaReceiver, BetaTransmitter, GammaReceiver,
        GammaTransmitter,
    };

    #[test]
    fn scripted_steps_replay_and_fall_back() {
        let mut s = ScriptedSteps::new(
            vec![TimeDelta::from_ticks(1), TimeDelta::from_ticks(2)],
            vec![],
            TimeDelta::from_ticks(9),
        );
        assert_eq!(s.next_gap(Owner::Transmitter, 0).ticks(), 1);
        assert_eq!(s.next_gap(Owner::Transmitter, 1).ticks(), 2);
        assert_eq!(s.next_gap(Owner::Transmitter, 2).ticks(), 9);
        assert_eq!(s.next_gap(Owner::Receiver, 0).ticks(), 9);
    }

    #[test]
    fn scripted_delays_replay_in_send_order() {
        let mut d = ScriptedDelays::new(vec![TimeDelta::from_ticks(3)], TimeDelta::from_ticks(0));
        assert_eq!(
            d.dispose(Packet::Data(0), Time::ZERO, 0),
            Disposition::Deliver(TimeDelta::from_ticks(3))
        );
        assert_eq!(
            d.dispose(Packet::Data(0), Time::ZERO, 1),
            Disposition::Deliver(TimeDelta::from_ticks(0))
        );
    }

    #[test]
    fn scripted_delivery_indexes_per_direction() {
        let data = ScriptedDelivery::new(
            vec![PacketFate::Deliver(3), PacketFate::Drop],
            1, // fallback
        );
        let ack = ScriptedDelivery::new(vec![PacketFate::Duplicate(0, 2)], 0);
        assert!(!data.is_fault_free());
        assert_eq!(data.max_delay(), 3);
        let mut adv = ScriptedDeliveryAdversary::new(data, ack);
        // Data stream: scripted, scripted, fallback.
        assert_eq!(
            adv.dispose(Packet::Data(0), Time::ZERO, 0),
            Disposition::Deliver(TimeDelta::from_ticks(3))
        );
        // Ack stream has its own counter: index 0 despite send_index 1.
        assert_eq!(
            adv.dispose(Packet::Ack(0), Time::ZERO, 1),
            Disposition::Duplicate(TimeDelta::ZERO, TimeDelta::from_ticks(2))
        );
        assert_eq!(
            adv.dispose(Packet::Data(1), Time::ZERO, 2),
            Disposition::Drop
        );
        assert_eq!(
            adv.dispose(Packet::Data(0), Time::ZERO, 3),
            Disposition::Deliver(TimeDelta::from_ticks(1))
        );
        assert_eq!(
            adv.dispose(Packet::Ack(0), Time::ZERO, 4),
            Disposition::Deliver(TimeDelta::ZERO)
        );
    }

    #[test]
    fn scripted_delivery_runs_a_protocol() {
        // A fault-free plan must carry beta to quiescence like any other
        // legal adversary.
        let p = TimingParams::from_ticks(1, 2, 4).unwrap();
        let input = vec![true, false, true];
        let sim = Simulation::new(
            BetaTransmitter::new(p, 4, &input).unwrap(),
            BetaReceiver::new(p, 4, input.len()).unwrap(),
            SimSettings::from_params(p),
        );
        let mut steps = ScriptedSteps::new(vec![], vec![], TimeDelta::from_ticks(2));
        let mut delivery = ScriptedDeliveryAdversary::new(
            ScriptedDelivery::deliver_all(&[4, 0, 2], 1),
            ScriptedDelivery::deliver_all(&[], 0),
        );
        let run = sim.run(&input, &mut steps, &mut delivery).unwrap();
        assert_eq!(run.outcome, Outcome::Quiescent);
        assert_eq!(run.trace.written(), input);
        let report = check_trace(&run.trace, &CheckConfig::from_params(p));
        assert!(report.all_good(), "{report}");
    }

    #[test]
    fn alpha_survives_every_delay_schedule() {
        // 3 messages, δ1 = 2 -> 3 packets; menu {0, d/2, d} -> 2·27 runs.
        let p = TimingParams::from_ticks(2, 3, 4).unwrap();
        let input = vec![true, false, true];
        let v = verify_all_delay_schedules(p, &input, &[0, 2, 4], || {
            (
                AlphaTransmitter::new(p, input.clone()),
                AlphaReceiver::new(),
            )
        })
        .unwrap();
        assert_eq!(v.packets, 3);
        assert_eq!(v.schedules, 2 * 27);
    }

    #[test]
    fn beta_survives_every_delay_schedule() {
        // δ1 = 2, k = 3: μ_3(2) = 6 -> 2 bits per burst of 2; 4 bits ->
        // 2 bursts = 4 packets; menu {0, 2, 4} -> 2·81 runs.
        let p = TimingParams::from_ticks(2, 3, 4).unwrap();
        let input = vec![true, false, false, true];
        let v = verify_all_delay_schedules(p, &input, &[0, 2, 4], || {
            (
                BetaTransmitter::new(p, 3, &input).unwrap(),
                BetaReceiver::new(p, 3, input.len()).unwrap(),
            )
        })
        .unwrap();
        assert_eq!(v.packets, 4);
        assert_eq!(v.schedules, 2 * 81);
    }

    #[test]
    fn gamma_survives_every_delay_schedule() {
        // δ2 = 1, k = 4: 2 bits per burst of 1; 2 bits -> 1 data + 1 ack;
        // menu of 3 -> 2·9 runs.
        let p = TimingParams::from_ticks(2, 3, 4).unwrap();
        let input = vec![true, false];
        let v = verify_all_delay_schedules(p, &input, &[0, 1, 4], || {
            (
                GammaTransmitter::new(p, 4, &input).unwrap(),
                GammaReceiver::new(p, 4, input.len()).unwrap(),
            )
        })
        .unwrap();
        assert_eq!(v.packets, 2);
        assert_eq!(v.schedules, 2 * 9);
    }

    #[test]
    fn out_of_window_delivery_is_a_model_violation() {
        // A scripted delay beyond d must be rejected by the runner, not
        // silently accepted.
        let p = TimingParams::from_ticks(1, 1, 3).unwrap();
        let input = vec![true];
        let sim = Simulation::new(
            AlphaTransmitter::new(p, input.clone()),
            AlphaReceiver::new(),
            SimSettings::from_params(p),
        );
        let mut steps = ScriptedSteps::new(vec![], vec![], TimeDelta::from_ticks(1));
        let mut delays = ScriptedDelays::new(vec![TimeDelta::from_ticks(99)], TimeDelta::ZERO);
        let err = sim.run(&input, &mut steps, &mut delays).unwrap_err();
        assert!(
            err.to_string().contains("delivery delay"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn out_of_bounds_step_gap_is_a_model_violation() {
        let p = TimingParams::from_ticks(2, 3, 6).unwrap();
        let input = vec![true];
        let sim = Simulation::new(
            AlphaTransmitter::new(p, input.clone()),
            AlphaReceiver::new(),
            SimSettings::from_params(p),
        );
        // Gap 1 < c1 = 2.
        let mut steps = ScriptedSteps::new(vec![], vec![], TimeDelta::from_ticks(1));
        let mut delays = ScriptedDelays::new(vec![], TimeDelta::ZERO);
        let err = sim.run(&input, &mut steps, &mut delays).unwrap_err();
        assert!(err.to_string().contains("step gap"), "{err}");
    }

    #[test]
    fn menu_validation() {
        let p = TimingParams::from_ticks(1, 1, 2).unwrap();
        let input = vec![true];
        let result = std::panic::catch_unwind(|| {
            let _ = verify_all_delay_schedules(p, &input, &[99], || {
                (
                    AlphaTransmitter::new(p, input.clone()),
                    AlphaReceiver::new(),
                )
            });
        });
        assert!(result.is_err(), "menu beyond d must be rejected");
    }
}
