//! Multi-seed effort statistics.
//!
//! The paper's effort is a worst case over `good(A)`; in practice one also
//! wants the *distribution* under randomized schedules — how far typical
//! runs sit from the adversarial ceiling. [`effort_distribution`] runs a
//! protocol across many seeded random schedules and summarizes.

use crate::adversary::{DeliveryPolicy, StepPolicy};
use crate::harness::{random_input, run_configured, HarnessError, ProtocolKind, RunConfig};
use core::fmt;
use rstp_core::TimingParams;

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Summarizes a nonempty slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let count = samples.len();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        let mean = sum / count as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            count,
            min,
            max,
            mean,
            stddev: var.sqrt(),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.3} mean={:.3} max={:.3} σ={:.3}",
            self.count, self.min, self.mean, self.max, self.stddev
        )
    }
}

/// Runs `kind` on a fresh random input and random schedule per seed, and
/// summarizes the effort samples. Every run is checker-verified.
///
/// # Errors
///
/// [`HarnessError`] if any run fails or a trace violates `good(A)`.
pub fn effort_distribution(
    kind: ProtocolKind,
    params: TimingParams,
    n: usize,
    seeds: core::ops::Range<u64>,
) -> Result<Summary, HarnessError> {
    let mut samples = Vec::with_capacity(seeds.clone().count());
    for seed in seeds {
        let input = random_input(n, seed);
        let out = run_configured(
            &RunConfig {
                kind,
                params,
                step: StepPolicy::Random { seed },
                delivery: DeliveryPolicy::Random {
                    seed: seed ^ 0xD15C,
                },
                ..RunConfig::default()
            },
            &input,
        )?;
        debug_assert!(out.report.all_good(), "{}", out.report);
        samples.push(out.metrics.effort(n).unwrap_or(0.0));
    }
    Ok(Summary::of(&samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_core::bounds;

    #[test]
    fn summary_arithmetic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_summary_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn distribution_sits_inside_the_envelope() {
        let p = TimingParams::from_ticks(1, 2, 8).unwrap();
        let k = 4;
        let n = 120;
        let s = effort_distribution(ProtocolKind::Beta { k }, p, n, 0..12).unwrap();
        assert_eq!(s.count, 12);
        // Random schedules are never worse than the finite-n guarantee and
        // never better than what a c1-paced run could achieve.
        assert!(s.max <= bounds::passive_upper_finite(p, k, n) + 1e-9);
        let fastest_possible = bounds::passive_upper_finite(p, k, n) / 2.0; // c1 = c2/2
        assert!(s.min >= fastest_possible - 1e-9, "min {} too low", s.min);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn display_format() {
        let s = Summary::of(&[2.0]);
        assert!(s.to_string().contains("n=1"));
    }
}
