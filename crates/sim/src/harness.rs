//! One-call protocol construction, simulation, and checking — plus the
//! worst-case-over-adversaries effort measurement used by every experiment.

use crate::adversary::{DeliveryPolicy, StepPolicy};
use crate::checker::{check_trace, CheckConfig, CheckReport};
use crate::runner::{Outcome, SimError, SimRun, SimSettings, Simulation};
use core::fmt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rstp_automata::{Automaton, TimeDelta};
use rstp_core::protocols::{
    stab_beta_transmitter, AlphaReceiver, AlphaTransmitter, AltBitReceiver, AltBitTransmitter,
    BetaReceiver, BetaTransmitter, FramedReceiver, FramedTransmitter, GammaReceiver,
    GammaTransmitter, PipelinedReceiver, PipelinedTransmitter, ProtocolError, StabBetaReceiver,
    StabStenningReceiver, StabStenningTransmitter, StenningReceiver, StenningTransmitter,
};
use rstp_core::{Message, RstpAction, TimingParams, TimingParamsExt};

/// Which protocol to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolKind {
    /// `A^α` — Figure 1, one raw bit per `δ1`-step round.
    Alpha,
    /// `A^β(k)` — Figure 3, multiset-coded bursts with counted idling.
    Beta {
        /// Packet alphabet size.
        k: u64,
    },
    /// `A^γ(k)` — Figure 4, multiset-coded bursts clocked by acks.
    Gamma {
        /// Packet alphabet size.
        k: u64,
    },
    /// Alternating-bit baseline (timeout-driven retransmission).
    AltBit {
        /// Retransmission period in steps; `None` = safe default.
        timeout_steps: Option<u64>,
    },
    /// Self-delimiting `A^β(k)` with an in-band length header.
    Framed {
        /// Packet alphabet size.
        k: u64,
    },
    /// The §7 window-optimized `A^β(k)`: wait phase shortened using the
    /// run's `d_lo` (experiment E8).
    BetaWindow {
        /// Packet alphabet size.
        k: u64,
    },
    /// Stenning's \[Ste76\] baseline: unbounded sequence numbers,
    /// loss/dup/reorder-tolerant.
    Stenning {
        /// Retransmission period in steps; `None` = safe default.
        timeout_steps: Option<u64>,
    },
    /// The pipelined active extension `A^δ(k, w)`: window-`w` `gamma` with
    /// tag-carrying bursts (wire alphabet `w·k`).
    Pipelined {
        /// Base packet alphabet size.
        k: u64,
        /// Window size (`2` is the default configuration).
        window: u64,
    },
    /// Self-stabilizing Stenning: tags mod 4 plus a flush/sync recovery
    /// ladder; converges from arbitrary corrupted state.
    StabStenning {
        /// Retransmission period in steps; `None` = safe default.
        timeout_steps: Option<u64>,
    },
    /// Self-stabilizing `A^β(k)`: lengthened inter-burst silence plus
    /// gap-reset framing at the receiver.
    StabBeta {
        /// Packet alphabet size.
        k: u64,
    },
}

impl ProtocolKind {
    /// The protocol's burst size under `params` (1 for the per-message
    /// protocols) — what the `ReverseBurst` adversary should group by.
    #[must_use]
    pub fn burst_size(self, params: TimingParams) -> u64 {
        match self {
            ProtocolKind::Alpha
            | ProtocolKind::AltBit { .. }
            | ProtocolKind::Stenning { .. }
            | ProtocolKind::StabStenning { .. } => 1,
            ProtocolKind::Beta { .. }
            | ProtocolKind::Framed { .. }
            | ProtocolKind::BetaWindow { .. }
            | ProtocolKind::StabBeta { .. } => params.delta1(),
            ProtocolKind::Gamma { .. } | ProtocolKind::Pipelined { .. } => params.delta2(),
        }
    }

    /// A short stable name for tables.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            ProtocolKind::Alpha => "alpha".into(),
            ProtocolKind::Beta { k } => format!("beta(k={k})"),
            ProtocolKind::Gamma { k } => format!("gamma(k={k})"),
            ProtocolKind::AltBit { .. } => "altbit".into(),
            ProtocolKind::Framed { k } => format!("framed(k={k})"),
            ProtocolKind::BetaWindow { k } => format!("beta-window(k={k})"),
            ProtocolKind::Stenning { .. } => "stenning".into(),
            ProtocolKind::Pipelined { k, window } => format!("pipelined(k={k},w={window})"),
            ProtocolKind::StabStenning { .. } => "stab-stenning".into(),
            ProtocolKind::StabBeta { k } => format!("stab-beta(k={k})"),
        }
    }
}

/// Full configuration of one simulated run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Protocol to run.
    pub kind: ProtocolKind,
    /// Timing parameters `(c1, c2, d)`.
    pub params: TimingParams,
    /// Step adversary.
    pub step: StepPolicy,
    /// Delivery adversary.
    pub delivery: DeliveryPolicy,
    /// Delivery-window lower bound in ticks (0 = the paper's classic
    /// model; positive values enable [`ProtocolKind::BetaWindow`]).
    pub d_lo_ticks: u64,
    /// Event budget.
    pub max_events: u64,
    /// Record the full trace (needed for checking).
    pub record_trace: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            kind: ProtocolKind::Alpha,
            params: TimingParams::from_ticks(1, 2, 4).expect("valid default params"),
            step: StepPolicy::AllSlow,
            delivery: DeliveryPolicy::MaxDelay,
            d_lo_ticks: 0,
            max_events: 20_000_000,
            record_trace: true,
        }
    }
}

/// Harness-level error: construction or simulation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HarnessError {
    /// Protocol construction failed.
    Protocol(ProtocolError),
    /// The simulation hit a model violation.
    Sim(SimError),
    /// The requested operation does not apply to this protocol kind.
    Unsupported {
        /// Human-readable reason.
        what: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Protocol(e) => write!(f, "protocol construction: {e}"),
            HarnessError::Sim(e) => write!(f, "simulation: {e}"),
            HarnessError::Unsupported { what } => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<ProtocolError> for HarnessError {
    fn from(e: ProtocolError) -> Self {
        HarnessError::Protocol(e)
    }
}

impl From<SimError> for HarnessError {
    fn from(e: SimError) -> Self {
        HarnessError::Sim(e)
    }
}

/// A completed, checked run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// How the run ended.
    pub outcome: Outcome,
    /// Online counters.
    pub metrics: crate::metrics::RunMetrics,
    /// The timed trace (empty when recording was off).
    pub trace: crate::trace::SimTrace,
    /// The checker's verdict (trivially good when recording was off).
    pub report: CheckReport,
}

pub(crate) fn settings_of(cfg: &RunConfig) -> SimSettings {
    SimSettings {
        d_lo: TimeDelta::from_ticks(cfg.d_lo_ticks),
        max_events: cfg.max_events,
        record_trace: cfg.record_trace,
        ..SimSettings::from_params(cfg.params)
    }
}

fn run_pair<T, R>(
    transmitter: T,
    receiver: R,
    input: &[Message],
    cfg: &RunConfig,
    step: &mut dyn crate::adversary::StepAdversary,
    delivery: &mut dyn crate::adversary::DeliveryAdversary,
) -> Result<SimRun, HarnessError>
where
    T: Automaton<Action = RstpAction>,
    R: Automaton<Action = RstpAction>,
{
    let sim = Simulation::new(transmitter, receiver, settings_of(cfg));
    Ok(sim.run(input, step, delivery)?)
}

/// Builds the configured protocol pair and runs it under *caller-supplied*
/// adversaries, ignoring `cfg.step` / `cfg.delivery` — the entry point for
/// scripted scenarios (bug reproducers, the `rstp-check` fuzzer) that need
/// an exact timed execution over any [`ProtocolKind`].
///
/// No trace checking is performed; callers run [`check_trace`] themselves
/// with the expectations their adversary warrants.
///
/// # Errors
///
/// [`HarnessError`] on construction failure or model violation (including
/// an adversary stepping outside `[c1, c2]` or delivering outside the
/// `d`-window).
pub fn run_with_adversaries(
    cfg: &RunConfig,
    input: &[Message],
    step: &mut dyn crate::adversary::StepAdversary,
    delivery: &mut dyn crate::adversary::DeliveryAdversary,
) -> Result<SimRun, HarnessError> {
    match cfg.kind {
        ProtocolKind::Alpha => run_pair(
            AlphaTransmitter::new(cfg.params, input.to_vec()),
            AlphaReceiver::new(),
            input,
            cfg,
            step,
            delivery,
        ),
        ProtocolKind::Beta { k } => run_pair(
            BetaTransmitter::new(cfg.params, k, input)?,
            BetaReceiver::new(cfg.params, k, input.len())?,
            input,
            cfg,
            step,
            delivery,
        ),
        ProtocolKind::Gamma { k } => run_pair(
            GammaTransmitter::new(cfg.params, k, input)?,
            GammaReceiver::new(cfg.params, k, input.len())?,
            input,
            cfg,
            step,
            delivery,
        ),
        ProtocolKind::AltBit { timeout_steps } => run_pair(
            AltBitTransmitter::new(cfg.params, input.to_vec(), timeout_steps),
            AltBitReceiver::new(),
            input,
            cfg,
            step,
            delivery,
        ),
        ProtocolKind::Framed { k } => run_pair(
            FramedTransmitter::new(cfg.params, k, input)?,
            FramedReceiver::new(cfg.params, k)?,
            input,
            cfg,
            step,
            delivery,
        ),
        ProtocolKind::BetaWindow { k } => {
            let ext = window_params(cfg);
            run_pair(
                ext.passive_transmitter(k, input)?,
                ext.passive_receiver(k, input.len())?,
                input,
                cfg,
                step,
                delivery,
            )
        }
        ProtocolKind::Stenning { timeout_steps } => run_pair(
            StenningTransmitter::new(cfg.params, input.to_vec(), timeout_steps),
            StenningReceiver::new(),
            input,
            cfg,
            step,
            delivery,
        ),
        ProtocolKind::StabStenning { timeout_steps } => run_pair(
            StabStenningTransmitter::new(cfg.params, input.to_vec(), timeout_steps),
            StabStenningReceiver::new(),
            input,
            cfg,
            step,
            delivery,
        ),
        ProtocolKind::StabBeta { k } => run_pair(
            stab_beta_transmitter(cfg.params, k, input)?,
            StabBetaReceiver::new(cfg.params, k, input.len())?,
            input,
            cfg,
            step,
            delivery,
        ),
        ProtocolKind::Pipelined { k, window } => run_pair(
            PipelinedTransmitter::with_window(cfg.params, k, window, input)?,
            PipelinedReceiver::with_window(cfg.params, k, window, input.len())?,
            input,
            cfg,
            step,
            delivery,
        ),
    }
}

/// Builds the configured protocol pair, runs it on `input`, and checks the
/// trace.
///
/// The check expects completion and the send/recv bijection except when the
/// delivery policy injects faults (then their absence *is* the
/// observation) or the run exhausted its budget.
///
/// # Errors
///
/// [`HarnessError`] on construction failure or model violation.
pub fn run_configured(cfg: &RunConfig, input: &[Message]) -> Result<RunOutput, HarnessError> {
    let mut step = cfg.step.build(cfg.params);
    let mut delivery = cfg
        .delivery
        .build(TimeDelta::from_ticks(cfg.d_lo_ticks), cfg.params.d());
    let run = run_with_adversaries(cfg, input, step.as_mut(), delivery.as_mut())?;

    let faulty = matches!(
        cfg.delivery,
        DeliveryPolicy::Faulty { .. } | DeliveryPolicy::FaultyFifo { .. }
    );
    let report = if cfg.record_trace {
        let check = CheckConfig {
            d_lo: TimeDelta::from_ticks(cfg.d_lo_ticks),
            expect_complete: !faulty && run.outcome == Outcome::Quiescent,
            expect_bijection: !faulty,
            ..CheckConfig::from_params(cfg.params)
        };
        check_trace(&run.trace, &check)
    } else {
        CheckReport::default()
    };

    Ok(RunOutput {
        outcome: run.outcome,
        metrics: run.metrics,
        trace: run.trace,
        report,
    })
}

fn window_params(cfg: &RunConfig) -> TimingParamsExt {
    let mut ext = TimingParamsExt::from_classic(cfg.params);
    if cfg.d_lo_ticks > 0 {
        ext = TimingParamsExt::new(
            ext.transmitter(),
            ext.receiver(),
            TimeDelta::from_ticks(cfg.d_lo_ticks),
            cfg.params.d(),
        )
        .expect("d_lo <= d validated by RunConfig users");
    }
    ext
}

/// A deterministic pseudorandom input of `n` message bits.
#[must_use]
pub fn random_input(n: usize, seed: u64) -> Vec<Message> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x494E_5054); // "INPT"
    (0..n).map(|_| rng.gen_bool(0.5)).collect()
}

/// The simulator-oracle output for `kind` carrying `input`: the receiver's
/// write sequence `Y` under the default all-slow / max-delay schedule,
/// checker-verified. Real transports (`rstp-net`, `rstp-serve`) compare
/// their outputs against this to indict the stack rather than the input —
/// for a correct protocol it must equal `input` exactly.
///
/// # Errors
///
/// [`HarnessError`] on construction failure, model violation, or a trace
/// the checker rejects.
pub fn expected_output(
    kind: ProtocolKind,
    params: TimingParams,
    input: &[Message],
) -> Result<Vec<Message>, HarnessError> {
    let cfg = RunConfig {
        kind,
        params,
        ..RunConfig::default()
    };
    let out = run_configured(&cfg, input)?;
    if !out.report.all_good() {
        return Err(HarnessError::Sim(SimError::Channel {
            what: format!("oracle trace failed checking: {}", out.report),
        }));
    }
    Ok(out.trace.written())
}

/// The worst effort sample found over the full adversary sweep.
#[derive(Clone, Copy, Debug)]
pub struct EffortSample {
    /// `t(last-send)/n`, maximized over the sweep.
    pub effort: f64,
    /// Receiver-side `t(last-write)/n` for the same worst run.
    pub learn_effort: f64,
    /// The step policy achieving the maximum.
    pub step: StepPolicy,
    /// The delivery policy achieving the maximum.
    pub delivery: DeliveryPolicy,
}

/// Measures the protocol's effort on one input, maximized over the
/// deterministic adversary sweep plus seeded-random adversaries
/// (approximating the `max` over `good(A(n))` of paper §4).
///
/// # Errors
///
/// [`HarnessError`] if any sweep run fails; every run is also
/// checker-verified and a violation is reported as a
/// [`SimError::Channel`]-style harness failure would be — callers can rely
/// on returned samples coming from `good(A)` traces.
pub fn worst_case_effort(
    kind: ProtocolKind,
    params: TimingParams,
    input: &[Message],
    seed: u64,
) -> Result<EffortSample, HarnessError> {
    let mut best: Option<EffortSample> = None;
    let burst = kind.burst_size(params);
    for step in StepPolicy::sweep(seed) {
        for delivery in DeliveryPolicy::sweep(burst, seed) {
            let cfg = RunConfig {
                kind,
                params,
                step,
                delivery,
                ..RunConfig::default()
            };
            let out = run_configured(&cfg, input)?;
            debug_assert!(out.report.all_good(), "{}: {}", kind.name(), out.report);
            let effort = out.metrics.effort(input.len()).unwrap_or(0.0);
            let learn = out.metrics.learn_effort(input.len()).unwrap_or(0.0);
            if best.is_none_or(|b| effort > b.effort) {
                best = Some(EffortSample {
                    effort,
                    learn_effort: learn,
                    step,
                    delivery,
                });
            }
        }
    }
    Ok(best.expect("sweep is nonempty"))
}

/// Effort samples for growing `n` — the experiment tables' `per-n` series,
/// whose tail approximates the sup-lim of paper §4.
///
/// # Errors
///
/// Propagates [`worst_case_effort`] failures.
pub fn effort_series(
    kind: ProtocolKind,
    params: TimingParams,
    ns: &[usize],
    seed: u64,
) -> Result<Vec<(usize, EffortSample)>, HarnessError> {
    ns.iter()
        .map(|&n| {
            let input = random_input(n, seed.wrapping_add(n as u64));
            worst_case_effort(kind, params, &input, seed).map(|s| (n, s))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_core::bounds;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 6).unwrap() // δ1 = 6, δ2 = 3
    }

    #[test]
    fn every_protocol_round_trips_under_default_adversaries() {
        let input = random_input(40, 7);
        for kind in [
            ProtocolKind::Alpha,
            ProtocolKind::Beta { k: 2 },
            ProtocolKind::Beta { k: 4 },
            ProtocolKind::Gamma { k: 2 },
            ProtocolKind::Gamma { k: 8 },
            ProtocolKind::AltBit {
                timeout_steps: None,
            },
            ProtocolKind::Framed { k: 4 },
            ProtocolKind::Stenning {
                timeout_steps: None,
            },
            ProtocolKind::Pipelined { k: 4, window: 2 },
            ProtocolKind::StabStenning {
                timeout_steps: None,
            },
            ProtocolKind::StabBeta { k: 4 },
        ] {
            let cfg = RunConfig {
                kind,
                params: params(),
                ..RunConfig::default()
            };
            let out = run_configured(&cfg, &input).unwrap();
            assert_eq!(out.outcome, Outcome::Quiescent, "{}", kind.name());
            assert!(out.report.all_good(), "{}: {}", kind.name(), out.report);
            assert_eq!(out.trace.written(), input, "{}", kind.name());
        }
    }

    #[test]
    fn every_protocol_survives_the_full_adversary_sweep() {
        let p = params();
        let input = random_input(24, 99);
        for kind in [
            ProtocolKind::Alpha,
            ProtocolKind::Beta { k: 3 },
            ProtocolKind::Gamma { k: 3 },
            ProtocolKind::Pipelined { k: 3, window: 3 },
        ] {
            let burst = kind.burst_size(p);
            for step in StepPolicy::sweep(1) {
                for delivery in DeliveryPolicy::sweep(burst, 2) {
                    let cfg = RunConfig {
                        kind,
                        params: p,
                        step,
                        delivery,
                        ..RunConfig::default()
                    };
                    let out = run_configured(&cfg, &input).unwrap();
                    assert!(
                        out.report.all_good(),
                        "{} under {step:?}/{delivery:?}: {}",
                        kind.name(),
                        out.report
                    );
                    assert_eq!(out.trace.written(), input);
                }
            }
        }
    }

    #[test]
    fn measured_beta_effort_sits_in_the_paper_sandwich() {
        let p = params();
        let k = 4;
        let input = random_input(120, 3);
        let sample = worst_case_effort(ProtocolKind::Beta { k }, p, &input, 5).unwrap();
        let upper = bounds::passive_upper(p, k);
        // Finite-n measurement must not exceed the per-round guarantee.
        assert!(
            sample.effort <= upper + 1e-9,
            "effort {} > upper {upper}",
            sample.effort
        );
    }

    #[test]
    fn measured_gamma_effort_below_active_upper() {
        let p = params();
        let k = 4;
        let input = random_input(96, 4);
        let sample = worst_case_effort(ProtocolKind::Gamma { k }, p, &input, 6).unwrap();
        let upper = bounds::active_upper(p, k);
        assert!(
            sample.effort <= upper + 1e-9,
            "effort {} > upper {upper}",
            sample.effort
        );
    }

    #[test]
    fn beta_window_outperforms_classic_beta_when_d_lo_is_large() {
        let p = params();
        let input = random_input(60, 8);
        let mk = |kind, d_lo| RunConfig {
            kind,
            params: p,
            d_lo_ticks: d_lo,
            ..RunConfig::default()
        };
        // Nearly deterministic delay: window [5, 6].
        let classic = run_configured(&mk(ProtocolKind::Beta { k: 4 }, 5), &input).unwrap();
        let window = run_configured(&mk(ProtocolKind::BetaWindow { k: 4 }, 5), &input).unwrap();
        assert!(classic.report.all_good(), "{}", classic.report);
        assert!(window.report.all_good(), "{}", window.report);
        assert_eq!(window.trace.written(), input);
        let e_classic = classic.metrics.effort(input.len()).unwrap();
        let e_window = window.metrics.effort(input.len()).unwrap();
        assert!(
            e_window < e_classic,
            "window {e_window} !< classic {e_classic}"
        );
    }

    #[test]
    fn pipelining_beats_stop_and_wait_when_tags_are_cheap() {
        // The parity tag spends alphabet (2k wire symbols) that could have
        // carried data instead. When δ2 >> k, log2 μ_2k(δ2) is much larger
        // than log2 μ_k(δ2) and the tag is a bad deal; when k >> δ2 the
        // tag costs ~δ2 bits out of ~δ2·log2(k) and pipelining's halved
        // handshake dominates. Test the winning regime: δ2 = 2, k = 32
        // (fair comparison: gamma gets the same 64-symbol wire alphabet).
        let p = TimingParams::from_ticks(1, 12, 24).unwrap(); // δ2 = 2
        let input = random_input(240, 12);
        let gamma = worst_case_effort(ProtocolKind::Gamma { k: 64 }, p, &input, 2).unwrap();
        let pipe =
            worst_case_effort(ProtocolKind::Pipelined { k: 32, window: 2 }, p, &input, 2).unwrap();
        assert!(
            pipe.effort < gamma.effort * 0.8,
            "pipelined {} should be well under gamma {}",
            pipe.effort,
            gamma.effort
        );
    }

    #[test]
    fn stenning_survives_dup_plus_reorder_where_altbit_fails() {
        // The [WZ89] regime: duplication + reordering. Alternating-bit's
        // 1-bit tags alias; Stenning's unbounded seqs cannot.
        let p = TimingParams::from_ticks(1, 2, 6).unwrap();
        let input = random_input(50, 13);
        let cfg = |kind| RunConfig {
            kind,
            params: p,
            delivery: DeliveryPolicy::Faulty {
                loss: 0.15,
                duplication: 0.3,
                seed: 31,
            },
            max_events: 3_000_000,
            ..RunConfig::default()
        };
        let stenning = run_configured(
            &cfg(ProtocolKind::Stenning {
                timeout_steps: None,
            }),
            &input,
        )
        .unwrap();
        assert_eq!(stenning.outcome, Outcome::Quiescent);
        assert_eq!(
            stenning.trace.written(),
            input,
            "stenning must deliver X exactly under loss+dup+reorder"
        );
    }

    #[test]
    fn effort_series_is_reproducible() {
        let p = params();
        let a = effort_series(ProtocolKind::Alpha, p, &[8, 16], 42).unwrap();
        let b = effort_series(ProtocolKind::Alpha, p, &[8, 16], 42).unwrap();
        assert_eq!(a.len(), 2);
        for ((na, sa), (nb, sb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(sa.effort, sb.effort);
        }
    }

    #[test]
    fn random_input_is_seeded() {
        assert_eq!(random_input(32, 1), random_input(32, 1));
        assert_ne!(random_input(32, 1), random_input(32, 2));
        assert_eq!(random_input(0, 1).len(), 0);
    }

    #[test]
    fn kind_metadata() {
        let p = params();
        assert_eq!(ProtocolKind::Alpha.burst_size(p), 1);
        assert_eq!(ProtocolKind::Beta { k: 2 }.burst_size(p), 6);
        assert_eq!(ProtocolKind::Gamma { k: 2 }.burst_size(p), 3);
        assert_eq!(ProtocolKind::Beta { k: 2 }.name(), "beta(k=2)");
        assert_eq!(
            ProtocolKind::AltBit {
                timeout_steps: None
            }
            .name(),
            "altbit"
        );
        assert_eq!(
            ProtocolKind::StabStenning {
                timeout_steps: None
            }
            .burst_size(p),
            1
        );
        assert_eq!(ProtocolKind::StabBeta { k: 4 }.burst_size(p), 6);
        assert_eq!(
            ProtocolKind::StabStenning {
                timeout_steps: None
            }
            .name(),
            "stab-stenning"
        );
        assert_eq!(ProtocolKind::StabBeta { k: 4 }.name(), "stab-beta(k=4)");
    }
}
