//! Trace validation against the RSTP problem definition (paper §4).
//!
//! A simulated run is only evidence if the produced timed behavior really
//! lies in `good(A)` and really solves the problem. [`check_trace`]
//! verifies, independently of the runner's own bookkeeping:
//!
//! * **Monotonicity** — event times never decrease (timing axiom, §2.2).
//! * **Safety** — at every point of the run, `Y` is a prefix of `X`.
//! * **Liveness** — at quiescence, `Y = X` (skipped for fault-injection
//!   runs, where its *failure* is the observation).
//! * **`Σ(A_t, A_r)`** — consecutive locally controlled events of each
//!   process are between `c1` and `c2` apart.
//! * **`Δ(C(P))` + channel fairness** — there is a bijection between
//!   `send` and `recv` events under which every packet is received within
//!   `[d_lo, d_hi]` of its send and never before it. The checker constructs
//!   the witness matching explicitly (per-value FIFO, which is valid
//!   whenever any valid matching exists, by the classic exchange argument
//!   for interval constraints).

use crate::trace::SimTrace;
use core::fmt;
use rstp_automata::{timed, Time, TimeDelta};
use rstp_core::{Message, Owner, Packet, RstpAction};
use std::collections::BTreeMap;

/// A single violation found in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Event times decreased.
    NonMonotone {
        /// Index of the offending event.
        index: usize,
    },
    /// A `write` diverged from `X` (safety: `Y` must remain a prefix).
    SafetyPrefix {
        /// Position in `Y` (0-based).
        position: usize,
        /// The value `X` holds there (`None` if `Y` outran `X`).
        expected: Option<Message>,
        /// The written value.
        actual: Message,
    },
    /// The run quiesced without writing all of `X`.
    Liveness {
        /// Messages written.
        written: usize,
        /// Messages expected (`|X|`).
        expected: usize,
    },
    /// Two consecutive local events of one process violate `[c1, c2]`.
    StepSpacing {
        /// The process.
        owner: Owner,
        /// Rendered detail from the spacing checker.
        detail: String,
    },
    /// A matched send/recv pair violates the delivery window.
    DeliveryDelay {
        /// The packet.
        packet: Packet,
        /// Rendered detail from the delay checker.
        detail: String,
    },
    /// More `recv`s than `send`s for a packet value (duplication).
    UnmatchedRecv {
        /// The packet.
        packet: Packet,
        /// `send` count.
        sends: usize,
        /// `recv` count.
        recvs: usize,
    },
    /// Fewer `recv`s than `send`s for a packet value (loss).
    UndeliveredSend {
        /// The packet.
        packet: Packet,
        /// `send` count.
        sends: usize,
        /// `recv` count.
        recvs: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NonMonotone { index } => write!(f, "time decreases at event {index}"),
            Violation::SafetyPrefix {
                position,
                expected,
                actual,
            } => write!(
                f,
                "write #{position} = {actual}, X says {expected:?} — Y is not a prefix of X"
            ),
            Violation::Liveness { written, expected } => {
                write!(f, "quiesced after writing {written}/{expected} messages")
            }
            Violation::StepSpacing { owner, detail } => {
                write!(f, "Σ violated for {owner:?}: {detail}")
            }
            Violation::DeliveryDelay { packet, detail } => {
                write!(f, "Δ violated for {packet}: {detail}")
            }
            Violation::UnmatchedRecv {
                packet,
                sends,
                recvs,
            } => write!(
                f,
                "{packet}: {recvs} recvs but only {sends} sends (duplication)"
            ),
            Violation::UndeliveredSend {
                packet,
                sends,
                recvs,
            } => write!(f, "{packet}: {sends} sends but only {recvs} recvs (loss)"),
        }
    }
}

/// The checker's configuration.
///
/// Step bounds are per process (§7 extension); the classical model sets
/// both equal via [`CheckConfig::from_params`].
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// The transmitter's step bounds.
    pub transmitter: rstp_core::ProcessTiming,
    /// The receiver's step bounds.
    pub receiver: rstp_core::ProcessTiming,
    /// Minimum delivery delay.
    pub d_lo: TimeDelta,
    /// Maximum delivery delay.
    pub d_hi: TimeDelta,
    /// Require `Y = X` at the end (off for fault-injection runs).
    pub expect_complete: bool,
    /// Require the send/recv bijection (off when loss/duplication was
    /// injected on purpose).
    pub expect_bijection: bool,
}

impl CheckConfig {
    /// The classical configuration for a validated parameter triple.
    #[must_use]
    pub fn from_params(params: rstp_core::TimingParams) -> Self {
        let bounds = rstp_core::ProcessTiming::new(params.c1(), params.c2())
            .expect("TimingParams invariants imply valid process bounds");
        CheckConfig {
            transmitter: bounds,
            receiver: bounds,
            d_lo: TimeDelta::ZERO,
            d_hi: params.d(),
            expect_complete: true,
            expect_bijection: true,
        }
    }

    /// The configuration for the §7 extended model.
    #[must_use]
    pub fn from_ext(ext: rstp_core::TimingParamsExt) -> Self {
        CheckConfig {
            transmitter: ext.transmitter(),
            receiver: ext.receiver(),
            d_lo: ext.d_lo(),
            d_hi: ext.d_hi(),
            expect_complete: true,
            expect_bijection: true,
        }
    }
}

/// The outcome of [`check_trace`]: all violations found (empty = the trace
/// is a `good(A)` behavior that solves RSTP for its input).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Violations, in detection order.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether no violations were found.
    #[must_use]
    pub fn all_good(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether a specific class of violation is present.
    #[must_use]
    pub fn has<F: Fn(&Violation) -> bool>(&self, pred: F) -> bool {
        self.violations.iter().any(pred)
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.all_good() {
            return f.write_str("trace OK: good(A) behavior, Y = X");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Validates a trace; see the module docs for the checked properties.
#[must_use]
pub fn check_trace(trace: &SimTrace, cfg: &CheckConfig) -> CheckReport {
    let mut report = CheckReport::default();
    check_monotone(trace, &mut report);
    check_safety(trace, cfg, &mut report);
    check_sigma(trace, cfg, &mut report);
    check_delta(trace, cfg, &mut report);
    report
}

fn check_monotone(trace: &SimTrace, report: &mut CheckReport) {
    let events = trace.events();
    for (i, w) in events.windows(2).enumerate() {
        if w[1].time < w[0].time {
            report
                .violations
                .push(Violation::NonMonotone { index: i + 1 });
            return; // one report suffices; later checks assume order anyway
        }
    }
}

fn check_safety(trace: &SimTrace, cfg: &CheckConfig, report: &mut CheckReport) {
    let input = trace.input();
    let mut position = 0usize;
    for e in trace.events() {
        if let RstpAction::Write(m) = e.action {
            match input.get(position) {
                Some(&x) if x == m => {}
                expected => {
                    report.violations.push(Violation::SafetyPrefix {
                        position,
                        expected: expected.copied(),
                        actual: m,
                    });
                    return;
                }
            }
            position += 1;
        }
    }
    if cfg.expect_complete && position != input.len() {
        report.violations.push(Violation::Liveness {
            written: position,
            expected: input.len(),
        });
    }
}

fn check_sigma(trace: &SimTrace, cfg: &CheckConfig, report: &mut CheckReport) {
    for (owner, bounds) in [
        (Owner::Transmitter, cfg.transmitter),
        (Owner::Receiver, cfg.receiver),
    ] {
        let times = trace.local_event_times(owner);
        if let Err(e) = timed::check_spacing(&times, bounds.c1(), bounds.c2(), None) {
            report.violations.push(Violation::StepSpacing {
                owner,
                detail: e.to_string(),
            });
        }
    }
}

fn check_delta(trace: &SimTrace, cfg: &CheckConfig, report: &mut CheckReport) {
    // Group send and recv times per packet value.
    let mut per_packet: BTreeMap<Packet, (Vec<Time>, Vec<Time>)> = BTreeMap::new();
    for e in trace.events() {
        match e.action {
            RstpAction::Send(p) => per_packet.entry(p).or_default().0.push(e.time),
            RstpAction::Recv(p) => per_packet.entry(p).or_default().1.push(e.time),
            _ => {}
        }
    }
    for (packet, (sends, recvs)) in per_packet {
        if cfg.expect_bijection {
            if recvs.len() > sends.len() {
                report.violations.push(Violation::UnmatchedRecv {
                    packet,
                    sends: sends.len(),
                    recvs: recvs.len(),
                });
                continue;
            }
            if recvs.len() < sends.len() {
                report.violations.push(Violation::UndeliveredSend {
                    packet,
                    sends: sends.len(),
                    recvs: recvs.len(),
                });
                continue;
            }
        }
        // Per-value FIFO matching over the common prefix length.
        let n = sends.len().min(recvs.len());
        let pairs: Vec<(Time, Time)> = sends[..n]
            .iter()
            .copied()
            .zip(recvs[..n].iter().copied())
            .collect();
        // Window lower bound: recv - send >= d_lo too.
        if let Err(e) = timed::check_delays(&pairs, cfg.d_hi) {
            report.violations.push(Violation::DeliveryDelay {
                packet,
                detail: e.to_string(),
            });
            continue;
        }
        if !cfg.d_lo.is_zero() {
            for (i, &(s, r)) in pairs.iter().enumerate() {
                if r - s < cfg.d_lo {
                    report.violations.push(Violation::DeliveryDelay {
                        packet,
                        detail: format!("pair #{i} delivered after {}, min {}", r - s, cfg.d_lo),
                    });
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_core::TimingParams;

    fn t(n: u64) -> Time {
        Time::from_ticks(n)
    }

    fn cfg() -> CheckConfig {
        CheckConfig::from_params(TimingParams::from_ticks(2, 3, 8).unwrap())
    }

    /// A hand-built good trace: one message, send at 0, recv at 8, write
    /// at 9 (receiver local events at 0, 3, 6, 9 spaced 3 = c2 apart).
    fn good_trace() -> SimTrace {
        let mut tr = SimTrace::new(vec![true]);
        tr.push(t(0), RstpAction::Send(Packet::Data(1)));
        tr.push(
            t(0),
            RstpAction::ReceiverInternal(rstp_core::InternalKind::Idle),
        );
        tr.push(
            t(3),
            RstpAction::ReceiverInternal(rstp_core::InternalKind::Idle),
        );
        tr.push(
            t(6),
            RstpAction::ReceiverInternal(rstp_core::InternalKind::Idle),
        );
        tr.push(t(8), RstpAction::Recv(Packet::Data(1)));
        tr.push(t(9), RstpAction::Write(true));
        tr
    }

    #[test]
    fn good_trace_passes() {
        let report = check_trace(&good_trace(), &cfg());
        assert!(report.all_good(), "{report}");
        assert_eq!(report.to_string(), "trace OK: good(A) behavior, Y = X");
    }

    #[test]
    fn wrong_write_is_a_safety_violation() {
        let mut tr = SimTrace::new(vec![true]);
        tr.push(t(0), RstpAction::Write(false));
        let report = check_trace(&tr, &cfg());
        assert!(report.has(|v| matches!(v, Violation::SafetyPrefix { .. })));
    }

    #[test]
    fn extra_write_is_a_safety_violation() {
        let mut tr = SimTrace::new(vec![true]);
        tr.push(t(0), RstpAction::Write(true));
        tr.push(t(3), RstpAction::Write(true)); // Y longer than X
        let report = check_trace(&tr, &cfg());
        assert!(report.has(|v| matches!(v, Violation::SafetyPrefix { expected: None, .. })));
    }

    #[test]
    fn incomplete_output_is_a_liveness_violation() {
        let tr = SimTrace::new(vec![true, false]);
        let report = check_trace(&tr, &cfg());
        assert!(report.has(|v| matches!(
            v,
            Violation::Liveness {
                written: 0,
                expected: 2
            }
        )));
        // …unless completion is not expected.
        let mut c = cfg();
        c.expect_complete = false;
        assert!(check_trace(&tr, &c).all_good());
    }

    #[test]
    fn too_fast_steps_violate_sigma() {
        let mut tr = SimTrace::new(vec![]);
        tr.push(t(0), RstpAction::Send(Packet::Data(0)));
        tr.push(t(1), RstpAction::Send(Packet::Data(0))); // gap 1 < c1 = 2
        tr.push(t(4), RstpAction::Recv(Packet::Data(0)));
        tr.push(t(5), RstpAction::Recv(Packet::Data(0)));
        let report = check_trace(&tr, &cfg());
        assert!(report.has(|v| matches!(
            v,
            Violation::StepSpacing {
                owner: Owner::Transmitter,
                ..
            }
        )));
    }

    #[test]
    fn too_slow_steps_violate_sigma() {
        let mut tr = SimTrace::new(vec![]);
        tr.push(t(0), RstpAction::Send(Packet::Data(0)));
        tr.push(t(99), RstpAction::Send(Packet::Data(0))); // gap 99 > c2 = 3
        tr.push(t(99), RstpAction::Recv(Packet::Data(0)));
        tr.push(t(99), RstpAction::Recv(Packet::Data(0)));
        let report = check_trace(&tr, &cfg());
        assert!(report.has(|v| matches!(v, Violation::StepSpacing { .. })));
    }

    #[test]
    fn recvs_are_not_process_steps() {
        // Deliveries may be arbitrarily close together without violating Σ.
        let mut tr = SimTrace::new(vec![]);
        tr.push(t(0), RstpAction::Send(Packet::Data(0)));
        tr.push(t(3), RstpAction::Send(Packet::Data(0)));
        tr.push(t(3), RstpAction::Recv(Packet::Data(0)));
        tr.push(t(3), RstpAction::Recv(Packet::Data(0)));
        assert!(check_trace(&tr, &cfg()).all_good());
    }

    #[test]
    fn late_delivery_violates_delta() {
        let mut tr = SimTrace::new(vec![]);
        tr.push(t(0), RstpAction::Send(Packet::Data(0)));
        tr.push(t(9), RstpAction::Recv(Packet::Data(0))); // 9 > d = 8
        let report = check_trace(&tr, &cfg());
        assert!(report.has(|v| matches!(v, Violation::DeliveryDelay { .. })));
    }

    #[test]
    fn recv_before_send_violates_delta() {
        let mut tr = SimTrace::new(vec![]);
        // Same-value FIFO matching pairs recv@1 with send@2.
        tr.push(t(1), RstpAction::Recv(Packet::Data(0)));
        tr.push(t(2), RstpAction::Send(Packet::Data(0)));
        let report = check_trace(&tr, &cfg());
        assert!(
            report.has(|v| matches!(v, Violation::DeliveryDelay { .. })),
            "{report}"
        );
    }

    #[test]
    fn loss_and_duplication_break_the_bijection() {
        let mut lost = SimTrace::new(vec![]);
        lost.push(t(0), RstpAction::Send(Packet::Data(0)));
        let report = check_trace(&lost, &cfg());
        assert!(report.has(|v| matches!(v, Violation::UndeliveredSend { .. })));

        let mut duped = SimTrace::new(vec![]);
        duped.push(t(0), RstpAction::Send(Packet::Data(0)));
        duped.push(t(1), RstpAction::Recv(Packet::Data(0)));
        duped.push(t(2), RstpAction::Recv(Packet::Data(0)));
        let report = check_trace(&duped, &cfg());
        assert!(report.has(|v| matches!(v, Violation::UnmatchedRecv { .. })));

        // With bijection checking off (fault-injection runs), both pass the
        // delta stage (the prefix that was delivered is still on time).
        let mut c = cfg();
        c.expect_bijection = false;
        c.expect_complete = false;
        assert!(check_trace(&lost, &c).all_good());
        assert!(check_trace(&duped, &c).all_good());
    }

    #[test]
    fn min_delay_window_enforced() {
        let mut c = cfg();
        c.d_lo = TimeDelta::from_ticks(3);
        let mut tr = SimTrace::new(vec![]);
        tr.push(t(0), RstpAction::Send(Packet::Data(0)));
        tr.push(t(1), RstpAction::Recv(Packet::Data(0))); // too early
        let report = check_trace(&tr, &c);
        assert!(report.has(|v| matches!(v, Violation::DeliveryDelay { .. })));
    }

    #[test]
    fn non_monotone_trace_detected() {
        let mut tr = SimTrace::new(vec![]);
        tr.push(t(5), RstpAction::Send(Packet::Data(0)));
        tr.push(t(4), RstpAction::Recv(Packet::Data(0)));
        let report = check_trace(&tr, &cfg());
        assert!(report.has(|v| matches!(v, Violation::NonMonotone { index: 1 })));
    }

    #[test]
    fn violation_displays_are_informative() {
        let vs = [
            Violation::NonMonotone { index: 3 },
            Violation::SafetyPrefix {
                position: 1,
                expected: Some(true),
                actual: false,
            },
            Violation::Liveness {
                written: 1,
                expected: 2,
            },
            Violation::StepSpacing {
                owner: Owner::Receiver,
                detail: "gap".into(),
            },
            Violation::DeliveryDelay {
                packet: Packet::Data(0),
                detail: "late".into(),
            },
            Violation::UnmatchedRecv {
                packet: Packet::Ack(0),
                sends: 1,
                recvs: 2,
            },
            Violation::UndeliveredSend {
                packet: Packet::Data(1),
                sends: 2,
                recvs: 1,
            },
        ];
        for v in vs {
            assert!(!v.to_string().is_empty());
        }
    }
}
