//! Timed traces of simulated runs.
//!
//! A [`SimTrace`] is the timed behavior of one run: every action the system
//! took, with its time. It is the object the [`crate::checker`] validates
//! against the definition of `good(A)` (paper §4), and the raw material for
//! the effort measurement (`t(last-send)` over the trace).

use rstp_automata::Time;
use rstp_core::{Message, Owner, RstpAction};

/// One timed event of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the action occurred.
    pub time: Time,
    /// The action.
    pub action: RstpAction,
}

/// The timed behavior of one simulated run, plus the input it transmitted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimTrace {
    events: Vec<TraceEvent>,
    input: Vec<Message>,
}

impl SimTrace {
    /// An empty trace for input `X`.
    #[must_use]
    pub fn new(input: Vec<Message>) -> Self {
        SimTrace {
            events: Vec::new(),
            input,
        }
    }

    /// Appends an event. Events must be appended in nondecreasing time
    /// order; the checker verifies this.
    pub fn push(&mut self, time: Time, action: RstpAction) {
        self.events.push(TraceEvent { time, action });
    }

    /// The input sequence `X` of this run.
    #[must_use]
    pub fn input(&self) -> &[Message] {
        &self.input
    }

    /// All events in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The output sequence `Y(η)`: messages written, in order.
    #[must_use]
    pub fn written(&self) -> Vec<Message> {
        self.events
            .iter()
            .filter_map(|e| match e.action {
                RstpAction::Write(m) => Some(m),
                _ => None,
            })
            .collect()
    }

    /// The time of the last `send` of a data packet — the paper's
    /// `t(last-send(η^t))`. `None` if nothing was sent.
    #[must_use]
    pub fn last_data_send(&self) -> Option<Time> {
        self.events
            .iter()
            .rev()
            .find(|e| e.action.is_data_send())
            .map(|e| e.time)
    }

    /// The times of one component's locally controlled events, in order —
    /// the inputs to the `Σ` spacing check.
    #[must_use]
    pub fn local_event_times(&self, owner: Owner) -> Vec<Time> {
        self.events
            .iter()
            .filter(|e| e.action.owner() == owner && !e.action.is_recv())
            .map(|e| e.time)
            .collect()
    }

    /// Events satisfying a predicate, with times.
    pub fn filtered<'a, F>(&'a self, mut pred: F) -> impl Iterator<Item = &'a TraceEvent>
    where
        F: FnMut(&RstpAction) -> bool + 'a,
    {
        self.events.iter().filter(move |e| pred(&e.action))
    }

    /// Exports the trace as CSV (`time,owner,action`) for offline analysis
    /// or plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::from("time,owner,action\n");
        for e in &self.events {
            let _ = writeln!(
                out,
                "{},{:?},{}",
                e.time.ticks(),
                e.action.owner(),
                e.action
            );
        }
        out
    }

    /// Renders the trace as one line per event (round-tripping the
    /// `Display` of actions) — used by the golden-trace tests and the
    /// trace-demo example.
    #[must_use]
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(out, "[{:>8}] {}", e.time.ticks(), e.action);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_core::Packet;

    fn t(n: u64) -> Time {
        Time::from_ticks(n)
    }

    fn sample() -> SimTrace {
        let mut tr = SimTrace::new(vec![true, false]);
        tr.push(t(0), RstpAction::Send(Packet::Data(1)));
        tr.push(t(4), RstpAction::Recv(Packet::Data(1)));
        tr.push(t(5), RstpAction::Write(true));
        tr.push(t(6), RstpAction::Send(Packet::Data(0)));
        tr.push(t(9), RstpAction::Recv(Packet::Data(0)));
        tr.push(t(10), RstpAction::Write(false));
        tr
    }

    #[test]
    fn written_extracts_y() {
        assert_eq!(sample().written(), vec![true, false]);
    }

    #[test]
    fn last_data_send() {
        assert_eq!(sample().last_data_send(), Some(t(6)));
        assert_eq!(SimTrace::new(vec![]).last_data_send(), None);
    }

    #[test]
    fn local_event_times_by_owner() {
        let tr = sample();
        assert_eq!(tr.local_event_times(Owner::Transmitter), vec![t(0), t(6)]);
        assert_eq!(tr.local_event_times(Owner::Receiver), vec![t(5), t(10)]);
        // recvs are the channel's outputs, not process-local events.
        assert!(tr.local_event_times(Owner::Channel).is_empty());
    }

    #[test]
    fn filtered_and_accessors() {
        let tr = sample();
        assert_eq!(tr.len(), 6);
        assert!(!tr.is_empty());
        assert_eq!(tr.input(), &[true, false]);
        assert_eq!(tr.filtered(|a| a.is_recv()).count(), 2);
        assert_eq!(tr.events()[0].time, t(0));
    }

    #[test]
    fn csv_export() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,owner,action");
        assert_eq!(lines.len(), 7);
        assert_eq!(lines[1], "0,Transmitter,send(data(1))");
        assert_eq!(lines[2], "4,Channel,recv(data(1))");
        assert_eq!(lines[3], "5,Receiver,write(1)");
    }

    #[test]
    fn render_is_line_per_event() {
        let r = sample().render();
        assert_eq!(r.lines().count(), 6);
        assert!(r.contains("send(data(1))"));
        assert!(r.contains("write(0)"));
    }
}
