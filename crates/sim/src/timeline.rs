//! Swimlane rendering of timed traces.
//!
//! [`render_timeline`] draws a trace as three lanes — transmitter, channel
//! (deliveries), receiver — with one column per distinct event time:
//!
//! ```text
//! time | 0  3  6  9
//! -----+------------
//! t    | S  w  w  .
//! chan | .  .  D  .
//! r    | i  i  .  W
//! ```
//!
//! Glyphs: `S` data send, `A` ack send, `W` write, `w` wait, `i` idle,
//! `D` data delivery, `a` ack delivery. Multiple same-lane events at one
//! time are concatenated (`SA`), and long traces are truncated with a
//! note.

use crate::trace::SimTrace;
use rstp_core::{InternalKind, Owner, Packet, RstpAction};

fn glyph(action: RstpAction) -> char {
    match action {
        RstpAction::Send(Packet::Data(_)) => 'S',
        RstpAction::Send(Packet::Ack(_)) => 'A',
        RstpAction::Write(_) => 'W',
        RstpAction::TransmitterInternal(InternalKind::Wait)
        | RstpAction::ReceiverInternal(InternalKind::Wait) => 'w',
        RstpAction::TransmitterInternal(InternalKind::Idle)
        | RstpAction::ReceiverInternal(InternalKind::Idle) => 'i',
        RstpAction::Recv(Packet::Data(_)) => 'D',
        RstpAction::Recv(Packet::Ack(_)) => 'a',
    }
}

fn lane(action: RstpAction) -> usize {
    match action.owner() {
        Owner::Transmitter => 0,
        Owner::Channel => 1,
        Owner::Receiver => 2,
    }
}

/// Renders the trace as a three-lane timeline, at most `max_columns`
/// distinct event times wide (the rest is summarized).
#[must_use]
pub fn render_timeline(trace: &SimTrace, max_columns: usize) -> String {
    // Collect (time -> [cell; 3]) preserving time order.
    let mut columns: Vec<(u64, [String; 3])> = Vec::new();
    for e in trace.events() {
        let t = e.time.ticks();
        if columns.last().map(|(ct, _)| *ct) != Some(t) {
            columns.push((t, [String::new(), String::new(), String::new()]));
        }
        let cells = &mut columns.last_mut().expect("just pushed").1;
        cells[lane(e.action)].push(glyph(e.action));
    }
    let total = columns.len();
    let truncated = total > max_columns.max(1);
    columns.truncate(max_columns.max(1));

    // Column widths: max of the time label and the cells.
    let widths: Vec<usize> = columns
        .iter()
        .map(|(t, cells)| {
            cells
                .iter()
                .map(String::len)
                .max()
                .unwrap_or(1)
                .max(t.to_string().len())
        })
        .collect();

    let labels = ["time", "t", "chan", "r"];
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(4);
    let mut out = String::new();
    // Header.
    out.push_str(&format!("{:<label_w$} |", "time"));
    for ((t, _), w) in columns.iter().zip(&widths) {
        out.push_str(&format!(" {t:>w$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_w + 1));
    out.push('+');
    out.push_str(&"-".repeat(widths.iter().map(|w| w + 1).sum()));
    out.push('\n');
    // Lanes.
    for (row, label) in ["t", "chan", "r"].iter().enumerate() {
        out.push_str(&format!("{label:<label_w$} |"));
        for ((_, cells), w) in columns.iter().zip(&widths) {
            let cell = if cells[row].is_empty() {
                "."
            } else {
                &cells[row]
            };
            out.push_str(&format!(" {cell:>w$}"));
        }
        out.push('\n');
    }
    if truncated {
        out.push_str(&format!(
            "… {} more event time(s) not shown\n",
            total - columns.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_automata::Time;

    fn t(n: u64) -> Time {
        Time::from_ticks(n)
    }

    fn sample() -> SimTrace {
        let mut tr = SimTrace::new(vec![true]);
        tr.push(t(0), RstpAction::Send(Packet::Data(1)));
        tr.push(t(0), RstpAction::ReceiverInternal(InternalKind::Idle));
        tr.push(t(3), RstpAction::TransmitterInternal(InternalKind::Wait));
        tr.push(t(6), RstpAction::Recv(Packet::Data(1)));
        tr.push(t(6), RstpAction::Write(true));
        tr
    }

    #[test]
    fn renders_three_lanes_and_header() {
        let out = render_timeline(&sample(), 100);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("time |"));
        assert!(lines[2].starts_with("t    |"));
        assert!(lines[3].starts_with("chan |"));
        assert!(lines[4].starts_with("r    |"));
        // Column times 0, 3, 6.
        assert!(lines[0].contains('0') && lines[0].contains('3') && lines[0].contains('6'));
        // Transmitter lane: S, w, then empty.
        assert!(lines[2].contains('S') && lines[2].contains('w'));
        // Channel delivery and receiver write in the t=6 column.
        assert!(lines[3].contains('D'));
        assert!(lines[4].contains('W'));
    }

    #[test]
    fn same_tick_same_lane_events_concatenate() {
        let mut tr = SimTrace::new(vec![]);
        tr.push(t(0), RstpAction::Send(Packet::Ack(0)));
        tr.push(t(0), RstpAction::Write(true));
        let out = render_timeline(&tr, 10);
        assert!(out.contains("AW"), "{out}");
    }

    #[test]
    fn truncation_is_reported() {
        let mut tr = SimTrace::new(vec![]);
        for i in 0..20 {
            tr.push(t(i), RstpAction::Write(i % 2 == 0));
        }
        let out = render_timeline(&tr, 5);
        assert!(out.contains("15 more event time(s)"), "{out}");
    }

    #[test]
    fn empty_trace_renders_headers_only() {
        let out = render_timeline(&SimTrace::new(vec![]), 10);
        assert_eq!(out.lines().count(), 5);
    }

    #[test]
    fn glyph_coverage() {
        assert_eq!(glyph(RstpAction::Send(Packet::Data(0))), 'S');
        assert_eq!(glyph(RstpAction::Send(Packet::Ack(0))), 'A');
        assert_eq!(glyph(RstpAction::Recv(Packet::Data(0))), 'D');
        assert_eq!(glyph(RstpAction::Recv(Packet::Ack(0))), 'a');
        assert_eq!(glyph(RstpAction::Write(true)), 'W');
        assert_eq!(
            glyph(RstpAction::TransmitterInternal(InternalKind::Wait)),
            'w'
        );
        assert_eq!(glyph(RstpAction::ReceiverInternal(InternalKind::Idle)), 'i');
    }
}
