//! Per-run counters and the effort estimate.
//!
//! Effort (paper §4) is `sup-lim_{n→∞} max { t(last-send(η)) : η ∈
//! good(A(n)) } / n`. A single run yields the sample `t(last-send)/n`;
//! the harness maximizes over an adversary sweep and over growing `n` to
//! approximate the sup-lim.

use rstp_automata::Time;

/// Counters accumulated online by the [`crate::runner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// `send(data(·))` events — the transmitter's packet count.
    pub data_sends: u64,
    /// `send(ack(·))` events — the receiver's packet count (0 for
    /// r-passive protocols).
    pub ack_sends: u64,
    /// `recv(·)` events (deliveries of either direction).
    pub deliveries: u64,
    /// `write(·)` events — `|Y|`.
    pub writes: u64,
    /// `wait_t` steps (counted idling).
    pub wait_steps: u64,
    /// Pure idle steps (both processes).
    pub idle_steps: u64,
    /// Local steps taken by the transmitter.
    pub transmitter_steps: u64,
    /// Local steps taken by the receiver.
    pub receiver_steps: u64,
    /// Packets dropped by a faulty delivery adversary.
    pub drops: u64,
    /// Extra copies injected by a faulty delivery adversary.
    pub duplicates: u64,
    /// Time of the last data send, the effort numerator.
    pub last_data_send: Option<Time>,
    /// Time of the last write — receiver-side completion.
    pub last_write: Option<Time>,
    /// Time of the final processed event.
    pub end_time: Time,
}

impl RunMetrics {
    /// The effort sample `t(last-send) / n` in ticks per message, or `None`
    /// if nothing was sent or `n = 0`.
    #[must_use]
    pub fn effort(&self, n: usize) -> Option<f64> {
        if n == 0 {
            return None;
        }
        self.last_data_send.map(|t| t.ticks() as f64 / n as f64)
    }

    /// Receiver-side latency analogue: `t(last-write) / n` — "the average
    /// time it takes the receiver to learn a message" of the paper's
    /// abstract, measured at the output tape.
    #[must_use]
    pub fn learn_effort(&self, n: usize) -> Option<f64> {
        if n == 0 {
            return None;
        }
        self.last_write.map(|t| t.ticks() as f64 / n as f64)
    }

    /// Total packets put on the channel (data + acks + injected copies).
    #[must_use]
    pub fn total_sends(&self) -> u64 {
        self.data_sends + self.ack_sends + self.duplicates
    }

    /// Packet overhead per message: channel packets divided by writes.
    #[must_use]
    pub fn packets_per_message(&self) -> Option<f64> {
        if self.writes == 0 {
            None
        } else {
            Some(self.total_sends() as f64 / self.writes as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_requires_sends_and_positive_n() {
        let mut m = RunMetrics::default();
        assert_eq!(m.effort(10), None);
        m.last_data_send = Some(Time::from_ticks(120));
        assert_eq!(m.effort(0), None);
        assert!((m.effort(10).unwrap() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn learn_effort_uses_last_write() {
        let m = RunMetrics {
            last_write: Some(Time::from_ticks(200)),
            ..RunMetrics::default()
        };
        assert!((m.learn_effort(10).unwrap() - 20.0).abs() < 1e-12);
        assert_eq!(m.learn_effort(0), None);
    }

    #[test]
    fn packet_accounting() {
        let m = RunMetrics {
            data_sends: 10,
            ack_sends: 10,
            duplicates: 2,
            writes: 8,
            ..RunMetrics::default()
        };
        assert_eq!(m.total_sends(), 22);
        assert!((m.packets_per_message().unwrap() - 2.75).abs() < 1e-12);
        assert_eq!(RunMetrics::default().packets_per_message(), None);
    }
}
