//! The counting argument of Lemma 5.1, run exhaustively (experiment E4).
//!
//! For an r-passive deterministic transmitter, the input sequence alone
//! determines its action sequence (`f_t(X)`, paper §5.1). In a "fast"
//! execution — every step `c1` apart — the packets sent in any window of
//! `δ1` consecutive steps can be delivered in any order, so the receiver
//! learns at most the **multiset** of packets per window: the signature
//! `P^tr(X) = (P^tr(X)[1], P^tr(X)[2], …)`.
//!
//! Lemma 5.1: if two inputs have the same signature, the receiver cannot
//! tell them apart — so a correct protocol's signature map must be
//! **injective**. This module enumerates all `2^n` inputs of length `n`,
//! computes each signature by driving the real transmitter automaton, and
//! verifies injectivity; it also evaluates the capacity inequality
//! `2^n ≤ ζ_k(δ1)^ℓ` that yields Theorem 5.3 (each of the `ℓ` used windows
//! carries at most `log2 ζ_k(δ1)` bits).

use core::fmt;
use rstp_automata::Automaton;
use rstp_combinatorics::Multiset;
use rstp_core::bounds::log2_zeta;
use rstp_core::protocols::{AlphaTransmitter, BetaTransmitter, ProtocolError};
use rstp_core::{Message, Packet, RstpAction, TimingParams};
use std::collections::HashMap;

/// The outcome of an exhaustive distinguishability check.
#[derive(Clone, Debug)]
pub struct DistinguishResult {
    /// Input length `n`.
    pub n: usize,
    /// `2^n` inputs enumerated.
    pub total_inputs: u64,
    /// Distinct signatures observed.
    pub distinct_signatures: u64,
    /// The most `δ1`-windows any input used (`ℓ(n)`, paper §5.1).
    pub max_windows: usize,
    /// A colliding input pair, if any (Lemma 5.1 violation — the protocol
    /// would be incorrect).
    pub collision: Option<(Vec<Message>, Vec<Message>)>,
    /// Information capacity of the used windows:
    /// `ℓ(n) · log2 ζ_k(δ1)` bits. Theorem 5.3's counting step is
    /// `n ≤ capacity_bits`.
    pub capacity_bits: f64,
}

impl DistinguishResult {
    /// Whether the signature map is injective (Lemma 5.1 satisfied).
    #[must_use]
    pub fn injective(&self) -> bool {
        self.collision.is_none()
    }

    /// Whether the counting inequality `2^n ≤ ζ_k(δ1)^{ℓ(n)}` holds —
    /// it must, for any correct protocol, by Lemma 5.1 + counting.
    #[must_use]
    pub fn capacity_respected(&self) -> bool {
        (self.n as f64) <= self.capacity_bits + 1e-9
    }
}

impl fmt::Display for DistinguishResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={}: {}/{} distinct signatures, ℓ={}, capacity {:.2} bits ({})",
            self.n,
            self.distinct_signatures,
            self.total_inputs,
            self.max_windows,
            self.capacity_bits,
            if self.injective() {
                "injective"
            } else {
                "COLLISION"
            }
        )
    }
}

/// Drives an r-passive transmitter (no inputs ever arrive) to quiescence
/// and returns its interval-multiset signature: the multiset of data
/// packets sent in each window of `delta1` consecutive local steps.
///
/// Trailing empty windows are trimmed (only windows up to the last send
/// carry information, paper §5.1).
///
/// # Panics
///
/// Panics if the transmitter is nondeterministic or exceeds 10^7 steps.
#[must_use]
pub fn signature_of<T>(transmitter: &T, delta1: u64, k: u64) -> Vec<Multiset>
where
    T: Automaton<Action = RstpAction>,
{
    let mut state = transmitter.initial_state();
    let mut windows: Vec<Multiset> = Vec::new();
    let mut current = Multiset::empty(k);
    let mut steps_in_window = 0u64;
    let mut guard = 0u64;
    loop {
        let enabled = transmitter.enabled(&state);
        let Some(action) = enabled.first() else { break };
        assert_eq!(
            enabled.len(),
            1,
            "r-passive transmitter must be deterministic"
        );
        state = transmitter
            .step(&state, action)
            .expect("enabled action must apply");
        if let RstpAction::Send(Packet::Data(s)) = action {
            current.insert(*s);
        }
        steps_in_window += 1;
        if steps_in_window == delta1 {
            windows.push(std::mem::replace(&mut current, Multiset::empty(k)));
            steps_in_window = 0;
        }
        guard += 1;
        assert!(guard < 10_000_000, "transmitter did not quiesce");
    }
    if !current.is_empty() || steps_in_window > 0 {
        windows.push(current);
    }
    while windows.last().is_some_and(Multiset::is_empty) {
        windows.pop();
    }
    windows
}

/// Enumerates every input of length `n` (so `n ≲ 20`), computes signatures
/// with `make_transmitter`, and checks injectivity plus the capacity
/// inequality.
///
/// # Panics
///
/// Panics if `n > 24` (2^n enumeration would be unreasonable).
pub fn exhaustive_check<T, F>(
    make_transmitter: F,
    delta1: u64,
    k: u64,
    n: usize,
) -> DistinguishResult
where
    T: Automaton<Action = RstpAction>,
    F: Fn(&[Message]) -> T,
{
    assert!(
        n <= 24,
        "exhaustive_check enumerates 2^n inputs; n too large"
    );
    let total = 1u64 << n;
    let mut seen: HashMap<Vec<Multiset>, Vec<Message>> = HashMap::with_capacity(total as usize);
    let mut collision = None;
    let mut max_windows = 0usize;
    for bits in 0..total {
        let input: Vec<Message> = (0..n).map(|i| (bits >> (n - 1 - i)) & 1 == 1).collect();
        let t = make_transmitter(&input);
        let sig = signature_of(&t, delta1, k);
        max_windows = max_windows.max(sig.len());
        if let Some(prev) = seen.insert(sig, input.clone()) {
            if collision.is_none() {
                collision = Some((prev, input));
            }
        }
    }
    let capacity_bits = max_windows as f64 * log2_zeta(k, delta1);
    DistinguishResult {
        n,
        total_inputs: total,
        distinct_signatures: seen.len() as u64,
        max_windows,
        collision,
        capacity_bits,
    }
}

/// Exhaustive Lemma 5.1 check for `A^β(k)`.
///
/// # Errors
///
/// [`ProtocolError`] if the `(k, δ1)` pair is unusable.
pub fn check_beta(
    params: TimingParams,
    k: u64,
    n: usize,
) -> Result<DistinguishResult, ProtocolError> {
    // Construct once to surface parameter errors eagerly.
    BetaTransmitter::new(params, k, &vec![false; n.max(1)])?;
    Ok(exhaustive_check(
        |input| BetaTransmitter::new(params, k, input).expect("validated above"),
        params.delta1(),
        k,
        n,
    ))
}

/// Exhaustive Lemma 5.1 check for `A^α` (alphabet `{0, 1}`).
#[must_use]
pub fn check_alpha(params: TimingParams, n: usize) -> DistinguishResult {
    exhaustive_check(
        |input| AlphaTransmitter::new(params, input.to_vec()),
        params.delta1(),
        2,
        n,
    )
}

/// The *active-case* signature of Lemma 5.4: run `A^γ(k)` in the canonical
/// timed execution `η(X)` of §5.2 — `c2`-paced processes, Figure 2
/// interval-batched deliveries — and collect the multiset of data packets
/// the transmitter sends during each width-`d` interval `t_i`.
///
/// (The paper's `η(X)` uses width `d - ε`; with integer ticks we take
/// `ε → 0` as width `d`, matching [`crate::adversary::DeliveryPolicy::IntervalBatch`].)
///
/// # Panics
///
/// Panics if the simulation fails (a model violation, impossible for the
/// built-in protocols).
#[must_use]
pub fn active_signature(params: TimingParams, k: u64, input: &[Message]) -> Vec<Multiset> {
    use crate::adversary::{DeliveryPolicy, StepPolicy};
    use crate::harness::{run_configured, ProtocolKind, RunConfig};

    let out = run_configured(
        &RunConfig {
            kind: ProtocolKind::Gamma { k },
            params,
            step: StepPolicy::AllSlow,
            delivery: DeliveryPolicy::IntervalBatch,
            ..RunConfig::default()
        },
        input,
    )
    .expect("canonical gamma execution");
    assert!(out.report.all_good(), "{}", out.report);

    let width = params.d().ticks().max(1);
    let mut windows: Vec<Multiset> = Vec::new();
    for e in out.trace.events() {
        if let rstp_core::RstpAction::Send(Packet::Data(s)) = e.action {
            let idx = (e.time.ticks() / width) as usize;
            while windows.len() <= idx {
                windows.push(Multiset::empty(k));
            }
            windows[idx].insert(s);
        }
    }
    while windows.last().is_some_and(Multiset::is_empty) {
        windows.pop();
    }
    windows
}

/// Exhaustive Lemma 5.4 check for `A^γ(k)`: over all `2^n` inputs, the
/// per-interval multiset signatures of the canonical executions must be
/// injective, and `2^n ≤ ζ_k(m)^ℓ` must hold with `m` the largest interval
/// load observed (the paper's `δ̂2`).
///
/// # Panics
///
/// Panics if `n > 16` (2^n full simulations) or a simulation fails.
#[must_use]
pub fn check_gamma(params: TimingParams, k: u64, n: usize) -> DistinguishResult {
    assert!(
        n <= 16,
        "check_gamma runs 2^n full simulations; n too large"
    );
    let total = 1u64 << n;
    let mut seen: HashMap<Vec<Multiset>, Vec<Message>> = HashMap::with_capacity(total as usize);
    let mut collision = None;
    let mut max_windows = 0usize;
    let mut max_load = 1u64;
    for bits in 0..total {
        let input: Vec<Message> = (0..n).map(|i| (bits >> (n - 1 - i)) & 1 == 1).collect();
        let sig = active_signature(params, k, &input);
        max_windows = max_windows.max(sig.len());
        max_load = max_load.max(sig.iter().map(Multiset::len).max().unwrap_or(0));
        if let Some(prev) = seen.insert(sig, input.clone()) {
            if collision.is_none() {
                collision = Some((prev, input));
            }
        }
    }
    let capacity_bits = max_windows as f64 * log2_zeta(k, max_load);
    DistinguishResult {
        n,
        total_inputs: total,
        distinct_signatures: seen.len() as u64,
        max_windows,
        collision,
        capacity_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 4).unwrap() // δ1 = 4
    }

    #[test]
    fn alpha_signatures_are_injective() {
        for n in [0usize, 1, 3, 6, 9] {
            let r = check_alpha(params(), n);
            assert!(r.injective(), "{r}");
            assert_eq!(r.total_inputs, 1 << n);
            assert_eq!(r.distinct_signatures, r.total_inputs);
            assert!(r.capacity_respected(), "{r}");
        }
    }

    #[test]
    fn beta_signatures_are_injective_across_k() {
        for k in [2u64, 3, 4] {
            for n in [0usize, 1, 4, 8, 10] {
                let r = check_beta(params(), k, n).unwrap();
                assert!(r.injective(), "k={k}: {r}");
                assert!(r.capacity_respected(), "k={k}: {r}");
            }
        }
    }

    #[test]
    fn alpha_uses_one_window_per_message() {
        // α sends one packet per δ1-step round, so ℓ(n) = n.
        let r = check_alpha(params(), 5);
        assert_eq!(r.max_windows, 5);
    }

    #[test]
    fn beta_uses_fewer_windows_than_alpha() {
        // β packs b = ⌊log2 μ_k(δ1)⌋ ≥ 2 bits per 2 windows (burst+wait).
        let n = 8;
        let alpha = check_alpha(params(), n);
        let beta = check_beta(params(), 4, n).unwrap();
        assert!(
            beta.max_windows < alpha.max_windows,
            "beta {} !< alpha {}",
            beta.max_windows,
            alpha.max_windows
        );
    }

    #[test]
    fn a_lossy_encoder_collides() {
        // A deliberately broken transmitter that ignores the input's last
        // bit must produce a collision — the checker must catch it.
        let p = params();
        let r = exhaustive_check(
            |input| {
                let mut truncated = input.to_vec();
                truncated.pop();
                AlphaTransmitter::new(p, truncated)
            },
            p.delta1(),
            2,
            4,
        );
        assert!(!r.injective());
        assert_eq!(r.distinct_signatures, 8); // half of 16
        assert!(r.to_string().contains("COLLISION"));
        let (a, b) = r.collision.unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn signature_trims_trailing_empty_windows() {
        let p = params();
        let t = AlphaTransmitter::new(p, vec![true]);
        let sig = signature_of(&t, p.delta1(), 2);
        assert_eq!(sig.len(), 1);
        assert_eq!(sig[0].len(), 1);
        assert_eq!(sig[0].mult(1), 1);
    }

    #[test]
    fn empty_input_has_empty_signature() {
        let p = params();
        let t = AlphaTransmitter::new(p, vec![]);
        assert!(signature_of(&t, p.delta1(), 2).is_empty());
    }

    #[test]
    fn gamma_signatures_are_injective_lemma_5_4() {
        // δ2 = 2 keeps interval loads small; 2^8 = 256 full simulations.
        let p = TimingParams::from_ticks(1, 2, 4).unwrap();
        for k in [2u64, 3] {
            for n in [1usize, 4, 8] {
                let r = check_gamma(p, k, n);
                assert!(r.injective(), "k={k} n={n}: {r}");
                assert!(r.capacity_respected(), "k={k} n={n}: {r}");
                assert_eq!(r.distinct_signatures, r.total_inputs);
            }
        }
    }

    #[test]
    fn active_signature_is_deterministic_and_bounded() {
        let p = TimingParams::from_ticks(1, 2, 4).unwrap(); // δ2 = 2
        let input = vec![true, false, true, true];
        let a = active_signature(p, 3, &input);
        let b = active_signature(p, 3, &input);
        assert_eq!(a, b);
        // No interval carries more than ceil(d/c2) = 2 packets under
        // c2-paced sending.
        assert!(a.iter().all(|m| m.len() <= 2), "{a:?}");
        assert!(!a.is_empty());
    }

    #[test]
    fn capacity_bound_is_the_theorem_5_3_counting_step() {
        // ℓ(n) ≥ n / log2 ζ_k(δ1), rearranged: n ≤ ℓ·log2 ζ.
        let r = check_beta(params(), 2, 8).unwrap();
        let zeta_bits = log2_zeta(2, params().delta1());
        assert!(r.max_windows as f64 >= 8.0 / zeta_bits - 1e-9);
    }
}
