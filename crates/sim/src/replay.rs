//! Trace replay through the composed formal automaton.
//!
//! A [`SimTrace`] claims to be a timed behavior of `A_t ∘ A_r ∘ C(P)`.
//! [`replay_trace`] *proves* the untimed half of that claim by stepping the
//! actual composed I/O automaton through every recorded action — if any
//! step is rejected, the trace (or the simulator) is wrong. Combined with
//! [`crate::checker::check_trace`] (the timed half: `Σ`, `Δ`, safety,
//! liveness), a passing trace is a verified `good(A)` behavior.
//!
//! This is the library form of what the integration test-suite does for
//! every protocol; it is public so downstream users can validate traces of
//! their own automata, or re-validate stored traces.

use crate::trace::SimTrace;
use core::fmt;
use rstp_automata::{Automaton, Compose};
use rstp_core::{Channel, RstpAction};

/// A replay failure: the composed automaton rejected a recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the offending event.
    pub index: usize,
    /// The action that was rejected.
    pub action: String,
    /// The automaton's rejection reason.
    pub cause: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event {} ({}) rejected by the composed automaton: {}",
            self.index, self.action, self.cause
        )
    }
}

impl std::error::Error for ReplayError {}

/// Statistics from a successful replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Replay {
    /// Events replayed.
    pub events: usize,
    /// Whether the transmitter is quiescent (no enabled local action) at
    /// the end.
    pub transmitter_quiescent: bool,
    /// Packets still in flight at the end (0 for completed runs).
    pub in_flight: usize,
}

/// Replays every event of `trace` through `transmitter ∘ receiver ∘ C(P)`.
///
/// # Errors
///
/// [`ReplayError`] at the first rejected event.
pub fn replay_trace<T, R>(
    transmitter: T,
    receiver: R,
    trace: &SimTrace,
) -> Result<Replay, ReplayError>
where
    T: Automaton<Action = RstpAction>,
    R: Automaton<Action = RstpAction>,
{
    let system = Compose::new(Compose::new(transmitter, receiver), Channel::new());
    let mut state = system.initial_state();
    for (index, event) in trace.events().iter().enumerate() {
        state = system
            .step(&state, &event.action)
            .map_err(|e| ReplayError {
                index,
                action: event.action.to_string(),
                cause: e.to_string(),
            })?;
    }
    let ((t_state, _), channel_state) = &state;
    Ok(Replay {
        events: trace.len(),
        transmitter_quiescent: system.left().left().enabled(t_state).is_empty(),
        in_flight: channel_state.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{DeliveryPolicy, StepPolicy};
    use crate::harness::{random_input, run_configured, ProtocolKind, RunConfig};
    use rstp_automata::Time;
    use rstp_core::protocols::{AlphaReceiver, AlphaTransmitter};
    use rstp_core::{Packet, TimingParams};

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 6).unwrap()
    }

    #[test]
    fn simulated_traces_replay_cleanly() {
        let p = params();
        let input = random_input(20, 3);
        let out = run_configured(
            &RunConfig {
                kind: ProtocolKind::Alpha,
                params: p,
                step: StepPolicy::Alternate,
                delivery: DeliveryPolicy::Random { seed: 4 },
                ..RunConfig::default()
            },
            &input,
        )
        .unwrap();
        let replay = replay_trace(
            AlphaTransmitter::new(p, input.clone()),
            AlphaReceiver::new(),
            &out.trace,
        )
        .unwrap();
        assert_eq!(replay.events, out.trace.len());
        assert!(replay.transmitter_quiescent);
        assert_eq!(replay.in_flight, 0);
    }

    #[test]
    fn tampered_traces_are_rejected() {
        let p = params();
        let input = vec![true];
        let out = run_configured(
            &RunConfig {
                kind: ProtocolKind::Alpha,
                params: p,
                ..RunConfig::default()
            },
            &input,
        )
        .unwrap();
        // Tamper: claim a delivery that never had a matching send.
        let mut tampered = out.trace.clone();
        tampered.push(Time::from_ticks(999), RstpAction::Recv(Packet::Data(0)));
        let err = replay_trace(
            AlphaTransmitter::new(p, input.clone()),
            AlphaReceiver::new(),
            &tampered,
        )
        .unwrap_err();
        assert!(err.to_string().contains("rejected"), "{err}");
        assert_eq!(err.index, out.trace.len());
    }

    #[test]
    fn wrong_input_transmitter_rejects_the_trace() {
        let p = params();
        let input = vec![true, true];
        let out = run_configured(
            &RunConfig {
                kind: ProtocolKind::Alpha,
                params: p,
                ..RunConfig::default()
            },
            &input,
        )
        .unwrap();
        // Replaying against a transmitter holding a *different* X must
        // fail at the first send of a mismatched bit.
        let err = replay_trace(
            AlphaTransmitter::new(p, vec![false, false]),
            AlphaReceiver::new(),
            &out.trace,
        )
        .unwrap_err();
        assert_eq!(err.index, 0);
    }
}
