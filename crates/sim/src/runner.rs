//! The discrete-event engine.
//!
//! Drives a transmitter automaton, a receiver automaton, and the channel
//! automaton under a [`StepAdversary`] and a [`DeliveryAdversary`],
//! producing a [`SimTrace`] and online [`RunMetrics`].
//!
//! # Timed semantics
//!
//! * Both processes take their first local step at time 0 (the paper's
//!   constructions start both processes at 0), and thereafter with gaps the
//!   step adversary picks in `[c1, c2]`.
//! * At a process's step time, its unique enabled local action fires
//!   (determinism is enforced; zero enabled actions means the process has
//!   quiesced and is descheduled).
//! * A `send(p)` hands `p` to the channel; the delivery adversary picks a
//!   delay in `[d_lo, d_hi]` (classically `[0, d]`) — or, for fault
//!   injection only, drops/duplicates. The matching `recv(p)` fires as an
//!   input on the destination process at the chosen time (inputs are not
//!   clocked by `[c1, c2]`; they are channel outputs).
//! * Same-tick events are processed in scheduling order (a deterministic
//!   tiebreak; adversaries that want a specific same-instant delivery order
//!   realize it through distinct ticks, exactly as the paper's `ε/k`
//!   spacing does in Figure 2).
//!
//! The run ends when the system is **settled** — both processes are
//! quiescent or idling and no packet is in flight — or when the event
//! budget is exhausted (e.g. a retransmission loop over a 100%-loss
//! channel).

use crate::adversary::{DeliveryAdversary, Disposition, StepAdversary};
use crate::metrics::RunMetrics;
use crate::trace::SimTrace;
use core::fmt;
use rstp_automata::{Automaton, Time, TimeDelta};
use rstp_core::{Channel, ChannelState, InternalKind, Message, Owner, Packet, RstpAction};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation limits and channel window.
///
/// Step bounds are **per process** (the paper's §7 extension: "each process
/// is associated with its own `c1` and `c2`"); the classical model sets
/// both to the same `(c1, c2)` via [`SimSettings::from_params`].
#[derive(Clone, Copy, Debug)]
pub struct SimSettings {
    /// The transmitter's step bounds `(c1, c2)`.
    pub transmitter: rstp_core::ProcessTiming,
    /// The receiver's step bounds `(c1, c2)`.
    pub receiver: rstp_core::ProcessTiming,
    /// Minimum delivery delay (`0` in the classical model).
    pub d_lo: TimeDelta,
    /// Maximum delivery delay `d`.
    pub d_hi: TimeDelta,
    /// Stop after this many processed events (guards non-terminating runs
    /// under fault injection).
    pub max_events: u64,
    /// Record the full trace (disable for large benchmark runs; metrics are
    /// always collected).
    pub record_trace: bool,
}

impl SimSettings {
    /// Settings for the classical model from a validated parameter triple.
    #[must_use]
    pub fn from_params(params: rstp_core::TimingParams) -> Self {
        let bounds = rstp_core::ProcessTiming::new(params.c1(), params.c2())
            .expect("TimingParams invariants imply valid process bounds");
        SimSettings {
            transmitter: bounds,
            receiver: bounds,
            d_lo: TimeDelta::ZERO,
            d_hi: params.d(),
            max_events: 50_000_000,
            record_trace: true,
        }
    }

    /// Settings for the §7 extended model: per-process step bounds and a
    /// delivery window.
    #[must_use]
    pub fn from_ext(ext: rstp_core::TimingParamsExt) -> Self {
        SimSettings {
            transmitter: ext.transmitter(),
            receiver: ext.receiver(),
            d_lo: ext.d_lo(),
            d_hi: ext.d_hi(),
            max_events: 50_000_000,
            record_trace: true,
        }
    }

    /// The step bounds of `owner` (the channel has none; callers only ask
    /// for processes).
    #[must_use]
    pub fn bounds_of(&self, owner: Owner) -> rstp_core::ProcessTiming {
        match owner {
            Owner::Transmitter => self.transmitter,
            _ => self.receiver,
        }
    }
}

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Both processes settled and the channel drained.
    Quiescent,
    /// The event budget ran out first (livelock or very long run).
    BudgetExhausted,
}

/// A runner failure — always a *model* bug (nondeterministic protocol,
/// adversary out of bounds, packet bookkeeping mismatch), never a legal
/// protocol behavior.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// More than one local action enabled at a process step.
    Determinism {
        /// Which process.
        owner: Owner,
        /// Debug renderings of the enabled actions.
        enabled: Vec<String>,
    },
    /// An adversary returned a value outside its allowed range.
    AdversaryOutOfBounds {
        /// Description of the violation.
        what: String,
    },
    /// An automaton rejected an action the runner believed applicable.
    Automaton {
        /// Rendered step error.
        what: String,
    },
    /// Channel bookkeeping mismatch (delivering a packet not in flight).
    Channel {
        /// Description.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Determinism { owner, enabled } => write!(
                f,
                "{owner:?} has {} simultaneously enabled local actions: {enabled:?}",
                enabled.len()
            ),
            SimError::AdversaryOutOfBounds { what } => write!(f, "adversary violation: {what}"),
            SimError::Automaton { what } => write!(f, "automaton rejected a step: {what}"),
            SimError::Channel { what } => write!(f, "channel bookkeeping: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The result of a completed run.
#[derive(Clone, Debug)]
pub struct SimRun {
    /// How the run ended.
    pub outcome: Outcome,
    /// Online counters.
    pub metrics: RunMetrics,
    /// The timed trace (empty when `record_trace` was off).
    pub trace: SimTrace,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EventKind {
    Step(Owner),
    Deliver(Packet),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct QueuedEvent {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, seq as the
        // deterministic tiebreak.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The generic simulation engine over concrete transmitter/receiver
/// automaton types.
///
/// Most callers use [`crate::harness::run_configured`] instead; this type
/// is the extension point for protocols outside the built-in five.
#[derive(Debug)]
pub struct Simulation<T, R> {
    transmitter: T,
    receiver: R,
    settings: SimSettings,
}

/// The state-corruption hook passed to [`Simulation::run_hooked`]: given
/// the current time, exclusive access to both process states, and the
/// in-flight packets (ordered by delivery time), it applies an arbitrary
/// transient fault.
pub type CorruptionHook<'a, TS, RS> = &'a mut dyn FnMut(Time, &mut TS, &mut RS, &mut [Packet]);

/// A [`CorruptionHook`] scheduled to fire just before a given event index.
pub type ScheduledCorruption<'a, TS, RS> = (u64, CorruptionHook<'a, TS, RS>);

impl<T, R> Simulation<T, R>
where
    T: Automaton<Action = RstpAction>,
    R: Automaton<Action = RstpAction>,
{
    /// Creates a simulation of `transmitter ∘ receiver ∘ C(P)`.
    pub fn new(transmitter: T, receiver: R, settings: SimSettings) -> Self {
        Simulation {
            transmitter,
            receiver,
            settings,
        }
    }

    /// Runs to quiescence (or budget), returning trace and metrics.
    ///
    /// `input` is only recorded into the trace for the checker; the
    /// transmitter automaton already carries its own copy.
    ///
    /// # Errors
    ///
    /// [`SimError`] on any model violation; see the type's docs.
    pub fn run(
        &self,
        input: &[Message],
        step_adv: &mut dyn StepAdversary,
        delivery_adv: &mut dyn DeliveryAdversary,
    ) -> Result<SimRun, SimError> {
        self.run_hooked(input, step_adv, delivery_adv, None)
    }

    /// [`Simulation::run`] with an optional state-corruption hook.
    ///
    /// When `hook` is `Some((at_event, mutate))`, `mutate` is invoked
    /// exactly once, just before the `at_event`-th processed event (0 =
    /// before anything runs), with exclusive access to both process states
    /// and the in-flight packets (one slot per scheduled delivery, ordered
    /// by delivery time). The hook may overwrite states arbitrarily and
    /// rewrite each packet **in place**; delivery times are preserved and
    /// a packet must keep its direction (data stays data, ack stays ack —
    /// a channel cannot turn one into the other). If the run finishes
    /// before `at_event`, the hook never fires.
    ///
    /// This is the engine half of the self-stabilization story: the hook
    /// models an arbitrary transient fault, and the stabilizing protocols'
    /// convergence oracle checks the suffix that follows.
    ///
    /// # Errors
    ///
    /// [`SimError`] on any model violation, including a hook that changes
    /// a packet's direction.
    pub fn run_hooked(
        &self,
        input: &[Message],
        step_adv: &mut dyn StepAdversary,
        delivery_adv: &mut dyn DeliveryAdversary,
        mut hook: Option<ScheduledCorruption<'_, T::State, R::State>>,
    ) -> Result<SimRun, SimError> {
        let s = &self.settings;
        let channel = Channel::new();
        let mut engine = Engine {
            channel_state: channel.initial_state(),
            channel,
            heap: BinaryHeap::new(),
            seq: 0,
            pending_deliveries: 0,
            send_index: 0,
            step_counts: [0, 0],
            metrics: RunMetrics::default(),
            trace: SimTrace::new(input.to_vec()),
            settings: *s,
        };
        let mut ts = self.transmitter.initial_state();
        let mut rs = self.receiver.initial_state();
        let mut scheduled = [false, false]; // [transmitter, receiver]

        engine.schedule(Time::ZERO, EventKind::Step(Owner::Transmitter));
        engine.schedule(Time::ZERO, EventKind::Step(Owner::Receiver));
        scheduled[0] = true;
        scheduled[1] = true;

        let mut processed: u64 = 0;
        while let Some(ev) = engine.heap.pop() {
            if hook.as_ref().is_some_and(|(at, _)| processed >= *at) {
                if let Some((_, mutate)) = hook.take() {
                    Self::apply_corruption(&mut engine, ev.time, &mut ts, &mut rs, mutate)?;
                    // Corruption can wake a parked (descheduled) process.
                    if !scheduled[0] && !self.transmitter.enabled(&ts).is_empty() {
                        engine.schedule(ev.time, EventKind::Step(Owner::Transmitter));
                        scheduled[0] = true;
                    }
                    if !scheduled[1] && !self.receiver.enabled(&rs).is_empty() {
                        engine.schedule(ev.time, EventKind::Step(Owner::Receiver));
                        scheduled[1] = true;
                    }
                }
            }
            if processed >= s.max_events {
                engine.metrics.end_time = ev.time;
                return Ok(SimRun {
                    outcome: Outcome::BudgetExhausted,
                    metrics: engine.metrics,
                    trace: engine.trace,
                });
            }
            processed += 1;
            let now = ev.time;
            engine.metrics.end_time = now;

            match ev.kind {
                EventKind::Step(Owner::Transmitter) => {
                    scheduled[0] = false;
                    let enabled = self.transmitter.enabled(&ts);
                    if let Some(action) = Self::sole_action(Owner::Transmitter, &enabled)? {
                        let may_park = action.is_idle()
                            && engine.pending_deliveries == 0
                            && Self::only_idles(&self.receiver.enabled(&rs));
                        if may_park {
                            continue; // settled: deschedule
                        }
                        ts = self.transmitter.step(&ts, &action).map_err(|e| {
                            SimError::Automaton {
                                what: e.to_string(),
                            }
                        })?;
                        engine.perform(now, action, delivery_adv)?;
                        let gap = Self::checked_gap(step_adv, Owner::Transmitter, &mut engine, s)?;
                        engine.schedule(now + gap, EventKind::Step(Owner::Transmitter));
                        scheduled[0] = true;
                    }
                }
                EventKind::Step(Owner::Receiver) => {
                    scheduled[1] = false;
                    let enabled = self.receiver.enabled(&rs);
                    if let Some(action) = Self::sole_action(Owner::Receiver, &enabled)? {
                        let t_enabled = self.transmitter.enabled(&ts);
                        let may_park = action.is_idle()
                            && engine.pending_deliveries == 0
                            && Self::only_idles(&t_enabled);
                        if may_park {
                            continue;
                        }
                        rs = self
                            .receiver
                            .step(&rs, &action)
                            .map_err(|e| SimError::Automaton {
                                what: e.to_string(),
                            })?;
                        engine.perform(now, action, delivery_adv)?;
                        let gap = Self::checked_gap(step_adv, Owner::Receiver, &mut engine, s)?;
                        engine.schedule(now + gap, EventKind::Step(Owner::Receiver));
                        scheduled[1] = true;
                    }
                }
                EventKind::Step(Owner::Channel) => {
                    unreachable!("the channel is never scheduled as a stepping process")
                }
                EventKind::Deliver(packet) => {
                    engine.pending_deliveries -= 1;
                    engine.channel_state = engine
                        .channel
                        .step(&engine.channel_state, &RstpAction::Recv(packet))
                        .map_err(|e| SimError::Channel {
                            what: e.to_string(),
                        })?;
                    let recv = RstpAction::Recv(packet);
                    match packet {
                        Packet::Data(_) => {
                            rs = self.receiver.step(&rs, &recv).map_err(|e| {
                                SimError::Automaton {
                                    what: e.to_string(),
                                }
                            })?;
                            // A quiescent (descheduled) process revived by an
                            // input gets a fresh schedule; the Σ checker will
                            // flag the gap if it breaks the step bounds. The
                            // built-in protocols never quiesce revivably.
                            if !scheduled[1] && !self.receiver.enabled(&rs).is_empty() {
                                engine.schedule(now, EventKind::Step(Owner::Receiver));
                                scheduled[1] = true;
                            }
                        }
                        Packet::Ack(_) => {
                            ts = self.transmitter.step(&ts, &recv).map_err(|e| {
                                SimError::Automaton {
                                    what: e.to_string(),
                                }
                            })?;
                            if !scheduled[0] && !self.transmitter.enabled(&ts).is_empty() {
                                engine.schedule(now, EventKind::Step(Owner::Transmitter));
                                scheduled[0] = true;
                            }
                        }
                    }
                    engine.metrics.deliveries += 1;
                    engine.record(now, recv);
                }
            }
        }

        Ok(SimRun {
            outcome: Outcome::Quiescent,
            metrics: engine.metrics,
            trace: engine.trace,
        })
    }

    /// Fires the corruption hook: exposes both process states and the
    /// in-flight packets for mutation, then reconciles the channel
    /// multiset and the delivery queue with the rewritten packets.
    fn apply_corruption(
        engine: &mut Engine,
        now: Time,
        ts: &mut T::State,
        rs: &mut R::State,
        mutate: CorruptionHook<'_, T::State, R::State>,
    ) -> Result<(), SimError> {
        // Drain the queue into a deterministic order (delivery time, then
        // scheduling seq) so the packet slots the hook sees are stable.
        let mut queued = std::mem::take(&mut engine.heap).into_vec();
        queued.sort_by(|a, b| a.time.cmp(&b.time).then(a.seq.cmp(&b.seq)));
        let mut packets: Vec<Packet> = queued
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Deliver(p) => Some(p),
                _ => None,
            })
            .collect();
        let originals = packets.clone();
        mutate(now, ts, rs, &mut packets);

        let mut slot = 0usize;
        for ev in &mut queued {
            if let EventKind::Deliver(ref mut p) = ev.kind {
                let (old, new) = (originals[slot], packets[slot]);
                slot += 1;
                if new == old {
                    continue;
                }
                if new.is_data() != old.is_data() {
                    return Err(SimError::AdversaryOutOfBounds {
                        what: format!(
                            "corruption rewrote {old} into {new}, changing its direction"
                        ),
                    });
                }
                // Swap the packet inside the channel automaton too, so the
                // channel's multiset stays consistent with the queue.
                for action in [RstpAction::Recv(old), RstpAction::Send(new)] {
                    engine.channel_state = engine
                        .channel
                        .step(&engine.channel_state, &action)
                        .map_err(|e| SimError::Channel {
                            what: e.to_string(),
                        })?;
                }
                *p = new;
            }
        }
        engine.heap = queued.into_iter().collect();
        Ok(())
    }

    fn sole_action(owner: Owner, enabled: &[RstpAction]) -> Result<Option<RstpAction>, SimError> {
        match enabled {
            [] => Ok(None),
            [a] => Ok(Some(*a)),
            many => Err(SimError::Determinism {
                owner,
                enabled: many.iter().map(|a| format!("{a:?}")).collect(),
            }),
        }
    }

    fn only_idles(enabled: &[RstpAction]) -> bool {
        enabled.iter().all(|a| a.is_idle())
    }

    fn checked_gap(
        step_adv: &mut dyn StepAdversary,
        owner: Owner,
        engine: &mut Engine,
        s: &SimSettings,
    ) -> Result<TimeDelta, SimError> {
        let idx = match owner {
            Owner::Transmitter => 0,
            _ => 1,
        };
        let step_index = engine.step_counts[idx];
        engine.step_counts[idx] += 1;
        match owner {
            Owner::Transmitter => engine.metrics.transmitter_steps += 1,
            _ => engine.metrics.receiver_steps += 1,
        }
        let gap = step_adv.next_gap(owner, step_index);
        let bounds = s.bounds_of(owner);
        if gap < bounds.c1() || gap > bounds.c2() {
            return Err(SimError::AdversaryOutOfBounds {
                what: format!(
                    "{owner:?} step gap {gap} outside [{}, {}]",
                    bounds.c1(),
                    bounds.c2()
                ),
            });
        }
        Ok(gap)
    }
}

/// Internal mutable engine state, split out so `perform` can borrow it
/// independently of the process states.
struct Engine {
    channel: Channel,
    channel_state: ChannelState,
    heap: BinaryHeap<QueuedEvent>,
    seq: u64,
    pending_deliveries: u64,
    send_index: u64,
    step_counts: [u64; 2],
    metrics: RunMetrics,
    trace: SimTrace,
    settings: SimSettings,
}

impl Engine {
    fn schedule(&mut self, time: Time, kind: EventKind) {
        self.heap.push(QueuedEvent {
            time,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    fn record(&mut self, time: Time, action: RstpAction) {
        if self.settings.record_trace {
            self.trace.push(time, action);
        }
    }

    /// Applies the side effects of a locally controlled action: metrics,
    /// channel handoff for sends, trace recording.
    fn perform(
        &mut self,
        now: Time,
        action: RstpAction,
        delivery_adv: &mut dyn DeliveryAdversary,
    ) -> Result<(), SimError> {
        match action {
            RstpAction::Send(p) => {
                self.channel_state = self
                    .channel
                    .step(&self.channel_state, &RstpAction::Send(p))
                    .map_err(|e| SimError::Channel {
                        what: e.to_string(),
                    })?;
                match p {
                    Packet::Data(_) => {
                        self.metrics.data_sends += 1;
                        self.metrics.last_data_send = Some(now);
                    }
                    Packet::Ack(_) => self.metrics.ack_sends += 1,
                }
                let index = self.send_index;
                self.send_index += 1;
                match delivery_adv.dispose(p, now, index) {
                    Disposition::Deliver(delay) => {
                        self.check_delay(delay)?;
                        self.schedule(now + delay, EventKind::Deliver(p));
                        self.pending_deliveries += 1;
                    }
                    Disposition::Drop => {
                        // Outside the C(P) contract: silently remove the
                        // packet from flight and count it.
                        self.channel_state = self
                            .channel
                            .step(&self.channel_state, &RstpAction::Recv(p))
                            .map_err(|e| SimError::Channel {
                                what: e.to_string(),
                            })?;
                        self.metrics.drops += 1;
                    }
                    Disposition::Duplicate(first, second) => {
                        self.check_delay(first)?;
                        self.check_delay(second)?;
                        // Inject the extra copy into the channel so the
                        // bookkeeping stays consistent.
                        self.channel_state = self
                            .channel
                            .step(&self.channel_state, &RstpAction::Send(p))
                            .map_err(|e| SimError::Channel {
                                what: e.to_string(),
                            })?;
                        self.schedule(now + first, EventKind::Deliver(p));
                        self.schedule(now + second, EventKind::Deliver(p));
                        self.pending_deliveries += 2;
                        self.metrics.duplicates += 1;
                    }
                }
            }
            RstpAction::Write(_) => {
                self.metrics.writes += 1;
                self.metrics.last_write = Some(now);
            }
            RstpAction::TransmitterInternal(InternalKind::Wait)
            | RstpAction::ReceiverInternal(InternalKind::Wait) => {
                self.metrics.wait_steps += 1;
            }
            RstpAction::TransmitterInternal(InternalKind::Idle)
            | RstpAction::ReceiverInternal(InternalKind::Idle) => {
                self.metrics.idle_steps += 1;
            }
            RstpAction::Recv(_) => unreachable!("recv is not a locally controlled action"),
        }
        self.record(now, action);
        Ok(())
    }

    fn check_delay(&self, delay: TimeDelta) -> Result<(), SimError> {
        if delay < self.settings.d_lo || delay > self.settings.d_hi {
            return Err(SimError::AdversaryOutOfBounds {
                what: format!(
                    "delivery delay {delay} outside [{}, {}]",
                    self.settings.d_lo, self.settings.d_hi
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{DeliveryPolicy, StepPolicy};
    use rstp_core::protocols::{AlphaReceiver, AlphaTransmitter};
    use rstp_core::TimingParams;

    fn params() -> TimingParams {
        TimingParams::from_ticks(2, 3, 8).unwrap() // δ1 = 4
    }

    fn run_alpha(
        input: Vec<bool>,
        step: StepPolicy,
        delivery: DeliveryPolicy,
    ) -> Result<SimRun, SimError> {
        let p = params();
        let sim = Simulation::new(
            AlphaTransmitter::new(p, input.clone()),
            AlphaReceiver::new(),
            SimSettings::from_params(p),
        );
        let mut sa = step.build(p);
        let mut da = delivery.build(TimeDelta::ZERO, p.d());
        sim.run(&input, sa.as_mut(), da.as_mut())
    }

    #[test]
    fn alpha_transmits_everything() {
        let input = vec![true, false, true, true, false];
        let run = run_alpha(input.clone(), StepPolicy::AllSlow, DeliveryPolicy::MaxDelay).unwrap();
        assert_eq!(run.outcome, Outcome::Quiescent);
        assert_eq!(run.metrics.writes, 5);
        assert_eq!(run.metrics.data_sends, 5);
        assert_eq!(run.trace.written(), input);
    }

    #[test]
    fn alpha_effort_matches_closed_form_under_slow_steps() {
        // Last send fires at step (n-1)*δ1, each step c2 apart:
        // t(last-send) = (n-1)*δ1*c2; effort/n -> δ1*c2 = 12.
        let n = 64usize;
        let input = vec![true; n];
        let run = run_alpha(input, StepPolicy::AllSlow, DeliveryPolicy::MaxDelay).unwrap();
        let expected = ((n as u64 - 1) * 4 * 3) as f64;
        assert_eq!(run.metrics.last_data_send.unwrap().ticks() as f64, expected);
    }

    #[test]
    fn empty_input_quiesces_immediately() {
        let run = run_alpha(vec![], StepPolicy::AllFast, DeliveryPolicy::Eager).unwrap();
        assert_eq!(run.outcome, Outcome::Quiescent);
        assert_eq!(run.metrics.data_sends, 0);
        assert_eq!(run.metrics.writes, 0);
    }

    #[test]
    fn trace_times_are_monotone() {
        let run = run_alpha(
            vec![true; 20],
            StepPolicy::Alternate,
            DeliveryPolicy::Random { seed: 3 },
        )
        .unwrap();
        let times: Vec<_> = run.trace.events().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(times.first().copied(), Some(Time::ZERO));
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = run_alpha(
            vec![true, false, true],
            StepPolicy::Random { seed: 9 },
            DeliveryPolicy::Random { seed: 11 },
        )
        .unwrap();
        let b = run_alpha(
            vec![true, false, true],
            StepPolicy::Random { seed: 9 },
            DeliveryPolicy::Random { seed: 11 },
        )
        .unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn loss_breaks_alpha_liveness_but_terminates() {
        let run = run_alpha(
            vec![true; 10],
            StepPolicy::AllFast,
            DeliveryPolicy::Faulty {
                loss: 1.0,
                duplication: 0.0,
                seed: 5,
            },
        )
        .unwrap();
        assert_eq!(run.outcome, Outcome::Quiescent);
        assert_eq!(run.metrics.drops, 10);
        assert_eq!(run.metrics.writes, 0);
    }

    #[test]
    fn duplication_double_writes_alpha() {
        // Alpha has no duplicate suppression: injected copies are written
        // twice — visible evidence that C(P)'s no-duplication matters.
        let run = run_alpha(
            vec![true],
            StepPolicy::AllFast,
            DeliveryPolicy::Faulty {
                loss: 0.0,
                duplication: 1.0,
                seed: 5,
            },
        )
        .unwrap();
        assert_eq!(run.metrics.duplicates, 1);
        assert_eq!(run.metrics.writes, 2);
    }

    #[test]
    fn queue_ordering_is_time_then_seq() {
        let e1 = QueuedEvent {
            time: Time::from_ticks(5),
            seq: 0,
            kind: EventKind::Step(Owner::Transmitter),
        };
        let e2 = QueuedEvent {
            time: Time::from_ticks(3),
            seq: 1,
            kind: EventKind::Step(Owner::Receiver),
        };
        let e3 = QueuedEvent {
            time: Time::from_ticks(3),
            seq: 2,
            kind: EventKind::Step(Owner::Receiver),
        };
        let mut heap = BinaryHeap::new();
        heap.push(e1);
        heap.push(e3);
        heap.push(e2);
        assert_eq!(heap.pop().unwrap().seq, 1);
        assert_eq!(heap.pop().unwrap().seq, 2);
        assert_eq!(heap.pop().unwrap().seq, 0);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let p = params();
        let input = vec![true; 100];
        let sim = Simulation::new(
            AlphaTransmitter::new(p, input.clone()),
            AlphaReceiver::new(),
            SimSettings {
                max_events: 10,
                ..SimSettings::from_params(p)
            },
        );
        let mut sa = StepPolicy::AllFast.build(p);
        let mut da = DeliveryPolicy::Eager.build(TimeDelta::ZERO, p.d());
        let run = sim.run(&input, sa.as_mut(), da.as_mut()).unwrap();
        assert_eq!(run.outcome, Outcome::BudgetExhausted);
    }
}
