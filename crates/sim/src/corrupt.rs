//! Seeded state-corruption adversary for the self-stabilizing protocols.
//!
//! A transient fault in the paper's model is an adversary that, at one
//! instant, overwrites every register of both processes and scrambles the
//! packets already in flight — after which the system must *converge* back
//! to correct behaviour on its own. [`run_corrupted`] models exactly that:
//! it runs a configured protocol pair under ordinary step/delivery
//! adversaries, and at the `at_event`-th processed simulation event replaces
//! both automaton states with uniformly drawn register vectors (via
//! [`Corruptible`]) and rewrites each in-flight packet with probability
//! one half, staying inside the protocol's wire alphabet and preserving
//! packet direction.
//!
//! Everything is derived from a single `u64` seed, so a corruption schedule
//! is reproducible byte-for-byte: the same `(scenario, spec)` pair yields
//! the same drawn registers, the same channel rewrites, and therefore the
//! same verdict — the property `rstp-check` leans on for its corpus format.

use crate::adversary::{DeliveryAdversary, StepAdversary};
use crate::harness::{settings_of, HarnessError, ProtocolKind, RunConfig};
use crate::runner::{SimRun, Simulation};
use core::fmt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rstp_automata::{Automaton, Corruptible, RegisterSpec, Time};
use rstp_core::protocols::stabilizing::{
    stab_beta_transmitter, stab_stenning_ack_alphabet, stab_stenning_data_alphabet,
    StabBetaReceiver, StabStenningReceiver, StabStenningTransmitter,
};
use rstp_core::{Message, Packet, RstpAction};

/// When and how to corrupt: fire just before the `at_event`-th processed
/// simulation event, with all random choices derived from `seed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptionSpec {
    /// Event index at which the fault strikes (0 = before anything runs).
    /// If the run finishes earlier, the fault never fires.
    pub at_event: u64,
    /// Seed for every random choice the corruptor makes.
    pub seed: u64,
}

/// What the corruptor actually did — enough to reproduce the fault by hand
/// and to compute convergence floors afterwards.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CorruptionReport {
    /// Instant the fault struck; `None` if the run ended before `at_event`.
    pub applied_at: Option<Time>,
    /// Register vector forced into the transmitter (same order as its
    /// [`Corruptible::registers`] spec).
    pub t_regs: Vec<u64>,
    /// Register vector forced into the receiver.
    pub r_regs: Vec<u64>,
    /// In-flight packets rewritten, as `(old, new)` pairs in delivery order.
    pub rewrites: Vec<(Packet, Packet)>,
    /// Total packets in flight when the fault struck (rewritten or not).
    /// Each can consume at most one message slot after the fault — stale
    /// acks can fake an advance, stale data can fill a decode slot — so
    /// convergence floors subtract this.
    pub in_flight: u64,
}

impl CorruptionReport {
    /// Whether the fault actually fired.
    #[must_use]
    pub fn applied(&self) -> bool {
        self.applied_at.is_some()
    }

    /// How many in-flight *acks* were rewritten — each can roll the
    /// stabilizing Stenning transmitter forward or back by one message,
    /// so the convergence oracle widens its completeness floor by this.
    #[must_use]
    pub fn ack_rewrites(&self) -> u64 {
        self.rewrites.iter().filter(|(old, _)| old.is_ack()).count() as u64
    }
}

impl fmt::Display for CorruptionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.applied_at {
            None => write!(f, "corruption: not applied"),
            Some(t) => {
                let join = |regs: &[u64]| {
                    regs.iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let rewrites = self
                    .rewrites
                    .iter()
                    .map(|(old, new)| format!("{old}->{new}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                write!(
                    f,
                    "corruption at {t}: T=[{}] R=[{}] in-flight={} rewrote=[{rewrites}]",
                    join(&self.t_regs),
                    join(&self.r_regs),
                    self.in_flight,
                )
            }
        }
    }
}

fn draw_registers(specs: &[RegisterSpec], rng: &mut StdRng) -> Vec<u64> {
    specs.iter().map(|s| rng.gen_range(0..=s.max)).collect()
}

#[allow(clippy::too_many_arguments)]
fn run_corrupted_pair<T, R>(
    transmitter: T,
    receiver: R,
    data_alphabet: u64,
    ack_alphabet: u64,
    cfg: &RunConfig,
    input: &[Message],
    step: &mut dyn StepAdversary,
    delivery: &mut dyn DeliveryAdversary,
    spec: CorruptionSpec,
) -> Result<(SimRun, CorruptionReport), HarnessError>
where
    T: Corruptible + Automaton<Action = RstpAction> + Clone,
    R: Corruptible + Automaton<Action = RstpAction> + Clone,
{
    // The simulation owns the automata, so keep clones around to translate
    // register vectors into states from inside the hook.
    let t_probe = transmitter.clone();
    let r_probe = receiver.clone();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut report = CorruptionReport::default();
    let sim = Simulation::new(transmitter, receiver, settings_of(cfg));
    let run;
    {
        let mut mutate =
            |now: Time, ts: &mut T::State, rs: &mut R::State, packets: &mut [Packet]| {
                let t_regs = draw_registers(&t_probe.registers(), &mut rng);
                let r_regs = draw_registers(&r_probe.registers(), &mut rng);
                *ts = t_probe.state_from_registers(&t_regs);
                *rs = r_probe.state_from_registers(&r_regs);
                let mut rewrites = Vec::new();
                for p in packets.iter_mut() {
                    if !rng.gen_bool(0.5) {
                        continue;
                    }
                    let new = match *p {
                        Packet::Data(_) => Packet::Data(rng.gen_range(0..data_alphabet)),
                        Packet::Ack(_) if ack_alphabet > 0 => {
                            Packet::Ack(rng.gen_range(0..ack_alphabet))
                        }
                        Packet::Ack(_) => continue,
                    };
                    if new != *p {
                        rewrites.push((*p, new));
                        *p = new;
                    }
                }
                report = CorruptionReport {
                    applied_at: Some(now),
                    t_regs,
                    r_regs,
                    rewrites,
                    in_flight: packets.len() as u64,
                };
            };
        run = sim.run_hooked(input, step, delivery, Some((spec.at_event, &mut mutate)))?;
    }
    Ok((run, report))
}

/// Runs `cfg.kind` under caller-supplied adversaries with a seeded
/// state-corruption fault injected at `spec.at_event`.
///
/// Only the self-stabilizing kinds ([`ProtocolKind::StabStenning`],
/// [`ProtocolKind::StabBeta`]) accept corruption — the others have no
/// recovery story, so a corrupted run of them would measure nothing.
///
/// # Errors
///
/// [`HarnessError::Unsupported`] for non-stabilizing kinds, otherwise the
/// usual construction/model-violation failures.
pub fn run_corrupted(
    cfg: &RunConfig,
    input: &[Message],
    step: &mut dyn StepAdversary,
    delivery: &mut dyn DeliveryAdversary,
    spec: CorruptionSpec,
) -> Result<(SimRun, CorruptionReport), HarnessError> {
    match cfg.kind {
        ProtocolKind::StabStenning { timeout_steps } => run_corrupted_pair(
            StabStenningTransmitter::new(cfg.params, input.to_vec(), timeout_steps),
            StabStenningReceiver::new(),
            stab_stenning_data_alphabet(),
            stab_stenning_ack_alphabet(),
            cfg,
            input,
            step,
            delivery,
            spec,
        ),
        ProtocolKind::StabBeta { k } => run_corrupted_pair(
            stab_beta_transmitter(cfg.params, k, input)?,
            StabBetaReceiver::new(cfg.params, k, input.len())?,
            k,
            0,
            cfg,
            input,
            step,
            delivery,
            spec,
        ),
        other => Err(HarnessError::Unsupported {
            what: format!(
                "state corruption requires a self-stabilizing protocol, got {}",
                other.name()
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_core::TimingParams;

    fn cfg(kind: ProtocolKind) -> RunConfig {
        RunConfig {
            kind,
            params: TimingParams::from_ticks(1, 2, 4).expect("valid params"),
            max_events: 200_000,
            ..RunConfig::default()
        }
    }

    fn adversaries(cfg: &RunConfig) -> (Box<dyn StepAdversary>, Box<dyn DeliveryAdversary>) {
        let step = cfg.step.build(cfg.params);
        let delivery = cfg.delivery.build(
            rstp_automata::TimeDelta::from_ticks(cfg.d_lo_ticks),
            cfg.params.d(),
        );
        (step, delivery)
    }

    fn run_once(
        kind: ProtocolKind,
        input: &[Message],
        spec: CorruptionSpec,
    ) -> (SimRun, CorruptionReport) {
        let cfg = cfg(kind);
        let (mut step, mut delivery) = adversaries(&cfg);
        run_corrupted(&cfg, input, step.as_mut(), delivery.as_mut(), spec).expect("corrupted run")
    }

    #[test]
    fn corruption_is_rejected_for_non_stabilizing_kinds() {
        let cfg = cfg(ProtocolKind::Alpha);
        let (mut step, mut delivery) = adversaries(&cfg);
        let err = run_corrupted(
            &cfg,
            &[true, false],
            step.as_mut(),
            delivery.as_mut(),
            CorruptionSpec {
                at_event: 5,
                seed: 1,
            },
        )
        .expect_err("alpha must reject corruption");
        assert!(matches!(err, HarnessError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn same_seed_yields_byte_identical_schedule_and_run() {
        let input: Vec<Message> = vec![true, false, false, true, true, false];
        let spec = CorruptionSpec {
            at_event: 37,
            seed: 0xFEED,
        };
        for kind in [
            ProtocolKind::StabStenning {
                timeout_steps: None,
            },
            ProtocolKind::StabBeta { k: 4 },
        ] {
            let (run_a, rep_a) = run_once(kind, &input, spec);
            let (run_b, rep_b) = run_once(kind, &input, spec);
            assert_eq!(rep_a, rep_b, "{}: schedules diverged", kind.name());
            assert!(rep_a.applied(), "{}: fault never fired", kind.name());
            assert_eq!(
                rep_a.to_string(),
                rep_b.to_string(),
                "{}: renderings diverged",
                kind.name()
            );
            assert_eq!(
                run_a.trace.written(),
                run_b.trace.written(),
                "{}: delivered suffixes diverged",
                kind.name()
            );
        }
    }

    #[test]
    fn stab_stenning_converges_after_mid_run_corruption() {
        use rstp_core::protocols::stabilizing::{
            stab_stenning_ack_alphabet, REG_STAB_R_PENDING_ACK, REG_STAB_T_NEXT,
        };
        let input: Vec<Message> = vec![true, true, false, true, false, false, true, false];
        for seed in 0..8u64 {
            let (run, report) = run_once(
                ProtocolKind::StabStenning {
                    timeout_steps: None,
                },
                &input,
                CorruptionSpec { at_event: 25, seed },
            );
            assert!(report.applied(), "seed {seed}: fault never fired");
            let written = run.trace.written();
            // Completeness floor: everything past the corrupted `next`
            // must still arrive, minus one slot per in-flight packet, one
            // for a corrupted-in pending ack, and a two-message allowance
            // for the corruption seam itself.
            let next_c = report.t_regs[REG_STAB_T_NEXT] as usize;
            let pending =
                usize::from(report.r_regs[REG_STAB_R_PENDING_ACK] != stab_stenning_ack_alphabet());
            let floor = input
                .len()
                .saturating_sub(next_c + report.in_flight as usize + pending + 2);
            assert!(
                written.len() >= floor,
                "seed {seed}: only {} writes, floor {floor}",
                written.len()
            );
            if floor > 0 {
                assert!(
                    written.ends_with(&input[input.len() - floor..]),
                    "seed {seed}: tail diverged from X: {written:?}"
                );
            }
        }
    }
}
