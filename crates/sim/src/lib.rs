//! Discrete-event timed simulation of RSTP systems.
//!
//! The paper's lower bounds are proved by exhibiting adversarial *timed
//! executions* — schedules of process steps within `[c1, c2]` and packet
//! deliveries within `[0, d]` that maximize the transmitter's transmission
//! time or confuse the receiver. This crate is that adversary, made
//! executable:
//!
//! * [`adversary`] — step adversaries (who steps when) and delivery
//!   adversaries (which in-flight packet arrives when), including the
//!   burst-reversing and interval-batching constructions of §5 and the
//!   fault injectors (loss/duplication) that step *outside* the paper's
//!   channel model.
//! * [`runner`] — the event engine: drives a transmitter and a receiver
//!   automaton plus the channel under chosen adversaries, producing a
//!   timed trace and online metrics.
//! * [`metrics`] — per-run counters and the effort estimate
//!   `t(last-send)/|X|` (paper §4).
//! * [`checker`] — validates a produced trace against the definition of
//!   `good(A)`: safety (`Y` is always a prefix of `X`), liveness
//!   (`Y = X` at quiescence), the step-bound property `Σ(A_t, A_r)`, and
//!   the delivery property `Δ(C(P))` via an explicit send↔recv matching.
//! * [`harness`] — one-call construction + run + check for each protocol,
//!   and worst-case-over-adversaries effort measurement.
//! * [`distinguish`] — the counting argument of Lemma 5.1 run exhaustively:
//!   enumerate every input of length `n`, compute its interval-multiset
//!   signature `P^tr(X)`, and verify the signature map is injective.
//!
//! Everything is deterministic given the adversary seeds; effort tables are
//! reproducible bit-for-bit.
//!
//! # Example: measure `A^β(4)`'s effort under the slowest schedule
//!
//! ```
//! use rstp_core::TimingParams;
//! use rstp_sim::harness::{run_configured, ProtocolKind, RunConfig};
//! use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
//!
//! let params = TimingParams::from_ticks(1, 2, 6).unwrap();
//! let input: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
//! let result = run_configured(&RunConfig {
//!     kind: ProtocolKind::Beta { k: 4 },
//!     params,
//!     step: StepPolicy::AllSlow,
//!     delivery: DeliveryPolicy::MaxDelay,
//!     ..RunConfig::default()
//! }, &input).unwrap();
//! assert!(result.report.all_good());
//! let effort = result.metrics.effort(input.len()).unwrap();
//! // Within the paper's sandwich for this (k, c1, c2, d):
//! assert!(effort <= rstp_core::bounds::passive_upper(params, 4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod checker;
pub mod corrupt;
pub mod distinguish;
pub mod harness;
pub mod metrics;
pub mod replay;
pub mod runner;
pub mod scripted;
pub mod stats;
pub mod timeline;
pub mod trace;

pub use adversary::{DeliveryAdversary, DeliveryPolicy, StepAdversary, StepPolicy};
pub use checker::{CheckReport, Violation};
pub use corrupt::{run_corrupted, CorruptionReport, CorruptionSpec};
pub use harness::{
    expected_output, run_configured, run_with_adversaries, ProtocolKind, RunConfig, RunOutput,
};
pub use metrics::RunMetrics;
pub use replay::{replay_trace, Replay, ReplayError};
pub use runner::{Outcome, SimError, Simulation};
pub use scripted::{
    verify_all_delay_schedules, PacketFate, ScriptedDelays, ScriptedDelivery,
    ScriptedDeliveryAdversary, ScriptedSteps,
};
pub use timeline::render_timeline;
pub use trace::{SimTrace, TraceEvent};
