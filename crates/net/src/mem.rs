//! In-process transport pair whose delivery threads enforce the channel
//! model `C(P)` in wall-clock time.
//!
//! [`MemTransport::pair`] returns two connected endpoints. Each direction
//! owns a background delivery thread: frames arrive with their send
//! instant, the thread draws a [`Verdict`](crate::chan::Verdict) from the
//! seeded [`ChannelSampler`](crate::chan::ChannelSampler), and due frames
//! are released into the peer's inbox at `send_instant + delay`. Because
//! consecutive packets draw independent delays from overlapping windows,
//! later packets can overtake earlier ones — the bounded-delay-with-
//! reorder behaviour the paper's channel axioms permit, now realised in
//! real time rather than simulated ticks.

use crate::chan::{ChannelConfig, ChannelSampler, ScriptedVerdicts, Verdict, VerdictSource};
use crate::error::NetError;
use crate::transport::{Transport, TransportStats};
use crate::wire::{Frame, WireCodec};
use rstp_core::Packet;
use rstp_sim::ScriptedDelivery;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;
use std::time::Instant;

/// Fault counters a delivery thread shares with its sending endpoint.
#[derive(Debug, Default)]
struct FaultCounters {
    losses: AtomicU64,
    duplicates: AtomicU64,
}

/// One endpoint of an in-process channel pair.
#[derive(Debug)]
pub struct MemTransport {
    codec: WireCodec,
    egress: mpsc::SyncSender<(Instant, Vec<u8>)>,
    inbox: Arc<Mutex<VecDeque<Vec<u8>>>>,
    faults: Arc<FaultCounters>,
    seq: u64,
    frames_sent: u64,
    frames_received: u64,
    decode_errors: u64,
}

impl MemTransport {
    /// Builds a connected endpoint pair over `config`. Both directions use
    /// the same configuration but draw from independent PRNG streams, so a
    /// single seed reproduces the whole channel behaviour.
    pub fn pair(codec: WireCodec, config: ChannelConfig) -> (MemTransport, MemTransport) {
        MemTransport::pair_with(
            codec,
            VerdictSource::Sampled(ChannelSampler::new(config, 0)),
            VerdictSource::Sampled(ChannelSampler::new(config, 1)),
        )
    }

    /// Builds a connected endpoint pair whose two directions replay
    /// explicit [`ScriptedDelivery`] plans (tick delays scaled by `tick`)
    /// instead of sampling a PRNG — the wall-clock half of an `rstp-check`
    /// differential scenario. `a_to_b` governs packets sent by the first
    /// endpoint, `b_to_a` those sent by the second.
    pub fn pair_scripted(
        codec: WireCodec,
        tick: Duration,
        a_to_b: ScriptedDelivery,
        b_to_a: ScriptedDelivery,
    ) -> (MemTransport, MemTransport) {
        MemTransport::pair_with(
            codec,
            VerdictSource::Scripted(ScriptedVerdicts::new(a_to_b, tick)),
            VerdictSource::Scripted(ScriptedVerdicts::new(b_to_a, tick)),
        )
    }

    fn pair_with(
        codec: WireCodec,
        a_to_b_verdicts: VerdictSource,
        b_to_a_verdicts: VerdictSource,
    ) -> (MemTransport, MemTransport) {
        let (a_to_b, b_inbox, a_faults) = direction(a_to_b_verdicts, 0);
        let (b_to_a, a_inbox, b_faults) = direction(b_to_a_verdicts, 1);
        let a = MemTransport {
            codec,
            egress: a_to_b,
            inbox: a_inbox,
            faults: a_faults,
            seq: 0,
            frames_sent: 0,
            frames_received: 0,
            decode_errors: 0,
        };
        let b = MemTransport {
            codec,
            egress: b_to_a,
            inbox: b_inbox,
            faults: b_faults,
            seq: 0,
            frames_sent: 0,
            frames_received: 0,
            decode_errors: 0,
        };
        (a, b)
    }
}

/// An endpoint's read side: delivered frames awaiting `poll_recv`.
type Inbox = Arc<Mutex<VecDeque<Vec<u8>>>>;

/// The write side of a direction: `(send_instant, frame bytes)` pairs
/// handed to the delivery thread. Bounded: a stalled delivery thread
/// becomes frame loss at the sender (the channel model already permits
/// loss), never unbounded memory growth.
type Ingress = mpsc::SyncSender<(Instant, Vec<u8>)>;

/// In-flight frames one direction buffers before `send` starts dropping.
/// Far above anything the paced driver produces within a `d` window; only
/// a wedged delivery thread can fill it.
const INGRESS_CAP: usize = 1024;

/// Spawns one delivery direction: returns the ingress sender, the inbox
/// the peer endpoint reads from, and the fault counters of this direction.
fn direction(verdicts: VerdictSource, stream: u64) -> (Ingress, Inbox, Arc<FaultCounters>) {
    let (tx, rx) = mpsc::sync_channel::<(Instant, Vec<u8>)>(INGRESS_CAP);
    let inbox: Inbox = Arc::new(Mutex::new(VecDeque::new()));
    let faults = Arc::new(FaultCounters::default());
    let thread_inbox = Arc::clone(&inbox);
    let thread_faults = Arc::clone(&faults);
    thread::Builder::new()
        .name(format!("rstp-net-chan-{stream}"))
        .spawn(move || delivery_loop(rx, thread_inbox, verdicts, thread_faults))
        .expect("spawn delivery thread");
    (tx, inbox, faults)
}

/// The delivery thread: schedules each frame at `send_instant + delay`
/// and releases due frames into the inbox, draining in deadline order.
fn delivery_loop(
    ingress: mpsc::Receiver<(Instant, Vec<u8>)>,
    inbox: Arc<Mutex<VecDeque<Vec<u8>>>>,
    mut verdicts: VerdictSource,
    faults: Arc<FaultCounters>,
) {
    // Min-heap on (deliver_at, arrival_index); the index breaks ties so
    // equal deadlines release in send order.
    let mut heap: BinaryHeap<Reverse<(Instant, u64, Vec<u8>)>> = BinaryHeap::new();
    let mut arrival = 0u64;
    let mut open = true;
    loop {
        // Only this thread and the receiving endpoint hold the inbox; a
        // strong count of one means the peer endpoint is gone and nothing
        // will ever read what we deliver. Exit so the sender's ingress
        // channel closes and its next send reports the disconnect.
        if Arc::strong_count(&inbox) == 1 {
            return;
        }
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse((at, _, _))| *at <= now) {
            if let Some(Reverse((_, _, bytes))) = heap.pop() {
                // A poisoned inbox means a reader panicked mid-pop; the
                // queue itself is just bytes, so keep delivering.
                inbox
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push_back(bytes);
            }
        }
        if !open && heap.is_empty() {
            return;
        }
        let incoming = match heap.peek() {
            Some(Reverse((at, _, _))) if open => {
                match ingress.recv_timeout(at.saturating_duration_since(Instant::now())) {
                    Ok(item) => Some(item),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        open = false;
                        None
                    }
                }
            }
            Some(Reverse((at, _, _))) => {
                thread::sleep(at.saturating_duration_since(Instant::now()));
                None
            }
            None => match ingress.recv() {
                Ok(item) => Some(item),
                Err(_) => {
                    open = false;
                    None
                }
            },
        };
        if let Some((sent_at, bytes)) = incoming {
            match verdicts.next_verdict() {
                Verdict::Drop => {
                    faults.losses.fetch_add(1, Ordering::Relaxed);
                }
                Verdict::Deliver(delay) => {
                    heap.push(Reverse((sent_at + delay, arrival, bytes)));
                    arrival += 1;
                }
                Verdict::Duplicate(first, second) => {
                    faults.duplicates.fetch_add(1, Ordering::Relaxed);
                    heap.push(Reverse((sent_at + first, arrival, bytes.clone())));
                    arrival += 1;
                    heap.push(Reverse((sent_at + second, arrival, bytes)));
                    arrival += 1;
                }
            }
        }
    }
}

impl Transport for MemTransport {
    fn send(&mut self, packet: Packet, sent_at_micros: u64) -> Result<(), NetError> {
        let buf = self.codec.encode(packet, self.seq, sent_at_micros);
        self.seq += 1;
        match self.egress.try_send((Instant::now(), buf.to_vec())) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                // Backpressure surfaces as channel loss, which the
                // protocols already tolerate; blocking here would stall
                // the paced driver past its c2 deadline instead.
                self.faults.losses.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => return Err(NetError::Disconnected),
        }
        self.frames_sent += 1;
        Ok(())
    }

    fn poll_recv(&mut self) -> Result<Option<Frame>, NetError> {
        let bytes = match self
            .inbox
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
        {
            Some(b) => b,
            None => return Ok(None),
        };
        // In-process frames cannot suffer bit-level corruption, so any
        // decode failure (including a protocol mismatch between the two
        // endpoints) is a setup bug and surfaces as a hard error.
        match self.codec.decode(&bytes) {
            Ok(frame) => {
                self.frames_received += 1;
                Ok(Some(frame))
            }
            Err(e) => {
                self.decode_errors += 1;
                Err(e.into())
            }
        }
    }

    fn local_stats(&self) -> TransportStats {
        TransportStats {
            frames_sent: self.frames_sent,
            frames_received: self.frames_received,
            decode_errors: self.decode_errors,
            injected_losses: self.faults.losses.load(Ordering::Relaxed),
            injected_duplicates: self.faults.duplicates.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ProtocolId;
    use rstp_core::TimingParams;
    use std::time::Duration;

    fn codec() -> WireCodec {
        WireCodec::new(ProtocolId::Beta, 4).expect("k fits")
    }

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 8).expect("valid")
    }

    fn drain(t: &mut MemTransport, want: usize, budget: Duration) -> Vec<Frame> {
        let deadline = Instant::now() + budget;
        let mut out = Vec::new();
        while out.len() < want && Instant::now() < deadline {
            match t.poll_recv().expect("poll") {
                Some(f) => out.push(f),
                None => thread::sleep(Duration::from_micros(200)),
            }
        }
        out
    }

    #[test]
    fn delivers_all_frames_within_bound() {
        let tick = Duration::from_micros(100);
        let cfg = ChannelConfig::reliable(params(), tick, 11);
        let (mut a, mut b) = MemTransport::pair(codec(), cfg);
        for i in 0..64u64 {
            a.send(Packet::Data(i), i).expect("send");
        }
        let frames = drain(&mut b, 64, Duration::from_secs(2));
        assert_eq!(frames.len(), 64);
        let mut symbols: Vec<u64> = frames.iter().map(|f| f.packet.symbol()).collect();
        symbols.sort_unstable();
        assert_eq!(symbols, (0..64).collect::<Vec<_>>());
        assert_eq!(a.local_stats().frames_sent, 64);
        assert_eq!(b.local_stats().frames_received, 64);
    }

    #[test]
    fn uniform_delays_reorder_packets() {
        // A wide delay window over many sends overtakes with overwhelming
        // probability; the seed makes the run reproducible.
        let tick = Duration::from_micros(400);
        let cfg = ChannelConfig::reliable(params(), tick, 3);
        let (mut a, mut b) = MemTransport::pair(codec(), cfg);
        for i in 0..48u64 {
            a.send(Packet::Data(i), i).expect("send");
        }
        let frames = drain(&mut b, 48, Duration::from_secs(4));
        assert_eq!(frames.len(), 48);
        let arrived: Vec<u64> = frames.iter().map(|f| f.seq).collect();
        let mut sorted = arrived.clone();
        sorted.sort_unstable();
        assert_ne!(arrived, sorted, "expected at least one overtake");
    }

    #[test]
    fn max_delay_preserves_fifo() {
        let tick = Duration::from_micros(50);
        let cfg = ChannelConfig::max_delay(params(), tick, 1);
        let (mut a, mut b) = MemTransport::pair(codec(), cfg);
        for i in 0..32u64 {
            a.send(Packet::Data(i), i).expect("send");
        }
        let frames = drain(&mut b, 32, Duration::from_secs(2));
        let arrived: Vec<u64> = frames.iter().map(|f| f.seq).collect();
        assert_eq!(arrived, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn duplex_directions_are_independent() {
        let cfg = ChannelConfig::eager(Duration::from_micros(10), 5);
        let (mut a, mut b) = MemTransport::pair(codec(), cfg);
        a.send(Packet::Data(1), 0).expect("send");
        b.send(Packet::Ack(1), 0).expect("send");
        let to_b = drain(&mut b, 1, Duration::from_millis(500));
        let to_a = drain(&mut a, 1, Duration::from_millis(500));
        assert_eq!(to_b[0].packet, Packet::Data(1));
        assert_eq!(to_a[0].packet, Packet::Ack(1));
    }

    #[test]
    fn loss_and_duplication_are_counted_by_the_sender() {
        let cfg = ChannelConfig {
            loss: 0.3,
            duplication: 0.3,
            ..ChannelConfig::eager(Duration::from_micros(10), 77)
        };
        let (mut a, mut b) = MemTransport::pair(codec(), cfg);
        for i in 0..200u64 {
            a.send(Packet::Data(i), i).expect("send");
        }
        // Give the delivery thread time to classify everything.
        thread::sleep(Duration::from_millis(100));
        let stats = a.local_stats();
        assert!(stats.injected_losses > 0, "expected some losses");
        assert!(stats.injected_duplicates > 0, "expected some duplicates");
        let received = drain(
            &mut b,
            (200 - stats.injected_losses + stats.injected_duplicates) as usize,
            Duration::from_secs(1),
        );
        assert_eq!(
            received.len() as u64,
            200 - stats.injected_losses + stats.injected_duplicates
        );
    }

    #[test]
    fn duplicated_packets_still_respect_the_d_window() {
        // Satellite check for the at-most-d guarantee under faults: a
        // duplicated packet's *second* copy draws its own delay, and that
        // delay is still capped at d ticks. Script every fate explicitly so
        // the interaction of `injected_duplicates` with the window is pinned,
        // not sampled: 8 packets, each duplicated with one eager copy and
        // one copy at the full d = 8 ticks.
        let tick = Duration::from_millis(2);
        let d_ticks = params().d().ticks();
        let plan = ScriptedDelivery::new(
            (0..8)
                .map(|_| rstp_sim::PacketFate::Duplicate(0, d_ticks))
                .collect(),
            0,
        );
        let (mut a, mut b) =
            MemTransport::pair_scripted(codec(), tick, plan, ScriptedDelivery::deliver_all(&[], 0));
        let mut sent_at = Vec::new();
        for i in 0..8u64 {
            sent_at.push(Instant::now());
            a.send(Packet::Data(i), i).expect("send");
            thread::sleep(tick);
        }
        // Every copy — original and duplicate — must arrive by
        // send_instant + d·tick, modulo scheduler lateness (the thread can
        // only release late, never early; generous slack keeps CI honest).
        let window = tick * u32::try_from(d_ticks).expect("small d");
        let slack = Duration::from_millis(250);
        let deadline = Instant::now() + Duration::from_secs(4);
        let mut frames = Vec::new();
        while frames.len() < 16 && Instant::now() < deadline {
            match b.poll_recv().expect("poll") {
                Some(f) => frames.push((Instant::now(), f)),
                None => thread::sleep(Duration::from_micros(200)),
            }
        }
        assert_eq!(frames.len(), 16, "one duplicate per packet");
        for (arrived, f) in &frames {
            let sent = sent_at[usize::try_from(f.seq).expect("small seq")];
            let late = arrived.saturating_duration_since(sent);
            assert!(
                late <= window + slack,
                "seq {} arrived {late:?} after send, window {window:?}",
                f.seq
            );
        }
        let stats = a.local_stats();
        assert_eq!(stats.frames_sent, 8);
        assert_eq!(stats.injected_duplicates, 8, "every packet duplicated");
        assert_eq!(stats.injected_losses, 0);
        assert_eq!(b.local_stats().frames_received, 16);
        // Each seq arrives exactly twice (duplication, no loss).
        let mut counts = [0u32; 8];
        for (_, f) in &frames {
            counts[usize::try_from(f.seq).expect("small seq")] += 1;
        }
        assert_eq!(counts, [2; 8]);
    }

    #[test]
    fn scripted_drops_are_counted_and_never_delivered() {
        let tick = Duration::from_micros(100);
        let plan = ScriptedDelivery::new(
            vec![
                rstp_sim::PacketFate::Deliver(0),
                rstp_sim::PacketFate::Drop,
                rstp_sim::PacketFate::Deliver(0),
                rstp_sim::PacketFate::Drop,
            ],
            0,
        );
        let (mut a, mut b) =
            MemTransport::pair_scripted(codec(), tick, plan, ScriptedDelivery::deliver_all(&[], 0));
        for i in 0..4u64 {
            a.send(Packet::Data(i), i).expect("send");
        }
        let frames = drain(&mut b, 2, Duration::from_secs(1));
        // Allow the thread a beat to classify the dropped frames too.
        thread::sleep(Duration::from_millis(50));
        let symbols: Vec<u64> = frames.iter().map(|f| f.packet.symbol()).collect();
        assert_eq!(symbols, vec![0, 2]);
        let stats = a.local_stats();
        assert_eq!(stats.injected_losses, 2);
        assert_eq!(stats.injected_duplicates, 0);
        assert!(b.poll_recv().expect("poll").is_none(), "drops stay dropped");
    }

    #[test]
    fn send_after_peer_drop_reports_disconnect() {
        let cfg = ChannelConfig::eager(Duration::from_micros(10), 5);
        let (mut a, b) = MemTransport::pair(codec(), cfg);
        drop(b);
        // The delivery thread drains and exits once the peer's inbox side
        // is gone; the ingress sender then observes a closed channel.
        thread::sleep(Duration::from_millis(50));
        let mut saw_disconnect = false;
        for i in 0..8 {
            if a.send(Packet::Data(i), 0).is_err() {
                saw_disconnect = true;
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        assert!(saw_disconnect);
    }
}
