//! Whole-transfer orchestration: build a protocol pair, drive both
//! endpoints over a real transport, and collect a joint report.
//!
//! [`run_transmitter`]/[`run_receiver`] drive a single endpoint over any
//! [`Transport`] — the CLI's two-terminal `net send`/`net recv` commands
//! use them directly over UDP. [`run_transfer_mem`] wires both ends of a
//! [`MemTransport`] pair together on two threads sharing one clock epoch,
//! which is the deterministic in-process path the benchmarks and the
//! sim-versus-net differential test use.

use crate::chan::ChannelConfig;
use crate::clock::TickClock;
use crate::driver::{run_endpoint, DriverConfig, DriverReport, Pace};
use crate::error::NetError;
use crate::mem::MemTransport;
use crate::transport::Transport;
use crate::wire::{ProtocolId, WireCodec};
use rstp_core::protocols::{
    stab_beta_transmitter, AlphaReceiver, AlphaTransmitter, AltBitReceiver, AltBitTransmitter,
    BetaReceiver, BetaTransmitter, FramedReceiver, FramedTransmitter, GammaReceiver,
    GammaTransmitter, PipelinedReceiver, PipelinedTransmitter, StabBetaReceiver,
    StabStenningReceiver, StabStenningTransmitter, StenningReceiver, StenningTransmitter,
};
use rstp_core::{Message, TimingParams};
use rstp_sim::harness::ProtocolKind;
use rstp_sim::ScriptedDelivery;
use std::thread;
use std::time::Duration;

/// The wire identity `(protocol id, k)` of a [`ProtocolKind`].
///
/// # Errors
///
/// [`NetError::Unsupported`] for [`ProtocolKind::BetaWindow`]: its wait
/// phase depends on a per-run `d_lo` that the wire header does not carry,
/// so the two endpoints could silently disagree about timing.
pub fn wire_identity(kind: ProtocolKind) -> Result<(ProtocolId, u64), NetError> {
    match kind {
        ProtocolKind::Alpha => Ok((ProtocolId::Alpha, 0)),
        ProtocolKind::Beta { k } => Ok((ProtocolId::Beta, k)),
        ProtocolKind::Gamma { k } => Ok((ProtocolId::Gamma, k)),
        ProtocolKind::AltBit { .. } => Ok((ProtocolId::AltBit, 0)),
        ProtocolKind::Framed { k } => Ok((ProtocolId::Framed, k)),
        ProtocolKind::Stenning { .. } => Ok((ProtocolId::Stenning, 0)),
        ProtocolKind::Pipelined { k, .. } => Ok((ProtocolId::Pipelined, k)),
        ProtocolKind::StabStenning { .. } => Ok((ProtocolId::StabStenning, 0)),
        ProtocolKind::StabBeta { k } => Ok((ProtocolId::StabBeta, k)),
        ProtocolKind::BetaWindow { .. } => Err(NetError::Unsupported {
            what: "beta-window needs an out-of-band d_lo agreement; \
                   run it in the simulator instead"
                .into(),
        }),
    }
}

/// The frame codec both endpoints of a `kind` transfer must use.
///
/// # Errors
///
/// [`NetError`] if the protocol is unsupported on the wire or `k` exceeds
/// the header field.
pub fn codec_for(kind: ProtocolKind) -> Result<WireCodec, NetError> {
    let (id, k) = wire_identity(kind)?;
    Ok(WireCodec::new(id, k)?)
}

/// Drives the transmitter endpoint of `kind` carrying `input` over
/// `transport`.
///
/// # Errors
///
/// [`NetError`] on construction failure, transport failure, or a model
/// violation.
pub fn run_transmitter<T: Transport>(
    kind: ProtocolKind,
    params: TimingParams,
    input: &[Message],
    transport: &mut T,
    clock: TickClock,
    config: &DriverConfig,
) -> Result<DriverReport, NetError> {
    match kind {
        ProtocolKind::Alpha => run_endpoint(
            &AlphaTransmitter::new(params, input.to_vec()),
            transport,
            clock,
            config,
        ),
        ProtocolKind::Beta { k } => run_endpoint(
            &BetaTransmitter::new(params, k, input)?,
            transport,
            clock,
            config,
        ),
        ProtocolKind::Gamma { k } => run_endpoint(
            &GammaTransmitter::new(params, k, input)?,
            transport,
            clock,
            config,
        ),
        ProtocolKind::AltBit { timeout_steps } => run_endpoint(
            &AltBitTransmitter::new(params, input.to_vec(), timeout_steps),
            transport,
            clock,
            config,
        ),
        ProtocolKind::Framed { k } => run_endpoint(
            &FramedTransmitter::new(params, k, input)?,
            transport,
            clock,
            config,
        ),
        ProtocolKind::Stenning { timeout_steps } => run_endpoint(
            &StenningTransmitter::new(params, input.to_vec(), timeout_steps),
            transport,
            clock,
            config,
        ),
        ProtocolKind::Pipelined { k, window } => run_endpoint(
            &PipelinedTransmitter::with_window(params, k, window, input)?,
            transport,
            clock,
            config,
        ),
        ProtocolKind::StabStenning { timeout_steps } => run_endpoint(
            &StabStenningTransmitter::new(params, input.to_vec(), timeout_steps),
            transport,
            clock,
            config,
        ),
        ProtocolKind::StabBeta { k } => run_endpoint(
            &stab_beta_transmitter(params, k, input)?,
            transport,
            clock,
            config,
        ),
        ProtocolKind::BetaWindow { .. } => Err(wire_identity(kind).expect_err("unsupported")),
    }
}

/// Drives the receiver endpoint of `kind` expecting `n` messages over
/// `transport`.
///
/// # Errors
///
/// [`NetError`] on construction failure, transport failure, or a model
/// violation.
pub fn run_receiver<T: Transport>(
    kind: ProtocolKind,
    params: TimingParams,
    n: usize,
    transport: &mut T,
    clock: TickClock,
    config: &DriverConfig,
) -> Result<DriverReport, NetError> {
    let config = &DriverConfig {
        expected_writes: Some(n),
        ..*config
    };
    match kind {
        ProtocolKind::Alpha => run_endpoint(&AlphaReceiver::new(), transport, clock, config),
        ProtocolKind::Beta { k } => {
            run_endpoint(&BetaReceiver::new(params, k, n)?, transport, clock, config)
        }
        ProtocolKind::Gamma { k } => {
            run_endpoint(&GammaReceiver::new(params, k, n)?, transport, clock, config)
        }
        ProtocolKind::AltBit { .. } => {
            run_endpoint(&AltBitReceiver::new(), transport, clock, config)
        }
        ProtocolKind::Framed { k } => {
            run_endpoint(&FramedReceiver::new(params, k)?, transport, clock, config)
        }
        ProtocolKind::Stenning { .. } => {
            run_endpoint(&StenningReceiver::new(), transport, clock, config)
        }
        ProtocolKind::Pipelined { k, window } => run_endpoint(
            &PipelinedReceiver::with_window(params, k, window, n)?,
            transport,
            clock,
            config,
        ),
        ProtocolKind::StabStenning { .. } => {
            run_endpoint(&StabStenningReceiver::new(), transport, clock, config)
        }
        ProtocolKind::StabBeta { k } => run_endpoint(
            &StabBetaReceiver::new(params, k, n)?,
            transport,
            clock,
            config,
        ),
        ProtocolKind::BetaWindow { .. } => Err(wire_identity(kind).expect_err("unsupported")),
    }
}

/// Configuration of an in-process transfer.
#[derive(Clone, Copy, Debug)]
pub struct TransferConfig {
    /// Timing parameters `(c1, c2, d)`.
    pub params: TimingParams,
    /// Wall-clock length of one tick.
    pub tick: Duration,
    /// Channel behaviour between the endpoints.
    pub channel: ChannelConfig,
    /// Step pace of both endpoints.
    pub pace: Pace,
    /// Hard wall-clock cap for each endpoint.
    pub max_wall: Duration,
}

impl TransferConfig {
    /// Slow-paced transfer over a reliable `[0, d]` channel — the regime
    /// the worst-case bounds are stated against.
    pub fn new(params: TimingParams, tick: Duration, seed: u64) -> Self {
        TransferConfig {
            params,
            tick,
            channel: ChannelConfig::reliable(params, tick, seed),
            pace: Pace::Slow,
            max_wall: Duration::from_secs(60),
        }
    }

    /// Replaces the channel model.
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = channel;
        self
    }

    /// Replaces the pace.
    pub fn with_pace(mut self, pace: Pace) -> Self {
        self.pace = pace;
        self
    }
}

/// The joint outcome of a completed in-process transfer.
#[derive(Clone, Debug)]
pub struct TransferReport {
    /// The transmitter endpoint's report.
    pub transmitter: DriverReport,
    /// The receiver endpoint's report.
    pub receiver: DriverReport,
}

impl TransferReport {
    /// The receiver's output sequence `Y`.
    pub fn output(&self) -> &[Message] {
        &self.receiver.written
    }
}

/// Transfers `input` through `kind` over an in-process [`MemTransport`]
/// pair, both endpoints on their own thread sharing one clock epoch.
///
/// # Errors
///
/// [`NetError`] from either endpoint; a panicking endpoint thread is
/// reported as [`NetError::Thread`].
pub fn run_transfer_mem(
    kind: ProtocolKind,
    input: &[Message],
    config: &TransferConfig,
) -> Result<TransferReport, NetError> {
    let codec = codec_for(kind)?;
    let ends = MemTransport::pair(codec, config.channel);
    run_transfer_over(kind, input, config, ends)
}

/// Like [`run_transfer_mem`], but the two channel directions replay
/// explicit [`ScriptedDelivery`] plans instead of sampling the configured
/// channel: `data_plan` governs transmitter → receiver packets, `ack_plan`
/// the reverse direction. This is the wall-clock half of an `rstp-check`
/// differential scenario — the same plans drive the simulator through
/// `rstp_sim::ScriptedDeliveryAdversary`, so a divergence between the two
/// outputs indicts the stack, not the schedule.
///
/// # Errors
///
/// [`NetError`] from either endpoint; a panicking endpoint thread is
/// reported as [`NetError::Thread`].
pub fn run_transfer_mem_scripted(
    kind: ProtocolKind,
    input: &[Message],
    config: &TransferConfig,
    data_plan: ScriptedDelivery,
    ack_plan: ScriptedDelivery,
) -> Result<TransferReport, NetError> {
    let codec = codec_for(kind)?;
    let ends = MemTransport::pair_scripted(codec, config.tick, data_plan, ack_plan);
    run_transfer_over(kind, input, config, ends)
}

fn run_transfer_over(
    kind: ProtocolKind,
    input: &[Message],
    config: &TransferConfig,
    (mut t_end, mut r_end): (MemTransport, MemTransport),
) -> Result<TransferReport, NetError> {
    // Anchor tick 0 slightly in the future so both threads are running
    // before their first deadline.
    let t_clock = TickClock::start_after(Duration::from_millis(2), config.tick);
    let r_clock = TickClock::with_epoch(t_clock.epoch(), config.tick);
    let base = DriverConfig::new(config.params, config.tick)
        .with_pace(config.pace)
        .with_max_wall(config.max_wall);
    let params = config.params;
    let n = input.len();
    let t_input = input.to_vec();
    let t_cfg = base;
    let r_cfg = base;

    let t_handle = thread::Builder::new()
        .name("rstp-net-transmitter".into())
        .spawn(move || run_transmitter(kind, params, &t_input, &mut t_end, t_clock, &t_cfg))
        .map_err(|e| NetError::Thread {
            what: format!("spawn transmitter: {e}"),
        })?;
    let r_handle = thread::Builder::new()
        .name("rstp-net-receiver".into())
        .spawn(move || run_receiver(kind, params, n, &mut r_end, r_clock, &r_cfg))
        .map_err(|e| NetError::Thread {
            what: format!("spawn receiver: {e}"),
        })?;

    let transmitter = t_handle.join().map_err(|_| NetError::Thread {
        what: "transmitter panicked".into(),
    })??;
    let receiver = r_handle.join().map_err(|_| NetError::Thread {
        what: "receiver panicked".into(),
    })??;
    Ok(TransferReport {
        transmitter,
        receiver,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverOutcome;
    use rstp_sim::harness::random_input;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 4).expect("valid")
    }

    fn quick_config(seed: u64) -> TransferConfig {
        TransferConfig::new(params(), Duration::from_micros(200), seed)
    }

    #[test]
    fn beta_transfer_reproduces_the_input() {
        let input = random_input(48, 5);
        let report = run_transfer_mem(ProtocolKind::Beta { k: 4 }, &input, &quick_config(5))
            .expect("transfer");
        assert_eq!(report.output(), input);
        assert_eq!(report.transmitter.outcome, DriverOutcome::Completed);
        assert_eq!(report.receiver.outcome, DriverOutcome::Completed);
        assert!(report.transmitter.data_sends > 0);
    }

    #[test]
    fn gamma_transfer_reproduces_the_input() {
        let input = random_input(32, 9);
        let report = run_transfer_mem(ProtocolKind::Gamma { k: 4 }, &input, &quick_config(9))
            .expect("transfer");
        assert_eq!(report.output(), input);
        assert!(report.receiver.ack_sends > 0, "gamma receivers ack");
        assert!(report.transmitter.recvs > 0, "transmitter saw the acks");
    }

    #[test]
    fn alpha_transfer_reproduces_the_input() {
        let input = random_input(16, 3);
        let report =
            run_transfer_mem(ProtocolKind::Alpha, &input, &quick_config(3)).expect("transfer");
        assert_eq!(report.output(), input);
        assert_eq!(report.transmitter.data_sends, 16);
    }

    #[test]
    fn scripted_transfer_matches_the_plain_one() {
        // The same input over a scripted eager plan must reproduce the
        // input exactly, like the sampled channel does.
        let input = random_input(24, 11);
        let report = run_transfer_mem_scripted(
            ProtocolKind::Gamma { k: 4 },
            &input,
            &quick_config(11),
            ScriptedDelivery::deliver_all(&[0, 4, 2, 0, 3], 0),
            ScriptedDelivery::deliver_all(&[], 0),
        )
        .expect("transfer");
        assert_eq!(report.output(), input);
        assert_eq!(report.receiver.outcome, DriverOutcome::Completed);
    }

    #[test]
    fn empty_input_completes_immediately() {
        let report =
            run_transfer_mem(ProtocolKind::Alpha, &[], &quick_config(1)).expect("transfer");
        assert_eq!(report.output(), &[] as &[Message]);
        assert_eq!(report.transmitter.data_sends, 0);
    }

    #[test]
    fn beta_window_is_rejected() {
        let err = run_transfer_mem(ProtocolKind::BetaWindow { k: 4 }, &[true], &quick_config(1))
            .expect_err("unsupported");
        assert!(matches!(err, NetError::Unsupported { .. }));
    }

    #[test]
    fn wire_identities_are_stable() {
        assert_eq!(
            wire_identity(ProtocolKind::Beta { k: 7 }).expect("supported"),
            (ProtocolId::Beta, 7)
        );
        assert_eq!(
            wire_identity(ProtocolKind::Pipelined { k: 3, window: 2 }).expect("supported"),
            (ProtocolId::Pipelined, 3)
        );
        assert!(wire_identity(ProtocolKind::BetaWindow { k: 2 }).is_err());
    }
}
