//! Tick-to-wall-clock mapping for the real-time driver.
//!
//! The paper measures time in abstract units; the simulator counts ticks.
//! [`TickClock`] anchors an epoch `Instant` and converts tick counts into
//! absolute deadlines, so scheduling drift does not accumulate: sleeping
//! to `epoch + n·tick` self-corrects even when individual sleeps overshoot.

use std::time::{Duration, Instant};

/// A wall clock anchored at an epoch, graduated in fixed-length ticks.
#[derive(Clone, Copy, Debug)]
pub struct TickClock {
    epoch: Instant,
    tick: Duration,
}

impl TickClock {
    /// Starts a clock now with the given tick length.
    pub fn start(tick: Duration) -> Self {
        TickClock {
            epoch: Instant::now(),
            tick,
        }
    }

    /// A clock sharing an existing epoch — both endpoints of an
    /// in-process transfer use this so their microsecond readings are
    /// directly comparable for latency measurement.
    pub fn with_epoch(epoch: Instant, tick: Duration) -> Self {
        TickClock { epoch, tick }
    }

    /// Starts a clock whose epoch lies `headroom` in the future, so every
    /// participant handed a copy can finish setup before tick 0 fires.
    /// This is the sanctioned way to anchor a transfer start; reading
    /// `Instant::now()` at call sites would scatter unaccounted
    /// wall-clock reads across the workspace (see `rstp analyze`).
    pub fn start_after(headroom: Duration, tick: Duration) -> Self {
        TickClock {
            epoch: Instant::now() + headroom,
            tick,
        }
    }

    /// The clock's epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Wall-clock length of one tick.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Microseconds elapsed since the epoch.
    pub fn now_micros(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// The absolute instant of tick `n`.
    pub fn instant_of_tick(&self, n: u64) -> Instant {
        self.epoch + self.tick * u32::try_from(n).unwrap_or(u32::MAX)
    }

    /// Converts a wall-clock duration into (possibly fractional, rounded
    /// up) ticks — used to express measured effort in the paper's units.
    pub fn duration_to_ticks(&self, d: Duration) -> f64 {
        if self.tick.is_zero() {
            return 0.0;
        }
        d.as_secs_f64() / self.tick.as_secs_f64()
    }

    /// Sleeps until `deadline` and reports the overshoot: how far past the
    /// deadline the caller actually woke. A deadline already in the past
    /// sleeps nothing and reports the full lateness.
    pub fn sleep_until(&self, deadline: Instant) -> Duration {
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
        Instant::now().saturating_duration_since(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_instants_are_multiples_of_the_tick() {
        let tick = Duration::from_micros(100);
        let clock = TickClock::start(tick);
        assert_eq!(
            clock.instant_of_tick(10) - clock.epoch(),
            Duration::from_millis(1)
        );
        assert_eq!(clock.instant_of_tick(0), clock.epoch());
    }

    #[test]
    fn duration_to_ticks_scales() {
        let clock = TickClock::start(Duration::from_micros(200));
        let ticks = clock.duration_to_ticks(Duration::from_millis(1));
        assert!((ticks - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sleep_until_past_deadline_reports_lateness() {
        let clock = TickClock::start(Duration::from_micros(100));
        let overshoot = clock.sleep_until(Instant::now() - Duration::from_millis(5));
        assert!(overshoot >= Duration::from_millis(5));
    }

    #[test]
    fn sleep_until_future_deadline_waits() {
        let clock = TickClock::start(Duration::from_micros(100));
        let deadline = Instant::now() + Duration::from_millis(10);
        let overshoot = clock.sleep_until(deadline);
        assert!(Instant::now() >= deadline);
        // Overshoot is OS scheduling noise; it must at least be measured.
        assert!(overshoot < Duration::from_secs(1));
    }

    #[test]
    fn shared_epoch_clocks_agree() {
        let epoch = Instant::now();
        let a = TickClock::with_epoch(epoch, Duration::from_micros(100));
        let b = TickClock::with_epoch(epoch, Duration::from_micros(100));
        let (ta, tb) = (a.now_micros(), b.now_micros());
        assert!(tb.abs_diff(ta) < 50_000, "clocks diverged: {ta} vs {tb}");
    }
}
