//! Logarithmically bucketed latency histogram for per-packet delivery
//! times, cheap enough to update on the real-time driver's hot path.

use core::fmt;

/// Bucket boundaries in microseconds: powers of two from 1 µs up.
const BUCKETS: usize = 32;

/// A fixed-size log₂-bucketed histogram of microsecond latencies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_micros: u128,
    min_micros: u64,
    max_micros: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_micros: 0,
            min_micros: u64::MAX,
            max_micros: 0,
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, micros: u64) {
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        if let Some(count) = self.counts.get_mut(bucket) {
            *count += 1;
        }
        self.total += 1;
        self.sum_micros += u128::from(micros);
        self.min_micros = self.min_micros.min(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest observation, or `None` when empty.
    pub fn min_micros(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min_micros)
    }

    /// Largest observation, or `None` when empty.
    pub fn max_micros(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max_micros)
    }

    /// Mean observation in microseconds, or `None` when empty.
    pub fn mean_micros(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum_micros as f64 / self.total as f64)
    }

    /// Approximate quantile: upper edge of the bucket holding the `q`-th
    /// observation (`0.0 ≤ q ≤ 1.0`), or `None` when empty. Accuracy is
    /// one power of two — sufficient for the driver's order-of-magnitude
    /// latency reporting.
    pub fn quantile_micros(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_edge(bucket));
            }
        }
        Some(self.max_micros)
    }

    /// Interpolated quantile: linearly interpolates the rank position
    /// within the bucket that holds the `q`-th observation, clamped to
    /// the observed `[min, max]` range. Smoother than
    /// [`quantile_micros`](Self::quantile_micros) (which reports a bucket
    /// upper edge, one power of two of slack) while costing the same one
    /// pass over the 32 buckets — the resolution aggregated swarm metrics
    /// need without keeping every sample.
    pub fn quantile_interp_micros(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The extreme quantiles are known exactly — interpolation inside
        // a shared bucket would otherwise drift above the true minimum
        // (e.g. observations 4 and 7 both land in the [4, 7] bucket, and
        // rank-1 interpolation splits the bucket rather than returning 4).
        if q <= 0.0 {
            return Some(self.min_micros as f64);
        }
        if q >= 1.0 {
            return Some(self.max_micros as f64);
        }
        let rank = (q * self.total as f64).max(1.0).min(self.total as f64);
        let mut seen = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (seen + n) as f64 >= rank {
                // Interpolate by how far into this bucket's count the
                // rank falls, assuming uniform spread across the bucket.
                let lo = bucket_lower_edge(bucket) as f64;
                let hi = bucket_upper_edge(bucket) as f64;
                let frac = (rank - seen as f64) / n as f64;
                let est = lo + (hi - lo) * frac;
                return Some(est.clamp(self.min_micros as f64, self.max_micros as f64));
            }
            seen += n;
        }
        Some(self.max_micros as f64)
    }

    /// Non-empty buckets as `(upper_edge_micros, count)` pairs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (bucket_upper_edge(b), n))
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
        if other.total > 0 {
            self.min_micros = self.min_micros.min(other.min_micros);
            self.max_micros = self.max_micros.max(other.max_micros);
        }
    }
}

/// Lower edge (inclusive) of bucket `b` in microseconds.
fn bucket_lower_edge(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Upper edge (inclusive) of bucket `b` in microseconds.
fn bucket_upper_edge(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min_micros(), self.mean_micros(), self.max_micros()) {
            (Some(min), Some(mean), Some(max)) => write!(
                f,
                "n={} min={}us mean={:.1}us p99<={}us max={}us",
                self.total,
                min,
                mean,
                self.quantile_micros(0.99).unwrap_or(max),
                max
            ),
            _ => f.write_str("n=0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min_micros(), Some(1));
        assert_eq!(h.max_micros(), Some(1000));
        let mean = h.mean_micros().expect("non-empty");
        assert!((mean - 221.4).abs() < 0.1);
    }

    #[test]
    fn quantiles_bracket_observations() {
        let mut h = LatencyHistogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_micros(0.5).expect("non-empty");
        assert!((256..=1023).contains(&p50), "p50={p50}");
        let p100 = h.quantile_micros(1.0).expect("non-empty");
        assert!(p100 >= 999);
    }

    #[test]
    fn empty_histogram_has_no_summary() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_micros(), None);
        assert_eq!(h.mean_micros(), None);
        assert_eq!(h.quantile_micros(0.5), None);
        assert_eq!(h.to_string(), "n=0");
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = LatencyHistogram::new();
        a.record(5);
        let mut b = LatencyHistogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_micros(), Some(5));
        assert_eq!(a.max_micros(), Some(500));
    }

    #[test]
    fn zero_latency_lands_in_the_bottom_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.buckets(), vec![(0, 1)]);
    }

    #[test]
    fn interpolated_quantile_is_within_bucket_and_monotone() {
        let mut h = LatencyHistogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_interp_micros(0.5).expect("non-empty");
        let p90 = h.quantile_interp_micros(0.9).expect("non-empty");
        let p99 = h.quantile_interp_micros(0.99).expect("non-empty");
        // Uniform 0..1000: the true p50 is ~500, inside the [512, 1023]
        // bucket's lower half; interpolation must beat the coarse upper
        // edge (1023) by landing in the bucket's interior.
        assert!((256.0..1023.0).contains(&p50), "p50={p50}");
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotone");
        assert!(p99 <= 1023.0);
    }

    #[test]
    fn interpolated_quantile_single_value() {
        let mut h = LatencyHistogram::new();
        h.record(700);
        // One observation: every quantile is that observation (clamping
        // to [min, max] collapses the bucket's span).
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_interp_micros(q), Some(700.0));
        }
    }

    #[test]
    fn interpolated_quantile_empty_and_clamped() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_interp_micros(0.5), None);
        let mut h = LatencyHistogram::new();
        h.record(3);
        h.record(1000);
        // q outside [0, 1] clamps rather than panicking.
        assert_eq!(h.quantile_interp_micros(-1.0), Some(3.0));
        assert_eq!(h.quantile_interp_micros(2.0), Some(1000.0));
    }

    #[test]
    fn interpolated_quantile_extremes_are_exact() {
        // 4 and 7 share the [4, 7] bucket: without the short-circuit,
        // q = 0 would interpolate to the bucket interior, not min.
        let mut h = LatencyHistogram::new();
        h.record(4);
        h.record(7);
        assert_eq!(h.quantile_interp_micros(0.0), Some(4.0));
        assert_eq!(h.quantile_interp_micros(1.0), Some(7.0));
        for v in [1u64, 90, 3000] {
            h.record(v);
        }
        assert_eq!(h.quantile_interp_micros(0.0), Some(1.0));
        assert_eq!(h.quantile_interp_micros(1.0), Some(3000.0));
    }

    #[test]
    fn merge_with_empty_is_identity_in_both_directions() {
        let mut a = LatencyHistogram::new();
        a.record(12);
        a.record(900);
        let snapshot = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, snapshot);

        let mut empty = LatencyHistogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
        assert_eq!(empty.quantile_interp_micros(0.0), Some(12.0));

        let mut both = LatencyHistogram::new();
        both.merge(&LatencyHistogram::new());
        assert_eq!(both.count(), 0);
        assert_eq!(both.quantile_interp_micros(0.5), None);
    }

    #[test]
    fn merged_quantiles_span_disjoint_shards() {
        // Two shards with disjoint latency ranges: after the merge the
        // extreme quantiles come from different shards and the median
        // sits between them.
        let mut fast = LatencyHistogram::new();
        for v in 1..=100u64 {
            fast.record(v);
        }
        let mut slow = LatencyHistogram::new();
        for v in 10_000..=10_100u64 {
            slow.record(v);
        }
        fast.merge(&slow);
        assert_eq!(fast.quantile_interp_micros(0.0), Some(1.0));
        assert_eq!(fast.quantile_interp_micros(1.0), Some(10_100.0));
        let p50 = fast.quantile_interp_micros(0.5).expect("non-empty");
        assert!((100.0..=10_000.0).contains(&p50), "p50={p50}");
    }

    #[test]
    fn interpolated_quantile_merged_histograms_agree_with_direct() {
        let mut direct = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 0..500u64 {
            direct.record(v);
            a.record(v);
        }
        for v in 500..1000u64 {
            direct.record(v);
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, direct);
        assert_eq!(
            a.quantile_interp_micros(0.9),
            direct.quantile_interp_micros(0.9)
        );
    }
}
