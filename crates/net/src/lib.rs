//! # rstp-net — the real-time wire transport subsystem
//!
//! Everything else in this workspace studies the Real-Time Sequence
//! Transmission Problem inside a discrete-event simulator: abstract ticks,
//! an adversary picking step gaps in `[c1, c2]`, a channel automaton
//! delivering within `d`. This crate lifts the *same* protocol automata
//! onto real I/O and the wall clock:
//!
//! * [`wire`] — a versioned byte codec for protocol packets, with strict
//!   decode errors ([`wire::WireCodec`], [`wire::Frame`]).
//! * [`control`] — wire v3 node-to-node control frames (DRAIN /
//!   SNAPSHOT / REDIRECT) carrying the pair-wise session handover
//!   protocol between serve nodes ([`control::ControlFrame`]).
//! * [`transport`] — the [`transport::Transport`] trait
//!   (`send`/`poll_recv`/`local_stats`).
//! * [`mem`] — an in-process endpoint pair whose delivery threads enforce
//!   the bounded-delay-with-reorder channel `C(P)` in wall-clock time,
//!   with optional seeded loss/duplication mirroring the simulator's
//!   `Faulty` adversary.
//! * [`udp`] — the same endpoints over `std::net::UdpSocket`.
//! * [`clock`] / [`driver`] — a tick-to-`Instant` mapping and the
//!   real-time driver that schedules automaton steps inside `[c1, c2]`
//!   wall-clock windows, counting every deadline miss and timing
//!   violation instead of pretending the OS is ideal.
//! * [`session`] — whole-transfer orchestration
//!   ([`session::run_transfer_mem`], [`session::run_transmitter`],
//!   [`session::run_receiver`]) keyed by the simulator's
//!   `ProtocolKind`, so the simulator remains the oracle: the same input
//!   through `rstp-sim` and through a real transport must produce the
//!   same receiver output.
//! * [`histogram`] — log-bucketed per-packet latency accounting.
//!
//! The crate is std-only: no external I/O or async dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chan;
pub mod clock;
pub mod control;
pub mod driver;
pub mod error;
pub mod histogram;
pub mod mem;
pub mod session;
pub mod transport;
pub mod udp;
pub mod wire;

pub use chan::{
    ChannelConfig, ChannelSampler, DelayModel, ScriptedVerdicts, Verdict, VerdictSource,
};
pub use clock::TickClock;
pub use control::{
    decode_control, encode_control, ControlError, ControlFrame, ControlKind, CONTROL_HEADER_LEN,
    CONTROL_MAX_PAYLOAD, CONTROL_VERSION,
};
pub use driver::{run_endpoint, DriverConfig, DriverOutcome, DriverReport, Pace};
pub use error::NetError;
pub use histogram::LatencyHistogram;
pub use mem::MemTransport;
pub use session::{
    codec_for, run_receiver, run_transfer_mem, run_transfer_mem_scripted, run_transmitter,
    wire_identity, TransferConfig, TransferReport,
};
pub use transport::{Transport, TransportStats};
pub use udp::UdpTransport;
pub use wire::{
    decode_any, peek_session, Frame, FrameBuf, ProtocolId, WireCodec, WireError, FLAG_SESSION,
    FRAME_BUF_CAP, FRAME_LEN, FRAME_LEN_V2, WIRE_VERSION,
};
