//! Error types of the wire transport subsystem.

use crate::wire::WireError;
use core::fmt;

/// A failure in the transport layer or the real-time driver.
#[derive(Debug)]
pub enum NetError {
    /// Frame encoding or decoding failed.
    Wire(WireError),
    /// A socket or channel operation failed.
    Io(std::io::Error),
    /// The in-process channel's peer endpoint is gone.
    Disconnected,
    /// Protocol construction failed.
    Protocol(rstp_core::ProtocolError),
    /// The requested protocol cannot run over this subsystem.
    Unsupported {
        /// Human-readable reason.
        what: String,
    },
    /// The driven automaton rejected an action the driver believed
    /// applicable — a model bug, mirroring `rstp_sim::SimError::Automaton`.
    Automaton {
        /// Rendered step error.
        what: String,
    },
    /// More than one local action was enabled at a step (the protocols of
    /// the paper are deterministic; this is a model bug).
    Determinism {
        /// Debug renderings of the enabled actions.
        enabled: Vec<String>,
    },
    /// A transfer thread panicked or could not be joined.
    Thread {
        /// Which side failed.
        what: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire codec: {e}"),
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Disconnected => f.write_str("transport peer disconnected"),
            NetError::Protocol(e) => write!(f, "protocol construction: {e}"),
            NetError::Unsupported { what } => write!(f, "unsupported: {what}"),
            NetError::Automaton { what } => write!(f, "automaton rejected a step: {what}"),
            NetError::Determinism { enabled } => write!(
                f,
                "{} local actions enabled simultaneously: {enabled:?}",
                enabled.len()
            ),
            NetError::Thread { what } => write!(f, "transfer thread: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<rstp_core::ProtocolError> for NetError {
    fn from(e: rstp_core::ProtocolError) -> Self {
        NetError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_layer() {
        let e = NetError::Disconnected;
        assert!(e.to_string().contains("disconnected"));
        let e = NetError::Unsupported {
            what: "beta-window".into(),
        };
        assert!(e.to_string().contains("beta-window"));
        let e = NetError::Determinism {
            enabled: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("2 local actions"));
    }
}
