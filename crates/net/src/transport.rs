//! The [`Transport`] abstraction: a one-packet-at-a-time bidirectional
//! endpoint the real-time driver sends and receives frames through.

use crate::error::NetError;
use crate::wire::Frame;
use rstp_core::Packet;

/// Counters every transport endpoint keeps about its own traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames encoded and handed to the underlying channel.
    pub frames_sent: u64,
    /// Frames decoded successfully and surfaced to the driver.
    pub frames_received: u64,
    /// Datagrams that failed strict decoding and were dropped.
    pub decode_errors: u64,
    /// Frames the channel model deliberately dropped (in-process
    /// transports only; a UDP endpoint cannot observe network loss).
    pub injected_losses: u64,
    /// Extra deliveries created by the channel model's duplication fault.
    pub injected_duplicates: u64,
}

/// A bidirectional frame pipe between one protocol endpoint and its peer.
///
/// Implementations must be non-blocking on the receive side: the driver
/// polls between automaton steps and must never stall past its `[c1, c2]`
/// window waiting for traffic.
pub trait Transport {
    /// Encodes `packet` and hands it to the channel. `sent_at_micros` is
    /// the sender's clock reading, embedded in the frame for latency
    /// accounting at the receiver.
    fn send(&mut self, packet: Packet, sent_at_micros: u64) -> Result<(), NetError>;

    /// Returns the next frame the channel has delivered, or `None` when no
    /// frame is currently available. Must not block.
    fn poll_recv(&mut self) -> Result<Option<Frame>, NetError>;

    /// This endpoint's traffic counters.
    fn local_stats(&self) -> TransportStats;
}
