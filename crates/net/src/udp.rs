//! UDP transport over `std::net::UdpSocket`.
//!
//! Unlike [`MemTransport`](crate::mem::MemTransport), a UDP endpoint does
//! not model the channel — the network *is* the channel. On loopback, real
//! delays are far below any practical delay bound `d`, so the channel
//! axioms hold trivially; across hosts the operator must pick `d` (and the
//! tick duration) large enough to cover the actual network. Datagrams that
//! fail strict decoding are counted and skipped rather than surfaced,
//! because an open socket can legitimately receive foreign traffic.

use crate::error::NetError;
use crate::transport::{Transport, TransportStats};
use crate::wire::{Frame, WireCodec, FRAME_LEN};
use rstp_core::Packet;
use std::io::ErrorKind;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};

/// A protocol endpoint bound to a UDP socket.
#[derive(Debug)]
pub struct UdpTransport {
    codec: WireCodec,
    socket: UdpSocket,
    peer: SocketAddr,
    seq: u64,
    frames_sent: u64,
    frames_received: u64,
    decode_errors: u64,
}

impl UdpTransport {
    /// Binds `local` and fixes `peer` as the only accepted correspondent.
    /// The socket is non-blocking so [`Transport::poll_recv`] never stalls
    /// the real-time driver.
    pub fn bind(
        codec: WireCodec,
        local: impl ToSocketAddrs,
        peer: impl ToSocketAddrs,
    ) -> Result<Self, NetError> {
        let socket = UdpSocket::bind(local)?;
        let peer = peer
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "empty peer address"))?;
        socket.set_nonblocking(true)?;
        Ok(UdpTransport {
            codec,
            socket,
            peer,
            seq: 0,
            frames_sent: 0,
            frames_received: 0,
            decode_errors: 0,
        })
    }

    /// A loopback pair on ephemeral ports, for tests and benchmarks.
    pub fn loopback_pair(codec: WireCodec) -> Result<(UdpTransport, UdpTransport), NetError> {
        let a_sock = UdpSocket::bind("127.0.0.1:0")?;
        let b_sock = UdpSocket::bind("127.0.0.1:0")?;
        let a_addr = a_sock.local_addr()?;
        let b_addr = b_sock.local_addr()?;
        a_sock.set_nonblocking(true)?;
        b_sock.set_nonblocking(true)?;
        let a = UdpTransport {
            codec,
            socket: a_sock,
            peer: b_addr,
            seq: 0,
            frames_sent: 0,
            frames_received: 0,
            decode_errors: 0,
        };
        let b = UdpTransport {
            codec,
            socket: b_sock,
            peer: a_addr,
            seq: 0,
            frames_sent: 0,
            frames_received: 0,
            decode_errors: 0,
        };
        Ok((a, b))
    }

    /// The address this endpoint is bound to.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.socket.local_addr()?)
    }

    /// The peer this endpoint sends to and accepts datagrams from.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, packet: Packet, sent_at_micros: u64) -> Result<(), NetError> {
        let buf = self.codec.encode(packet, self.seq, sent_at_micros);
        self.seq += 1;
        self.socket.send_to(&buf, self.peer)?;
        self.frames_sent += 1;
        Ok(())
    }

    fn poll_recv(&mut self) -> Result<Option<Frame>, NetError> {
        // Read slightly more than a frame so oversized datagrams are
        // detected as TrailingBytes instead of silently truncated.
        let mut buf = [0u8; FRAME_LEN + 16];
        loop {
            match self.socket.recv_from(&mut buf) {
                Ok((n, from)) => {
                    if from != self.peer {
                        // Foreign traffic on an open socket: not ours.
                        self.decode_errors += 1;
                        continue;
                    }
                    match self.codec.decode(&buf[..n]) {
                        Ok(frame) => {
                            self.frames_received += 1;
                            return Ok(Some(frame));
                        }
                        Err(_) => {
                            self.decode_errors += 1;
                            continue;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn local_stats(&self) -> TransportStats {
        TransportStats {
            frames_sent: self.frames_sent,
            frames_received: self.frames_received,
            decode_errors: self.decode_errors,
            injected_losses: 0,
            injected_duplicates: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ProtocolId;
    use std::thread;
    use std::time::{Duration, Instant};

    fn codec() -> WireCodec {
        WireCodec::new(ProtocolId::Alpha, 0).expect("k fits")
    }

    fn drain(t: &mut UdpTransport, want: usize, budget: Duration) -> Vec<Frame> {
        let deadline = Instant::now() + budget;
        let mut out = Vec::new();
        while out.len() < want && Instant::now() < deadline {
            match t.poll_recv().expect("poll") {
                Some(f) => out.push(f),
                None => thread::sleep(Duration::from_micros(200)),
            }
        }
        out
    }

    #[test]
    fn loopback_pair_exchanges_frames() {
        let (mut a, mut b) = UdpTransport::loopback_pair(codec()).expect("pair");
        a.send(Packet::Data(7), 1).expect("send");
        b.send(Packet::Ack(7), 2).expect("send");
        let at_b = drain(&mut b, 1, Duration::from_secs(1));
        let at_a = drain(&mut a, 1, Duration::from_secs(1));
        assert_eq!(at_b[0].packet, Packet::Data(7));
        assert_eq!(at_a[0].packet, Packet::Ack(7));
        assert_eq!(a.local_stats().frames_sent, 1);
        assert_eq!(a.local_stats().frames_received, 1);
    }

    #[test]
    fn poll_recv_is_nonblocking_when_idle() {
        let (mut a, _b) = UdpTransport::loopback_pair(codec()).expect("pair");
        let start = Instant::now();
        assert!(a.poll_recv().expect("poll").is_none());
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn malformed_datagrams_are_counted_and_skipped() {
        let (mut a, b) = UdpTransport::loopback_pair(codec()).expect("pair");
        let raw = UdpSocket::bind("127.0.0.1:0").expect("bind");
        // Garbage from the peer's own port is required to even reach the
        // decoder, so impersonate corruption by sending from b's socket.
        b.socket
            .send_to(
                &[0xde, 0xad, 0xbe, 0xef],
                a.local_addr().expect("addr").to_string(),
            )
            .expect("send raw");
        // Foreign traffic from an unrelated socket is also ignored.
        raw.send_to(&[0u8; FRAME_LEN], a.local_addr().expect("addr").to_string())
            .expect("send foreign");
        let deadline = Instant::now() + Duration::from_secs(1);
        while a.local_stats().decode_errors < 2 && Instant::now() < deadline {
            assert!(a
                .poll_recv()
                .expect("poll never fails on garbage")
                .is_none());
            thread::sleep(Duration::from_micros(200));
        }
        assert_eq!(a.local_stats().decode_errors, 2);
        assert_eq!(a.local_stats().frames_received, 0);
    }
}
