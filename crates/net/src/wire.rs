//! Versioned wire codec for RSTP protocol packets.
//!
//! The simulator moves `rstp_core::Packet` values through an abstract
//! channel; this module gives those packets a concrete byte layout so they
//! can cross a real transport (an in-process channel or a UDP socket).
//!
//! # Frame layout (36 bytes, all integers big-endian)
//!
//! | offset | size | field            | notes                                   |
//! |-------:|-----:|------------------|-----------------------------------------|
//! | 0      | 2    | magic            | `0x5254` (`"RT"`)                       |
//! | 2      | 1    | version          | [`WIRE_VERSION`]                        |
//! | 3      | 1    | protocol id      | [`ProtocolId`] discriminant             |
//! | 4      | 2    | k                | burst parameter of the sender (0 = n/a) |
//! | 6      | 1    | kind             | 0 = data, 1 = ack                       |
//! | 7      | 1    | flags            | extension bits, see below               |
//! | 8      | 8    | symbol           | packet symbol (multiset element / seq)  |
//! | 16     | 8    | seq              | per-endpoint send counter               |
//! | 24     | 8    | sent\_at\_micros | sender clock at send, microseconds      |
//! | 32     | 4    | checksum         | FNV-1a over bytes `0..32`               |
//!
//! # Frame v2: the session-id extension (40 bytes)
//!
//! Multi-session servers ([`rstp-serve`]) multiplex many transfers over
//! one socket and need each frame to name its session. Setting
//! [`FLAG_SESSION`] in the flags byte inserts a 32-bit session id between
//! the fixed body and the checksum:
//!
//! | offset | size | field      | notes                               |
//! |-------:|-----:|------------|-------------------------------------|
//! | 0..32  |      | as v1      | identical byte-for-byte             |
//! | 32     | 4    | session id | [`rstp_core::SessionId`], big-endian |
//! | 36     | 4    | checksum   | FNV-1a over bytes `0..36`           |
//!
//! Compatibility is strict in both directions: a frame with `flags = 0`
//! is exactly a v1 frame (same bytes, same checksum coverage — pinned by
//! a golden test), and any flag bit other than [`FLAG_SESSION`] is
//! rejected, so future extensions cannot be silently misparsed. The
//! version byte stays [`WIRE_VERSION`]: the extension changes the frame
//! *shape*, not the protocol semantics.
//!
//! Decoding is strict: any malformed frame yields a typed [`WireError`];
//! no input may panic the decoder. The `symbol` field is the paper's
//! packet alphabet value — protocols draw it from `{0, …, µ-1}` (data)
//! or echo it back (acks) — and `seq`/`sent_at_micros`/session id are
//! transport metadata used for latency accounting and demultiplexing,
//! invisible to the automata.
//!
//! [`rstp-serve`]: https://docs.rs/rstp-serve

use core::fmt;
use rstp_core::{Packet, SessionId};

/// Current wire protocol version.
pub const WIRE_VERSION: u8 = 1;

/// Leading magic bytes of every frame (`"RT"`).
pub const WIRE_MAGIC: u16 = 0x5254;

/// Encoded v1 frame length in bytes.
pub const FRAME_LEN: usize = 36;

/// Encoded length of a frame carrying the session-id extension.
pub const FRAME_LEN_V2: usize = FRAME_LEN + 4;

/// Flags bit marking the session-id extension (frame v2).
pub const FLAG_SESSION: u8 = 0x01;

/// Largest `k` representable in the 16-bit header field.
pub const MAX_WIRE_K: u64 = u16::MAX as u64;

/// Identifies which protocol family produced a frame, so endpoints can
/// reject cross-protocol traffic instead of misinterpreting symbols.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ProtocolId {
    /// Protocol A^alpha (Fig. 1).
    Alpha = 1,
    /// Protocol A^beta(k) (Fig. 3).
    Beta = 2,
    /// Protocol A^gamma(k) (Fig. 4).
    Gamma = 3,
    /// Alternating-bit baseline.
    AltBit = 4,
    /// Framed burst variant.
    Framed = 5,
    /// Stenning baseline.
    Stenning = 6,
    /// Pipelined windowed variant.
    Pipelined = 7,
    /// Self-stabilizing Stenning (tags mod 4, flush/sync recovery).
    StabStenning = 8,
    /// Self-stabilizing A^beta(k) (lengthened silence, gap-reset framing).
    StabBeta = 9,
}

impl ProtocolId {
    /// All defined protocol identifiers.
    pub const ALL: [ProtocolId; 9] = [
        ProtocolId::Alpha,
        ProtocolId::Beta,
        ProtocolId::Gamma,
        ProtocolId::AltBit,
        ProtocolId::Framed,
        ProtocolId::Stenning,
        ProtocolId::Pipelined,
        ProtocolId::StabStenning,
        ProtocolId::StabBeta,
    ];

    fn from_byte(b: u8) -> Option<ProtocolId> {
        ProtocolId::ALL.into_iter().find(|p| *p as u8 == b)
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProtocolId::Alpha => "alpha",
            ProtocolId::Beta => "beta",
            ProtocolId::Gamma => "gamma",
            ProtocolId::AltBit => "altbit",
            ProtocolId::Framed => "framed",
            ProtocolId::Stenning => "stenning",
            ProtocolId::Pipelined => "pipelined",
            ProtocolId::StabStenning => "stab-stenning",
            ProtocolId::StabBeta => "stab-beta",
        };
        f.write_str(name)
    }
}

/// A decoded wire frame: one protocol packet plus transport metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Protocol family that produced the packet.
    pub protocol: ProtocolId,
    /// Burst parameter the sender was configured with (0 when unused).
    pub k: u16,
    /// The protocol packet itself.
    pub packet: Packet,
    /// Per-endpoint monotone send counter.
    pub seq: u64,
    /// Sender clock at send time, in microseconds since its epoch.
    pub sent_at_micros: u64,
    /// Session id carried by the v2 extension, `None` for v1 frames.
    pub session: Option<SessionId>,
}

/// Strict decode failures. Every variant names the first check that failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the frame's shape requires: below [`FRAME_LEN`]
    /// for any frame, below [`FRAME_LEN_V2`] when [`FLAG_SESSION`] is set.
    TooShort {
        /// Bytes actually available.
        got: usize,
    },
    /// More bytes than the frame's shape allows: datagram transports
    /// deliver whole frames, so trailing bytes mean corruption or a
    /// foreign sender.
    TrailingBytes {
        /// Bytes actually available.
        got: usize,
    },
    /// Leading magic differs from [`WIRE_MAGIC`].
    BadMagic {
        /// Magic observed on the wire.
        got: u16,
    },
    /// Version byte differs from [`WIRE_VERSION`].
    UnsupportedVersion {
        /// Version observed on the wire.
        got: u8,
    },
    /// Protocol id byte matches no [`ProtocolId`].
    UnknownProtocol {
        /// Id observed on the wire.
        got: u8,
    },
    /// Kind byte is neither 0 (data) nor 1 (ack).
    BadKind {
        /// Kind observed on the wire.
        got: u8,
    },
    /// Flags byte has bits set outside the known extensions
    /// (currently only [`FLAG_SESSION`]).
    NonZeroFlags {
        /// Flags observed on the wire.
        got: u8,
    },
    /// Stored checksum disagrees with the recomputed one.
    BadChecksum {
        /// Checksum observed on the wire.
        got: u32,
        /// Checksum recomputed over the header and body.
        want: u32,
    },
    /// Frame decodes cleanly but belongs to a different protocol or `k`
    /// than this endpoint is running.
    ProtocolMismatch {
        /// Protocol announced by the frame.
        got: ProtocolId,
        /// Protocol this endpoint runs.
        want: ProtocolId,
    },
    /// Encode-side failure: `k` exceeds [`MAX_WIRE_K`].
    KTooLarge {
        /// Requested burst parameter.
        k: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TooShort { got } => {
                write!(f, "frame too short: {got} bytes, need at least {FRAME_LEN}")
            }
            WireError::TrailingBytes { got } => {
                write!(
                    f,
                    "frame too long: {got} bytes, expected {FRAME_LEN} or {FRAME_LEN_V2}"
                )
            }
            WireError::BadMagic { got } => {
                write!(f, "bad magic {got:#06x}, expected {WIRE_MAGIC:#06x}")
            }
            WireError::UnsupportedVersion { got } => {
                write!(f, "unsupported wire version {got}, expected {WIRE_VERSION}")
            }
            WireError::UnknownProtocol { got } => write!(f, "unknown protocol id {got}"),
            WireError::BadKind { got } => write!(f, "bad packet kind {got}, expected 0 or 1"),
            WireError::NonZeroFlags { got } => {
                write!(f, "flags byte {got:#04x} has unknown extension bits set")
            }
            WireError::BadChecksum { got, want } => {
                write!(
                    f,
                    "checksum mismatch: stored {got:#010x}, computed {want:#010x}"
                )
            }
            WireError::ProtocolMismatch { got, want } => {
                write!(f, "frame is for protocol {got}, endpoint runs {want}")
            }
            WireError::KTooLarge { k } => {
                write!(f, "burst parameter {k} exceeds wire maximum {MAX_WIRE_K}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encoder/decoder bound to one protocol family and burst parameter.
///
/// Binding the codec to `(protocol, k)` lets [`WireCodec::decode`] enforce
/// that both endpoints agree on the protocol before any symbol reaches an
/// automaton.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireCodec {
    protocol: ProtocolId,
    k: u16,
}

impl WireCodec {
    /// Creates a codec for `protocol` with burst parameter `k`.
    ///
    /// Protocols without a burst parameter (alpha, altbit, stenning) pass
    /// `k = 0`.
    pub fn new(protocol: ProtocolId, k: u64) -> Result<Self, WireError> {
        if k > MAX_WIRE_K {
            return Err(WireError::KTooLarge { k });
        }
        Ok(WireCodec {
            protocol,
            k: k as u16,
        })
    }

    /// The protocol this codec is bound to.
    pub fn protocol(&self) -> ProtocolId {
        self.protocol
    }

    /// The burst parameter this codec is bound to.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Encodes `packet` with transport metadata into a fresh v1 frame
    /// buffer (no session extension).
    pub fn encode(&self, packet: Packet, seq: u64, sent_at_micros: u64) -> [u8; FRAME_LEN] {
        let mut buf = [0u8; FRAME_LEN];
        self.fill_body(&mut buf, packet, seq, sent_at_micros, 0);
        let sum = fnv1a(&buf[0..32]);
        buf[32..36].copy_from_slice(&sum.to_be_bytes());
        buf
    }

    /// Encodes `packet` into a v2 frame carrying `session` (sets
    /// [`FLAG_SESSION`]; the checksum covers the extension).
    pub fn encode_with_session(
        &self,
        packet: Packet,
        seq: u64,
        sent_at_micros: u64,
        session: SessionId,
    ) -> [u8; FRAME_LEN_V2] {
        let mut buf = [0u8; FRAME_LEN_V2];
        self.fill_body(&mut buf, packet, seq, sent_at_micros, FLAG_SESSION);
        buf[32..36].copy_from_slice(&session.raw().to_be_bytes());
        let sum = fnv1a(&buf[0..36]);
        buf[36..40].copy_from_slice(&sum.to_be_bytes());
        buf
    }

    /// Writes the 32-byte fixed body shared by both frame shapes.
    fn fill_body(&self, buf: &mut [u8], packet: Packet, seq: u64, sent_at_micros: u64, flags: u8) {
        let (kind, symbol) = match packet {
            Packet::Data(s) => (0u8, s),
            Packet::Ack(s) => (1u8, s),
        };
        buf[0..2].copy_from_slice(&WIRE_MAGIC.to_be_bytes());
        buf[2] = WIRE_VERSION;
        buf[3] = self.protocol as u8;
        buf[4..6].copy_from_slice(&self.k.to_be_bytes());
        buf[6] = kind;
        buf[7] = flags;
        buf[8..16].copy_from_slice(&symbol.to_be_bytes());
        buf[16..24].copy_from_slice(&seq.to_be_bytes());
        buf[24..32].copy_from_slice(&sent_at_micros.to_be_bytes());
    }

    /// Decodes one frame, enforcing structure, checksum, and protocol
    /// agreement. Never panics on any input.
    pub fn decode(&self, bytes: &[u8]) -> Result<Frame, WireError> {
        let frame = decode_any(bytes)?;
        if frame.protocol != self.protocol || frame.k != self.k {
            return Err(WireError::ProtocolMismatch {
                got: frame.protocol,
                want: self.protocol,
            });
        }
        Ok(frame)
    }
}

/// Decodes a frame without checking which protocol it belongs to.
///
/// Used by diagnostic tooling; endpoints should prefer
/// [`WireCodec::decode`], which also verifies protocol agreement.
pub fn decode_any(bytes: &[u8]) -> Result<Frame, WireError> {
    if bytes.len() < FRAME_LEN {
        return Err(WireError::TooShort { got: bytes.len() });
    }
    let magic = u16::from_be_bytes([bytes[0], bytes[1]]);
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    if bytes[2] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { got: bytes[2] });
    }
    let protocol =
        ProtocolId::from_byte(bytes[3]).ok_or(WireError::UnknownProtocol { got: bytes[3] })?;
    let k = u16::from_be_bytes([bytes[4], bytes[5]]);
    let kind = bytes[6];
    if kind > 1 {
        return Err(WireError::BadKind { got: kind });
    }
    let flags = bytes[7];
    if flags & !FLAG_SESSION != 0 {
        return Err(WireError::NonZeroFlags { got: flags });
    }
    let expected_len = if flags & FLAG_SESSION != 0 {
        FRAME_LEN_V2
    } else {
        FRAME_LEN
    };
    if bytes.len() < expected_len {
        return Err(WireError::TooShort { got: bytes.len() });
    }
    if bytes.len() > expected_len {
        return Err(WireError::TrailingBytes { got: bytes.len() });
    }
    let body_len = expected_len - 4;
    let too_short = || WireError::TooShort { got: bytes.len() };
    let stored = u32::from_be_bytes(read_array(bytes, body_len).ok_or_else(too_short)?);
    let computed = fnv1a(bytes.get(0..body_len).ok_or_else(too_short)?);
    if stored != computed {
        return Err(WireError::BadChecksum {
            got: stored,
            want: computed,
        });
    }
    let symbol = u64::from_be_bytes(read_array(bytes, 8).ok_or_else(too_short)?);
    let seq = u64::from_be_bytes(read_array(bytes, 16).ok_or_else(too_short)?);
    let sent_at_micros = u64::from_be_bytes(read_array(bytes, 24).ok_or_else(too_short)?);
    let session = if flags & FLAG_SESSION != 0 {
        let raw = u32::from_be_bytes(read_array(bytes, 32).ok_or_else(too_short)?);
        Some(SessionId::new(raw))
    } else {
        None
    };
    let packet = if kind == 0 {
        Packet::Data(symbol)
    } else {
        Packet::Ack(symbol)
    };
    Ok(Frame {
        protocol,
        k,
        packet,
        seq,
        sent_at_micros,
        session,
    })
}

/// Extracts the session id from a v2 frame's fixed offset *without*
/// validating the checksum or any other field beyond the minimum needed
/// to locate it (length, magic, and [`FLAG_SESSION`]).
///
/// This exists for the server's hot demultiplexing path, where the frame
/// will be fully decoded (and checksum-verified) by the owning shard; a
/// frame whose id lies about its session is caught there, never acted on
/// here. Returns `None` for v1 frames and anything malformed.
#[must_use]
pub fn peek_session(bytes: &[u8]) -> Option<SessionId> {
    if bytes.len() != FRAME_LEN_V2 {
        return None;
    }
    if u16::from_be_bytes([bytes[0], bytes[1]]) != WIRE_MAGIC {
        return None;
    }
    if bytes[7] & FLAG_SESSION == 0 {
        return None;
    }
    let raw = u32::from_be_bytes(read_array(bytes, 32)?);
    Some(SessionId::new(raw))
}

/// Copies `N` bytes starting at `off` into a fixed array, or `None` when
/// the input is too short. The checked replacement for
/// `bytes[off..off + N].try_into().expect(..)`: every read in the decode
/// path goes through here so no input length can reach a panic.
fn read_array<const N: usize>(bytes: &[u8], off: usize) -> Option<[u8; N]> {
    let src = bytes.get(off..off.checked_add(N)?)?;
    let mut out = [0u8; N];
    out.copy_from_slice(src);
    Some(out)
}

/// Capacity of a [`FrameBuf`]: the v2 frame length plus slack so a
/// slightly-oversized datagram still fits and can be carried to the
/// owning shard for triage (where [`decode_any`] rejects it with
/// [`WireError::TrailingBytes`]) instead of being silently dropped at
/// the socket.
pub const FRAME_BUF_CAP: usize = FRAME_LEN_V2 + 16;

/// A fixed-capacity, inline byte buffer holding one (possibly
/// malformed) wire frame.
///
/// Serve's per-frame ingress/egress loops move every received datagram
/// through a channel to a shard and back out to an egress sink; doing
/// that with `Vec<u8>` costs one heap allocation per frame per hop.
/// `FrameBuf` is `Copy` — frames move by memcpy of at most
/// [`FRAME_BUF_CAP`] bytes, so the steady-state path allocates nothing.
///
/// Anything longer than the capacity is *not* a frame (the wire format
/// tops out at [`FRAME_LEN_V2`]); [`FrameBuf::from_slice`] refuses it
/// and transports count it as a drop, exactly as they would any other
/// unparseable input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameBuf {
    len: u8,
    buf: [u8; FRAME_BUF_CAP],
}

impl FrameBuf {
    /// Wraps `bytes`, or `None` when they exceed [`FRAME_BUF_CAP`].
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Option<FrameBuf> {
        let mut buf = [0u8; FRAME_BUF_CAP];
        let dst = buf.get_mut(..bytes.len())?;
        dst.copy_from_slice(bytes);
        Some(FrameBuf {
            len: bytes.len() as u8,
            buf,
        })
    }

    /// The wrapped bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        self.buf.get(..usize::from(self.len)).unwrap_or(&[])
    }

    /// Length of the wrapped bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True when the buffer holds no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl From<[u8; FRAME_LEN]> for FrameBuf {
    fn from(frame: [u8; FRAME_LEN]) -> FrameBuf {
        let mut buf = [0u8; FRAME_BUF_CAP];
        buf[..FRAME_LEN].copy_from_slice(&frame);
        FrameBuf {
            len: FRAME_LEN as u8,
            buf,
        }
    }
}

impl From<[u8; FRAME_LEN_V2]> for FrameBuf {
    fn from(frame: [u8; FRAME_LEN_V2]) -> FrameBuf {
        let mut buf = [0u8; FRAME_BUF_CAP];
        buf[..FRAME_LEN_V2].copy_from_slice(&frame);
        FrameBuf {
            len: FRAME_LEN_V2 as u8,
            buf,
        }
    }
}

impl std::ops::Deref for FrameBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for FrameBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// 32-bit FNV-1a over `bytes`. Shared with the v3 control-frame codec
/// (`crate::control`) so both frame families agree on one checksum.
pub(crate) fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> WireCodec {
        WireCodec::new(ProtocolId::Beta, 4).expect("k fits")
    }

    #[test]
    fn round_trips_data_and_ack() {
        let c = codec();
        for packet in [Packet::Data(17), Packet::Ack(0), Packet::Data(u64::MAX)] {
            let buf = c.encode(packet, 9, 123_456);
            let frame = c.decode(&buf).expect("round trip");
            assert_eq!(frame.packet, packet);
            assert_eq!(frame.seq, 9);
            assert_eq!(frame.sent_at_micros, 123_456);
            assert_eq!(frame.protocol, ProtocolId::Beta);
            assert_eq!(frame.k, 4);
        }
    }

    #[test]
    fn rejects_short_and_long_frames() {
        let c = codec();
        let buf = c.encode(Packet::Data(1), 0, 0);
        assert_eq!(
            c.decode(&buf[..FRAME_LEN - 1]),
            Err(WireError::TooShort { got: FRAME_LEN - 1 })
        );
        let mut long = buf.to_vec();
        long.push(0);
        assert_eq!(
            c.decode(&long),
            Err(WireError::TrailingBytes { got: FRAME_LEN + 1 })
        );
    }

    #[test]
    fn rejects_corrupted_header_fields() {
        let c = codec();
        let good = c.encode(Packet::Data(1), 0, 0);

        let mut bad = good;
        bad[0] = 0xff;
        assert!(matches!(c.decode(&bad), Err(WireError::BadMagic { .. })));

        let mut bad = good;
        bad[2] = WIRE_VERSION + 1;
        assert!(matches!(
            c.decode(&bad),
            Err(WireError::UnsupportedVersion { .. })
        ));

        let mut bad = good;
        bad[3] = 0;
        // checksum is recomputed below the protocol-id check, so fix it up
        // to prove UnknownProtocol fires before ProtocolMismatch.
        let sum = fnv1a(&bad[0..32]);
        bad[32..36].copy_from_slice(&sum.to_be_bytes());
        assert!(matches!(
            c.decode(&bad),
            Err(WireError::UnknownProtocol { .. })
        ));

        let mut bad = good;
        bad[6] = 2;
        assert!(matches!(c.decode(&bad), Err(WireError::BadKind { .. })));

        let mut bad = good;
        bad[7] = 0x80;
        assert!(matches!(
            c.decode(&bad),
            Err(WireError::NonZeroFlags { .. })
        ));
    }

    #[test]
    fn rejects_flipped_body_bits_via_checksum() {
        let c = codec();
        let good = c.encode(Packet::Data(0b1010), 3, 77);
        for offset in 8..32 {
            let mut bad = good;
            bad[offset] ^= 0x01;
            assert!(
                matches!(c.decode(&bad), Err(WireError::BadChecksum { .. })),
                "bit flip at offset {offset} must fail the checksum"
            );
        }
    }

    #[test]
    fn rejects_cross_protocol_frames() {
        let beta = codec();
        let gamma = WireCodec::new(ProtocolId::Gamma, 4).expect("k fits");
        let buf = gamma.encode(Packet::Ack(2), 0, 0);
        assert_eq!(
            beta.decode(&buf),
            Err(WireError::ProtocolMismatch {
                got: ProtocolId::Gamma,
                want: ProtocolId::Beta,
            })
        );
        // Same protocol but different k is also a mismatch.
        let beta8 = WireCodec::new(ProtocolId::Beta, 8).expect("k fits");
        let buf = beta8.encode(Packet::Data(1), 0, 0);
        assert!(matches!(
            beta.decode(&buf),
            Err(WireError::ProtocolMismatch { .. })
        ));
    }

    #[test]
    fn k_too_large_is_an_encode_error() {
        assert_eq!(
            WireCodec::new(ProtocolId::Beta, MAX_WIRE_K + 1),
            Err(WireError::KTooLarge { k: MAX_WIRE_K + 1 })
        );
    }

    #[test]
    fn decode_any_accepts_every_protocol_id() {
        for id in ProtocolId::ALL {
            let c = WireCodec::new(id, 0).expect("k fits");
            let buf = c.encode(Packet::Data(5), 1, 2);
            let frame = decode_any(&buf).expect("structurally valid");
            assert_eq!(frame.protocol, id);
        }
    }

    /// Golden test: the exact bytes of a v1 frame are pinned, so no codec
    /// change (including the v2 extension) can silently alter the layout
    /// existing peers depend on. If this test fails, the wire format broke.
    #[test]
    fn v1_frame_bytes_are_pinned() {
        let c = WireCodec::new(ProtocolId::Beta, 4).expect("k fits");
        let buf = c.encode(
            Packet::Data(0x0102_0304_0506_0708),
            0x1122,
            0x0055_6677_8899_AABB,
        );
        let expected: [u8; FRAME_LEN] = [
            0x52, 0x54, // magic "RT"
            0x01, // version
            0x02, // protocol id: beta
            0x00, 0x04, // k = 4
            0x00, // kind = data
            0x00, // flags = 0 (v1)
            0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, // symbol
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x11, 0x22, // seq
            0x00, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, // sent_at_micros
            0x3F, 0x17, 0x82, 0x7F, // FNV-1a over bytes 0..32
        ];
        assert_eq!(buf, expected, "v1 wire layout must never change");
        // And those pinned bytes decode to exactly the original frame.
        let frame = decode_any(&expected).expect("pinned v1 frame decodes");
        assert_eq!(
            frame,
            Frame {
                protocol: ProtocolId::Beta,
                k: 4,
                packet: Packet::Data(0x0102_0304_0506_0708),
                seq: 0x1122,
                sent_at_micros: 0x0055_6677_8899_AABB,
                session: None,
            }
        );
    }

    #[test]
    fn v2_round_trips_session_id() {
        let c = codec();
        for raw in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            let sid = SessionId::new(raw);
            let buf = c.encode_with_session(Packet::Ack(3), 7, 99, sid);
            assert_eq!(buf.len(), FRAME_LEN_V2);
            assert_eq!(buf[7], FLAG_SESSION);
            let frame = c.decode(&buf).expect("v2 round trip");
            assert_eq!(frame.session, Some(sid));
            assert_eq!(frame.packet, Packet::Ack(3));
            assert_eq!(frame.seq, 7);
            assert_eq!(frame.sent_at_micros, 99);
        }
    }

    #[test]
    fn v2_first_32_bytes_match_v1() {
        // The extension inserts after the fixed body: a v2 frame's first
        // 32 bytes are byte-for-byte the v1 encoding of the same packet.
        let c = codec();
        let v1 = c.encode(Packet::Data(42), 5, 1000);
        let v2 = c.encode_with_session(Packet::Data(42), 5, 1000, SessionId::new(9));
        assert_eq!(v1[0..7], v2[0..7]);
        assert_eq!(v1[8..32], v2[8..32]);
        assert_eq!(v2[32..36], 9u32.to_be_bytes());
    }

    #[test]
    fn v2_rejects_truncation_and_trailing() {
        let c = codec();
        let buf = c.encode_with_session(Packet::Data(1), 0, 0, SessionId::new(7));
        // A v2 frame truncated to v1 length: the flag promises 40 bytes.
        assert_eq!(
            decode_any(&buf[..FRAME_LEN]),
            Err(WireError::TooShort { got: FRAME_LEN })
        );
        let mut long = buf.to_vec();
        long.push(0);
        assert_eq!(
            decode_any(&long),
            Err(WireError::TrailingBytes {
                got: FRAME_LEN_V2 + 1
            })
        );
    }

    #[test]
    fn v2_checksum_covers_session_id() {
        let c = codec();
        let good = c.encode_with_session(Packet::Data(1), 0, 0, SessionId::new(0x01020304));
        for offset in 32..36 {
            let mut bad = good;
            bad[offset] ^= 0x01;
            assert!(
                matches!(decode_any(&bad), Err(WireError::BadChecksum { .. })),
                "session-id bit flip at offset {offset} must fail the checksum"
            );
        }
    }

    #[test]
    fn unknown_flag_bits_rejected_even_with_session_bit() {
        let c = codec();
        let mut buf = c
            .encode_with_session(Packet::Data(1), 0, 0, SessionId::new(1))
            .to_vec();
        buf[7] = FLAG_SESSION | 0x02;
        let sum = fnv1a(&buf[0..36]);
        buf[36..40].copy_from_slice(&sum.to_be_bytes());
        assert_eq!(
            decode_any(&buf),
            Err(WireError::NonZeroFlags {
                got: FLAG_SESSION | 0x02
            })
        );
    }

    #[test]
    fn peek_session_reads_v2_only() {
        let c = codec();
        let v2 = c.encode_with_session(Packet::Data(1), 0, 0, SessionId::new(77));
        assert_eq!(peek_session(&v2), Some(SessionId::new(77)));
        let v1 = c.encode(Packet::Data(1), 0, 0);
        assert_eq!(peek_session(&v1), None);
        assert_eq!(peek_session(&[]), None);
        assert_eq!(peek_session(&v2[..FRAME_LEN]), None);
        let mut bad_magic = v2;
        bad_magic[0] = 0;
        assert_eq!(peek_session(&bad_magic), None);
    }

    #[test]
    fn frame_buf_round_trips_both_frame_shapes() {
        let c = codec();
        let v1 = c.encode(Packet::Data(3), 1, 2);
        let fb = FrameBuf::from(v1);
        assert_eq!(fb.as_slice(), &v1[..]);
        assert_eq!(fb.len(), FRAME_LEN);
        let v2 = c.encode_with_session(Packet::Ack(9), 4, 5, SessionId::new(6));
        let fb = FrameBuf::from(v2);
        assert_eq!(fb.as_slice(), &v2[..]);
        assert_eq!(
            decode_any(&fb).expect("decodes").session,
            Some(SessionId::new(6))
        );
    }

    #[test]
    fn frame_buf_refuses_oversized_input_and_keeps_garbage() {
        assert!(FrameBuf::from_slice(&[0u8; FRAME_BUF_CAP + 1]).is_none());
        let garbage = [0xABu8; 7];
        let fb = FrameBuf::from_slice(&garbage).expect("fits");
        assert_eq!(fb.as_slice(), &garbage);
        assert!(!fb.is_empty());
        let empty = FrameBuf::from_slice(&[]).expect("fits");
        assert!(empty.is_empty());
        assert_eq!(empty.as_slice(), &[] as &[u8]);
    }

    #[test]
    fn read_array_is_length_checked() {
        let bytes = [1u8, 2, 3, 4, 5];
        assert_eq!(read_array::<4>(&bytes, 0), Some([1, 2, 3, 4]));
        assert_eq!(read_array::<4>(&bytes, 1), Some([2, 3, 4, 5]));
        assert_eq!(read_array::<4>(&bytes, 2), None);
        assert_eq!(read_array::<2>(&bytes, usize::MAX), None);
        assert_eq!(read_array::<0>(&bytes, 5), Some([]));
    }

    /// Exhaustiveness: every [`WireError`] variant is reachable from a
    /// hand-crafted byte buffer — one test per variant, built from the
    /// layout table rather than by mutating `encode` output, so a layout
    /// regression cannot silently retire an error path.
    mod every_error_variant_is_reachable {
        use super::*;

        /// Builds a frame byte-by-byte from the documented layout, with a
        /// correct checksum. Independent of `encode`.
        fn crafted() -> Vec<u8> {
            let mut buf = vec![0u8; FRAME_LEN];
            buf[0] = 0x52; // magic "R"
            buf[1] = 0x54; // magic "T"
            buf[2] = WIRE_VERSION;
            buf[3] = ProtocolId::Beta as u8;
            buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // k = 4
            buf[6] = 0; // kind = data
            buf[7] = 0; // flags
            buf[8..16].copy_from_slice(&7u64.to_be_bytes()); // symbol
            buf[16..24].copy_from_slice(&1u64.to_be_bytes()); // seq
            buf[24..32].copy_from_slice(&2u64.to_be_bytes()); // sent_at
            reseal(&mut buf);
            buf
        }

        /// Recomputes the FNV-1a checksum after a deliberate header edit,
        /// so the test reaches the *intended* error rather than tripping
        /// the (later) checksum check.
        fn reseal(buf: &mut [u8]) {
            let mut sum: u32 = 0x811c_9dc5;
            for &b in &buf[0..32] {
                sum ^= u32::from(b);
                sum = sum.wrapping_mul(0x0100_0193);
            }
            buf[32..36].copy_from_slice(&sum.to_be_bytes());
        }

        #[test]
        fn crafted_baseline_decodes() {
            let frame = decode_any(&crafted()).expect("baseline must be valid");
            assert_eq!(frame.packet, Packet::Data(7));
            assert_eq!(frame.k, 4);
        }

        #[test]
        fn too_short() {
            let buf = crafted();
            assert_eq!(decode_any(&buf[..35]), Err(WireError::TooShort { got: 35 }));
            assert_eq!(decode_any(&[]), Err(WireError::TooShort { got: 0 }));
        }

        #[test]
        fn trailing_bytes() {
            let mut buf = crafted();
            buf.push(0xFF);
            assert_eq!(decode_any(&buf), Err(WireError::TrailingBytes { got: 37 }));
        }

        #[test]
        fn bad_magic() {
            let mut buf = crafted();
            buf[0] = 0x00;
            buf[1] = 0x99;
            reseal(&mut buf);
            assert_eq!(decode_any(&buf), Err(WireError::BadMagic { got: 0x0099 }));
        }

        #[test]
        fn unsupported_version() {
            let mut buf = crafted();
            buf[2] = WIRE_VERSION + 1;
            reseal(&mut buf);
            assert_eq!(
                decode_any(&buf),
                Err(WireError::UnsupportedVersion {
                    got: WIRE_VERSION + 1
                })
            );
        }

        #[test]
        fn unknown_protocol() {
            let mut buf = crafted();
            buf[3] = 0; // below every defined id
            reseal(&mut buf);
            assert_eq!(decode_any(&buf), Err(WireError::UnknownProtocol { got: 0 }));
            buf[3] = 200; // above every defined id
            reseal(&mut buf);
            assert_eq!(
                decode_any(&buf),
                Err(WireError::UnknownProtocol { got: 200 })
            );
        }

        #[test]
        fn bad_kind() {
            let mut buf = crafted();
            buf[6] = 2; // neither data (0) nor ack (1)
            reseal(&mut buf);
            assert_eq!(decode_any(&buf), Err(WireError::BadKind { got: 2 }));
        }

        #[test]
        fn non_zero_flags() {
            let mut buf = crafted();
            buf[7] = 0x80;
            reseal(&mut buf);
            assert_eq!(decode_any(&buf), Err(WireError::NonZeroFlags { got: 0x80 }));
        }

        #[test]
        fn bad_checksum() {
            let mut buf = crafted();
            let want = u32::from_be_bytes([buf[32], buf[33], buf[34], buf[35]]);
            let got = want ^ 1;
            buf[32..36].copy_from_slice(&got.to_be_bytes());
            assert_eq!(decode_any(&buf), Err(WireError::BadChecksum { got, want }));
        }

        #[test]
        fn protocol_mismatch() {
            // A structurally valid gamma frame offered to a beta codec —
            // and a right-protocol frame with the wrong k.
            let c = WireCodec::new(ProtocolId::Beta, 4).expect("k fits");
            let mut buf = crafted();
            buf[3] = ProtocolId::Gamma as u8;
            reseal(&mut buf);
            assert_eq!(
                c.decode(&buf),
                Err(WireError::ProtocolMismatch {
                    got: ProtocolId::Gamma,
                    want: ProtocolId::Beta,
                })
            );
            let mut wrong_k = crafted();
            wrong_k[4..6].copy_from_slice(&5u16.to_be_bytes());
            reseal(&mut wrong_k);
            assert_eq!(
                c.decode(&wrong_k),
                Err(WireError::ProtocolMismatch {
                    got: ProtocolId::Beta,
                    want: ProtocolId::Beta,
                })
            );
        }

        #[test]
        fn k_too_large() {
            // The only encode-side variant: constructing a codec with a k
            // that does not fit the 16-bit header field.
            assert_eq!(
                WireCodec::new(ProtocolId::Beta, MAX_WIRE_K + 1),
                Err(WireError::KTooLarge { k: MAX_WIRE_K + 1 })
            );
        }
    }
}
