//! Wall-clock channel model `C(P)` for the in-process transport.
//!
//! The paper's channel axioms (§2) say every packet sent at time `t` is
//! delivered at some time in `[t, t + d]`, possibly reordered relative to
//! other in-flight packets. [`ChannelConfig`] expresses that contract in
//! wall-clock terms — delays are drawn in ticks, capped at `d`, and scaled
//! by the tick duration — plus the optional loss/duplication faults that
//! `rstp_sim::adversary::DeliveryPolicy::Faulty` injects in the simulator.

use rand::{Rng, SeedableRng};
use rstp_core::TimingParams;
use rstp_sim::{PacketFate, ScriptedDelivery};
use std::time::Duration;

/// How the channel draws a delivery delay (in ticks) for each packet.
///
/// A fixed delay (`lo == hi`) preserves FIFO order; a genuine interval
/// gives consecutive packets overlapping delivery windows, so later
/// packets can overtake earlier ones — the reorder freedom of `C(P)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayModel {
    /// Minimum delay in ticks.
    pub lo: u64,
    /// Maximum delay in ticks.
    pub hi: u64,
}

impl DelayModel {
    /// Deliver immediately — the simulator's `Eager` policy.
    pub fn eager() -> Self {
        DelayModel { lo: 0, hi: 0 }
    }

    /// Always delay the full `d` ticks — the simulator's `MaxDelay`
    /// policy. FIFO order is preserved because the delay is constant.
    pub fn max(params: TimingParams) -> Self {
        let d = params.d().ticks();
        DelayModel { lo: d, hi: d }
    }

    /// Draw uniformly from `[lo, hi]` ticks.
    pub fn uniform(lo: u64, hi: u64) -> Self {
        DelayModel {
            lo: lo.min(hi),
            hi: hi.max(lo),
        }
    }

    /// Clamps both endpoints to the delay bound `d`.
    pub fn clamped(self, params: TimingParams) -> Self {
        let d = params.d().ticks();
        DelayModel {
            lo: self.lo.min(d),
            hi: self.hi.min(d),
        }
    }
}

/// Full channel configuration: delay model, fault rates, and the mapping
/// from abstract ticks to wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelConfig {
    /// Delay distribution, in ticks.
    pub delay: DelayModel,
    /// Probability in `[0, 1]` that a packet is silently dropped.
    pub loss: f64,
    /// Probability in `[0, 1]` that a packet is delivered twice (the
    /// second copy gets an independently drawn delay).
    pub duplication: f64,
    /// Seed for the channel's deterministic PRNG.
    pub seed: u64,
    /// Wall-clock length of one abstract tick.
    pub tick: Duration,
}

impl ChannelConfig {
    /// A reliable channel honouring the full delay bound `d`: uniform
    /// delays in `[0, d]` ticks, no loss, no duplication.
    pub fn reliable(params: TimingParams, tick: Duration, seed: u64) -> Self {
        ChannelConfig {
            delay: DelayModel::uniform(0, params.d().ticks()),
            loss: 0.0,
            duplication: 0.0,
            seed,
            tick,
        }
    }

    /// An eager channel that delivers instantly — the fastest adversary.
    pub fn eager(tick: Duration, seed: u64) -> Self {
        ChannelConfig {
            delay: DelayModel::eager(),
            loss: 0.0,
            duplication: 0.0,
            seed,
            tick,
        }
    }

    /// A channel that always takes the full `d` ticks — the slowest
    /// reliable adversary, matching the simulator's worst-case runs.
    pub fn max_delay(params: TimingParams, tick: Duration, seed: u64) -> Self {
        ChannelConfig {
            delay: DelayModel::max(params),
            loss: 0.0,
            duplication: 0.0,
            seed,
            tick,
        }
    }
}

/// What the channel decided to do with one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver once after the given wall-clock delay.
    Deliver(Duration),
    /// Drop silently.
    Drop,
    /// Deliver twice, each copy after its own delay.
    Duplicate(Duration, Duration),
}

/// Per-direction sampler turning a [`ChannelConfig`] into concrete
/// wall-clock delays and fault decisions. Deterministic in the seed.
#[derive(Debug)]
pub struct ChannelSampler {
    config: ChannelConfig,
    rng: rand::rngs::StdRng,
}

impl ChannelSampler {
    /// Creates a sampler for one channel direction. `stream` separates the
    /// two directions of a duplex channel so they draw independent
    /// sequences from the same configured seed.
    pub fn new(config: ChannelConfig, stream: u64) -> Self {
        ChannelSampler {
            config,
            rng: rand::rngs::StdRng::seed_from_u64(
                config.seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
        }
    }

    /// Decides the fate of the next packet.
    pub fn next_verdict(&mut self) -> Verdict {
        if self.config.loss > 0.0 && self.rng.gen_bool(self.config.loss) {
            return Verdict::Drop;
        }
        let first = self.next_delay();
        if self.config.duplication > 0.0 && self.rng.gen_bool(self.config.duplication) {
            let second = self.next_delay();
            return Verdict::Duplicate(first, second);
        }
        Verdict::Deliver(first)
    }

    fn next_delay(&mut self) -> Duration {
        let DelayModel { lo, hi } = self.config.delay;
        let ticks = if lo >= hi {
            lo
        } else {
            self.rng.gen_range(lo..=hi)
        };
        self.config.tick * u32::try_from(ticks).unwrap_or(u32::MAX)
    }
}

/// Per-direction verdict source realizing a [`ScriptedDelivery`] plan in
/// wall-clock time: the `i`-th packet sent in this direction gets the
/// plan's `i`-th fate, tick delays scaled by `tick`. This is how one
/// `rstp-check` scenario drives the real transport and the simulator with
/// the same delivery schedule.
#[derive(Clone, Debug)]
pub struct ScriptedVerdicts {
    plan: ScriptedDelivery,
    tick: Duration,
    index: u64,
}

impl ScriptedVerdicts {
    /// Creates the verdict source from a plan and the tick duration.
    pub fn new(plan: ScriptedDelivery, tick: Duration) -> Self {
        ScriptedVerdicts {
            plan,
            tick,
            index: 0,
        }
    }

    /// Decides the fate of the next packet in this direction.
    pub fn next_verdict(&mut self) -> Verdict {
        let fate = self.plan.fate(self.index);
        self.index += 1;
        let scale = |ticks: u64| self.tick * u32::try_from(ticks).unwrap_or(u32::MAX);
        match fate {
            PacketFate::Deliver(t) => Verdict::Deliver(scale(t)),
            PacketFate::Drop => Verdict::Drop,
            PacketFate::Duplicate(a, b) => Verdict::Duplicate(scale(a), scale(b)),
        }
    }
}

/// Either fate-decision backend of a channel direction: the seeded
/// [`ChannelSampler`] or a [`ScriptedVerdicts`] plan.
#[derive(Debug)]
pub enum VerdictSource {
    /// Seeded pseudorandom fates from a [`ChannelConfig`].
    Sampled(ChannelSampler),
    /// Replay of an explicit per-packet plan.
    Scripted(ScriptedVerdicts),
}

impl VerdictSource {
    /// Decides the fate of the next packet.
    pub fn next_verdict(&mut self) -> Verdict {
        match self {
            VerdictSource::Sampled(s) => s.next_verdict(),
            VerdictSource::Scripted(s) => s.next_verdict(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 8).expect("valid")
    }

    #[test]
    fn reliable_spans_zero_to_d() {
        let cfg = ChannelConfig::reliable(params(), Duration::from_micros(100), 7);
        assert_eq!(cfg.delay, DelayModel { lo: 0, hi: 8 });
        let wide = DelayModel::uniform(3, 99).clamped(params());
        assert_eq!(wide, DelayModel { lo: 3, hi: 8 });
    }

    #[test]
    fn max_delay_is_constant_at_d() {
        let tick = Duration::from_micros(100);
        let cfg = ChannelConfig::max_delay(params(), tick, 1);
        let mut s = ChannelSampler::new(cfg, 0);
        for _ in 0..16 {
            assert_eq!(s.next_verdict(), Verdict::Deliver(tick * 8));
        }
    }

    #[test]
    fn sampler_is_deterministic_per_seed_and_stream() {
        let cfg = ChannelConfig::reliable(params(), Duration::from_micros(50), 42);
        let mut a = ChannelSampler::new(cfg, 0);
        let mut b = ChannelSampler::new(cfg, 0);
        let seq_a: Vec<Verdict> = (0..32).map(|_| a.next_verdict()).collect();
        let seq_b: Vec<Verdict> = (0..32).map(|_| b.next_verdict()).collect();
        assert_eq!(seq_a, seq_b);

        let mut c = ChannelSampler::new(cfg, 1);
        let seq_c: Vec<Verdict> = (0..32).map(|_| c.next_verdict()).collect();
        assert_ne!(seq_a, seq_c, "streams must diverge");
    }

    #[test]
    fn delays_respect_the_bound() {
        let tick = Duration::from_micros(100);
        let cfg = ChannelConfig::reliable(params(), tick, 5);
        let cap = tick * 8;
        let mut s = ChannelSampler::new(cfg, 0);
        for _ in 0..256 {
            match s.next_verdict() {
                Verdict::Deliver(dl) => assert!(dl <= cap),
                Verdict::Duplicate(a, b) => {
                    assert!(a <= cap && b <= cap)
                }
                Verdict::Drop => panic!("reliable channel must not drop"),
            }
        }
    }

    #[test]
    fn scripted_verdicts_replay_the_plan_in_wall_clock() {
        let tick = Duration::from_micros(100);
        let plan = ScriptedDelivery::new(
            vec![
                PacketFate::Deliver(3),
                PacketFate::Drop,
                PacketFate::Duplicate(0, 8),
            ],
            2, // fallback
        );
        let mut s = ScriptedVerdicts::new(plan, tick);
        assert_eq!(s.next_verdict(), Verdict::Deliver(tick * 3));
        assert_eq!(s.next_verdict(), Verdict::Drop);
        assert_eq!(
            s.next_verdict(),
            Verdict::Duplicate(Duration::ZERO, tick * 8)
        );
        // Fallback tail, forever.
        assert_eq!(s.next_verdict(), Verdict::Deliver(tick * 2));
        assert_eq!(s.next_verdict(), Verdict::Deliver(tick * 2));
    }

    #[test]
    fn faults_fire_at_configured_rates() {
        let tick = Duration::from_micros(10);
        let cfg = ChannelConfig {
            delay: DelayModel::eager(),
            loss: 0.5,
            duplication: 0.5,
            seed: 99,
            tick,
        };
        let mut s = ChannelSampler::new(cfg, 0);
        let mut drops = 0;
        let mut dups = 0;
        for _ in 0..1000 {
            match s.next_verdict() {
                Verdict::Drop => drops += 1,
                Verdict::Duplicate(..) => dups += 1,
                Verdict::Deliver(_) => {}
            }
        }
        assert!((300..700).contains(&drops), "drops={drops}");
        assert!((100..500).contains(&dups), "dups={dups}");
    }
}
