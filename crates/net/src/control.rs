//! Wire v3 control frames: the node-to-node session handover protocol.
//!
//! Data frames (wire v1/v2, [`crate::wire`]) carry protocol packets
//! between a client and the serve node that owns its session. Control
//! frames carry the *handover* conversation between two serve nodes when
//! one drains its live sessions to a peer:
//!
//! ```text
//!   source node                     target node
//!      | --- SNAPSHOT(session, state) -->|   (after receiving DRAIN)
//!      |<-- SNAPSHOT_ACK(session) ------ |
//!      | --- REDIRECT(session, target) ->|   (via the ingress pump,
//!      |                                 |    which re-owns the session)
//! ```
//!
//! # Frame layout (variable length, all integers big-endian)
//!
//! | offset | size | field        | notes                                  |
//! |-------:|-----:|--------------|----------------------------------------|
//! | 0      | 2    | magic        | [`crate::wire::WIRE_MAGIC`] (`"RT"`)   |
//! | 2      | 1    | version      | [`CONTROL_VERSION`] (= 3)              |
//! | 3      | 1    | kind         | [`ControlKind`] discriminant           |
//! | 4      | 4    | session      | session being moved (0 = whole node)   |
//! | 8      | 2    | payload len  | ≤ [`CONTROL_MAX_PAYLOAD`]              |
//! | 10     | len  | payload      | kind-specific (snapshot bytes, shard)  |
//! | 10+len | 4    | checksum     | FNV-1a over bytes `0..10+len`          |
//!
//! Version skew is rejected strictly in both directions: a v1/v2 data
//! frame handed to [`decode_control`] fails with
//! [`ControlError::UnsupportedVersion`], and a v3 control frame handed to
//! [`crate::decode_any`] fails with
//! [`crate::WireError::UnsupportedVersion`] — an old peer can never
//! misparse a snapshot as data, and vice versa. The declared payload
//! length is validated against [`CONTROL_MAX_PAYLOAD`] *before* any
//! allocation, so a hostile length field cannot make the decoder reserve
//! memory.

use crate::wire::{fnv1a, WIRE_MAGIC};
use core::fmt;
use rstp_core::SessionId;

/// Version byte carried by every control frame.
///
/// Data frames are version 1 (with the v2 session extension flagged, not
/// versioned); control frames jump to 3 so the two families are disjoint
/// at byte offset 2.
pub const CONTROL_VERSION: u8 = 3;

/// Fixed header length before the payload: magic, version, kind,
/// session id, payload length.
pub const CONTROL_HEADER_LEN: usize = 10;

/// Trailing checksum length.
const CONTROL_TRAILER_LEN: usize = 4;

/// Hard cap on a control frame's payload. Session snapshots are a few
/// hundred bytes for every protocol family; anything near this limit is
/// corruption, and the decoder rejects a larger declared length before
/// allocating a single byte for it.
pub const CONTROL_MAX_PAYLOAD: usize = 4096;

/// The handover conversation's message kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ControlKind {
    /// Pump → source node: move your live sessions to the shard named in
    /// the payload. `session` is 0 (the whole node drains).
    Drain = 1,
    /// Source → target node: one live session's full state (payload:
    /// source shard id + versioned snapshot bytes).
    Snapshot = 2,
    /// Target → source node: the snapshot for `session` was restored and
    /// is held provisionally (payload: target shard id).
    SnapshotAck = 3,
    /// Source → pump → target node: ownership of `session` transfers to
    /// the shard named in the payload; the target activates its
    /// provisional copy.
    Redirect = 4,
}

impl ControlKind {
    /// All defined control kinds.
    pub const ALL: [ControlKind; 4] = [
        ControlKind::Drain,
        ControlKind::Snapshot,
        ControlKind::SnapshotAck,
        ControlKind::Redirect,
    ];

    fn from_byte(b: u8) -> Option<ControlKind> {
        ControlKind::ALL.into_iter().find(|k| *k as u8 == b)
    }
}

impl fmt::Display for ControlKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ControlKind::Drain => "drain",
            ControlKind::Snapshot => "snapshot",
            ControlKind::SnapshotAck => "snapshot-ack",
            ControlKind::Redirect => "redirect",
        };
        f.write_str(name)
    }
}

/// A decoded control frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControlFrame {
    /// Which handover message this is.
    pub kind: ControlKind,
    /// The session being moved (id 0 addresses the whole node, used by
    /// [`ControlKind::Drain`]).
    pub session: SessionId,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

/// Strict control-frame decode (and encode) failures. Every variant
/// names the first check that failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlError {
    /// Fewer bytes than the declared shape requires.
    TooShort {
        /// Bytes actually available.
        got: usize,
    },
    /// More bytes than the declared payload length allows.
    TrailingBytes {
        /// Bytes actually available.
        got: usize,
    },
    /// Leading magic differs from [`WIRE_MAGIC`].
    BadMagic {
        /// Magic observed on the wire.
        got: u16,
    },
    /// Version byte differs from [`CONTROL_VERSION`]. In particular, a
    /// wire v1/v2 *data* frame lands here: the families are disjoint.
    UnsupportedVersion {
        /// Version observed on the wire.
        got: u8,
    },
    /// Kind byte matches no [`ControlKind`].
    BadKind {
        /// Kind observed on the wire.
        got: u8,
    },
    /// Declared payload length exceeds [`CONTROL_MAX_PAYLOAD`]. Raised
    /// before any allocation sized by the hostile length.
    OversizedPayload {
        /// Payload length declared on the wire.
        got: usize,
    },
    /// Stored checksum disagrees with the recomputed one.
    BadChecksum {
        /// Checksum observed on the wire.
        got: u32,
        /// Checksum recomputed over header and payload.
        want: u32,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::TooShort { got } => {
                let floor = CONTROL_HEADER_LEN + CONTROL_TRAILER_LEN;
                write!(
                    f,
                    "control frame too short: {got} bytes, need at least {floor}"
                )
            }
            ControlError::TrailingBytes { got } => {
                write!(
                    f,
                    "control frame too long: {got} bytes past the declared payload"
                )
            }
            ControlError::BadMagic { got } => {
                write!(f, "bad magic {got:#06x}, expected {WIRE_MAGIC:#06x}")
            }
            ControlError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported control version {got}, expected {CONTROL_VERSION}"
                )
            }
            ControlError::BadKind { got } => {
                write!(f, "bad control kind {got}, expected 1..=4")
            }
            ControlError::OversizedPayload { got } => {
                write!(
                    f,
                    "control payload {got} bytes exceeds maximum {CONTROL_MAX_PAYLOAD}"
                )
            }
            ControlError::BadChecksum { got, want } => {
                write!(
                    f,
                    "checksum mismatch: stored {got:#010x}, computed {want:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for ControlError {}

/// Encodes a control frame, or fails with
/// [`ControlError::OversizedPayload`] when the payload exceeds
/// [`CONTROL_MAX_PAYLOAD`].
pub fn encode_control(frame: &ControlFrame) -> Result<Vec<u8>, ControlError> {
    if frame.payload.len() > CONTROL_MAX_PAYLOAD {
        return Err(ControlError::OversizedPayload {
            got: frame.payload.len(),
        });
    }
    let total = CONTROL_HEADER_LEN + frame.payload.len() + CONTROL_TRAILER_LEN;
    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(&WIRE_MAGIC.to_be_bytes());
    buf.push(CONTROL_VERSION);
    buf.push(frame.kind as u8);
    buf.extend_from_slice(&frame.session.raw().to_be_bytes());
    buf.extend_from_slice(&(frame.payload.len() as u16).to_be_bytes());
    buf.extend_from_slice(&frame.payload);
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_be_bytes());
    Ok(buf)
}

/// Decodes one control frame. Never panics and never allocates before
/// the declared payload length has been validated.
pub fn decode_control(bytes: &[u8]) -> Result<ControlFrame, ControlError> {
    let floor = CONTROL_HEADER_LEN + CONTROL_TRAILER_LEN;
    if bytes.len() < floor {
        return Err(ControlError::TooShort { got: bytes.len() });
    }
    let magic = u16::from_be_bytes([bytes[0], bytes[1]]);
    if magic != WIRE_MAGIC {
        return Err(ControlError::BadMagic { got: magic });
    }
    if bytes[2] != CONTROL_VERSION {
        return Err(ControlError::UnsupportedVersion { got: bytes[2] });
    }
    let kind = ControlKind::from_byte(bytes[3]).ok_or(ControlError::BadKind { got: bytes[3] })?;
    let session = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let declared = usize::from(u16::from_be_bytes([bytes[8], bytes[9]]));
    // Validate the hostile length *before* any allocation sized by it.
    if declared > CONTROL_MAX_PAYLOAD {
        return Err(ControlError::OversizedPayload { got: declared });
    }
    let total = CONTROL_HEADER_LEN + declared + CONTROL_TRAILER_LEN;
    if bytes.len() < total {
        return Err(ControlError::TooShort { got: bytes.len() });
    }
    if bytes.len() > total {
        return Err(ControlError::TrailingBytes { got: bytes.len() });
    }
    let body_len = CONTROL_HEADER_LEN + declared;
    let stored = match bytes.get(body_len..total) {
        Some([a, b, c, d]) => u32::from_be_bytes([*a, *b, *c, *d]),
        _ => return Err(ControlError::TooShort { got: bytes.len() }),
    };
    let body = bytes
        .get(..body_len)
        .ok_or(ControlError::TooShort { got: bytes.len() })?;
    let computed = fnv1a(body);
    if stored != computed {
        return Err(ControlError::BadChecksum {
            got: stored,
            want: computed,
        });
    }
    let payload = bytes
        .get(CONTROL_HEADER_LEN..body_len)
        .ok_or(ControlError::TooShort { got: bytes.len() })?
        .to_vec();
    Ok(ControlFrame {
        kind,
        session: SessionId::new(session),
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_any, ProtocolId, WireCodec, WireError};
    use rstp_core::Packet;

    fn sample(kind: ControlKind, payload: &[u8]) -> ControlFrame {
        ControlFrame {
            kind,
            session: SessionId::new(0x0102_0304),
            payload: payload.to_vec(),
        }
    }

    /// Re-seals a tampered buffer with a fresh valid checksum, so tests
    /// reach the checks *behind* the checksum verification.
    fn reseal(buf: &mut [u8]) {
        let body = buf.len() - CONTROL_TRAILER_LEN;
        let sum = fnv1a(&buf[..body]);
        buf[body..].copy_from_slice(&sum.to_be_bytes());
    }

    #[test]
    fn round_trips_every_kind() {
        for kind in ControlKind::ALL {
            for payload in [&b""[..], &b"\x00\x01\x02\x03"[..], &[0xAB; 512][..]] {
                let frame = sample(kind, payload);
                let bytes = encode_control(&frame).expect("encode");
                assert_eq!(decode_control(&bytes).expect("decode"), frame);
            }
        }
    }

    #[test]
    fn golden_bytes_are_pinned() {
        let frame = ControlFrame {
            kind: ControlKind::Snapshot,
            session: SessionId::new(7),
            payload: vec![0xDE, 0xAD],
        };
        let bytes = encode_control(&frame).expect("encode");
        let sum = fnv1a(&bytes[..12]);
        let mut want = vec![
            0x52, 0x54, // magic "RT"
            0x03, // version 3
            0x02, // kind = snapshot
            0x00, 0x00, 0x00, 0x07, // session 7
            0x00, 0x02, // payload len 2
            0xDE, 0xAD, // payload
        ];
        want.extend_from_slice(&sum.to_be_bytes());
        assert_eq!(bytes, want);
    }

    #[test]
    fn truncation_at_every_length_is_rejected_cleanly() {
        let bytes = encode_control(&sample(ControlKind::Snapshot, &[1, 2, 3, 4, 5])).expect("ok");
        for cut in 0..bytes.len() {
            let err = decode_control(&bytes[..cut]).expect_err("truncated");
            assert!(
                matches!(err, ControlError::TooShort { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_control(&sample(ControlKind::Drain, &[9])).expect("ok");
        bytes.push(0);
        assert_eq!(
            decode_control(&bytes),
            Err(ControlError::TrailingBytes { got: 16 })
        );
    }

    #[test]
    fn bad_magic_version_kind_and_checksum_are_typed() {
        let good = encode_control(&sample(ControlKind::Redirect, &[4, 0, 0, 0])).expect("ok");

        let mut bad = good.clone();
        bad[0] = 0x00;
        assert!(matches!(
            decode_control(&bad),
            Err(ControlError::BadMagic { got: 0x0054 })
        ));

        let mut bad = good.clone();
        bad[2] = 9;
        reseal(&mut bad);
        assert_eq!(
            decode_control(&bad),
            Err(ControlError::UnsupportedVersion { got: 9 })
        );

        let mut bad = good.clone();
        bad[3] = 0xEE;
        reseal(&mut bad);
        assert_eq!(
            decode_control(&bad),
            Err(ControlError::BadKind { got: 0xEE })
        );

        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(matches!(
            decode_control(&bad),
            Err(ControlError::BadChecksum { .. })
        ));
    }

    #[test]
    fn oversized_declared_payload_is_rejected_before_allocation() {
        // A minimal buffer whose header *claims* a payload far past the
        // cap. The decoder must reject on the declared length alone — if
        // it tried to slice or allocate first, the tiny buffer would
        // surface as TooShort instead.
        let mut buf = Vec::new();
        buf.extend_from_slice(&WIRE_MAGIC.to_be_bytes());
        buf.push(CONTROL_VERSION);
        buf.push(ControlKind::Snapshot as u8);
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&u16::MAX.to_be_bytes());
        buf.extend_from_slice(&[0u8; 4]); // nonsense checksum, never reached
        assert_eq!(
            decode_control(&buf),
            Err(ControlError::OversizedPayload {
                got: usize::from(u16::MAX)
            })
        );
    }

    #[test]
    fn payload_at_exact_cap_round_trips_and_one_past_is_refused() {
        let at_cap = sample(ControlKind::Snapshot, &vec![0x5A; CONTROL_MAX_PAYLOAD]);
        let bytes = encode_control(&at_cap).expect("cap fits");
        assert_eq!(decode_control(&bytes).expect("decode"), at_cap);

        let over = sample(ControlKind::Snapshot, &vec![0x5A; CONTROL_MAX_PAYLOAD + 1]);
        assert_eq!(
            encode_control(&over),
            Err(ControlError::OversizedPayload {
                got: CONTROL_MAX_PAYLOAD + 1
            })
        );
    }

    #[test]
    fn version_skew_is_rejected_in_both_directions() {
        // v2 data frame → control decoder: refused by version.
        let codec = WireCodec::new(ProtocolId::Beta, 4).expect("codec");
        let data = codec.encode_with_session(Packet::Data(3), 0, 0, SessionId::new(5));
        assert_eq!(
            decode_control(&data),
            Err(ControlError::UnsupportedVersion { got: 1 })
        );
        // v1 data frame too.
        let data = codec.encode(Packet::Data(3), 0, 0);
        assert_eq!(
            decode_control(&data),
            Err(ControlError::UnsupportedVersion { got: 1 })
        );
        // v3 control frame → data decoder: refused, so an old peer drops
        // a snapshot instead of misreading it as symbols. A control frame
        // whose payload of 22 bytes pads its total size to exactly a v1
        // data frame's reaches the version check and is refused there;
        // any other size fails the length checks first. Either way:
        // rejected.
        let ctl = encode_control(&sample(ControlKind::Snapshot, &[0xAA; 22])).expect("ok");
        assert_eq!(ctl.len(), 36);
        assert_eq!(
            decode_any(&ctl),
            Err(WireError::UnsupportedVersion { got: 3 })
        );
        let ctl = encode_control(&sample(ControlKind::Snapshot, &[1, 2, 3])).expect("ok");
        assert!(decode_any(&ctl).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let cases: Vec<(ControlError, &str)> = vec![
            (ControlError::TooShort { got: 3 }, "too short"),
            (ControlError::TrailingBytes { got: 99 }, "too long"),
            (ControlError::BadMagic { got: 1 }, "magic"),
            (ControlError::UnsupportedVersion { got: 1 }, "version"),
            (ControlError::BadKind { got: 7 }, "kind"),
            (ControlError::OversizedPayload { got: 70_000 }, "exceeds"),
            (ControlError::BadChecksum { got: 1, want: 2 }, "checksum"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} lacks {needle:?}");
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn arbitrary_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = decode_control(&bytes);
            }

            #[test]
            fn round_trip_is_lossless(
                kind_ix in 0usize..4,
                session in any::<u32>(),
                payload in proptest::collection::vec(any::<u8>(), 0..128),
            ) {
                let frame = ControlFrame {
                    kind: ControlKind::ALL[kind_ix],
                    session: SessionId::new(session),
                    payload,
                };
                let bytes = encode_control(&frame).expect("encode");
                prop_assert_eq!(decode_control(&bytes).expect("decode"), frame);
            }

            #[test]
            fn single_byte_corruption_never_yields_a_different_frame(
                flip_at in 0usize..20,
                flip_bit in 0u8..8,
            ) {
                let frame = ControlFrame {
                    kind: ControlKind::Snapshot,
                    session: SessionId::new(42),
                    payload: vec![1, 2, 3, 4, 5, 6],
                };
                let mut bytes = encode_control(&frame).expect("encode");
                let at = flip_at % bytes.len();
                bytes[at] ^= 1 << flip_bit;
                if let Ok(got) = decode_control(&bytes) {
                    prop_assert_eq!(got, frame);
                }
            }
        }
    }
}
