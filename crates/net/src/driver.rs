//! The real-time driver: steps one protocol automaton against the wall
//! clock instead of simulated ticks.
//!
//! # Scheduling
//!
//! The simulator's engine grants each process one local step every
//! `[c1, c2]` ticks. Here the tick is a real [`Duration`] and the driver
//! targets a fixed pace inside the window — `c1` ticks per step
//! ([`Pace::Fast`]) or `c2` ticks ([`Pace::Slow`]). Deadlines are computed
//! as absolute instants from the clock's epoch (`next += gap`), so a late
//! wake-up does not shift every later step: the schedule self-corrects
//! instead of drifting.
//!
//! An operating system cannot honour the paper's idealized timing axioms
//! exactly, so the driver *measures* its misses rather than pretending:
//! every wake-up later than the deadline by more than the configured
//! slack counts a `deadline_miss`, and every observed step gap outside
//! `[c1·tick − slack, c2·tick + slack]` counts a `timing_violation`.
//! Runs at [`Pace::Slow`] sit exactly on the upper boundary, which is why
//! the tolerance exists; `docs/NET.md` discusses the deviation.
//!
//! # Step semantics
//!
//! Before each local step the driver drains the transport and applies
//! every received packet as a `recv` input (inputs are channel outputs,
//! not clocked by `[c1, c2]` — same as the simulator). Then the unique
//! enabled local action fires: `send` goes to the transport stamped with
//! the local clock, `write` appends to the output, `wait`/`idle` just
//! tick. Zero enabled actions means the automaton quiesced; more than one
//! is a determinism violation, reported exactly as the simulator does.
//!
//! # Termination
//!
//! A single endpoint cannot see the global "settled" condition the
//! simulator uses (peer quiescent and channel empty), so it infers
//! completion locally: once its own work looks done — `expected_writes`
//! reached on a receiver, only idle actions enabled on a transmitter —
//! it keeps stepping through a grace period of `grace_ticks` (default
//! `d + 2·c2`, long enough for any in-flight packet to land and be
//! answered) and stops only if nothing arrived meanwhile. A hard
//! wall-clock cap (`max_wall`) guards against a peer that never shows up.

use crate::clock::TickClock;
use crate::error::NetError;
use crate::histogram::LatencyHistogram;
use crate::transport::{Transport, TransportStats};
use rstp_automata::Automaton;
use rstp_core::{Message, Packet, RstpAction, TimingParams};
use std::time::Duration;

/// Which point of the `[c1, c2]` window the driver paces at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pace {
    /// Step every `c1` ticks — the fastest legal process.
    Fast,
    /// Step every `c2` ticks — the slowest legal process (the adversary
    /// the worst-case effort bounds are stated against).
    Slow,
}

impl Pace {
    /// The pace's step gap in ticks under `params`.
    pub fn gap_ticks(self, params: TimingParams) -> u64 {
        match self {
            Pace::Fast => params.c1().ticks(),
            Pace::Slow => params.c2().ticks(),
        }
    }
}

/// Configuration of one driven endpoint.
#[derive(Clone, Copy, Debug)]
pub struct DriverConfig {
    /// Timing parameters `(c1, c2, d)` in ticks.
    pub params: TimingParams,
    /// Wall-clock length of one tick.
    pub tick: Duration,
    /// Step pace within `[c1, c2]`.
    pub pace: Pace,
    /// Timing tolerance for miss/violation accounting.
    pub slack: Duration,
    /// For receivers: stop (after the grace period) once this many
    /// `write` actions have fired. `None` relies on quiescence alone.
    pub expected_writes: Option<usize>,
    /// How long (in ticks) the endpoint keeps stepping after it looks
    /// locally done, to let in-flight traffic land.
    pub grace_ticks: u64,
    /// Hard wall-clock cap on the whole run.
    pub max_wall: Duration,
}

impl DriverConfig {
    /// A sensible default configuration: slow pace (the bounds' regime),
    /// slack of a quarter tick, grace of `2·(d + c2)` ticks (a full
    /// request/ack round trip with a step on each side — an ack-clocked
    /// transmitter idles that long legitimately), and a generous wall cap.
    pub fn new(params: TimingParams, tick: Duration) -> Self {
        DriverConfig {
            params,
            tick,
            pace: Pace::Slow,
            slack: tick / 4,
            expected_writes: None,
            grace_ticks: 2 * (params.d().ticks() + params.c2().ticks()),
            max_wall: Duration::from_secs(60),
        }
    }

    /// Sets the expected write count (receiver endpoints).
    pub fn with_expected_writes(mut self, n: usize) -> Self {
        self.expected_writes = Some(n);
        self
    }

    /// Sets the pace.
    pub fn with_pace(mut self, pace: Pace) -> Self {
        self.pace = pace;
        self
    }

    /// Sets the hard wall-clock cap.
    pub fn with_max_wall(mut self, cap: Duration) -> Self {
        self.max_wall = cap;
        self
    }
}

/// How a driven run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverOutcome {
    /// The endpoint finished its work and the grace period drained quietly.
    Completed,
    /// The wall-clock cap expired first.
    TimedOut,
}

/// Everything one endpoint observed during a driven run.
#[derive(Clone, Debug)]
pub struct DriverReport {
    /// How the run ended.
    pub outcome: DriverOutcome,
    /// Local steps taken (each consumed one `[c1, c2]` window).
    pub steps: u64,
    /// Messages written by `write` actions, in order — the receiver's
    /// output sequence `Y`.
    pub written: Vec<Message>,
    /// `send(p)` actions carrying data packets.
    pub data_sends: u64,
    /// `send(p)` actions carrying ack packets.
    pub ack_sends: u64,
    /// Packets applied as `recv` inputs.
    pub recvs: u64,
    /// `wait` internal steps.
    pub wait_steps: u64,
    /// `idle` internal steps.
    pub idle_steps: u64,
    /// Local clock (µs since epoch) of the last data send, if any.
    pub last_data_send_micros: Option<u64>,
    /// Local clock (µs since epoch) of the last write, if any.
    pub last_write_micros: Option<u64>,
    /// Wake-ups later than their deadline by more than the slack.
    pub deadline_misses: u64,
    /// Observed step gaps outside `[c1·tick − slack, c2·tick + slack]`.
    pub timing_violations: u64,
    /// Per-packet delivery latency (receiver-side clock minus the
    /// `sent_at_micros` stamped into each frame). Only meaningful when
    /// both endpoints share a clock epoch.
    pub latency: LatencyHistogram,
    /// Total wall-clock time from the clock's epoch to the last step.
    pub wall_elapsed: Duration,
    /// Transport counters at the end of the run.
    pub transport: TransportStats,
}

impl DriverReport {
    /// Wall-clock effort in ticks per message: time of the last data send
    /// divided by `n` and the tick length — the real-time analogue of the
    /// simulator's `t(last-send)/n`.
    pub fn effort_ticks(&self, n: usize, tick: Duration) -> Option<f64> {
        let last = self.last_data_send_micros?;
        if n == 0 || tick.is_zero() {
            return None;
        }
        Some(last as f64 / tick.as_micros() as f64 / n as f64)
    }

    /// Receiver-side learning effort in ticks per message:
    /// `t(last-write)/n`.
    pub fn learn_effort_ticks(&self, n: usize, tick: Duration) -> Option<f64> {
        let last = self.last_write_micros?;
        if n == 0 || tick.is_zero() {
            return None;
        }
        Some(last as f64 / tick.as_micros() as f64 / n as f64)
    }
}

/// Drives `automaton` over `transport` against `clock` until completion,
/// per the module-level semantics.
///
/// # Errors
///
/// [`NetError`] on transport failure, a determinism violation, or an
/// automaton rejecting a step the driver believed applicable.
pub fn run_endpoint<A, T>(
    automaton: &A,
    transport: &mut T,
    clock: TickClock,
    config: &DriverConfig,
) -> Result<DriverReport, NetError>
where
    A: Automaton<Action = RstpAction>,
    T: Transport,
{
    let gap_ticks = config.pace.gap_ticks(config.params).max(1);
    let gap = config.tick * u32::try_from(gap_ticks).unwrap_or(u32::MAX);
    let lo = (config.tick * u32::try_from(config.params.c1().ticks()).unwrap_or(u32::MAX))
        .saturating_sub(config.slack);
    let hi =
        config.tick * u32::try_from(config.params.c2().ticks()).unwrap_or(u32::MAX) + config.slack;
    let idle_steps_needed = config.grace_ticks.div_ceil(gap_ticks).max(1);

    let mut state = automaton.initial_state();
    let mut report = DriverReport {
        outcome: DriverOutcome::TimedOut,
        steps: 0,
        written: Vec::new(),
        data_sends: 0,
        ack_sends: 0,
        recvs: 0,
        wait_steps: 0,
        idle_steps: 0,
        last_data_send_micros: None,
        last_write_micros: None,
        deadline_misses: 0,
        timing_violations: 0,
        latency: LatencyHistogram::new(),
        wall_elapsed: Duration::ZERO,
        transport: TransportStats::default(),
    };

    // First local step at tick 0 — both the paper's constructions and the
    // simulator start every process at time 0.
    let mut deadline = clock.epoch();
    let mut prev_wake: Option<std::time::Instant> = None;
    let mut idle_streak: u64 = 0;

    loop {
        if clock.epoch().elapsed() > config.max_wall {
            report.outcome = DriverOutcome::TimedOut;
            break;
        }
        let overshoot = clock.sleep_until(deadline);
        let wake = std::time::Instant::now();
        // A late wake is accounted once, as a deadline miss; intervals
        // that start or end at a late wake are distorted by that same
        // stall, so they are excluded from the step-gap measurement
        // rather than double-counted as timing violations.
        let late = overshoot > config.slack;
        if late {
            report.deadline_misses += 1;
        } else if let Some(prev) = prev_wake {
            let observed = wake.saturating_duration_since(prev);
            if observed < lo || observed > hi {
                report.timing_violations += 1;
            }
        }
        prev_wake = (!late).then_some(wake);

        // Apply every delivered packet as a recv input before the local
        // step, mirroring the engine's input-before-step ordering at a
        // shared instant.
        let mut received_any = false;
        while let Some(frame) = transport.poll_recv()? {
            state = automaton
                .step(&state, &RstpAction::Recv(frame.packet))
                .map_err(|e| NetError::Automaton {
                    what: e.to_string(),
                })?;
            let now_micros = clock.now_micros();
            report
                .latency
                .record(now_micros.saturating_sub(frame.sent_at_micros));
            report.recvs += 1;
            received_any = true;
        }

        let enabled = automaton.enabled(&state);
        let action = match enabled.as_slice() {
            [] => None,
            [a] => Some(*a),
            many => {
                return Err(NetError::Determinism {
                    enabled: many.iter().map(|a| format!("{a:?}")).collect(),
                })
            }
        };

        let mut acted_productively = received_any;
        if let Some(action) = action {
            state = automaton
                .step(&state, &action)
                .map_err(|e| NetError::Automaton {
                    what: e.to_string(),
                })?;
            report.steps += 1;
            match action {
                RstpAction::Send(p) => {
                    let stamp = clock.now_micros();
                    transport.send(p, stamp)?;
                    match p {
                        Packet::Data(_) => {
                            report.data_sends += 1;
                            report.last_data_send_micros = Some(stamp);
                        }
                        Packet::Ack(_) => report.ack_sends += 1,
                    }
                    acted_productively = true;
                }
                RstpAction::Write(m) => {
                    report.written.push(m);
                    report.last_write_micros = Some(clock.now_micros());
                    acted_productively = true;
                }
                RstpAction::TransmitterInternal(k) | RstpAction::ReceiverInternal(k) => {
                    // `wait` is productive work (a counted phase of the
                    // beta/framed receivers); only `idle` marks the
                    // endpoint as possibly done.
                    if k == rstp_core::InternalKind::Wait {
                        report.wait_steps += 1;
                        acted_productively = true;
                    } else {
                        report.idle_steps += 1;
                    }
                }
                RstpAction::Recv(_) => {
                    return Err(NetError::Automaton {
                        what: "recv reported as a locally controlled action".into(),
                    })
                }
            }
        }

        let writes_done = config
            .expected_writes
            .is_none_or(|n| report.written.len() >= n);
        if acted_productively || !writes_done {
            idle_streak = 0;
        } else {
            idle_streak += 1;
            if idle_streak >= idle_steps_needed {
                report.outcome = DriverOutcome::Completed;
                break;
            }
        }

        deadline += gap;
        // After a stall longer than a whole step gap, re-anchor from now:
        // replaying the missed deadlines back-to-back would burst steps
        // faster than c1 and turn one stall into many violations.
        let now = std::time::Instant::now();
        if now > deadline + gap {
            deadline = now;
            // The interval spanning the stall is as distorted as one
            // ending at a late wake — skip its gap measurement too.
            prev_wake = None;
        }
    }

    report.wall_elapsed = clock.epoch().elapsed();
    report.transport = transport.local_stats();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chan::ChannelConfig;
    use crate::mem::MemTransport;
    use crate::wire::{ProtocolId, WireCodec};
    use rstp_core::protocols::{AlphaReceiver, AlphaTransmitter};
    use std::thread;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 4).expect("valid")
    }

    #[test]
    fn alpha_pair_transfers_over_mem_transport() {
        let p = params();
        let tick = Duration::from_micros(300);
        let input = vec![true, false, true, true, false, false, true];
        let codec = WireCodec::new(ProtocolId::Alpha, 0).expect("codec");
        let (mut t_end, mut r_end) = MemTransport::pair(codec, ChannelConfig::reliable(p, tick, 7));
        let epoch = std::time::Instant::now();
        let t_clock = TickClock::with_epoch(epoch, tick);
        let r_clock = TickClock::with_epoch(epoch, tick);

        let t_cfg = DriverConfig::new(p, tick);
        let r_cfg = DriverConfig::new(p, tick).with_expected_writes(input.len());
        let t_input = input.clone();
        let t_handle = thread::spawn(move || {
            let automaton = AlphaTransmitter::new(p, t_input);
            run_endpoint(&automaton, &mut t_end, t_clock, &t_cfg)
        });
        let r_handle = thread::spawn(move || {
            let automaton = AlphaReceiver::new();
            run_endpoint(&automaton, &mut r_end, r_clock, &r_cfg)
        });
        let t_report = t_handle.join().expect("join").expect("transmitter");
        let r_report = r_handle.join().expect("join").expect("receiver");

        assert_eq!(t_report.outcome, DriverOutcome::Completed);
        assert_eq!(r_report.outcome, DriverOutcome::Completed);
        assert_eq!(r_report.written, input);
        assert_eq!(t_report.data_sends, input.len() as u64);
        assert_eq!(r_report.latency.count(), input.len() as u64);
    }

    #[test]
    fn transmitter_alone_times_out_without_a_peer_only_if_acks_needed() {
        // Alpha needs no acks, so a lone transmitter completes; the cap
        // just has to be generous enough for the sends plus grace.
        let p = params();
        let tick = Duration::from_micros(200);
        let codec = WireCodec::new(ProtocolId::Alpha, 0).expect("codec");
        let (mut t_end, _r_end) = MemTransport::pair(codec, ChannelConfig::eager(tick, 1));
        let automaton = AlphaTransmitter::new(p, vec![true, false]);
        let cfg = DriverConfig::new(p, tick).with_max_wall(Duration::from_secs(10));
        let report =
            run_endpoint(&automaton, &mut t_end, TickClock::start(tick), &cfg).expect("run");
        assert_eq!(report.outcome, DriverOutcome::Completed);
        assert_eq!(report.data_sends, 2);
    }

    #[test]
    fn receiver_times_out_when_no_traffic_arrives() {
        let p = params();
        let tick = Duration::from_micros(100);
        let codec = WireCodec::new(ProtocolId::Alpha, 0).expect("codec");
        let (mut r_end, _t_end) = MemTransport::pair(codec, ChannelConfig::eager(tick, 1));
        let automaton = AlphaReceiver::new();
        let cfg = DriverConfig::new(p, tick)
            .with_expected_writes(3)
            .with_max_wall(Duration::from_millis(100));
        let report =
            run_endpoint(&automaton, &mut r_end, TickClock::start(tick), &cfg).expect("run");
        assert_eq!(report.outcome, DriverOutcome::TimedOut);
        assert!(report.written.is_empty());
    }

    #[test]
    fn effort_accessors_convert_micros_to_ticks() {
        let tick = Duration::from_micros(100);
        let mut report = DriverReport {
            outcome: DriverOutcome::Completed,
            steps: 0,
            written: vec![true; 4],
            data_sends: 4,
            ack_sends: 0,
            recvs: 0,
            wait_steps: 0,
            idle_steps: 0,
            last_data_send_micros: Some(4_000),
            last_write_micros: Some(4_400),
            deadline_misses: 0,
            timing_violations: 0,
            latency: LatencyHistogram::new(),
            wall_elapsed: Duration::from_millis(5),
            transport: TransportStats::default(),
        };
        // 4000 µs / 100 µs-per-tick / 4 messages = 10 ticks per message.
        assert_eq!(report.effort_ticks(4, tick), Some(10.0));
        assert_eq!(report.learn_effort_ticks(4, tick), Some(11.0));
        report.last_data_send_micros = None;
        assert_eq!(report.effort_ticks(4, tick), None);
        assert_eq!(report.effort_ticks(0, tick), None);
    }
}
