//! Property tests for the wire codec: encode→decode identity over the
//! whole input space, and strict non-panicking rejection of corrupted or
//! truncated frames.

use proptest::prelude::*;
use rstp_core::{Packet, SessionId};
use rstp_net::{
    decode_any, peek_session, Frame, ProtocolId, WireCodec, WireError, FRAME_LEN, FRAME_LEN_V2,
};

fn protocol_strategy() -> impl Strategy<Value = ProtocolId> {
    prop_oneof![
        Just(ProtocolId::Alpha),
        Just(ProtocolId::Beta),
        Just(ProtocolId::Gamma),
        Just(ProtocolId::AltBit),
        Just(ProtocolId::Framed),
        Just(ProtocolId::Stenning),
        Just(ProtocolId::Pipelined),
    ]
}

fn packet_strategy() -> impl Strategy<Value = Packet> {
    prop_oneof![
        any::<u64>().prop_map(Packet::Data),
        any::<u64>().prop_map(Packet::Ack),
    ]
}

proptest! {
    #[test]
    fn encode_decode_is_identity(
        protocol in protocol_strategy(),
        k in 0u64..=u16::MAX as u64,
        packet in packet_strategy(),
        seq in any::<u64>(),
        sent_at in any::<u64>(),
    ) {
        let codec = WireCodec::new(protocol, k).expect("k is in range");
        let buf = codec.encode(packet, seq, sent_at);
        let frame = codec.decode(&buf).expect("own encoding must decode");
        prop_assert_eq!(frame, Frame {
            protocol,
            k: k as u16,
            packet,
            seq,
            sent_at_micros: sent_at,
            session: None,
        });
    }

    #[test]
    fn v2_encode_decode_is_identity(
        protocol in protocol_strategy(),
        k in 0u64..=u16::MAX as u64,
        packet in packet_strategy(),
        seq in any::<u64>(),
        sent_at in any::<u64>(),
        session in any::<u32>(),
    ) {
        let codec = WireCodec::new(protocol, k).expect("k is in range");
        let buf = codec.encode_with_session(packet, seq, sent_at, SessionId::new(session));
        let frame = codec.decode(&buf).expect("own v2 encoding must decode");
        prop_assert_eq!(frame, Frame {
            protocol,
            k: k as u16,
            packet,
            seq,
            sent_at_micros: sent_at,
            session: Some(SessionId::new(session)),
        });
        // The cheap demux path agrees with the full decode.
        prop_assert_eq!(peek_session(&buf), Some(SessionId::new(session)));
    }

    #[test]
    fn v2_any_single_byte_corruption_is_rejected_or_misroutes_only(
        packet in packet_strategy(),
        seq in any::<u64>(),
        sent_at in any::<u64>(),
        session in any::<u32>(),
        offset in 0usize..FRAME_LEN_V2,
        xor in 1u8..=255u8,
    ) {
        let codec = WireCodec::new(ProtocolId::Beta, 4).expect("k is in range");
        let mut buf = codec.encode_with_session(packet, seq, sent_at, SessionId::new(session));
        buf[offset] ^= xor;
        // Full decode must reject every single-byte corruption (the
        // checksum covers the session extension too) and never panic.
        prop_assert!(codec.decode(&buf).is_err());
    }

    #[test]
    fn v2_truncated_frames_error_and_never_panic(
        packet in packet_strategy(),
        session in any::<u32>(),
        len in 0usize..FRAME_LEN_V2,
    ) {
        let codec = WireCodec::new(ProtocolId::Gamma, 2).expect("k is in range");
        let buf = codec.encode_with_session(packet, 0, 0, SessionId::new(session));
        prop_assert_eq!(
            codec.decode(&buf[..len]),
            Err(WireError::TooShort { got: len })
        );
    }

    #[test]
    fn v2_extended_frames_error_and_never_panic(
        packet in packet_strategy(),
        session in any::<u32>(),
        extra in 1usize..64,
    ) {
        let codec = WireCodec::new(ProtocolId::Alpha, 0).expect("k is in range");
        let mut long = codec.encode_with_session(packet, 0, 0, SessionId::new(session)).to_vec();
        long.extend(std::iter::repeat_n(0xAA, extra));
        prop_assert_eq!(
            codec.decode(&long),
            Err(WireError::TrailingBytes { got: FRAME_LEN_V2 + extra })
        );
    }

    #[test]
    fn any_single_byte_corruption_is_rejected(
        packet in packet_strategy(),
        seq in any::<u64>(),
        sent_at in any::<u64>(),
        offset in 0usize..FRAME_LEN,
        xor in 1u8..=255u8,
    ) {
        let codec = WireCodec::new(ProtocolId::Beta, 4).expect("k is in range");
        let mut buf = codec.encode(packet, seq, sent_at);
        buf[offset] ^= xor;
        // FNV-1a is not cryptographic, but a single-byte change always
        // alters the digest, so every such corruption must be caught by
        // some strict check — and must never panic.
        prop_assert!(codec.decode(&buf).is_err());
    }

    #[test]
    fn truncated_frames_error_and_never_panic(
        packet in packet_strategy(),
        len in 0usize..FRAME_LEN,
    ) {
        let codec = WireCodec::new(ProtocolId::Gamma, 2).expect("k is in range");
        let buf = codec.encode(packet, 0, 0);
        prop_assert_eq!(
            codec.decode(&buf[..len]),
            Err(WireError::TooShort { got: len })
        );
    }

    #[test]
    fn extended_frames_error_and_never_panic(
        packet in packet_strategy(),
        extra in 1usize..64,
    ) {
        let codec = WireCodec::new(ProtocolId::Alpha, 0).expect("k is in range");
        let mut long = codec.encode(packet, 0, 0).to_vec();
        long.extend(std::iter::repeat_n(0xAA, extra));
        prop_assert_eq!(
            codec.decode(&long),
            Err(WireError::TrailingBytes { got: FRAME_LEN + extra })
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        // decode_any exercises the structural checks without a protocol
        // binding; random bytes overwhelmingly fail, and a lucky valid
        // frame is fine — the property is only absence of panics.
        let _ = decode_any(&bytes);
        let codec = WireCodec::new(ProtocolId::Beta, 4).expect("k is in range");
        let _ = codec.decode(&bytes);
    }

    #[test]
    fn cross_protocol_frames_are_rejected(
        packet in packet_strategy(),
        sender in protocol_strategy(),
        receiver in protocol_strategy(),
    ) {
        prop_assume!(sender != receiver);
        let enc = WireCodec::new(sender, 1).expect("k is in range");
        let dec = WireCodec::new(receiver, 1).expect("k is in range");
        let buf = enc.encode(packet, 0, 0);
        prop_assert_eq!(
            dec.decode(&buf),
            Err(WireError::ProtocolMismatch { got: sender, want: receiver })
        );
    }
}
