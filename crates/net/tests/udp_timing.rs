//! Wall-clock-sensitive UDP tests.
//!
//! These assert real latency and scheduling behaviour, so they are flaky
//! on loaded CI machines. They are `#[ignore]`d by default and only
//! assert when explicitly opted in:
//!
//! ```text
//! RSTP_NET_TIMING=1 cargo test -p rstp-net --test udp_timing -- --ignored
//! ```
//!
//! Logic-level UDP tests (framing, addressing, non-blocking polling) do
//! not depend on timing and run unconditionally in `crates/net/src/udp.rs`
//! and `udp_logic` below.

use rstp_core::{Packet, TimingParams};
use rstp_net::{
    run_endpoint, DriverConfig, DriverOutcome, Pace, ProtocolId, TickClock, Transport,
    UdpTransport, WireCodec,
};
use std::time::{Duration, Instant};

/// True when the operator opted into wall-clock assertions.
fn timing_enabled() -> bool {
    std::env::var("RSTP_NET_TIMING").is_ok_and(|v| v == "1")
}

fn params() -> TimingParams {
    TimingParams::from_ticks(1, 2, 4).expect("valid")
}

/// Unconditional logic test: a full alpha transfer over real UDP loopback
/// sockets, with generous budgets so scheduling noise cannot fail it.
#[test]
fn udp_logic_alpha_transfer_round_trips() {
    let p = params();
    let tick = Duration::from_micros(500);
    let input = vec![true, false, false, true, true];
    let codec = WireCodec::new(ProtocolId::Alpha, 0).expect("codec");
    let (mut t_end, mut r_end) = UdpTransport::loopback_pair(codec).expect("pair");
    let epoch = Instant::now() + Duration::from_millis(2);
    let t_clock = TickClock::with_epoch(epoch, tick);
    let r_clock = TickClock::with_epoch(epoch, tick);
    let t_cfg = DriverConfig::new(p, tick).with_max_wall(Duration::from_secs(20));
    let r_cfg = DriverConfig::new(p, tick)
        .with_expected_writes(input.len())
        .with_max_wall(Duration::from_secs(20));
    let t_input = input.clone();
    let t_handle = std::thread::spawn(move || {
        let automaton = rstp_core::protocols::AlphaTransmitter::new(p, t_input);
        run_endpoint(&automaton, &mut t_end, t_clock, &t_cfg)
    });
    let r_handle = std::thread::spawn(move || {
        let automaton = rstp_core::protocols::AlphaReceiver::new();
        run_endpoint(&automaton, &mut r_end, r_clock, &r_cfg)
    });
    let t_report = t_handle.join().expect("join").expect("transmitter");
    let r_report = r_handle.join().expect("join").expect("receiver");
    assert_eq!(t_report.outcome, DriverOutcome::Completed);
    assert_eq!(r_report.outcome, DriverOutcome::Completed);
    assert_eq!(r_report.written, input);
}

/// Loopback latency must be far below a millisecond-scale tick, so the
/// measured per-packet latency histogram should sit well under one tick.
#[test]
#[ignore = "wall-clock sensitive; run with RSTP_NET_TIMING=1 and --ignored"]
fn udp_loopback_latency_is_below_one_tick() {
    if !timing_enabled() {
        eprintln!("skipping: set RSTP_NET_TIMING=1 to enable timing assertions");
        return;
    }
    let codec = WireCodec::new(ProtocolId::Alpha, 0).expect("codec");
    let (mut a, mut b) = UdpTransport::loopback_pair(codec).expect("pair");
    let clock = TickClock::start(Duration::from_millis(1));
    let mut worst = Duration::ZERO;
    for i in 0..64u64 {
        let t0 = Instant::now();
        a.send(Packet::Data(i), clock.now_micros()).expect("send");
        loop {
            if let Some(frame) = b.poll_recv().expect("poll") {
                assert_eq!(frame.packet, Packet::Data(i));
                worst = worst.max(t0.elapsed());
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(1),
                "loopback datagram lost?"
            );
            std::thread::yield_now();
        }
    }
    assert!(
        worst < Duration::from_millis(1),
        "worst loopback latency {worst:?} exceeds one 1 ms tick"
    );
}

/// At slow pace with a comfortable tick, the driver must hold its step
/// schedule: essentially no deadline misses or timing violations.
#[test]
#[ignore = "wall-clock sensitive; run with RSTP_NET_TIMING=1 and --ignored"]
fn udp_driver_holds_its_schedule_under_comfortable_ticks() {
    if !timing_enabled() {
        eprintln!("skipping: set RSTP_NET_TIMING=1 to enable timing assertions");
        return;
    }
    let p = params();
    let tick = Duration::from_millis(2);
    let input = vec![true; 16];
    let codec = WireCodec::new(ProtocolId::Alpha, 0).expect("codec");
    let (mut t_end, mut r_end) = UdpTransport::loopback_pair(codec).expect("pair");
    let epoch = Instant::now() + Duration::from_millis(5);
    let t_clock = TickClock::with_epoch(epoch, tick);
    let r_clock = TickClock::with_epoch(epoch, tick);
    let t_cfg = DriverConfig::new(p, tick)
        .with_pace(Pace::Slow)
        .with_max_wall(Duration::from_secs(30));
    let r_cfg = DriverConfig::new(p, tick)
        .with_expected_writes(input.len())
        .with_max_wall(Duration::from_secs(30));
    let t_input = input.clone();
    let t_handle = std::thread::spawn(move || {
        let automaton = rstp_core::protocols::AlphaTransmitter::new(p, t_input);
        run_endpoint(&automaton, &mut t_end, t_clock, &t_cfg)
    });
    let r_handle = std::thread::spawn(move || {
        let automaton = rstp_core::protocols::AlphaReceiver::new();
        run_endpoint(&automaton, &mut r_end, r_clock, &r_cfg)
    });
    let t_report = t_handle.join().expect("join").expect("transmitter");
    let r_report = r_handle.join().expect("join").expect("receiver");
    assert_eq!(r_report.written, input);
    let budget = t_report.steps / 10; // tolerate < 10% noise
    assert!(
        t_report.deadline_misses <= budget,
        "transmitter missed {} of {} deadlines",
        t_report.deadline_misses,
        t_report.steps
    );
    assert!(
        t_report.timing_violations <= budget,
        "transmitter violated timing {} times over {} steps",
        t_report.timing_violations,
        t_report.steps
    );
}
