//! The block codec: `b = ⌊log2 μ_k(δ)⌋` bits per burst of `δ` packets.
//!
//! [`BlockCodec`] fixes the packet alphabet size `k` and the burst size `δ`
//! (the paper's `δ1` for `A^β(k)`, `δ2` for `A^γ(k)`) and provides:
//!
//! * [`encode_block`](BlockCodec::encode_block) — exactly `b` bits → packet
//!   sequence of length `δ` (the composite `toseq_k(δ) ∘ tomulti_k(δ)` of
//!   paper §6.1),
//! * [`decode_block`](BlockCodec::decode_block) — a received **multiset** of
//!   `δ` packets → the `b` bits (order-insensitive by construction),
//! * [`encode_stream`](BlockCodec::encode_stream) — a whole input sequence
//!   `X`, zero-padding the final block (the paper assumes
//!   `|X| ≡ 0 (mod b)`; we lift that),
//! * [`collect`](BlockCodec::collect) — accumulate `δ` packets into a
//!   multiset, as the receiver's `A := A ∪ {p}` loop does.

use core::fmt;
use rstp_combinatorics::{block_bits, CountError, Multiset, MultisetCodec, RankError};

use crate::bits::{bits_to_u128, u128_to_bits};

/// Errors from block encoding/decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The `(k, δ)` pair cannot carry information (`μ_k(δ) < 2`) or
    /// overflowed counting.
    Parameters(CountError),
    /// A block of bits has the wrong length.
    WrongBlockLength {
        /// Expected number of bits (`b`).
        expected: u32,
        /// Offered number of bits.
        actual: usize,
    },
    /// A multiset offered for decoding has the wrong size or universe, or a
    /// packet is outside the alphabet.
    Rank(RankError),
    /// A decoded multiset's rank is `≥ 2^b`: it is not the image of any bit
    /// block, so the burst was corrupted (impossible over the paper's
    /// faultless channel; reachable with the fault-injecting channels).
    NotACodeword {
        /// The offending rank.
        rank: u128,
        /// The number of codewords, `2^b`.
        codewords: u128,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Parameters(e) => write!(f, "unusable (k, delta): {e}"),
            CodecError::WrongBlockLength { expected, actual } => {
                write!(f, "block must have {expected} bits, got {actual}")
            }
            CodecError::Rank(e) => write!(f, "{e}"),
            CodecError::NotACodeword { rank, codewords } => {
                write!(f, "multiset rank {rank} >= codeword count {codewords}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CountError> for CodecError {
    fn from(e: CountError) -> Self {
        CodecError::Parameters(e)
    }
}

impl From<RankError> for CodecError {
    fn from(e: RankError) -> Self {
        CodecError::Rank(e)
    }
}

/// One encoded block: the packet sequence for a burst plus the number of
/// *meaningful* bits it carries (less than `b` only for a padded final
/// block).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    packets: Vec<u64>,
    meaningful_bits: u32,
}

impl Block {
    /// The packet sequence to transmit, length `δ`.
    #[must_use]
    pub fn packets(&self) -> &[u64] {
        &self.packets
    }

    /// How many of the block's decoded bits are real input (the rest is
    /// padding on the final block).
    #[must_use]
    pub fn meaningful_bits(&self) -> u32 {
        self.meaningful_bits
    }
}

/// A block codec for alphabet size `k` and burst size `δ`.
///
/// See the [crate docs](crate) for the end-to-end pipeline and an example.
#[derive(Clone, Debug)]
pub struct BlockCodec {
    codec: MultisetCodec,
    bits: u32,
}

impl BlockCodec {
    /// Creates a codec packing `⌊log2 μ_k(δ)⌋` bits per burst of `δ`
    /// packets over the alphabet `{0, …, k-1}`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Parameters`] if `k < 2`, `δ = 0`, or counting
    /// overflows.
    pub fn new(k: u64, delta: u64) -> Result<Self, CodecError> {
        let bits = block_bits(k, delta)?;
        let codec = MultisetCodec::new(k, delta)?;
        Ok(BlockCodec { codec, bits })
    }

    /// The packet alphabet size `k`.
    #[must_use]
    pub fn alphabet(&self) -> u64 {
        self.codec.universe()
    }

    /// The burst size `δ` (packets per block).
    #[must_use]
    pub fn packets_per_block(&self) -> u64 {
        self.codec.size()
    }

    /// Bits carried per block, `b = ⌊log2 μ_k(δ)⌋`.
    #[must_use]
    pub fn bits_per_block(&self) -> u32 {
        self.bits
    }

    /// Number of blocks needed for `n` input bits: `⌈n / b⌉` (at least 1 so
    /// that an empty input still quiesces through one round; callers may
    /// special-case `n = 0` instead).
    #[must_use]
    pub fn blocks_for(&self, n: usize) -> usize {
        n.div_ceil(self.bits as usize)
    }

    /// Encodes exactly `b` bits into a burst (paper §6.1:
    /// `toseq_k(δ) ∘ tomulti_k(δ)`).
    ///
    /// # Errors
    ///
    /// [`CodecError::WrongBlockLength`] unless `bits.len() == b`.
    pub fn encode_block(&self, bits: &[bool]) -> Result<Vec<u64>, CodecError> {
        if bits.len() != self.bits as usize {
            return Err(CodecError::WrongBlockLength {
                expected: self.bits,
                actual: bits.len(),
            });
        }
        let rank = bits_to_u128(bits);
        let multiset = self.codec.unrank(rank)?;
        Ok(self.codec.to_sequence(&multiset)?)
    }

    /// Decodes a received multiset back into the block's `b` bits.
    ///
    /// Order-insensitivity is structural: the argument is already a
    /// multiset.
    ///
    /// # Errors
    ///
    /// [`CodecError::Rank`] for a wrong-sized multiset;
    /// [`CodecError::NotACodeword`] if the rank exceeds `2^b - 1`.
    pub fn decode_block(&self, multiset: &Multiset) -> Result<Vec<bool>, CodecError> {
        let rank = self.codec.rank(multiset)?;
        let codewords = 1u128 << self.bits;
        if rank >= codewords {
            return Err(CodecError::NotACodeword { rank, codewords });
        }
        Ok(u128_to_bits(rank, self.bits as usize))
    }

    /// Splits an entire input sequence `X` into encoded blocks, zero-padding
    /// the last block. Each [`Block`] records how many of its bits are
    /// meaningful so the receiver can truncate.
    ///
    /// # Errors
    ///
    /// Propagates [`encode_block`](Self::encode_block) errors (none occur
    /// for well-formed codecs).
    pub fn encode_stream(&self, input: &[bool]) -> Result<Vec<Block>, CodecError> {
        let b = self.bits as usize;
        let mut blocks = Vec::with_capacity(input.len().div_ceil(b));
        for chunk in input.chunks(b) {
            let mut bits = chunk.to_vec();
            let meaningful = bits.len() as u32;
            bits.resize(b, false);
            blocks.push(Block {
                packets: self.encode_block(&bits)?,
                meaningful_bits: meaningful,
            });
        }
        Ok(blocks)
    }

    /// Decodes a sequence of block multisets produced from
    /// [`encode_stream`](Self::encode_stream), truncating to
    /// `total_bits` (the length of the original input).
    ///
    /// # Errors
    ///
    /// Propagates [`decode_block`](Self::decode_block) errors.
    pub fn decode_stream(
        &self,
        multisets: &[Multiset],
        total_bits: usize,
    ) -> Result<Vec<bool>, CodecError> {
        let mut out = Vec::with_capacity(total_bits);
        for m in multisets {
            out.extend(self.decode_block(m)?);
        }
        out.truncate(total_bits);
        Ok(out)
    }

    /// Accumulates a burst of exactly `δ` packets into a multiset — the
    /// receiver's `A := A ∪ {p}` loop of Figures 3 and 4, in one call.
    ///
    /// # Errors
    ///
    /// [`CodecError::Rank`] if the count differs from `δ` or a packet is
    /// outside the alphabet.
    pub fn collect(&self, packets: &[u64]) -> Result<Multiset, CodecError> {
        Ok(self.codec.from_sequence(packets)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parameters_of_paper_examples() {
        // k=2, delta=7: mu=8, 3 bits per 7 packets.
        let c = BlockCodec::new(2, 7).unwrap();
        assert_eq!(c.alphabet(), 2);
        assert_eq!(c.packets_per_block(), 7);
        assert_eq!(c.bits_per_block(), 3);
        // k=16, delta=8: mu_16(8) = C(23,15) = 490314 -> 18 bits.
        let c = BlockCodec::new(16, 8).unwrap();
        assert_eq!(c.bits_per_block(), 18);
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(matches!(
            BlockCodec::new(1, 5),
            Err(CodecError::Parameters(_))
        ));
        assert!(matches!(
            BlockCodec::new(2, 0),
            Err(CodecError::Parameters(_))
        ));
        assert!(matches!(
            BlockCodec::new(0, 5),
            Err(CodecError::Parameters(_))
        ));
    }

    #[test]
    fn encode_block_roundtrip_exhaustive_small() {
        let c = BlockCodec::new(3, 4).unwrap(); // mu_3(4)=15 -> 3 bits
        assert_eq!(c.bits_per_block(), 3);
        for v in 0..8u128 {
            let bits = u128_to_bits(v, 3);
            let packets = c.encode_block(&bits).unwrap();
            assert_eq!(packets.len(), 4);
            assert!(packets.iter().all(|&p| p < 3));
            let multiset = c.collect(&packets).unwrap();
            assert_eq!(c.decode_block(&multiset).unwrap(), bits);
        }
    }

    #[test]
    fn decode_survives_arbitrary_reordering() {
        let c = BlockCodec::new(4, 5).unwrap();
        let bits = u128_to_bits(0b10110, 5);
        let bits = &bits[bits.len() - c.bits_per_block() as usize..];
        let mut packets = c.encode_block(bits).unwrap();
        packets.reverse();
        let multiset = c.collect(&packets).unwrap();
        assert_eq!(c.decode_block(&multiset).unwrap(), bits);
    }

    #[test]
    fn wrong_block_length_rejected() {
        let c = BlockCodec::new(2, 7).unwrap();
        assert!(matches!(
            c.encode_block(&[true]),
            Err(CodecError::WrongBlockLength {
                expected: 3,
                actual: 1
            })
        ));
    }

    #[test]
    fn non_codeword_detected() {
        // mu_2(6) = 7, b = 2, codewords = 4; multisets of rank 4..6 are not
        // codewords. Rank 6 is {1,1,1,1,1,1}.
        let c = BlockCodec::new(2, 6).unwrap();
        assert_eq!(c.bits_per_block(), 2);
        let bad = Multiset::from_symbols(2, &[1, 1, 1, 1, 1, 1]);
        assert!(matches!(
            c.decode_block(&bad),
            Err(CodecError::NotACodeword {
                rank: 6,
                codewords: 4
            })
        ));
    }

    #[test]
    fn stream_pads_and_truncates() {
        let c = BlockCodec::new(2, 7).unwrap(); // 3 bits/block
        let input = vec![true, false, true, true]; // 4 bits -> 2 blocks
        let blocks = c.encode_stream(&input).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].meaningful_bits(), 3);
        assert_eq!(blocks[1].meaningful_bits(), 1);
        let multisets: Vec<Multiset> = blocks
            .iter()
            .map(|b| c.collect(b.packets()).unwrap())
            .collect();
        assert_eq!(c.decode_stream(&multisets, input.len()).unwrap(), input);
    }

    #[test]
    fn empty_stream() {
        let c = BlockCodec::new(2, 7).unwrap();
        assert!(c.encode_stream(&[]).unwrap().is_empty());
        assert_eq!(c.decode_stream(&[], 0).unwrap(), Vec::<bool>::new());
        assert_eq!(c.blocks_for(0), 0);
        assert_eq!(c.blocks_for(1), 1);
        assert_eq!(c.blocks_for(3), 1);
        assert_eq!(c.blocks_for(4), 2);
    }

    #[test]
    fn collect_validates() {
        let c = BlockCodec::new(2, 3).unwrap();
        assert!(matches!(c.collect(&[0, 1]), Err(CodecError::Rank(_))));
        assert!(matches!(c.collect(&[0, 1, 7]), Err(CodecError::Rank(_))));
    }

    #[test]
    fn error_display_nonempty() {
        let c = BlockCodec::new(2, 6).unwrap();
        let bad = Multiset::from_symbols(2, &[1; 6]);
        let e = c.decode_block(&bad).unwrap_err();
        assert!(e.to_string().contains("codeword"));
    }

    proptest! {
        #[test]
        fn prop_stream_roundtrip(
            k in 2u64..8,
            delta in 2u64..12,
            input in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let c = BlockCodec::new(k, delta).unwrap();
            let blocks = c.encode_stream(&input).unwrap();
            prop_assert_eq!(blocks.len(), c.blocks_for(input.len()));
            let multisets: Vec<Multiset> = blocks
                .iter()
                .map(|b| c.collect(b.packets()).unwrap())
                .collect();
            prop_assert_eq!(c.decode_stream(&multisets, input.len()).unwrap(), input);
        }

        #[test]
        fn prop_every_codeword_is_sorted_burst(
            k in 2u64..6,
            delta in 2u64..8,
            v in any::<u64>(),
        ) {
            let c = BlockCodec::new(k, delta).unwrap();
            let value = u128::from(v) % (1u128 << c.bits_per_block());
            let bits = u128_to_bits(value, c.bits_per_block() as usize);
            let packets = c.encode_block(&bits).unwrap();
            prop_assert_eq!(packets.len() as u64, delta);
            prop_assert!(packets.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
