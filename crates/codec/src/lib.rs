//! Block codec between binary message streams and multiset-encoded packet
//! bursts — the realization of `tomulti_k(n)` ∘ `toseq_k(n)` from paper §3
//! used by the `A^β(k)` and `A^γ(k)` protocols of §6.
//!
//! The transmitter-side pipeline for one block:
//!
//! ```text
//! b = ⌊log2 μ_k(δ)⌋ input bits
//!     │  interpret as an integer r ∈ [0, 2^b) ⊆ [0, μ_k(δ))
//!     ▼
//! multiset P = unrank(r) ∈ multi_k(δ)          (tomulti_k(δ))
//!     │  linearize
//!     ▼
//! k-ary packet sequence of length δ            (toseq_k(δ))
//! ```
//!
//! and the receiver inverts it, crucially **from the multiset alone** — the
//! packets of one burst may arrive in any order, so the decoder accepts a
//! [`Multiset`] rather than a sequence.
//!
//! The paper simplifies by assuming `|X| ≡ 0 (mod b)`; real inputs are not
//! multiples of `b`, so [`BlockCodec::encode_stream`] pads the last block
//! with zeros and the decoder truncates to the announced message count.
//!
//! # Example
//!
//! ```
//! use rstp_codec::BlockCodec;
//!
//! // Blocks of delta=7 packets over a binary packet alphabet: mu_2(7) = 8,
//! // so each burst of 7 packets carries 3 input bits.
//! let codec = BlockCodec::new(2, 7).unwrap();
//! assert_eq!(codec.bits_per_block(), 3);
//!
//! let input = [true, false, true, true, false];
//! let blocks = codec.encode_stream(&input).unwrap();
//! assert_eq!(blocks.len(), 2); // ceil(5 / 3)
//!
//! let mut out = Vec::new();
//! for block in &blocks {
//!     let multiset = codec.collect(block.packets()).unwrap();
//!     out.extend(codec.decode_block(&multiset).unwrap());
//! }
//! out.truncate(input.len());
//! assert_eq!(out, input);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bits;
pub mod block;
pub mod stream;

pub use bits::{bits_from_bytes, bits_to_bytes, bits_to_u128, u128_to_bits};
pub use block::{Block, BlockCodec, CodecError};
pub use stream::{StreamDecoder, StreamEncoder};

pub use rstp_combinatorics::Multiset;
