//! A push-style streaming decoder.
//!
//! [`StreamDecoder`] is the receiver-side decoding loop of Figures 3/4 as a
//! reusable component: push packets one at a time (in *any* order within a
//! burst), and decoded message bits become available as each burst
//! completes. The protocol receiver automata inline this logic to keep
//! their state structs transparent; downstream users building on the codec
//! directly get it here, with the same padding/truncation rules as
//! [`BlockCodec::decode_stream`](crate::BlockCodec::decode_stream).

use crate::block::{BlockCodec, CodecError};
use rstp_combinatorics::Multiset;

/// Incremental decoder: packets in, message bits out.
///
/// # Example
///
/// ```
/// use rstp_codec::{BlockCodec, StreamDecoder};
///
/// let codec = BlockCodec::new(3, 4).unwrap(); // 3 bits per 4 packets
/// let input = [true, false, true, true, false];
/// let blocks = codec.encode_stream(&input).unwrap();
///
/// let mut decoder = StreamDecoder::new(codec.clone(), input.len());
/// for block in &blocks {
///     // bursts may arrive reordered — push in reverse:
///     for &p in block.packets().iter().rev() {
///         decoder.push(p).unwrap();
///     }
/// }
/// assert!(decoder.is_complete());
/// assert_eq!(decoder.bits(), &input);
/// ```
#[derive(Clone, Debug)]
pub struct StreamDecoder {
    codec: BlockCodec,
    burst: Multiset,
    bits: Vec<bool>,
    expected_bits: usize,
    failures: u32,
}

impl StreamDecoder {
    /// Creates a decoder that will reconstruct exactly `expected_bits`
    /// message bits (trailing padding in the final burst is dropped).
    #[must_use]
    pub fn new(codec: BlockCodec, expected_bits: usize) -> Self {
        let k = codec.alphabet();
        StreamDecoder {
            codec,
            burst: Multiset::empty(k),
            bits: Vec::with_capacity(expected_bits),
            expected_bits,
            failures: 0,
        }
    }

    /// Pushes one received packet. Returns the number of *new* message
    /// bits made available (0 unless this packet completed a burst).
    ///
    /// # Errors
    ///
    /// [`CodecError::Rank`] if the symbol is outside the alphabet. Burst
    /// decode failures (possible only on a faulty channel) are *not*
    /// errors; they increment [`failures`](Self::failures) and skip the
    /// burst, mirroring the receiver automata.
    pub fn push(&mut self, symbol: u64) -> Result<usize, CodecError> {
        if symbol >= self.codec.alphabet() {
            return Err(CodecError::Rank(
                rstp_combinatorics::rank::RankError::WrongUniverse {
                    expected: self.codec.alphabet(),
                    actual: symbol + 1,
                },
            ));
        }
        self.burst.insert(symbol);
        if self.burst.len() < self.codec.packets_per_block() {
            return Ok(0);
        }
        let decoded = self.codec.decode_block(&self.burst);
        self.burst.clear();
        match decoded {
            Ok(bits) => {
                let remaining = self.expected_bits.saturating_sub(self.bits.len());
                let take = bits.len().min(remaining);
                self.bits.extend(bits.into_iter().take(take));
                Ok(take)
            }
            Err(_) => {
                self.failures += 1;
                Ok(0)
            }
        }
    }

    /// All message bits decoded so far, in order.
    #[must_use]
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Whether the full expected payload has been decoded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.bits.len() >= self.expected_bits
    }

    /// Packets of the burst in progress.
    #[must_use]
    pub fn pending_packets(&self) -> u64 {
        self.burst.len()
    }

    /// Bursts that failed to decode (nonzero only on faulty channels).
    #[must_use]
    pub fn failures(&self) -> u32 {
        self.failures
    }
}

/// Incremental encoder: message bits in, packet bursts out — the
/// transmitter-side mirror of [`StreamDecoder`], for callers that produce
/// bits on the fly rather than holding all of `X` up front.
///
/// # Example
///
/// ```
/// use rstp_codec::{BlockCodec, StreamDecoder, StreamEncoder};
///
/// let codec = BlockCodec::new(3, 4).unwrap(); // 3 bits per 4 packets
/// let input = [true, false, true, true, false];
///
/// let mut enc = StreamEncoder::new(codec.clone());
/// let mut bursts = Vec::new();
/// for &bit in &input {
///     if let Some(burst) = enc.push(bit).unwrap() {
///         bursts.push(burst);
///     }
/// }
/// if let Some(last) = enc.finish().unwrap() {
///     bursts.push(last);
/// }
///
/// let mut dec = StreamDecoder::new(codec, input.len());
/// for burst in bursts {
///     for sym in burst {
///         dec.push(sym).unwrap();
///     }
/// }
/// assert_eq!(dec.bits(), &input);
/// ```
#[derive(Clone, Debug)]
pub struct StreamEncoder {
    codec: BlockCodec,
    pending: Vec<bool>,
    bits_consumed: usize,
}

impl StreamEncoder {
    /// Creates an encoder over `codec`'s `(k, δ)` block shape.
    #[must_use]
    pub fn new(codec: BlockCodec) -> Self {
        StreamEncoder {
            codec,
            pending: Vec::new(),
            bits_consumed: 0,
        }
    }

    /// Pushes one message bit; returns a full burst when one completes.
    ///
    /// # Errors
    ///
    /// Propagates codec errors (none occur for a well-formed codec).
    pub fn push(&mut self, bit: bool) -> Result<Option<Vec<u64>>, CodecError> {
        self.pending.push(bit);
        self.bits_consumed += 1;
        if self.pending.len() == self.codec.bits_per_block() as usize {
            let burst = self.codec.encode_block(&self.pending)?;
            self.pending.clear();
            Ok(Some(burst))
        } else {
            Ok(None)
        }
    }

    /// Bits buffered toward the next burst.
    #[must_use]
    pub fn pending_bits(&self) -> usize {
        self.pending.len()
    }

    /// Total bits consumed so far (what the receiver's `expected_bits`
    /// must be, once finished).
    #[must_use]
    pub fn bits_consumed(&self) -> usize {
        self.bits_consumed
    }

    /// Flushes the final partial block (zero-padded), if any.
    ///
    /// # Errors
    ///
    /// Propagates codec errors.
    pub fn finish(mut self) -> Result<Option<Vec<u64>>, CodecError> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        self.pending
            .resize(self.codec.bits_per_block() as usize, false);
        Ok(Some(self.codec.encode_block(&self.pending)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> BlockCodec {
        BlockCodec::new(3, 4).unwrap()
    }

    #[test]
    fn decodes_in_order_stream() {
        let c = codec();
        let input = vec![true, false, true, true, false, false, true];
        let mut d = StreamDecoder::new(c.clone(), input.len());
        let mut produced = 0;
        for b in c.encode_stream(&input).unwrap() {
            for &p in b.packets() {
                produced += d.push(p).unwrap();
            }
        }
        assert!(d.is_complete());
        assert_eq!(d.bits(), &input[..]);
        assert_eq!(produced, input.len());
        assert_eq!(d.failures(), 0);
        assert_eq!(d.pending_packets(), 0);
    }

    #[test]
    fn partial_burst_yields_nothing() {
        let c = codec();
        let mut d = StreamDecoder::new(c, 3);
        assert_eq!(d.push(0).unwrap(), 0);
        assert_eq!(d.push(1).unwrap(), 0);
        assert_eq!(d.pending_packets(), 2);
        assert!(!d.is_complete());
        assert!(d.bits().is_empty());
    }

    #[test]
    fn out_of_alphabet_rejected() {
        let mut d = StreamDecoder::new(codec(), 3);
        assert!(d.push(3).is_err());
        assert_eq!(d.pending_packets(), 0); // rejected packet not absorbed
    }

    #[test]
    fn corrupt_burst_counted_and_skipped() {
        // k=2, delta=6: mu=7, b=2; all-ones burst has rank 6 >= 4.
        let c = BlockCodec::new(2, 6).unwrap();
        let mut d = StreamDecoder::new(c.clone(), 2);
        for _ in 0..6 {
            d.push(1).unwrap();
        }
        assert_eq!(d.failures(), 1);
        assert!(d.bits().is_empty());
        // A good burst afterwards still decodes.
        let good = c.encode_stream(&[true, false]).unwrap();
        for &p in good[0].packets() {
            d.push(p).unwrap();
        }
        assert_eq!(d.bits(), &[true, false]);
    }

    #[test]
    fn encoder_emits_on_block_boundaries() {
        let c = codec(); // 3 bits/block
        let mut e = StreamEncoder::new(c);
        assert_eq!(e.push(true).unwrap(), None);
        assert_eq!(e.push(false).unwrap(), None);
        assert_eq!(e.pending_bits(), 2);
        let burst = e.push(true).unwrap().expect("third bit completes a block");
        assert_eq!(burst.len(), 4);
        assert_eq!(e.pending_bits(), 0);
        assert_eq!(e.bits_consumed(), 3);
        assert!(e.finish().unwrap().is_none());
    }

    #[test]
    fn encoder_finish_pads_partial_block() {
        let c = codec();
        let mut e = StreamEncoder::new(c.clone());
        e.push(true).unwrap();
        let last = e.finish().unwrap().expect("partial block flushes");
        // Must equal the batch encoder's padded block.
        let batch = c.encode_stream(&[true]).unwrap();
        assert_eq!(last, batch[0].packets());
    }

    #[test]
    fn encoder_finish_empty_is_none() {
        assert!(StreamEncoder::new(codec()).finish().unwrap().is_none());
    }

    proptest! {
        #[test]
        fn prop_stream_encoder_matches_batch_encoder(
            k in 2u64..6,
            delta in 2u64..8,
            input in proptest::collection::vec(any::<bool>(), 0..100),
        ) {
            let c = BlockCodec::new(k, delta).unwrap();
            let mut e = StreamEncoder::new(c.clone());
            let mut bursts = Vec::new();
            for &b in &input {
                if let Some(burst) = e.push(b).unwrap() {
                    bursts.push(burst);
                }
            }
            prop_assert_eq!(e.bits_consumed(), input.len());
            if let Some(last) = e.finish().unwrap() {
                bursts.push(last);
            }
            let batch: Vec<Vec<u64>> = c
                .encode_stream(&input)
                .unwrap()
                .iter()
                .map(|b| b.packets().to_vec())
                .collect();
            prop_assert_eq!(bursts, batch);
        }

        #[test]
        fn prop_any_within_burst_order_decodes(
            k in 2u64..6,
            delta in 2u64..8,
            input in proptest::collection::vec(any::<bool>(), 1..80),
            seed in any::<u64>(),
        ) {
            let c = BlockCodec::new(k, delta).unwrap();
            let mut d = StreamDecoder::new(c.clone(), input.len());
            let mut state = seed | 1;
            for b in c.encode_stream(&input).unwrap() {
                let mut burst = b.packets().to_vec();
                // Deterministic pseudo-shuffle within the burst.
                for i in (1..burst.len()).rev() {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let j = (state >> 33) as usize % (i + 1);
                    burst.swap(i, j);
                }
                for p in burst {
                    d.push(p).unwrap();
                }
            }
            prop_assert!(d.is_complete());
            prop_assert_eq!(d.bits(), &input[..]);
        }
    }
}
