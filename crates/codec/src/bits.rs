//! Bit-level helpers: the paper's message domain is `M = {0, 1}`, so input
//! sequences are bit vectors. These helpers convert between bit slices,
//! integers (block ranks) and bytes (for the file-transfer example).
//!
//! Bit order is **most-significant first** within both integers and bytes:
//! `bits_to_u128(&[true, false]) == 2`.

/// Interprets up to 128 bits (most-significant first) as an integer.
///
/// # Panics
///
/// Panics if `bits.len() > 128`.
#[must_use]
pub fn bits_to_u128(bits: &[bool]) -> u128 {
    assert!(bits.len() <= 128, "more than 128 bits");
    bits.iter()
        .fold(0u128, |acc, &b| (acc << 1) | u128::from(b))
}

/// Writes `value` as exactly `width` bits, most-significant first.
///
/// # Panics
///
/// Panics if `width > 128` or if `value` does not fit in `width` bits.
#[must_use]
pub fn u128_to_bits(value: u128, width: usize) -> Vec<bool> {
    assert!(width <= 128, "width exceeds 128");
    if width < 128 {
        assert!(
            value < (1u128 << width),
            "value {value} does not fit in {width} bits"
        );
    }
    (0..width).rev().map(|i| (value >> i) & 1 == 1).collect()
}

/// Expands bytes into bits, most-significant bit of each byte first.
#[must_use]
pub fn bits_from_bytes(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|&byte| (0..8).rev().map(move |i| (byte >> i) & 1 == 1))
        .collect()
}

/// Packs bits into bytes (most-significant first), zero-padding the final
/// partial byte.
#[must_use]
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u8, |acc, (i, &b)| acc | (u8::from(b) << (7 - i)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_to_u128_msb_first() {
        assert_eq!(bits_to_u128(&[]), 0);
        assert_eq!(bits_to_u128(&[true]), 1);
        assert_eq!(bits_to_u128(&[true, false]), 2);
        assert_eq!(bits_to_u128(&[true, false, true, true]), 0b1011);
    }

    #[test]
    fn u128_to_bits_examples() {
        assert_eq!(u128_to_bits(0, 0), Vec::<bool>::new());
        assert_eq!(u128_to_bits(5, 4), vec![false, true, false, true]);
        assert_eq!(u128_to_bits(1, 1), vec![true]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn u128_to_bits_overflow_panics() {
        let _ = u128_to_bits(4, 2);
    }

    #[test]
    fn full_width_roundtrip() {
        let v = u128::MAX - 12345;
        assert_eq!(bits_to_u128(&u128_to_bits(v, 128)), v);
    }

    #[test]
    fn bytes_roundtrip_exact() {
        let bytes = [0x00, 0xFF, 0xA5, 0x3C];
        let bits = bits_from_bytes(&bytes);
        assert_eq!(bits.len(), 32);
        assert_eq!(bits_to_bytes(&bits), bytes);
    }

    #[test]
    fn bytes_partial_final_byte_zero_padded() {
        let bits = [true, true, true]; // 0b1110_0000
        assert_eq!(bits_to_bytes(&bits), vec![0xE0]);
    }

    proptest! {
        #[test]
        fn prop_int_roundtrip(value in any::<u128>(), extra in 0usize..8) {
            let width = (128 - value.leading_zeros() as usize + extra).min(128);
            prop_assert_eq!(bits_to_u128(&u128_to_bits(value, width)), value);
        }

        #[test]
        fn prop_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert_eq!(bits_to_bytes(&bits_from_bytes(&bytes)), bytes);
        }

        #[test]
        fn prop_bits_roundtrip_via_bytes(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
            let bytes = bits_to_bytes(&bits);
            let back = bits_from_bytes(&bytes);
            // Padded to a byte boundary; the prefix must match.
            prop_assert_eq!(&back[..bits.len()], &bits[..]);
            prop_assert!(back[bits.len()..].iter().all(|&b| !b));
        }
    }
}
