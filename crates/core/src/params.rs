//! The real-time parameters `(c1, c2, d)` of RSTP (paper §1, §4).
//!
//! Every process takes a locally controlled step at least every `c1` and at
//! most every `c2` time units; every packet is delivered within `d` of being
//! sent. The paper fixes `0 < c1 ≤ c2 ≤ d`.
//!
//! Two derived step counts pervade the analysis:
//!
//! * `δ1 = d / c1` — the most steps a process can take in `d` time
//!   ([`TimingParams::delta1`], rounded *up* for inexact division: a
//!   protocol that must wait at least `d` needs `⌈d/c1⌉` steps of length
//!   `≥ c1`),
//! * `δ2 = d / c2` — the fewest steps a process takes in `d` time
//!   ([`TimingParams::delta2`], rounded *down*, and at least 1).
//!
//! The paper's future-work section (§7) proposes replacing `d` by a delivery
//! window `[d_lo, d_hi]` and giving each process its own step bounds; the
//! extended parameter set lives in [`crate::ext`].

use core::fmt;
use rstp_automata::TimeDelta;

/// A violation of the parameter constraints `0 < c1 ≤ c2 ≤ d`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamError {
    what: String,
}

impl ParamError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        ParamError { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid timing parameters: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

/// The validated triple `(c1, c2, d)` with `0 < c1 ≤ c2 ≤ d`.
///
/// # Example
///
/// ```
/// use rstp_core::TimingParams;
///
/// // c1 = 2, c2 = 3, d = 12  =>  delta1 = 6, delta2 = 4.
/// let p = TimingParams::from_ticks(2, 3, 12).unwrap();
/// assert_eq!(p.delta1(), 6);
/// assert_eq!(p.delta2(), 4);
///
/// assert!(TimingParams::from_ticks(3, 2, 12).is_err()); // c1 > c2
/// assert!(TimingParams::from_ticks(0, 2, 12).is_err()); // c1 = 0
/// assert!(TimingParams::from_ticks(2, 3, 2).is_err());  // d < c2
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimingParams {
    c1: TimeDelta,
    c2: TimeDelta,
    d: TimeDelta,
}

impl TimingParams {
    /// Validates and constructs the parameter triple.
    ///
    /// # Errors
    ///
    /// [`ParamError`] unless `0 < c1 ≤ c2 ≤ d`.
    pub fn new(c1: TimeDelta, c2: TimeDelta, d: TimeDelta) -> Result<Self, ParamError> {
        if c1.is_zero() {
            return Err(ParamError::new("c1 must be positive"));
        }
        if c1 > c2 {
            return Err(ParamError::new(format!("c1 = {c1} exceeds c2 = {c2}")));
        }
        if c2 > d {
            return Err(ParamError::new(format!("c2 = {c2} exceeds d = {d}")));
        }
        Ok(TimingParams { c1, c2, d })
    }

    /// Convenience constructor from raw tick counts.
    ///
    /// # Errors
    ///
    /// Same as [`TimingParams::new`].
    pub fn from_ticks(c1: u64, c2: u64, d: u64) -> Result<Self, ParamError> {
        TimingParams::new(
            TimeDelta::from_ticks(c1),
            TimeDelta::from_ticks(c2),
            TimeDelta::from_ticks(d),
        )
    }

    /// The minimum time between consecutive local steps of a process.
    #[must_use]
    pub fn c1(self) -> TimeDelta {
        self.c1
    }

    /// The maximum time between consecutive local steps of a process.
    #[must_use]
    pub fn c2(self) -> TimeDelta {
        self.c2
    }

    /// The maximum packet delivery delay.
    #[must_use]
    pub fn d(self) -> TimeDelta {
        self.d
    }

    /// `δ1 = ⌈d / c1⌉` — the most steps a process can take in `d` time;
    /// equivalently, the fewest `c1`-spaced steps spanning at least `d`.
    ///
    /// Equals the paper's `d/c1` whenever `c1` divides `d`.
    #[must_use]
    pub fn delta1(self) -> u64 {
        self.d.div_ceil(self.c1)
    }

    /// `δ2 = max(1, ⌊d / c2⌋)` — the fewest steps a process takes in `d`
    /// time. Equals the paper's `d/c2` whenever `c2` divides `d` (and since
    /// `c2 ≤ d`, the value is at least 1 before clamping).
    #[must_use]
    pub fn delta2(self) -> u64 {
        (self.d.div_floor(self.c2)).max(1)
    }

    /// The timing-uncertainty ratio `c2 / c1` as a float — the quantity that
    /// governs the passive-vs-active crossover (passive pays `Θ(δ1·c2)` =
    /// `Θ(d · c2/c1)` per burst window, active pays `Θ(d)`).
    #[must_use]
    pub fn uncertainty_ratio(self) -> f64 {
        self.c2.ticks() as f64 / self.c1.ticks() as f64
    }

    /// Uniformly rescales all three constants (bounds are homogeneous of
    /// degree 1, so this changes effort by exactly `factor`).
    ///
    /// # Errors
    ///
    /// [`ParamError`] if `factor` is zero (the triple would degenerate).
    pub fn scaled(self, factor: u64) -> Result<Self, ParamError> {
        if factor == 0 {
            return Err(ParamError::new("scale factor must be positive"));
        }
        TimingParams::new(self.c1 * factor, self.c2 * factor, self.d * factor)
    }
}

impl fmt::Display for TimingParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c1={}, c2={}, d={} (δ1={}, δ2={})",
            self.c1.ticks(),
            self.c2.ticks(),
            self.d.ticks(),
            self.delta1(),
            self.delta2()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_constraints() {
        let p = TimingParams::from_ticks(1, 1, 1).unwrap(); // c1 = c2 = d allowed
        assert_eq!(p.delta1(), 1);
        assert_eq!(p.delta2(), 1);
        let p = TimingParams::from_ticks(2, 5, 20).unwrap();
        assert_eq!(p.c1().ticks(), 2);
        assert_eq!(p.c2().ticks(), 5);
        assert_eq!(p.d().ticks(), 20);
    }

    #[test]
    fn rejects_violations() {
        assert!(TimingParams::from_ticks(0, 1, 2).is_err());
        assert!(TimingParams::from_ticks(2, 1, 2).is_err());
        assert!(TimingParams::from_ticks(1, 3, 2).is_err());
        let e = TimingParams::from_ticks(2, 1, 2).unwrap_err();
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn deltas_exact_division() {
        let p = TimingParams::from_ticks(2, 4, 12).unwrap();
        assert_eq!(p.delta1(), 6); // 12/2
        assert_eq!(p.delta2(), 3); // 12/4
    }

    #[test]
    fn deltas_inexact_division() {
        let p = TimingParams::from_ticks(5, 7, 12).unwrap();
        assert_eq!(p.delta1(), 3); // ceil(12/5)
        assert_eq!(p.delta2(), 1); // floor(12/7)
    }

    #[test]
    fn delta2_is_at_least_one() {
        let p = TimingParams::from_ticks(1, 7, 7).unwrap();
        assert_eq!(p.delta2(), 1);
    }

    #[test]
    fn uncertainty_ratio() {
        let p = TimingParams::from_ticks(2, 8, 16).unwrap();
        assert!((p.uncertainty_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_preserves_deltas() {
        let p = TimingParams::from_ticks(2, 3, 12).unwrap();
        let q = p.scaled(10).unwrap();
        assert_eq!(q.c1().ticks(), 20);
        assert_eq!(q.d().ticks(), 120);
        assert_eq!(p.delta1(), q.delta1());
        assert_eq!(p.delta2(), q.delta2());
        assert!(p.scaled(0).is_err());
    }

    #[test]
    fn display() {
        let p = TimingParams::from_ticks(2, 3, 12).unwrap();
        assert_eq!(p.to_string(), "c1=2, c2=3, d=12 (δ1=6, δ2=4)");
    }
}
