//! Stenning's protocol — the \[Ste76\] baseline the paper's introduction
//! cites among the earliest STP solutions.
//!
//! Stop-and-wait with **unbounded sequence numbers**: every data packet
//! carries `(seq, bit)` and is retransmitted until the matching `ack(seq)`
//! arrives; the receiver accepts packets only in sequence order and
//! (re-)acknowledges everything it sees. Because sequence numbers never
//! repeat, no stale packet or ack can alias a live one — so unlike the
//! alternating-bit protocol (whose 1-bit tags alias under
//! duplication+reordering), Stenning's protocol solves STP even on
//! channels that **lose, duplicate, and reorder** simultaneously.
//!
//! That contrast is exactly the boundary the paper draws: with a *finite*
//! packet alphabet, STP over duplicating+reordering channels is impossible
//! (\[WZ89\]); Stenning escapes by using an alphabet that grows with the
//! input. Within RSTP's model (finite `k`) it is inadmissible — it is
//! implemented here as the fault-tolerant comparison point for
//! experiment E9.
//!
//! Packet encoding: data symbol = `2·seq + bit` (so the alphabet used by a
//! run of length `n` is `{0, …, 2n-1}`); acks carry their `seq`.

use crate::action::{InternalKind, Message, Packet, RstpAction};
use crate::params::TimingParams;
use rstp_automata::{ActionClass, Automaton, StepError};
use std::collections::VecDeque;

/// Encodes `(seq, bit)` into a data symbol.
#[must_use]
pub fn encode_symbol(seq: u64, bit: Message) -> u64 {
    2 * seq + u64::from(bit)
}

/// Decodes a data symbol into `(seq, bit)`.
#[must_use]
pub fn decode_symbol(symbol: u64) -> (u64, Message) {
    (symbol / 2, symbol % 2 == 1)
}

/// The Stenning transmitter.
#[derive(Clone, Debug)]
pub struct StenningTransmitter {
    input: Vec<Message>,
    timeout_steps: u64,
}

/// State of [`StenningTransmitter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StenningTransmitterState {
    /// Index (= sequence number) of the message being transmitted.
    pub next: usize,
    /// Local steps since the last (re)transmission; `0` = send now.
    pub timer: u64,
}

impl StenningTransmitter {
    /// Creates the transmitter; `timeout_steps = None` picks the same safe
    /// default as the alternating-bit baseline.
    #[must_use]
    pub fn new(params: TimingParams, input: Vec<Message>, timeout_steps: Option<u64>) -> Self {
        let default = (2 * params.d() + 2 * params.c2()).div_ceil(params.c1()) + 1;
        StenningTransmitter {
            input,
            timeout_steps: timeout_steps.unwrap_or(default).max(1),
        }
    }

    /// The retransmission period in local steps.
    #[must_use]
    pub fn timeout_steps(&self) -> u64 {
        self.timeout_steps
    }

    fn current_packet(&self, state: &StenningTransmitterState) -> Packet {
        Packet::Data(encode_symbol(state.next as u64, self.input[state.next]))
    }
}

impl Automaton for StenningTransmitter {
    type Action = RstpAction;
    type State = StenningTransmitterState;

    fn initial_state(&self) -> StenningTransmitterState {
        StenningTransmitterState { next: 0, timer: 0 }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Send(Packet::Data(_)) => Some(ActionClass::Output),
            RstpAction::Recv(Packet::Ack(_)) => Some(ActionClass::Input),
            RstpAction::TransmitterInternal(InternalKind::Wait) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &StenningTransmitterState) -> Vec<RstpAction> {
        if state.next >= self.input.len() {
            return vec![];
        }
        if state.timer == 0 {
            vec![RstpAction::Send(self.current_packet(state))]
        } else {
            vec![RstpAction::TransmitterInternal(InternalKind::Wait)]
        }
    }

    fn step(
        &self,
        state: &StenningTransmitterState,
        action: &RstpAction,
    ) -> Result<StenningTransmitterState, StepError> {
        match action {
            RstpAction::Recv(Packet::Ack(seq)) => {
                // Unbounded seqs: only the exact current number advances;
                // anything else is provably stale and absorbed.
                if state.next < self.input.len() && *seq == state.next as u64 {
                    Ok(StenningTransmitterState {
                        next: state.next + 1,
                        timer: 0,
                    })
                } else {
                    Ok(state.clone())
                }
            }
            RstpAction::Send(Packet::Data(symbol)) => {
                if state.next >= self.input.len() || state.timer != 0 {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "send requires timer = 0 and unacked input".into(),
                    });
                }
                if Packet::Data(*symbol) != self.current_packet(state) {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "packet must carry (seq, x_seq)".into(),
                    });
                }
                Ok(StenningTransmitterState {
                    next: state.next,
                    timer: 1,
                })
            }
            RstpAction::TransmitterInternal(InternalKind::Wait) => {
                if state.next >= self.input.len() || state.timer == 0 {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "wait requires a running timer".into(),
                    });
                }
                Ok(StenningTransmitterState {
                    next: state.next,
                    timer: (state.timer + 1) % self.timeout_steps,
                })
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

/// The Stenning receiver.
#[derive(Clone, Copy, Debug, Default)]
pub struct StenningReceiver;

/// State of [`StenningReceiver`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StenningReceiverState {
    /// The next sequence number to accept.
    pub expected_seq: u64,
    /// Accepted messages, in order.
    pub received: Vec<Message>,
    /// Completed writes.
    pub written: usize,
    /// Sequence numbers owed an acknowledgement, FIFO.
    pub ack_queue: VecDeque<u64>,
}

impl StenningReceiver {
    /// Creates the receiver.
    #[must_use]
    pub fn new() -> Self {
        StenningReceiver
    }
}

impl Automaton for StenningReceiver {
    type Action = RstpAction;
    type State = StenningReceiverState;

    fn initial_state(&self) -> StenningReceiverState {
        StenningReceiverState::default()
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Recv(Packet::Data(_)) => Some(ActionClass::Input),
            RstpAction::Send(Packet::Ack(_)) => Some(ActionClass::Output),
            RstpAction::Write(_) => Some(ActionClass::Output),
            RstpAction::ReceiverInternal(InternalKind::Idle) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &StenningReceiverState) -> Vec<RstpAction> {
        if let Some(&seq) = state.ack_queue.front() {
            vec![RstpAction::Send(Packet::Ack(seq))]
        } else if let Some(&m) = state.received.get(state.written) {
            vec![RstpAction::Write(m)]
        } else {
            vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
        }
    }

    fn step(
        &self,
        state: &StenningReceiverState,
        action: &RstpAction,
    ) -> Result<StenningReceiverState, StepError> {
        match action {
            RstpAction::Recv(Packet::Data(symbol)) => {
                let (seq, bit) = decode_symbol(*symbol);
                let mut next = state.clone();
                if seq == state.expected_seq {
                    next.received.push(bit);
                    next.expected_seq += 1;
                }
                // Ack everything at or below the frontier so a lost ack is
                // recovered by the retransmission's re-ack; future packets
                // (seq > expected) are dropped *unacked* so the transmitter
                // keeps retrying them — with stop-and-wait they cannot
                // occur on a faithful channel anyway.
                if seq <= state.expected_seq {
                    next.ack_queue.push_back(seq);
                }
                Ok(next)
            }
            RstpAction::Send(Packet::Ack(seq)) => match state.ack_queue.front() {
                Some(&front) if front == *seq => {
                    let mut next = state.clone();
                    next.ack_queue.pop_front();
                    Ok(next)
                }
                _ => Err(StepError::PreconditionFalse {
                    action: format!("{action:?}"),
                    reason: "send(ack) must acknowledge the oldest pending seq".into(),
                }),
            },
            RstpAction::Write(m) => {
                if state.received.get(state.written) != Some(m) {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "write requires the next accepted message".into(),
                    });
                }
                let mut next = state.clone();
                next.written += 1;
                Ok(next)
            }
            RstpAction::ReceiverInternal(InternalKind::Idle) => {
                if !state.ack_queue.is_empty() || state.written < state.received.len() {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "idle_r requires no pending work".into(),
                    });
                }
                Ok(state.clone())
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 4).unwrap()
    }

    #[test]
    fn symbol_codec() {
        for seq in [0u64, 1, 7, 1000] {
            for bit in [false, true] {
                assert_eq!(decode_symbol(encode_symbol(seq, bit)), (seq, bit));
            }
        }
    }

    #[test]
    fn sequence_numbers_never_alias() {
        // The exact scenario that breaks alternating-bit: a duplicated ack
        // of message 0 arriving while message 2 (same parity) is current.
        let t = StenningTransmitter::new(params(), vec![true, false, true], Some(5));
        let mut s = t.initial_state();
        // Deliver acks 0 and 1 to advance to message 2.
        let a = t.enabled(&s)[0];
        s = t.step(&s, &a).unwrap();
        s = t.step(&s, &RstpAction::Recv(Packet::Ack(0))).unwrap();
        let a = t.enabled(&s)[0];
        s = t.step(&s, &a).unwrap();
        s = t.step(&s, &RstpAction::Recv(Packet::Ack(1))).unwrap();
        assert_eq!(s.next, 2);
        // A stale duplicate of ack(0) must NOT advance message 2 (altbit
        // would: 0 and 2 share tag parity).
        let stale = t.step(&s, &RstpAction::Recv(Packet::Ack(0))).unwrap();
        assert_eq!(stale.next, 2);
        let fresh = t.step(&s, &RstpAction::Recv(Packet::Ack(2))).unwrap();
        assert_eq!(fresh.next, 3);
    }

    #[test]
    fn receiver_accepts_in_order_only_and_reacks_old() {
        let r = StenningReceiver::new();
        let mut s = r.initial_state();
        // Future packet (seq 1 before seq 0): dropped, not acked.
        s = r
            .step(&s, &RstpAction::Recv(Packet::Data(encode_symbol(1, true))))
            .unwrap();
        assert!(s.received.is_empty());
        assert!(s.ack_queue.is_empty());
        // In-order packet accepted and acked.
        s = r
            .step(&s, &RstpAction::Recv(Packet::Data(encode_symbol(0, true))))
            .unwrap();
        assert_eq!(s.received, vec![true]);
        assert_eq!(s.ack_queue, VecDeque::from([0]));
        // Duplicate of an old packet: re-acked, not re-written.
        s = r.step(&s, &RstpAction::Send(Packet::Ack(0))).unwrap();
        s = r
            .step(&s, &RstpAction::Recv(Packet::Data(encode_symbol(0, true))))
            .unwrap();
        assert_eq!(s.received.len(), 1);
        assert_eq!(s.ack_queue, VecDeque::from([0]));
    }

    #[test]
    fn happy_path_delivers_in_order() {
        let t = StenningTransmitter::new(params(), vec![true, false], Some(4));
        let r = StenningReceiver::new();
        let mut ts = t.initial_state();
        let mut rs = r.initial_state();
        let mut written = Vec::new();
        for _ in 0..200 {
            if let Some(a) = t.enabled(&ts).first().copied() {
                ts = t.step(&ts, &a).unwrap();
                if let RstpAction::Send(p) = a {
                    rs = r.step(&rs, &RstpAction::Recv(p)).unwrap();
                }
            }
            match r.enabled(&rs).first().copied() {
                Some(RstpAction::Send(Packet::Ack(seq))) => {
                    rs = r.step(&rs, &RstpAction::Send(Packet::Ack(seq))).unwrap();
                    ts = t.step(&ts, &RstpAction::Recv(Packet::Ack(seq))).unwrap();
                }
                Some(RstpAction::Write(m)) => {
                    written.push(m);
                    rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
                }
                _ => {}
            }
            if t.enabled(&ts).is_empty() && written.len() == 2 {
                break;
            }
        }
        assert_eq!(written, vec![true, false]);
    }

    #[test]
    fn default_timeout_matches_altbit_policy() {
        let t = StenningTransmitter::new(params(), vec![true], None);
        assert_eq!(t.timeout_steps(), 2 * 4 + 2 * 2 + 1);
    }

    #[test]
    fn empty_input_quiescent() {
        let t = StenningTransmitter::new(params(), vec![], None);
        assert!(t.enabled(&t.initial_state()).is_empty());
    }
}
