//! The paper's protocols, each as a pair of I/O automata.
//!
//! | module | paper | transmitter alphabet | receiver sends | effort (shown in §4/§6) |
//! |---|---|---|---|---|
//! | [`alpha`] | Fig. 1, §4 | `{0, 1}` (the raw bits) | nothing | `(1 + δ1) · c2` per message |
//! | [`beta`]  | Fig. 3, §6.1 | `{0, …, k-1}` | nothing | `≤ 2·δ1·c2 / ⌊log2 μ_k(δ1)⌋` |
//! | [`gamma`] | Fig. 4, §6.2 | `{0, …, k-1}` | `ack` | `≤ (3d + c2) / ⌊log2 μ_k(δ2)⌋` |
//! | [`altbit`] | §1 context (\[BSW69\]) | tagged bits | tagged acks | baseline for *faulty* channels |
//! | [`stenning`] | §1 context (\[Ste76\]) | unbounded `(seq, bit)` | `ack(seq)` | survives loss+dup+reorder (unbounded alphabet) |
//! | [`framed`] | extension | `{0, …, k-1}` | nothing | self-delimiting `beta` (length header) |
//! | [`pipelined`] | extension | `{0, …, w·k-1}` (tag-carrying) | `ack(tag)` | window-`w` `gamma`: `≈ (3d+c2) / (w·⌊log2 μ_k(δ2)⌋)` in the friendly regime |
//!
//! Every automaton is written in explicit precondition/effect style mirroring
//! the paper's figures; the figure's variable names are kept in the state
//! structs' documentation. All are deterministic — at most one local action
//! enabled per state — except where noted (`gamma`'s receiver resolves the
//! paper's ack-vs-write nondeterminism by a fixed ack-first priority).
//!
//! The paper presents its protocols with the encoding step elided ("the
//! encoding/decoding parts are straightforward but tedious"); here the
//! encoding is real: transmitters carry a [`rstp_codec::BlockCodec`] and
//! receivers decode the multiset of each burst back into message bits.

pub mod alpha;
pub mod altbit;
pub mod beta;
pub mod framed;
pub mod gamma;
pub mod pipelined;
pub mod stabilizing;
pub mod stenning;

use core::fmt;
use rstp_codec::CodecError;

/// Errors constructing a protocol instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The packet alphabet is too small (`k < 2`).
    AlphabetTooSmall {
        /// The offending alphabet size.
        k: u64,
    },
    /// Block codec construction failed.
    Codec(CodecError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::AlphabetTooSmall { k } => {
                write!(f, "packet alphabet must have k >= 2 symbols, got {k}")
            }
            ProtocolError::Codec(e) => write!(f, "codec: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<CodecError> for ProtocolError {
    fn from(e: CodecError) -> Self {
        ProtocolError::Codec(e)
    }
}

pub use alpha::{AlphaReceiver, AlphaReceiverState, AlphaTransmitter, AlphaTransmitterState};
pub use altbit::{AltBitReceiver, AltBitReceiverState, AltBitTransmitter, AltBitTransmitterState};
pub use beta::{BetaReceiver, BetaReceiverState, BetaTransmitter, BetaTransmitterState};
pub use framed::{FramedReceiver, FramedReceiverState, FramedTransmitter};
pub use gamma::{GammaReceiver, GammaReceiverState, GammaTransmitter, GammaTransmitterState};
pub use pipelined::{
    PipelinedReceiver, PipelinedReceiverState, PipelinedTransmitter, PipelinedTransmitterState,
};
pub use stabilizing::{
    stab_beta_bound, stab_beta_transmitter, stab_stenning_bound, StabBetaReceiver,
    StabBetaReceiverState, StabPhase, StabStenningReceiver, StabStenningReceiverState,
    StabStenningTransmitter, StabStenningTransmitterState,
};
pub use stenning::{
    StenningReceiver, StenningReceiverState, StenningTransmitter, StenningTransmitterState,
};
