//! `A^δ(k, w)` — a pipelined active protocol (repository extension).
//!
//! `A^γ(k)` is stop-and-wait at burst granularity: each round pays a full
//! `~3d` hand-shake during which the transmitter idles. This extension
//! keeps a **window** of `w` bursts in flight: burst `i+1` (… `i+w-1`) is
//! sent while burst `i`'s acknowledgements are still in transit, dividing
//! the hand-shake stalls by up to `w` in steady state.
//!
//! Correctness rests on one new idea plus the window discipline:
//!
//! * each burst is tagged with its index **mod `w`**, carried in the wire
//!   symbol (`wire = w·sym + tag`, multiplying the alphabet to `w·k`), and
//!   acks echo the tag — so the receiver can separate interleaved bursts
//!   and the transmitter can attribute acks;
//! * burst `i+w` (same tag as `i`) is sent only after burst `i` is *fully
//!   acknowledged* — hence fully delivered and decoded — so at most one
//!   burst per tag is ever un-decoded, and the tag suffices.
//!
//! The receiver decodes each tag's multiset independently and commits
//! decoded blocks strictly in block order (bursts may *complete* out of
//! order when their delivery windows overlap).
//!
//! The price is information: the tag costs `log2 μ_{wk}(δ2) − log2
//! μ_k(δ2)` bits per burst relative to giving stop-and-wait the same wire
//! alphabet. Experiment E11 measures the resulting trade-off — pipelining
//! wins exactly when `k ≫ δ2` (rich alphabets, short bursts), and
//! spending the symbols on coding wins when `δ2 ≫ k`.
//!
//! `w = 1` degenerates to ack-clocked stop-and-wait (`A^γ`'s behavior
//! with an untagged wire).

use crate::action::{InternalKind, Message, Packet, RstpAction};
use crate::params::TimingParams;
use crate::protocols::ProtocolError;
use rstp_automata::{ActionClass, Automaton, StepError};
use rstp_codec::{BlockCodec, Multiset};
use std::collections::VecDeque;

fn wire_symbol(w: u64, sym: u64, block_index: usize) -> u64 {
    w * sym + (block_index as u64 % w)
}

fn unwire(w: u64, wire: u64) -> (u64, u64) {
    (wire / w, wire % w) // (base symbol, tag)
}

/// The transmitter of `A^δ(k, w)`.
#[derive(Clone, Debug)]
pub struct PipelinedTransmitter {
    blocks: Vec<Vec<u64>>,
    delta2: u64,
    window: u64,
    bits_per_block: u32,
}

/// State of [`PipelinedTransmitter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelinedTransmitterState {
    /// Index of the burst currently being transmitted.
    pub sending_block: usize,
    /// Packets of `sending_block` sent so far.
    pub c: u64,
    /// Oldest not-fully-acknowledged burst.
    pub low_block: usize,
    /// Ack counts for bursts `low_block, low_block+1, …` (window order).
    pub acks: VecDeque<u64>,
}

impl PipelinedTransmitter {
    /// Window-2 constructor (the default configuration measured in E11).
    ///
    /// # Errors
    ///
    /// See [`PipelinedTransmitter::with_window`].
    pub fn new(params: TimingParams, k: u64, input: &[Message]) -> Result<Self, ProtocolError> {
        PipelinedTransmitter::with_window(params, k, 2, input)
    }

    /// Creates the transmitter with an explicit window `w ≥ 1`: bursts of
    /// `δ2` packets over the base alphabet `{0, …, k-1}`, tagged on the
    /// wire into `{0, …, w·k-1}`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlphabetTooSmall`] if `k < 2` or `w = 0`;
    /// [`ProtocolError::Codec`] if `(k, δ2)` cannot carry information.
    pub fn with_window(
        params: TimingParams,
        k: u64,
        window: u64,
        input: &[Message],
    ) -> Result<Self, ProtocolError> {
        if k < 2 || window == 0 {
            return Err(ProtocolError::AlphabetTooSmall { k });
        }
        let delta2 = params.delta2();
        let codec = BlockCodec::new(k, delta2)?;
        let blocks = codec
            .encode_stream(input)?
            .into_iter()
            .map(|b| b.packets().to_vec())
            .collect();
        Ok(PipelinedTransmitter {
            blocks,
            delta2,
            window,
            bits_per_block: codec.bits_per_block(),
        })
    }

    /// The burst size `δ2`.
    #[must_use]
    pub fn delta2(&self) -> u64 {
        self.delta2
    }

    /// The window size `w`.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Number of bursts.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Input bits per burst.
    #[must_use]
    pub fn bits_per_block(&self) -> u32 {
        self.bits_per_block
    }

    fn may_send(&self, s: &PipelinedTransmitterState) -> bool {
        s.sending_block < self.blocks.len() && s.sending_block < s.low_block + self.window as usize
    }

    fn done(&self, s: &PipelinedTransmitterState) -> bool {
        s.low_block >= self.blocks.len()
    }
}

impl Automaton for PipelinedTransmitter {
    type Action = RstpAction;
    type State = PipelinedTransmitterState;

    fn initial_state(&self) -> PipelinedTransmitterState {
        PipelinedTransmitterState {
            sending_block: 0,
            c: 0,
            low_block: 0,
            acks: VecDeque::from(vec![0; self.window as usize]),
        }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Send(Packet::Data(_)) => Some(ActionClass::Output),
            RstpAction::Recv(Packet::Ack(_)) => Some(ActionClass::Input),
            RstpAction::TransmitterInternal(InternalKind::Idle) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &PipelinedTransmitterState) -> Vec<RstpAction> {
        if self.done(state) {
            return vec![];
        }
        let sym = self
            .blocks
            .get(state.sending_block)
            .filter(|_| self.may_send(state))
            .and_then(|block| block.get(state.c as usize));
        if let Some(&sym) = sym {
            vec![RstpAction::Send(Packet::Data(wire_symbol(
                self.window,
                sym,
                state.sending_block,
            )))]
        } else {
            // Window full: wait for acks.
            vec![RstpAction::TransmitterInternal(InternalKind::Idle)]
        }
    }

    fn step(
        &self,
        state: &PipelinedTransmitterState,
        action: &RstpAction,
    ) -> Result<PipelinedTransmitterState, StepError> {
        match action {
            RstpAction::Recv(Packet::Ack(tag)) => {
                if self.done(state) {
                    return Ok(state.clone()); // stray ack
                }
                let mut next = state.clone();
                // The unique outstanding block with this tag sits at window
                // offset (tag - low_block) mod w.
                let w = self.window;
                let offset = ((tag % w) + w - (next.low_block as u64 % w)) % w;
                if let Some(acked) = next.acks.get_mut(offset as usize) {
                    *acked += 1;
                }
                // Retire fully acknowledged bursts from the front.
                while next.acks.front().is_some_and(|&a| a >= self.delta2)
                    && next.low_block < self.blocks.len()
                {
                    next.acks.pop_front();
                    next.acks.push_back(0);
                    next.low_block += 1;
                }
                Ok(next)
            }
            RstpAction::Send(Packet::Data(wire)) => {
                if !self.may_send(state) {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "send requires window space and remaining input".into(),
                    });
                }
                let expected = wire_symbol(
                    self.window,
                    self.blocks[state.sending_block][state.c as usize],
                    state.sending_block,
                );
                if *wire != expected {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: format!("wire symbol must be {expected}"),
                    });
                }
                let mut next = state.clone();
                next.c += 1;
                if next.c == self.delta2 {
                    next.sending_block += 1;
                    next.c = 0;
                }
                Ok(next)
            }
            RstpAction::TransmitterInternal(InternalKind::Idle) => {
                if self.done(state) || self.may_send(state) {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "idle_t requires a full window".into(),
                    });
                }
                Ok(state.clone())
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

/// The receiver of `A^δ(k, w)`.
#[derive(Clone, Debug)]
pub struct PipelinedReceiver {
    codec: BlockCodec,
    expected_bits: usize,
    k: u64,
    window: u64,
}

/// State of [`PipelinedReceiver`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelinedReceiverState {
    /// Per-tag burst accumulators.
    pub bursts: Vec<Multiset>,
    /// Per-tag decoded-but-uncommitted block.
    pub staged: Vec<Option<Vec<Message>>>,
    /// Tag of the next block to commit (blocks cycle tags from 0).
    pub commit_tag: u64,
    /// Committed message bits.
    pub decoded: Vec<Message>,
    /// Completed writes.
    pub written: usize,
    /// Acks owed, FIFO of tags.
    pub ack_queue: VecDeque<u64>,
    /// Decode failures (fault injection only).
    pub decode_failures: u32,
}

impl PipelinedReceiver {
    /// Window-2 constructor.
    ///
    /// # Errors
    ///
    /// See [`PipelinedReceiver::with_window`].
    pub fn new(params: TimingParams, k: u64, expected_bits: usize) -> Result<Self, ProtocolError> {
        PipelinedReceiver::with_window(params, k, 2, expected_bits)
    }

    /// Creates the receiver for window `w` (pair of
    /// [`PipelinedTransmitter::with_window`]).
    ///
    /// # Errors
    ///
    /// Same conditions as the transmitter constructor.
    pub fn with_window(
        params: TimingParams,
        k: u64,
        window: u64,
        expected_bits: usize,
    ) -> Result<Self, ProtocolError> {
        if k < 2 || window == 0 {
            return Err(ProtocolError::AlphabetTooSmall { k });
        }
        let codec = BlockCodec::new(k, params.delta2())?;
        Ok(PipelinedReceiver {
            codec,
            expected_bits,
            k,
            window,
        })
    }

    /// The window size `w`.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    fn commit_ready(&self, s: &mut PipelinedReceiverState) {
        while let Some(bits) = s
            .staged
            .get_mut(s.commit_tag as usize)
            .and_then(Option::take)
        {
            let remaining = self.expected_bits.saturating_sub(s.decoded.len());
            let take = bits.len().min(remaining);
            s.decoded.extend(bits.into_iter().take(take));
            s.commit_tag = (s.commit_tag + 1) % self.window;
        }
    }
}

impl Automaton for PipelinedReceiver {
    type Action = RstpAction;
    type State = PipelinedReceiverState;

    fn initial_state(&self) -> PipelinedReceiverState {
        PipelinedReceiverState {
            bursts: vec![Multiset::empty(self.k); self.window as usize],
            staged: vec![None; self.window as usize],
            commit_tag: 0,
            decoded: Vec::new(),
            written: 0,
            ack_queue: VecDeque::new(),
            decode_failures: 0,
        }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Recv(Packet::Data(_)) => Some(ActionClass::Input),
            RstpAction::Send(Packet::Ack(_)) => Some(ActionClass::Output),
            RstpAction::Write(_) => Some(ActionClass::Output),
            RstpAction::ReceiverInternal(InternalKind::Idle) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &PipelinedReceiverState) -> Vec<RstpAction> {
        if let Some(&tag) = state.ack_queue.front() {
            vec![RstpAction::Send(Packet::Ack(tag))]
        } else if let Some(&m) = state.decoded.get(state.written) {
            vec![RstpAction::Write(m)]
        } else {
            vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
        }
    }

    fn step(
        &self,
        state: &PipelinedReceiverState,
        action: &RstpAction,
    ) -> Result<PipelinedReceiverState, StepError> {
        match action {
            RstpAction::Recv(Packet::Data(wire)) => {
                let (sym, tag) = unwire(self.window, *wire);
                let mut next = state.clone();
                next.ack_queue.push_back(tag);
                if sym >= self.k {
                    next.decode_failures += 1;
                    return Ok(next);
                }
                // `unwire` reduces the tag mod w, so the slot is always in
                // range; index through `get_mut` so corruption of that
                // invariant counts as a decode failure instead of a panic.
                let slot = tag as usize;
                let Some(burst) = next.bursts.get_mut(slot) else {
                    next.decode_failures += 1;
                    return Ok(next);
                };
                burst.insert(sym);
                if burst.len() == self.codec.packets_per_block() {
                    let decoded = self.codec.decode_block(burst);
                    burst.clear();
                    match decoded {
                        Ok(bits) => {
                            // The window discipline keeps the slot free;
                            // defensively count an overwrite (reachable
                            // only under fault injection).
                            if next
                                .staged
                                .get_mut(slot)
                                .and_then(|staged| staged.replace(bits))
                                .is_some()
                            {
                                next.decode_failures += 1;
                            }
                        }
                        Err(_) => next.decode_failures += 1,
                    }
                    self.commit_ready(&mut next);
                }
                Ok(next)
            }
            RstpAction::Send(Packet::Ack(tag)) => match state.ack_queue.front() {
                Some(&front) if front == *tag => {
                    let mut next = state.clone();
                    next.ack_queue.pop_front();
                    Ok(next)
                }
                _ => Err(StepError::PreconditionFalse {
                    action: format!("{action:?}"),
                    reason: "send(ack) must acknowledge the oldest pending tag".into(),
                }),
            },
            RstpAction::Write(m) => {
                if state.decoded.get(state.written) != Some(m) {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "write requires the next committed message".into(),
                    });
                }
                let mut next = state.clone();
                next.written += 1;
                Ok(next)
            }
            RstpAction::ReceiverInternal(InternalKind::Idle) => {
                if !state.ack_queue.is_empty() || state.written < state.decoded.len() {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "idle_r requires no pending work".into(),
                    });
                }
                Ok(state.clone())
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TimingParams {
        TimingParams::from_ticks(2, 3, 9).unwrap() // δ2 = 3
    }

    /// Full lockstep roundtrip for any window; returns written bits.
    fn lockstep(
        t: &PipelinedTransmitter,
        r: &PipelinedReceiver,
        input: &[Message],
    ) -> Vec<Message> {
        let mut ts = t.initial_state();
        let mut rs = r.initial_state();
        let mut written = Vec::new();
        for _ in 0..100_000 {
            let mut progressed = false;
            if let Some(a) = t.enabled(&ts).first().copied() {
                if let RstpAction::Send(p) = a {
                    ts = t.step(&ts, &a).unwrap();
                    rs = r.step(&rs, &RstpAction::Recv(p)).unwrap();
                    progressed = true;
                }
            }
            match r.enabled(&rs).first().copied() {
                Some(RstpAction::Send(Packet::Ack(tag))) => {
                    rs = r.step(&rs, &RstpAction::Send(Packet::Ack(tag))).unwrap();
                    ts = t.step(&ts, &RstpAction::Recv(Packet::Ack(tag))).unwrap();
                    progressed = true;
                }
                Some(RstpAction::Write(m)) => {
                    written.push(m);
                    rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
                    progressed = true;
                }
                _ => {}
            }
            if !progressed && t.enabled(&ts).is_empty() {
                break;
            }
        }
        assert_eq!(written, input);
        written
    }

    #[test]
    fn wire_tagging_roundtrip_any_window() {
        for w in 1..=4u64 {
            for sym in 0..6u64 {
                for block in 0..8usize {
                    let wire = wire_symbol(w, sym, block);
                    assert_eq!(unwire(w, wire), (sym, block as u64 % w));
                }
            }
        }
    }

    #[test]
    fn window_admits_w_bursts_then_blocks() {
        let p = params(); // δ2 = 3
        for w in [1u64, 2, 3] {
            // Enough input for w + 1 bursts (k = 2: 2 bits/burst).
            let input = vec![true; 2 * (w as usize + 1)];
            let t = PipelinedTransmitter::with_window(p, 2, w, &input).unwrap();
            assert!(t.num_blocks() as u64 > w);
            let mut s = t.initial_state();
            for i in 0..(w * t.delta2()) {
                let a = t.enabled(&s)[0];
                assert!(a.is_data_send(), "w={w} step {i} should send, got {a:?}");
                s = t.step(&s, &a).unwrap();
            }
            assert_eq!(
                t.enabled(&s),
                vec![RstpAction::TransmitterInternal(InternalKind::Idle)],
                "w={w}: window must be full"
            );
            // Acks for burst 0 open the window again.
            for _ in 0..t.delta2() {
                s = t.step(&s, &RstpAction::Recv(Packet::Ack(0))).unwrap();
            }
            assert_eq!(s.low_block, 1);
            assert!(t.enabled(&s)[0].is_data_send());
        }
    }

    #[test]
    fn roundtrip_across_windows() {
        let p = params();
        let input: Vec<bool> = (0..26).map(|i| i % 3 == 0).collect();
        for w in [1u64, 2, 3, 4] {
            let t = PipelinedTransmitter::with_window(p, 4, w, &input).unwrap();
            let r = PipelinedReceiver::with_window(p, 4, w, input.len()).unwrap();
            lockstep(&t, &r, &input);
        }
    }

    #[test]
    fn ack_attribution_with_window_three() {
        let p = params(); // δ2 = 3
        let input = vec![true; 8]; // k=2: 2 bits/burst -> 4 bursts
        let t = PipelinedTransmitter::with_window(p, 2, 3, &input).unwrap();
        let mut s = t.initial_state();
        // Send three full bursts (window 3).
        for _ in 0..9 {
            let a = t.enabled(&s)[0];
            s = t.step(&s, &a).unwrap();
        }
        // Acks for tags 2, 1 (out of order) — no retirement yet.
        s = t.step(&s, &RstpAction::Recv(Packet::Ack(2))).unwrap();
        s = t.step(&s, &RstpAction::Recv(Packet::Ack(1))).unwrap();
        assert_eq!(s.low_block, 0);
        assert_eq!(s.acks, VecDeque::from(vec![0, 1, 1]));
        // Complete tag 0's three acks: burst 0 retires, others shift.
        for _ in 0..3 {
            s = t.step(&s, &RstpAction::Recv(Packet::Ack(0))).unwrap();
        }
        assert_eq!(s.low_block, 1);
        assert_eq!(s.acks, VecDeque::from(vec![1, 1, 0]));
    }

    #[test]
    fn receiver_commits_in_order_despite_out_of_order_completion() {
        let p = params(); // δ2 = 3
        let k = 2;
        let w = 2;
        let codec = BlockCodec::new(k, 3).unwrap();
        let b0 = codec.encode_block(&[true, false]).unwrap();
        let b1 = codec.encode_block(&[false, true]).unwrap();
        let r = PipelinedReceiver::with_window(p, k, w, 4).unwrap();
        let mut s = r.initial_state();
        for &sym in &b1 {
            s = r
                .step(&s, &RstpAction::Recv(Packet::Data(wire_symbol(w, sym, 1))))
                .unwrap();
        }
        assert!(s.decoded.is_empty(), "block 1 must wait for block 0");
        for &sym in &b0 {
            s = r
                .step(&s, &RstpAction::Recv(Packet::Data(wire_symbol(w, sym, 0))))
                .unwrap();
        }
        assert_eq!(s.decoded, vec![true, false, false, true]);
        assert_eq!(s.decode_failures, 0);
    }

    #[test]
    fn stray_acks_after_completion_absorbed() {
        let p = params();
        let input = vec![true, false];
        let t = PipelinedTransmitter::new(p, 2, &input).unwrap();
        let r = PipelinedReceiver::new(p, 2, input.len()).unwrap();
        lockstep(&t, &r, &input);
        // Drive a fresh pair to done state, then inject a stray ack.
        let mut ts = t.initial_state();
        let mut rs = r.initial_state();
        loop {
            if let Some(a @ RstpAction::Send(p)) = t.enabled(&ts).first().copied() {
                ts = t.step(&ts, &a).unwrap();
                rs = r.step(&rs, &RstpAction::Recv(p)).unwrap();
            }
            match r.enabled(&rs).first().copied() {
                Some(RstpAction::Send(Packet::Ack(tag))) => {
                    rs = r.step(&rs, &RstpAction::Send(Packet::Ack(tag))).unwrap();
                    ts = t.step(&ts, &RstpAction::Recv(Packet::Ack(tag))).unwrap();
                }
                Some(RstpAction::Write(m)) => {
                    rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
                }
                _ => {}
            }
            if t.enabled(&ts).is_empty() {
                break;
            }
        }
        let after = t.step(&ts, &RstpAction::Recv(Packet::Ack(1))).unwrap();
        assert_eq!(after, ts);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let p = params();
        assert!(PipelinedTransmitter::with_window(p, 1, 2, &[true]).is_err());
        assert!(PipelinedTransmitter::with_window(p, 4, 0, &[true]).is_err());
        assert!(PipelinedReceiver::with_window(p, 0, 2, 1).is_err());
        assert!(PipelinedReceiver::with_window(p, 4, 0, 1).is_err());
    }
}
