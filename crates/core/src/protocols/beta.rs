//! `A^β(k)` — the asymptotically optimal r-passive solution of paper §6.1
//! (Figure 3).
//!
//! Each round has `2·δ1` transmitter steps: `δ1` consecutive `send`s (one
//! burst) followed by `δ1` `wait_t` steps, which guarantees the whole burst
//! is delivered before the next burst's first packet (the gap between the
//! last send of a burst and the first send of the next is `δ1 + 1` steps
//! `≥ d + c1 > d`). Within a burst the channel may reorder freely — which is
//! exactly why a burst encodes its block of input bits as a **multiset**:
//! `⌊log2 μ_k(δ1)⌋` bits per burst via `tomulti`/`toseq` (realized by
//! [`rstp_codec::BlockCodec`]).
//!
//! Effort: `2·δ1` steps per `⌊log2 μ_k(δ1)⌋` bits, each step at most `c2`,
//! i.e. `eff(A^β(k)) ≤ 2·δ1·c2 / ⌊log2 μ_k(δ1)⌋` — within a constant factor
//! of the lower bound of Theorem 5.3.
//!
//! Figure 3 correspondence (transmitter): the figure indexes packets of the
//! *encoded* sequence by `i` and counts round steps with `c ∈ [0, 2δ1)`; we
//! keep `c` verbatim ([`BetaTransmitterState::step_in_round`]) and split `i`
//! into `(block, c)` with `i = block·δ1 + min(c, δ1)`. The figure's `x̂` (the
//! encoded packet stream) is precomputed by the codec (the paper elides
//! encoding; we perform it).
//!
//! Figure 3 correspondence (receiver): the multiset `A` is
//! [`BetaReceiverState::burst`], `ŷ` is [`BetaReceiverState::decoded`], and
//! `k` (1-based next write) is [`BetaReceiverState::written`] + 1.
//!
//! Termination: the paper has the receiver write forever as packets arrive,
//! assuming `|X| ≡ 0 (mod block)`. We lift that by zero-padding the final
//! block at the transmitter and giving the receiver the exact input length
//! `expected_bits` so it can drop the padding. (For a fully self-delimiting
//! stream see [`crate::protocols::framed`].)

use crate::action::{InternalKind, Message, Packet, RstpAction};
use crate::params::TimingParams;
use crate::protocols::ProtocolError;
use rstp_automata::{ActionClass, Automaton, StepError};
use rstp_codec::{BlockCodec, Multiset};

/// The transmitter of `A^β(k)` (Figure 3, left column).
///
/// Generalized with an explicit round shape `(burst_len, wait_len)`:
/// Figure 3 is the special case `burst_len = wait_len = δ1`. The §7
/// extension with a delivery window `[d_lo, d_hi]` shortens the wait phase
/// (see [`crate::ext`]); the receiver is oblivious to the shape beyond the
/// burst size.
#[derive(Clone, Debug)]
pub struct BetaTransmitter {
    blocks: Vec<Vec<u64>>,
    burst_len: u64,
    wait_len: u64,
    bits_per_block: u32,
    input_len: usize,
}

/// State of [`BetaTransmitter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BetaTransmitterState {
    /// Index of the burst currently being transmitted.
    pub block: usize,
    /// Figure 3's `c ∈ [0, 2δ1)`: `< δ1` while sending, `≥ δ1` while
    /// waiting.
    pub step_in_round: u64,
}

impl BetaTransmitter {
    /// Creates the transmitter: encodes `input` into bursts of `δ1` packets
    /// over the alphabet `{0, …, k-1}`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlphabetTooSmall`] if `k < 2`;
    /// [`ProtocolError::Codec`] if `(k, δ1)` cannot carry information.
    pub fn new(params: TimingParams, k: u64, input: &[Message]) -> Result<Self, ProtocolError> {
        let delta1 = params.delta1();
        BetaTransmitter::with_shape(k, delta1, delta1, input)
    }

    /// Creates a transmitter with an explicit round shape: bursts of
    /// `burst_len` sends followed by `wait_len` `wait_t` steps.
    ///
    /// Correctness requires `wait_len` large enough that burst `i` is fully
    /// delivered before burst `i+1` starts arriving — `(wait_len + 1)·c1 ≥
    /// d_hi - d_lo` in the §7 window model (Figure 3's choice
    /// `wait_len = δ1` covers the paper's `d_lo = 0`). This constructor does
    /// not enforce that inequality (it depends on the channel model);
    /// [`crate::ext`] computes safe shapes.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlphabetTooSmall`] if `k < 2`;
    /// [`ProtocolError::Codec`] if `(k, burst_len)` cannot carry
    /// information.
    pub fn with_shape(
        k: u64,
        burst_len: u64,
        wait_len: u64,
        input: &[Message],
    ) -> Result<Self, ProtocolError> {
        if k < 2 {
            return Err(ProtocolError::AlphabetTooSmall { k });
        }
        let codec = BlockCodec::new(k, burst_len)?;
        let blocks = codec
            .encode_stream(input)?
            .into_iter()
            .map(|b| b.packets().to_vec())
            .collect();
        Ok(BetaTransmitter {
            blocks,
            burst_len,
            wait_len,
            bits_per_block: codec.bits_per_block(),
            input_len: input.len(),
        })
    }

    /// The burst size (`δ1` for the Figure 3 shape).
    #[must_use]
    pub fn delta1(&self) -> u64 {
        self.burst_len
    }

    /// The wait-phase length in steps (`δ1` for the Figure 3 shape).
    #[must_use]
    pub fn wait_len(&self) -> u64 {
        self.wait_len
    }

    /// Number of bursts to transmit, `⌈|X| / b⌉`.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Input bits carried per burst, `b = ⌊log2 μ_k(δ1)⌋`.
    #[must_use]
    pub fn bits_per_block(&self) -> u32 {
        self.bits_per_block
    }

    /// Length of the original input `X`.
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Total local steps the transmitter takes: `burst_len + wait_len`
    /// (`2·δ1` for the Figure 3 shape) per burst.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        (self.burst_len + self.wait_len) * self.blocks.len() as u64
    }

    /// Steps per round.
    fn round_len(&self) -> u64 {
        self.burst_len + self.wait_len
    }

    /// `c := c + 1 (mod round)`, advancing to the next block on wrap.
    fn advance(&self, state: &BetaTransmitterState) -> BetaTransmitterState {
        let c = (state.step_in_round + 1) % self.round_len();
        if c == 0 {
            BetaTransmitterState {
                block: state.block + 1,
                step_in_round: 0,
            }
        } else {
            BetaTransmitterState {
                block: state.block,
                step_in_round: c,
            }
        }
    }
}

impl Automaton for BetaTransmitter {
    type Action = RstpAction;
    type State = BetaTransmitterState;

    fn initial_state(&self) -> BetaTransmitterState {
        BetaTransmitterState {
            block: 0,
            step_in_round: 0,
        }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Send(Packet::Data(_)) => Some(ActionClass::Output),
            RstpAction::TransmitterInternal(InternalKind::Wait) => Some(ActionClass::Internal),
            _ => None, // r-passive
        }
    }

    fn enabled(&self, state: &BetaTransmitterState) -> Vec<RstpAction> {
        if state.block >= self.blocks.len() {
            return vec![]; // whole input transmitted: quiescent
        }
        let symbol = self
            .blocks
            .get(state.block)
            .filter(|_| state.step_in_round < self.burst_len)
            .and_then(|block| block.get(state.step_in_round as usize));
        if let Some(&symbol) = symbol {
            vec![RstpAction::Send(Packet::Data(symbol))]
        } else {
            vec![RstpAction::TransmitterInternal(InternalKind::Wait)]
        }
    }

    fn step(
        &self,
        state: &BetaTransmitterState,
        action: &RstpAction,
    ) -> Result<BetaTransmitterState, StepError> {
        let precondition_false = |reason: String| StepError::PreconditionFalse {
            action: format!("{action:?}"),
            reason,
        };
        if state.block >= self.blocks.len() {
            return Err(precondition_false("all blocks transmitted".into()));
        }
        match action {
            RstpAction::Send(Packet::Data(symbol)) => {
                if state.step_in_round >= self.burst_len {
                    return Err(precondition_false(format!(
                        "send requires c < burst (c = {})",
                        state.step_in_round
                    )));
                }
                let expected = self.blocks[state.block][state.step_in_round as usize];
                if *symbol != expected {
                    return Err(precondition_false(format!("p must equal x̂_i = {expected}")));
                }
                Ok(self.advance(state))
            }
            RstpAction::TransmitterInternal(InternalKind::Wait) => {
                if state.step_in_round < self.burst_len {
                    return Err(precondition_false(format!(
                        "wait_t requires burst ≤ c < round (c = {})",
                        state.step_in_round
                    )));
                }
                Ok(self.advance(state))
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

/// The receiver of `A^β(k)` (Figure 3, right column).
#[derive(Clone, Debug)]
pub struct BetaReceiver {
    codec: BlockCodec,
    expected_bits: usize,
    k: u64,
}

/// State of [`BetaReceiver`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BetaReceiverState {
    /// Figure 3's multiset `A`: packets of the burst in progress.
    pub burst: Multiset,
    /// Figure 3's `ŷ`: decoded message bits, in order.
    pub decoded: Vec<Message>,
    /// Completed writes (the figure's `k - 1`).
    pub written: usize,
    /// Bursts that failed to decode (impossible over the paper's channel;
    /// observable under fault injection).
    pub decode_failures: u32,
}

impl BetaReceiver {
    /// Creates the receiver, which will reconstruct exactly `expected_bits`
    /// message bits (dropping final-block padding).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BetaTransmitter::new`].
    pub fn new(params: TimingParams, k: u64, expected_bits: usize) -> Result<Self, ProtocolError> {
        BetaReceiver::with_burst(k, params.delta1(), expected_bits)
    }

    /// Creates a receiver for an explicit burst size (pair of
    /// [`BetaTransmitter::with_shape`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BetaReceiver::new`].
    pub fn with_burst(k: u64, burst_len: u64, expected_bits: usize) -> Result<Self, ProtocolError> {
        if k < 2 {
            return Err(ProtocolError::AlphabetTooSmall { k });
        }
        let codec = BlockCodec::new(k, burst_len)?;
        Ok(BetaReceiver {
            codec,
            expected_bits,
            k,
        })
    }

    /// The burst size the receiver waits for (`δ1`).
    #[must_use]
    pub fn burst_size(&self) -> u64 {
        self.codec.packets_per_block()
    }

    /// The exact number of message bits that will be written.
    #[must_use]
    pub fn expected_bits(&self) -> usize {
        self.expected_bits
    }

    /// Applies the Figure 3 `recv(p)` effect: `A := A ∪ {p}`; when
    /// `|A| = δ1`, decode and append (shared with `A^γ(k)`, which differs
    /// only in burst size and acks).
    fn absorb(&self, state: &mut BetaReceiverState, symbol: u64) {
        if symbol >= self.k {
            // Input-enabledness: out-of-alphabet packets cannot be part of
            // any codeword; count them as corruption and drop them.
            state.decode_failures += 1;
            return;
        }
        state.burst.insert(symbol);
        if state.burst.len() == self.codec.packets_per_block() {
            match self.codec.decode_block(&state.burst) {
                Ok(bits) => {
                    let remaining = self.expected_bits.saturating_sub(state.decoded.len());
                    let take = bits.len().min(remaining);
                    state.decoded.extend(bits.into_iter().take(take));
                }
                Err(_) => state.decode_failures += 1,
            }
            state.burst.clear();
        }
    }
}

impl Automaton for BetaReceiver {
    type Action = RstpAction;
    type State = BetaReceiverState;

    fn initial_state(&self) -> BetaReceiverState {
        BetaReceiverState {
            burst: Multiset::empty(self.k),
            decoded: Vec::new(),
            written: 0,
            decode_failures: 0,
        }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Recv(Packet::Data(_)) => Some(ActionClass::Input),
            RstpAction::Write(_) => Some(ActionClass::Output),
            RstpAction::ReceiverInternal(InternalKind::Idle) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &BetaReceiverState) -> Vec<RstpAction> {
        if let Some(&m) = state.decoded.get(state.written) {
            vec![RstpAction::Write(m)]
        } else {
            vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
        }
    }

    fn step(
        &self,
        state: &BetaReceiverState,
        action: &RstpAction,
    ) -> Result<BetaReceiverState, StepError> {
        match action {
            RstpAction::Recv(Packet::Data(s)) => {
                let mut next = state.clone();
                self.absorb(&mut next, *s);
                Ok(next)
            }
            RstpAction::Write(m) => {
                let Some(&expected) = state.decoded.get(state.written) else {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "write requires a decoded, unwritten message".into(),
                    });
                };
                if *m != expected {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: format!("m must equal ŷ_k = {expected}"),
                    });
                }
                let mut next = state.clone();
                next.written += 1;
                Ok(next)
            }
            RstpAction::ReceiverInternal(InternalKind::Idle) => {
                if state.written < state.decoded.len() {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "idle_r requires nothing to write".into(),
                    });
                }
                Ok(state.clone())
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_automata::automaton::{check_deterministic, check_enabled_consistent};

    fn params() -> TimingParams {
        TimingParams::from_ticks(2, 3, 8).unwrap() // δ1 = 4
    }

    fn drive_transmitter(t: &BetaTransmitter) -> Vec<RstpAction> {
        let mut state = t.initial_state();
        let mut log = Vec::new();
        for _ in 0..100_000 {
            check_deterministic(t, &state).unwrap();
            check_enabled_consistent(t, &state).unwrap();
            let Some(a) = t.enabled(&state).into_iter().next() else {
                break;
            };
            state = t.step(&state, &a).unwrap();
            log.push(a);
        }
        log
    }

    #[test]
    fn round_structure_is_delta1_sends_then_delta1_waits() {
        // k = 2, δ1 = 4: μ_2(4) = 5, b = 2 bits per burst.
        let t = BetaTransmitter::new(params(), 2, &[true, false, true]).unwrap();
        assert_eq!(t.bits_per_block(), 2);
        assert_eq!(t.num_blocks(), 2); // ceil(3 / 2)
        let log = drive_transmitter(&t);
        assert_eq!(log.len() as u64, t.total_steps());
        for (i, a) in log.iter().enumerate() {
            let in_round = i as u64 % (2 * t.delta1());
            if in_round < t.delta1() {
                assert!(a.is_data_send(), "step {i} should be a send");
            } else {
                assert_eq!(
                    *a,
                    RstpAction::TransmitterInternal(InternalKind::Wait),
                    "step {i} should be wait_t"
                );
            }
        }
    }

    #[test]
    fn burst_gap_exceeds_delta1_steps() {
        let t = BetaTransmitter::new(params(), 2, &[true; 6]).unwrap();
        let log = drive_transmitter(&t);
        let sends: Vec<usize> = log
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_data_send())
            .map(|(i, _)| i)
            .collect();
        // Between consecutive bursts: gap of δ1 + 1 step indices.
        for w in sends.windows(2) {
            let gap = w[1] - w[0];
            assert!(gap == 1 || gap as u64 == t.delta1() + 1, "gap {gap}");
        }
    }

    #[test]
    fn receiver_decodes_what_transmitter_encodes_in_any_burst_order() {
        let p = params();
        let input = vec![true, false, false, true, true, false, true];
        let t = BetaTransmitter::new(p, 3, &input).unwrap();
        let r = BetaReceiver::new(p, 3, input.len()).unwrap();
        let mut rs = r.initial_state();
        let log = drive_transmitter(&t);
        // Deliver each burst fully reversed — worst-case reordering.
        let mut burst: Vec<u64> = Vec::new();
        for a in log {
            if let RstpAction::Send(Packet::Data(s)) = a {
                burst.push(s);
                if burst.len() as u64 == r.burst_size() {
                    for &s in burst.iter().rev() {
                        rs = r.step(&rs, &RstpAction::Recv(Packet::Data(s))).unwrap();
                    }
                    burst.clear();
                }
            }
        }
        assert_eq!(rs.decoded, input);
        assert_eq!(rs.decode_failures, 0);
        // Drain the writes.
        let mut written = Vec::new();
        while let RstpAction::Write(m) = r.enabled(&rs)[0] {
            written.push(m);
            rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
        }
        assert_eq!(written, input);
    }

    #[test]
    fn padding_is_dropped_via_expected_bits() {
        let p = params();
        // b = 2 bits per burst; 3 bits -> 2 bursts, 1 padding bit.
        let input = vec![true, true, true];
        let t = BetaTransmitter::new(p, 2, &input).unwrap();
        let r = BetaReceiver::new(p, 2, input.len()).unwrap();
        let mut rs = r.initial_state();
        for a in drive_transmitter(&t) {
            if let RstpAction::Send(Packet::Data(s)) = a {
                rs = r.step(&rs, &RstpAction::Recv(Packet::Data(s))).unwrap();
            }
        }
        assert_eq!(rs.decoded, input); // exactly 3 bits, padding dropped
    }

    #[test]
    fn alphabet_too_small_rejected() {
        let p = params();
        assert!(matches!(
            BetaTransmitter::new(p, 1, &[true]),
            Err(ProtocolError::AlphabetTooSmall { k: 1 })
        ));
        assert!(matches!(
            BetaReceiver::new(p, 0, 4),
            Err(ProtocolError::AlphabetTooSmall { k: 0 })
        ));
    }

    #[test]
    fn out_of_alphabet_packet_counted_as_corruption() {
        let p = params();
        let r = BetaReceiver::new(p, 2, 4).unwrap();
        let s = r
            .step(&r.initial_state(), &RstpAction::Recv(Packet::Data(9)))
            .unwrap();
        assert_eq!(s.decode_failures, 1);
        assert!(s.burst.is_empty());
    }

    #[test]
    fn corrupted_burst_is_skipped_not_fatal() {
        // Build a burst that is a valid multiset but not a codeword:
        // k=2, δ1=4 -> μ=5, b=2, codewords ranks 0..4; rank 4 = {1,1,1,1}.
        let p = params();
        let r = BetaReceiver::new(p, 2, 4).unwrap();
        let mut s = r.initial_state();
        for _ in 0..4 {
            s = r.step(&s, &RstpAction::Recv(Packet::Data(1))).unwrap();
        }
        assert_eq!(s.decode_failures, 1);
        assert!(s.decoded.is_empty());
        assert!(s.burst.is_empty()); // ready for the next burst
    }

    #[test]
    fn transmitter_step_rejections() {
        let t = BetaTransmitter::new(params(), 2, &[true, false]).unwrap();
        let s0 = t.initial_state();
        // wait before the burst is finished.
        assert!(matches!(
            t.step(&s0, &RstpAction::TransmitterInternal(InternalKind::Wait)),
            Err(StepError::PreconditionFalse { .. })
        ));
        // wrong symbol.
        let expected = match t.enabled(&s0)[0] {
            RstpAction::Send(Packet::Data(s)) => s,
            _ => unreachable!(),
        };
        assert!(matches!(
            t.step(&s0, &RstpAction::Send(Packet::Data(expected + 1))),
            Err(StepError::PreconditionFalse { .. })
        ));
        // unknown action.
        assert!(matches!(
            t.step(&s0, &RstpAction::Write(true)),
            Err(StepError::UnknownAction { .. })
        ));
    }

    #[test]
    fn empty_input_transmits_nothing() {
        let t = BetaTransmitter::new(params(), 2, &[]).unwrap();
        assert_eq!(t.num_blocks(), 0);
        assert!(t.enabled(&t.initial_state()).is_empty());
    }

    #[test]
    fn receiver_write_then_idle_discipline() {
        let p = params();
        let r = BetaReceiver::new(p, 2, 2).unwrap();
        let s0 = r.initial_state();
        assert_eq!(
            r.enabled(&s0),
            vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
        );
        // idle while caught up is a no-op.
        let s = r
            .step(&s0, &RstpAction::ReceiverInternal(InternalKind::Idle))
            .unwrap();
        assert_eq!(s, s0);
    }

    #[test]
    fn larger_k_carries_more_bits_per_burst() {
        let p = TimingParams::from_ticks(1, 1, 8).unwrap(); // δ1 = 8
        let b2 = BetaTransmitter::new(p, 2, &[true; 16]).unwrap();
        let b4 = BetaTransmitter::new(p, 4, &[true; 16]).unwrap();
        let b16 = BetaTransmitter::new(p, 16, &[true; 16]).unwrap();
        assert!(b2.bits_per_block() < b4.bits_per_block());
        assert!(b4.bits_per_block() < b16.bits_per_block());
        assert!(b2.num_blocks() >= b4.num_blocks());
        assert!(b4.num_blocks() >= b16.num_blocks());
    }
}
