//! A self-delimiting variant of `A^β(k)` — an engineering extension.
//!
//! The paper's receiver is told the input length out of band (its
//! simplifying assumption `|X| ≡ 0 (mod block)` plus a receiver that writes
//! forever). [`crate::protocols::beta`] lifts the divisibility assumption
//! but still configures the receiver with `expected_bits`. This module
//! removes the side channel entirely: the transmitter prepends a 64-bit
//! big-endian **length header** to the bit stream, and the receiver first
//! decodes the header, then knows exactly how many payload bits follow and
//! where the final block's padding starts.
//!
//! The cost is `⌈64 / b⌉` extra bursts — amortized to nothing as
//! `|X| → ∞`, so the effort of the framed protocol equals `A^β(k)`'s
//! asymptotically.

use crate::action::{InternalKind, Message, Packet, RstpAction};
use crate::params::TimingParams;
use crate::protocols::beta::{BetaTransmitter, BetaTransmitterState};
use crate::protocols::ProtocolError;
use rstp_automata::{ActionClass, Automaton, StepError};
use rstp_codec::{bits_to_u128, u128_to_bits, BlockCodec, Multiset};

/// Width of the length header, in bits.
pub const HEADER_BITS: usize = 64;

/// Prepends the 64-bit length header to a payload bit stream.
#[must_use]
fn frame(payload: &[Message]) -> Vec<Message> {
    let mut framed = u128_to_bits(payload.len() as u128, HEADER_BITS);
    framed.extend_from_slice(payload);
    framed
}

/// The framed transmitter: a [`BetaTransmitter`] over the header-prefixed
/// stream. Identical wire behavior (bursts of `δ1` then `δ1` waits).
#[derive(Clone, Debug)]
pub struct FramedTransmitter {
    inner: BetaTransmitter,
    payload_len: usize,
}

impl FramedTransmitter {
    /// Creates the transmitter for `payload` (no out-of-band length needed
    /// at the receiver).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BetaTransmitter::new`].
    pub fn new(params: TimingParams, k: u64, payload: &[Message]) -> Result<Self, ProtocolError> {
        Ok(FramedTransmitter {
            inner: BetaTransmitter::new(params, k, &frame(payload))?,
            payload_len: payload.len(),
        })
    }

    /// The payload length in bits (not counting the header).
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Number of bursts, including header bursts.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.inner.num_blocks()
    }

    /// The wrapped `A^β(k)` transmitter.
    #[must_use]
    pub fn inner(&self) -> &BetaTransmitter {
        &self.inner
    }
}

impl Automaton for FramedTransmitter {
    type Action = RstpAction;
    type State = BetaTransmitterState;

    fn initial_state(&self) -> BetaTransmitterState {
        self.inner.initial_state()
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        self.inner.classify(action)
    }

    fn enabled(&self, state: &BetaTransmitterState) -> Vec<RstpAction> {
        self.inner.enabled(state)
    }

    fn step(
        &self,
        state: &BetaTransmitterState,
        action: &RstpAction,
    ) -> Result<BetaTransmitterState, StepError> {
        self.inner.step(state, action)
    }
}

/// The framed receiver: decodes bursts like `A^β(k)`'s receiver, but learns
/// the payload length from the first 64 decoded bits instead of from
/// configuration.
#[derive(Clone, Debug)]
pub struct FramedReceiver {
    codec: BlockCodec,
    k: u64,
}

/// State of [`FramedReceiver`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FramedReceiverState {
    /// The burst in progress.
    pub burst: Multiset,
    /// All decoded bits, header included.
    pub decoded: Vec<Message>,
    /// Payload bits written so far.
    pub written: usize,
    /// Bursts that failed to decode.
    pub decode_failures: u32,
}

impl FramedReceiverState {
    /// The payload length, once the header has been decoded.
    #[must_use]
    pub fn announced_len(&self) -> Option<usize> {
        if self.decoded.len() >= HEADER_BITS {
            Some(bits_to_u128(&self.decoded[..HEADER_BITS]) as usize)
        } else {
            None
        }
    }

    /// Payload bits decoded and available (announced length permitting).
    #[must_use]
    pub fn available_payload(&self) -> usize {
        match self.announced_len() {
            Some(len) => (self.decoded.len() - HEADER_BITS).min(len),
            None => 0,
        }
    }

    /// Whether the whole payload has been decoded.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.announced_len()
            .is_some_and(|len| self.decoded.len() - HEADER_BITS >= len)
    }
}

impl FramedReceiver {
    /// Creates the receiver. Only `(params, k)` are needed — the length
    /// arrives in-band.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::protocols::beta::BetaReceiver::new`].
    pub fn new(params: TimingParams, k: u64) -> Result<Self, ProtocolError> {
        if k < 2 {
            return Err(ProtocolError::AlphabetTooSmall { k });
        }
        let codec = BlockCodec::new(k, params.delta1())?;
        Ok(FramedReceiver { codec, k })
    }

    /// The burst size the receiver waits for (`δ1`).
    #[must_use]
    pub fn burst_size(&self) -> u64 {
        self.codec.packets_per_block()
    }
}

impl Automaton for FramedReceiver {
    type Action = RstpAction;
    type State = FramedReceiverState;

    fn initial_state(&self) -> FramedReceiverState {
        FramedReceiverState {
            burst: Multiset::empty(self.k),
            decoded: Vec::new(),
            written: 0,
            decode_failures: 0,
        }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Recv(Packet::Data(_)) => Some(ActionClass::Input),
            RstpAction::Write(_) => Some(ActionClass::Output),
            RstpAction::ReceiverInternal(InternalKind::Idle) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &FramedReceiverState) -> Vec<RstpAction> {
        if state.written < state.available_payload() {
            if let Some(&m) = state.decoded.get(HEADER_BITS + state.written) {
                return vec![RstpAction::Write(m)];
            }
        }
        vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
    }

    fn step(
        &self,
        state: &FramedReceiverState,
        action: &RstpAction,
    ) -> Result<FramedReceiverState, StepError> {
        match action {
            RstpAction::Recv(Packet::Data(s)) => {
                let mut next = state.clone();
                if *s >= self.k {
                    next.decode_failures += 1;
                    return Ok(next);
                }
                next.burst.insert(*s);
                if next.burst.len() == self.codec.packets_per_block() {
                    match self.codec.decode_block(&next.burst) {
                        Ok(bits) => next.decoded.extend(bits),
                        Err(_) => next.decode_failures += 1,
                    }
                    next.burst.clear();
                }
                Ok(next)
            }
            RstpAction::Write(m) => {
                if state.written >= state.available_payload() {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "write requires an available payload bit".into(),
                    });
                }
                if state.decoded.get(HEADER_BITS + state.written) != Some(m) {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "m must equal the next payload bit".into(),
                    });
                }
                let mut next = state.clone();
                next.written += 1;
                Ok(next)
            }
            RstpAction::ReceiverInternal(InternalKind::Idle) => {
                if state.written < state.available_payload() {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "idle_r requires nothing to write".into(),
                    });
                }
                Ok(state.clone())
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 6).unwrap() // δ1 = 6
    }

    fn pump(t: &FramedTransmitter, r: &FramedReceiver) -> (Vec<Message>, FramedReceiverState) {
        let mut ts = t.initial_state();
        let mut rs = r.initial_state();
        let mut written = Vec::new();
        for _ in 0..1_000_000 {
            match t.enabled(&ts).first().copied() {
                Some(a @ RstpAction::Send(Packet::Data(s))) => {
                    ts = t.step(&ts, &a).unwrap();
                    rs = r.step(&rs, &RstpAction::Recv(Packet::Data(s))).unwrap();
                }
                Some(a) => ts = t.step(&ts, &a).unwrap(),
                None => {}
            }
            if let Some(RstpAction::Write(m)) = r.enabled(&rs).first().copied() {
                written.push(m);
                rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
            }
            if t.enabled(&ts).is_empty()
                && matches!(
                    r.enabled(&rs).first(),
                    Some(RstpAction::ReceiverInternal(_))
                )
                && rs.complete()
            {
                break;
            }
        }
        (written, rs)
    }

    #[test]
    fn header_frames_the_payload() {
        let payload = vec![true, false, true, true, false];
        let framed = frame(&payload);
        assert_eq!(framed.len(), HEADER_BITS + payload.len());
        assert_eq!(bits_to_u128(&framed[..HEADER_BITS]), 5);
    }

    #[test]
    fn end_to_end_without_out_of_band_length() {
        let p = params();
        let payload = vec![true, false, false, true, true, false, true];
        let t = FramedTransmitter::new(p, 4, &payload).unwrap();
        let r = FramedReceiver::new(p, 4).unwrap();
        let (written, rs) = pump(&t, &r);
        assert_eq!(rs.announced_len(), Some(payload.len()));
        assert_eq!(written, payload);
        assert_eq!(rs.decode_failures, 0);
        assert!(rs.complete());
    }

    #[test]
    fn empty_payload_still_announces_itself() {
        let p = params();
        let t = FramedTransmitter::new(p, 2, &[]).unwrap();
        let r = FramedReceiver::new(p, 2).unwrap();
        let (written, rs) = pump(&t, &r);
        assert_eq!(rs.announced_len(), Some(0));
        assert!(written.is_empty());
        assert!(rs.complete());
        assert_eq!(t.payload_len(), 0);
    }

    #[test]
    fn header_overhead_is_a_constant_number_of_bursts() {
        let p = params();
        let small = FramedTransmitter::new(p, 4, &[true; 10]).unwrap();
        let plain = crate::protocols::beta::BetaTransmitter::new(p, 4, &[true; 10]).unwrap();
        let overhead = small.num_blocks() - plain.num_blocks();
        // ceil(64 / b) bursts of header, within one burst of exactly that
        // (alignment of header and payload in one stream).
        let b = plain.bits_per_block() as usize;
        assert!(overhead <= HEADER_BITS.div_ceil(b) + 1);
        assert!(overhead >= HEADER_BITS / b);
    }

    #[test]
    fn no_writes_before_header_complete() {
        let p = params();
        let r = FramedReceiver::new(p, 2).unwrap();
        let s = r.initial_state();
        assert_eq!(s.announced_len(), None);
        assert_eq!(s.available_payload(), 0);
        assert!(!s.complete());
        assert!(matches!(
            r.enabled(&s)[0],
            RstpAction::ReceiverInternal(InternalKind::Idle)
        ));
        assert!(matches!(
            r.step(&s, &RstpAction::Write(true)),
            Err(StepError::PreconditionFalse { .. })
        ));
    }

    #[test]
    fn rejects_tiny_alphabet() {
        assert!(FramedReceiver::new(params(), 1).is_err());
        assert!(FramedTransmitter::new(params(), 1, &[true]).is_err());
    }
}
