//! The alternating-bit protocol — the classic \[BSW69\] baseline the paper's
//! introduction cites as the solution to STP for channels that **lose and
//! duplicate** packets.
//!
//! RSTP's channel never loses or duplicates, so within the paper's model
//! this protocol is strictly dominated by `A^γ(k)`. It is implemented here
//! as the comparison baseline for the fault-injection experiments (E9):
//! under injected loss/duplication, `A^β`/`A^γ` deadlock or mis-frame bursts
//! — their correctness genuinely depends on the perfect channel — while the
//! alternating-bit protocol keeps working, at the price of (timeout-driven)
//! retransmissions and one-message-at-a-time throughput.
//!
//! Packet encoding: a data packet carries `symbol = 2·tag + bit` (alphabet
//! size 4); an acknowledgement carries its tag. The transmitter retransmits
//! the current message every `timeout_steps` local steps until the matching
//! tagged ack arrives; the receiver acks every data packet it sees (re-acking
//! duplicates of the previous message) and accepts a message only when the
//! tag alternates as expected.

use crate::action::{InternalKind, Message, Packet, RstpAction};
use crate::params::TimingParams;
use rstp_automata::{ActionClass, Automaton, StepError};
use std::collections::VecDeque;

/// Encodes `(tag, bit)` into a data symbol.
#[must_use]
pub fn encode_symbol(tag: u64, bit: Message) -> u64 {
    2 * (tag & 1) + u64::from(bit)
}

/// Decodes a data symbol into `(tag, bit)`.
#[must_use]
pub fn decode_symbol(symbol: u64) -> (u64, Message) {
    ((symbol >> 1) & 1, symbol & 1 == 1)
}

/// The alternating-bit transmitter.
#[derive(Clone, Debug)]
pub struct AltBitTransmitter {
    input: Vec<Message>,
    timeout_steps: u64,
}

/// State of [`AltBitTransmitter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AltBitTransmitterState {
    /// Index of the message currently being (re)transmitted.
    pub next: usize,
    /// Local steps since the last (re)transmission; `0` = send now.
    pub timer: u64,
}

impl AltBitTransmitter {
    /// Creates the transmitter. `timeout_steps` is the retransmission
    /// period in local steps; `None` picks the smallest period that cannot
    /// fire spuriously over a loss-free bounded-delay channel:
    /// `⌈(2d + 2·c2) / c1⌉ + 1` steps (data out ≤ `d`, ack turnaround
    /// ≤ `c2` + one receiver queue slot ≤ `c2`, ack back ≤ `d`).
    #[must_use]
    pub fn new(params: TimingParams, input: Vec<Message>, timeout_steps: Option<u64>) -> Self {
        let default = (2 * params.d() + 2 * params.c2()).div_ceil(params.c1()) + 1;
        AltBitTransmitter {
            input,
            timeout_steps: timeout_steps.unwrap_or(default).max(1),
        }
    }

    /// The retransmission period in local steps.
    #[must_use]
    pub fn timeout_steps(&self) -> u64 {
        self.timeout_steps
    }

    /// The input sequence `X`.
    #[must_use]
    pub fn input(&self) -> &[Message] {
        &self.input
    }

    fn current_packet(&self, state: &AltBitTransmitterState) -> Packet {
        let tag = (state.next as u64) & 1;
        Packet::Data(encode_symbol(tag, self.input[state.next]))
    }
}

impl Automaton for AltBitTransmitter {
    type Action = RstpAction;
    type State = AltBitTransmitterState;

    fn initial_state(&self) -> AltBitTransmitterState {
        AltBitTransmitterState { next: 0, timer: 0 }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Send(Packet::Data(_)) => Some(ActionClass::Output),
            RstpAction::Recv(Packet::Ack(_)) => Some(ActionClass::Input),
            RstpAction::TransmitterInternal(InternalKind::Wait) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &AltBitTransmitterState) -> Vec<RstpAction> {
        if state.next >= self.input.len() {
            return vec![]; // done: every message acknowledged
        }
        if state.timer == 0 {
            vec![RstpAction::Send(self.current_packet(state))]
        } else {
            vec![RstpAction::TransmitterInternal(InternalKind::Wait)]
        }
    }

    fn step(
        &self,
        state: &AltBitTransmitterState,
        action: &RstpAction,
    ) -> Result<AltBitTransmitterState, StepError> {
        match action {
            RstpAction::Recv(Packet::Ack(tag)) => {
                // Input-enabled: stale or stray acks are absorbed silently.
                if state.next < self.input.len() && (tag & 1) == (state.next as u64) & 1 {
                    Ok(AltBitTransmitterState {
                        next: state.next + 1,
                        timer: 0,
                    })
                } else {
                    Ok(state.clone())
                }
            }
            RstpAction::Send(Packet::Data(symbol)) => {
                if state.next >= self.input.len() || state.timer != 0 {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: format!(
                            "send requires timer = 0 and unacked input (timer = {}, next = {})",
                            state.timer, state.next
                        ),
                    });
                }
                if Packet::Data(*symbol) != self.current_packet(state) {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "packet must carry the current (tag, bit)".into(),
                    });
                }
                Ok(AltBitTransmitterState {
                    next: state.next,
                    timer: 1,
                })
            }
            RstpAction::TransmitterInternal(InternalKind::Wait) => {
                if state.next >= self.input.len() || state.timer == 0 {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "wait requires a running retransmission timer".into(),
                    });
                }
                let timer = (state.timer + 1) % self.timeout_steps;
                Ok(AltBitTransmitterState {
                    next: state.next,
                    timer,
                })
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

/// The alternating-bit receiver.
#[derive(Clone, Copy, Debug, Default)]
pub struct AltBitReceiver;

/// State of [`AltBitReceiver`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AltBitReceiverState {
    /// The tag the next *new* message must carry.
    pub expected_tag: u64,
    /// Accepted messages, in order.
    pub received: Vec<Message>,
    /// Completed writes.
    pub written: usize,
    /// Tags of acknowledgements owed, FIFO.
    pub ack_queue: VecDeque<u64>,
}

impl AltBitReceiver {
    /// Creates the receiver.
    #[must_use]
    pub fn new() -> Self {
        AltBitReceiver
    }
}

impl Automaton for AltBitReceiver {
    type Action = RstpAction;
    type State = AltBitReceiverState;

    fn initial_state(&self) -> AltBitReceiverState {
        AltBitReceiverState::default()
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Recv(Packet::Data(_)) => Some(ActionClass::Input),
            RstpAction::Send(Packet::Ack(_)) => Some(ActionClass::Output),
            RstpAction::Write(_) => Some(ActionClass::Output),
            RstpAction::ReceiverInternal(InternalKind::Idle) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &AltBitReceiverState) -> Vec<RstpAction> {
        if let Some(&tag) = state.ack_queue.front() {
            vec![RstpAction::Send(Packet::Ack(tag))]
        } else if let Some(&m) = state.received.get(state.written) {
            vec![RstpAction::Write(m)]
        } else {
            vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
        }
    }

    fn step(
        &self,
        state: &AltBitReceiverState,
        action: &RstpAction,
    ) -> Result<AltBitReceiverState, StepError> {
        match action {
            RstpAction::Recv(Packet::Data(symbol)) => {
                let (tag, bit) = decode_symbol(*symbol);
                let mut next = state.clone();
                if tag == state.expected_tag {
                    next.received.push(bit);
                    next.expected_tag ^= 1;
                }
                // Ack every arrival — duplicates get their (old) tag
                // re-acked, which is what lets the transmitter recover from
                // a lost ack.
                next.ack_queue.push_back(tag);
                Ok(next)
            }
            RstpAction::Send(Packet::Ack(tag)) => match state.ack_queue.front() {
                Some(&front) if front == *tag => {
                    let mut next = state.clone();
                    next.ack_queue.pop_front();
                    Ok(next)
                }
                _ => Err(StepError::PreconditionFalse {
                    action: format!("{action:?}"),
                    reason: "send(ack) must acknowledge the oldest pending tag".into(),
                }),
            },
            RstpAction::Write(m) => {
                if state.received.get(state.written) != Some(m) {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "write requires the next accepted message".into(),
                    });
                }
                let mut next = state.clone();
                next.written += 1;
                Ok(next)
            }
            RstpAction::ReceiverInternal(InternalKind::Idle) => {
                if !state.ack_queue.is_empty() || state.written < state.received.len() {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "idle_r requires no pending acks or writes".into(),
                    });
                }
                Ok(state.clone())
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 4).unwrap()
    }

    #[test]
    fn symbol_codec_roundtrip() {
        for tag in 0..2u64 {
            for bit in [false, true] {
                let (t, b) = decode_symbol(encode_symbol(tag, bit));
                assert_eq!((t, b), (tag, bit));
            }
        }
    }

    #[test]
    fn default_timeout_covers_round_trip() {
        let p = params();
        let t = AltBitTransmitter::new(p, vec![true], None);
        // (2*4 + 2*2)/1 + 1 = 13 steps.
        assert_eq!(t.timeout_steps(), 13);
        assert!(t.timeout_steps() * p.c1().ticks() > 2 * p.d().ticks());
    }

    #[test]
    fn happy_path_alternates_tags() {
        let t = AltBitTransmitter::new(params(), vec![true, false], Some(5));
        let r = AltBitReceiver::new();
        let mut ts = t.initial_state();
        let mut rs = r.initial_state();
        let mut written = Vec::new();

        for _ in 0..100 {
            match t.enabled(&ts).first().copied() {
                Some(RstpAction::Send(Packet::Data(sym))) => {
                    ts = t.step(&ts, &RstpAction::Send(Packet::Data(sym))).unwrap();
                    rs = r.step(&rs, &RstpAction::Recv(Packet::Data(sym))).unwrap();
                }
                Some(a) => ts = t.step(&ts, &a).unwrap(),
                None => {}
            }
            match r.enabled(&rs).first().copied() {
                Some(RstpAction::Send(Packet::Ack(tag))) => {
                    rs = r.step(&rs, &RstpAction::Send(Packet::Ack(tag))).unwrap();
                    ts = t.step(&ts, &RstpAction::Recv(Packet::Ack(tag))).unwrap();
                }
                Some(RstpAction::Write(m)) => {
                    written.push(m);
                    rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
                }
                _ => {}
            }
            if t.enabled(&ts).is_empty()
                && matches!(
                    r.enabled(&rs).first(),
                    Some(RstpAction::ReceiverInternal(_))
                )
            {
                break;
            }
        }
        assert_eq!(written, vec![true, false]);
    }

    #[test]
    fn retransmission_fires_after_timeout() {
        let t = AltBitTransmitter::new(params(), vec![true], Some(3));
        let mut s = t.initial_state();
        let first = t.enabled(&s)[0];
        assert!(first.is_data_send());
        s = t.step(&s, &first).unwrap();
        // Two waits, then the same packet is re-enabled.
        for _ in 0..2 {
            let a = t.enabled(&s)[0];
            assert_eq!(a, RstpAction::TransmitterInternal(InternalKind::Wait));
            s = t.step(&s, &a).unwrap();
        }
        assert_eq!(t.enabled(&s)[0], first);
    }

    #[test]
    fn duplicate_data_is_reacked_but_not_rewritten() {
        let r = AltBitReceiver::new();
        let mut s = r.initial_state();
        let pkt = RstpAction::Recv(Packet::Data(encode_symbol(0, true)));
        s = r.step(&s, &pkt).unwrap();
        s = r.step(&s, &pkt).unwrap(); // duplicate
        assert_eq!(s.received, vec![true]); // accepted once
        assert_eq!(s.ack_queue.len(), 2); // acked twice
    }

    #[test]
    fn stale_ack_ignored_by_transmitter() {
        let t = AltBitTransmitter::new(params(), vec![true, false], Some(5));
        let mut s = t.initial_state();
        let a = t.enabled(&s)[0];
        s = t.step(&s, &a).unwrap();
        // Message 0 has tag 0; an ack tagged 1 is stale.
        let stale = t.step(&s, &RstpAction::Recv(Packet::Ack(1))).unwrap();
        assert_eq!(stale.next, 0);
        // The matching ack advances and resets the timer.
        let fresh = t.step(&s, &RstpAction::Recv(Packet::Ack(0))).unwrap();
        assert_eq!(fresh.next, 1);
        assert_eq!(fresh.timer, 0);
    }

    #[test]
    fn loss_recovery_via_retransmit() {
        // Simulate: first copy lost, second copy delivered; lost ack, then
        // delivered ack on re-ack after duplicate.
        let t = AltBitTransmitter::new(params(), vec![true], Some(2));
        let r = AltBitReceiver::new();
        let mut ts = t.initial_state();
        let mut rs = r.initial_state();

        // Send #1 — lost.
        let a = t.enabled(&ts)[0];
        ts = t.step(&ts, &a).unwrap();
        // Timer wait, then retransmit.
        let w = t.enabled(&ts)[0];
        ts = t.step(&ts, &w).unwrap();
        let a2 = t.enabled(&ts)[0];
        assert!(a2.is_data_send());
        ts = t.step(&ts, &a2).unwrap();
        // Second copy delivered.
        if let RstpAction::Send(p) = a2 {
            rs = r.step(&rs, &RstpAction::Recv(p)).unwrap();
        }
        // Receiver acks; ack delivered.
        if let Some(RstpAction::Send(Packet::Ack(tag))) = r.enabled(&rs).first().copied() {
            rs = r.step(&rs, &RstpAction::Send(Packet::Ack(tag))).unwrap();
            ts = t.step(&ts, &RstpAction::Recv(Packet::Ack(tag))).unwrap();
        }
        assert!(t.enabled(&ts).is_empty()); // done
        assert_eq!(rs.received, vec![true]);
    }

    #[test]
    fn receiver_ack_queue_is_fifo() {
        let r = AltBitReceiver::new();
        let mut s = r.initial_state();
        s = r
            .step(&s, &RstpAction::Recv(Packet::Data(encode_symbol(0, true))))
            .unwrap();
        s = r
            .step(&s, &RstpAction::Recv(Packet::Data(encode_symbol(1, false))))
            .unwrap();
        // Must ack tag 0 first.
        assert_eq!(r.enabled(&s), vec![RstpAction::Send(Packet::Ack(0))]);
        assert!(matches!(
            r.step(&s, &RstpAction::Send(Packet::Ack(1))),
            Err(StepError::PreconditionFalse { .. })
        ));
    }

    #[test]
    fn empty_input_quiescent() {
        let t = AltBitTransmitter::new(params(), vec![], None);
        assert!(t.enabled(&t.initial_state()).is_empty());
    }
}
