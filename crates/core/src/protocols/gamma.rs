//! `A^γ(k)` — the asymptotically optimal *active* solution of paper §6.2
//! (Figure 4), "due to an idea of Richard Beigel".
//!
//! Like `A^β(k)` but clocked by acknowledgements instead of counted idling:
//! the transmitter sends a burst of `δ2` packets, then waits (`idle_t`)
//! until it has received `δ2` `ack` packets — one per delivered packet —
//! before starting the next burst. Because the wait is event-driven, a
//! round costs wall-clock `≤ 3d + c2` (packet out ≤ d, ack turnaround
//! ≤ c2-ish, ack back ≤ d, plus the burst itself ≤ δ2·c2 ≤ d) regardless of
//! how slow the processes are, whereas `A^β`'s counted idling costs
//! `2·δ1·c2 = 2d·(c2/c1)·…` — the active protocol wins exactly when the
//! timing uncertainty `c2/c1` is large.
//!
//! Effort: `eff(A^γ(k)) ≤ (3d + c2) / ⌊log2 μ_k(δ2)⌋`, within a constant
//! factor of Theorem 5.6's lower bound `Ω(d / log μ_k(δ2))`.
//!
//! Figure 4 correspondence (transmitter): `c` is
//! [`GammaTransmitterState::step_in_burst`], `a` is
//! [`GammaTransmitterState::acks`]; `recv(ack)`'s effect
//! `a := a+1; if a = δ2 then (a := 0; c := 0)` is verbatim (with the block
//! index advancing on the reset); `idle_t` has precondition `c = δ2`.
//!
//! Figure 4 correspondence (receiver): multiset `A`, pending-ack counter
//! `j`, decoded array `ŷ`, and write counter `k` appear as the fields of
//! [`GammaReceiverState`]. The figure leaves the receiver nondeterministic
//! when both an ack is owed (`j > 0`) and a message is writable (`k ≤ i`);
//! we resolve it **ack-first** (then write, then `idle_r`), which is one of
//! the schedules the paper's correctness proof (Lemma 6.2) covers and the
//! one that unblocks the transmitter soonest.

use crate::action::{InternalKind, Message, Packet, RstpAction};
use crate::params::TimingParams;
use crate::protocols::ProtocolError;
use rstp_automata::{ActionClass, Automaton, StepError};
use rstp_codec::{BlockCodec, Multiset};

/// The single acknowledgement packet of `A^γ(k)`: `P^rt = {ack}`.
pub const ACK: Packet = Packet::Ack(0);

/// The transmitter of `A^γ(k)` (Figure 4, left column).
#[derive(Clone, Debug)]
pub struct GammaTransmitter {
    blocks: Vec<Vec<u64>>,
    delta2: u64,
    bits_per_block: u32,
    input_len: usize,
}

/// State of [`GammaTransmitter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GammaTransmitterState {
    /// Index of the burst currently being transmitted.
    pub block: usize,
    /// Figure 4's `c ∈ [0, δ2]`: `< δ2` while sending, `= δ2` while awaiting
    /// acks.
    pub step_in_burst: u64,
    /// Figure 4's `a`: acks received for the current burst.
    pub acks: u64,
}

impl GammaTransmitter {
    /// Creates the transmitter: encodes `input` into bursts of `δ2` packets
    /// over the alphabet `{0, …, k-1}`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlphabetTooSmall`] if `k < 2`;
    /// [`ProtocolError::Codec`] if `(k, δ2)` cannot carry information.
    pub fn new(params: TimingParams, k: u64, input: &[Message]) -> Result<Self, ProtocolError> {
        if k < 2 {
            return Err(ProtocolError::AlphabetTooSmall { k });
        }
        let delta2 = params.delta2();
        let codec = BlockCodec::new(k, delta2)?;
        let blocks = codec
            .encode_stream(input)?
            .into_iter()
            .map(|b| b.packets().to_vec())
            .collect();
        Ok(GammaTransmitter {
            blocks,
            delta2,
            bits_per_block: codec.bits_per_block(),
            input_len: input.len(),
        })
    }

    /// The burst size `δ2`.
    #[must_use]
    pub fn delta2(&self) -> u64 {
        self.delta2
    }

    /// Number of bursts to transmit.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Input bits carried per burst, `b = ⌊log2 μ_k(δ2)⌋`.
    #[must_use]
    pub fn bits_per_block(&self) -> u32 {
        self.bits_per_block
    }

    /// Length of the original input `X`.
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.input_len
    }
}

impl Automaton for GammaTransmitter {
    type Action = RstpAction;
    type State = GammaTransmitterState;

    fn initial_state(&self) -> GammaTransmitterState {
        GammaTransmitterState {
            block: 0,
            step_in_burst: 0,
            acks: 0,
        }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Send(Packet::Data(_)) => Some(ActionClass::Output),
            RstpAction::Recv(Packet::Ack(_)) => Some(ActionClass::Input),
            RstpAction::TransmitterInternal(InternalKind::Idle) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &GammaTransmitterState) -> Vec<RstpAction> {
        if state.block >= self.blocks.len() {
            return vec![]; // everything sent and acknowledged: quiescent
        }
        let symbol = self
            .blocks
            .get(state.block)
            .filter(|_| state.step_in_burst < self.delta2)
            .and_then(|block| block.get(state.step_in_burst as usize));
        if let Some(&symbol) = symbol {
            vec![RstpAction::Send(Packet::Data(symbol))]
        } else {
            // c = δ2: the figure's idle_t, enabled while awaiting acks.
            vec![RstpAction::TransmitterInternal(InternalKind::Idle)]
        }
    }

    fn step(
        &self,
        state: &GammaTransmitterState,
        action: &RstpAction,
    ) -> Result<GammaTransmitterState, StepError> {
        let precondition_false = |reason: String| StepError::PreconditionFalse {
            action: format!("{action:?}"),
            reason,
        };
        match action {
            RstpAction::Recv(Packet::Ack(_)) => {
                // Input: must be accepted in every state. Stray acks after
                // the final block are absorbed without effect.
                if state.block >= self.blocks.len() {
                    return Ok(state.clone());
                }
                let acks = state.acks + 1;
                // Test-only seeded fault for the `rstp-check` fuzzer's
                // acceptance run: compile with
                // `RUSTFLAGS="--cfg rstp_check_inject_ack_bug"` and the
                // transmitter advances one ack early (an off-by-one the
                // fuzzer must catch via burst overlap under reordering).
                // δ2 = 1 is exempt so the bug stays a timing bug rather
                // than a trivial deadlock.
                let needed = if cfg!(rstp_check_inject_ack_bug) {
                    (self.delta2 - 1).max(1)
                } else {
                    self.delta2
                };
                if acks == needed {
                    Ok(GammaTransmitterState {
                        block: state.block + 1,
                        step_in_burst: 0,
                        acks: 0,
                    })
                } else {
                    Ok(GammaTransmitterState {
                        acks,
                        ..state.clone()
                    })
                }
            }
            RstpAction::Send(Packet::Data(symbol)) => {
                if state.block >= self.blocks.len() {
                    return Err(precondition_false("all blocks transmitted".into()));
                }
                if state.step_in_burst >= self.delta2 {
                    return Err(precondition_false(format!(
                        "send requires c < δ2 (c = {})",
                        state.step_in_burst
                    )));
                }
                let expected = self.blocks[state.block][state.step_in_burst as usize];
                if *symbol != expected {
                    return Err(precondition_false(format!("p must equal x̂_i = {expected}")));
                }
                Ok(GammaTransmitterState {
                    step_in_burst: state.step_in_burst + 1,
                    ..state.clone()
                })
            }
            RstpAction::TransmitterInternal(InternalKind::Idle) => {
                if state.block >= self.blocks.len() || state.step_in_burst < self.delta2 {
                    return Err(precondition_false(format!(
                        "idle_t requires c = δ2 (c = {})",
                        state.step_in_burst
                    )));
                }
                Ok(state.clone())
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

/// The receiver of `A^γ(k)` (Figure 4, right column).
#[derive(Clone, Debug)]
pub struct GammaReceiver {
    codec: BlockCodec,
    expected_bits: usize,
    k: u64,
}

/// State of [`GammaReceiver`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GammaReceiverState {
    /// Figure 4's multiset `A`: packets of the burst in progress.
    pub burst: Multiset,
    /// Figure 4's `j`: packets received but not yet acknowledged.
    pub pending_acks: u64,
    /// Figure 4's `ŷ`: decoded message bits.
    pub decoded: Vec<Message>,
    /// Completed writes (the figure's `k - 1`).
    pub written: usize,
    /// Bursts that failed to decode (fault injection only).
    pub decode_failures: u32,
}

impl GammaReceiver {
    /// Creates the receiver, which will reconstruct exactly `expected_bits`
    /// message bits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GammaTransmitter::new`].
    pub fn new(params: TimingParams, k: u64, expected_bits: usize) -> Result<Self, ProtocolError> {
        if k < 2 {
            return Err(ProtocolError::AlphabetTooSmall { k });
        }
        let codec = BlockCodec::new(k, params.delta2())?;
        Ok(GammaReceiver {
            codec,
            expected_bits,
            k,
        })
    }

    /// The burst size the receiver waits for (`δ2`).
    #[must_use]
    pub fn burst_size(&self) -> u64 {
        self.codec.packets_per_block()
    }

    /// The exact number of message bits that will be written.
    #[must_use]
    pub fn expected_bits(&self) -> usize {
        self.expected_bits
    }
}

impl Automaton for GammaReceiver {
    type Action = RstpAction;
    type State = GammaReceiverState;

    fn initial_state(&self) -> GammaReceiverState {
        GammaReceiverState {
            burst: Multiset::empty(self.k),
            pending_acks: 0,
            decoded: Vec::new(),
            written: 0,
            decode_failures: 0,
        }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Recv(Packet::Data(_)) => Some(ActionClass::Input),
            RstpAction::Send(Packet::Ack(_)) => Some(ActionClass::Output),
            RstpAction::Write(_) => Some(ActionClass::Output),
            RstpAction::ReceiverInternal(InternalKind::Idle) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &GammaReceiverState) -> Vec<RstpAction> {
        // Fixed priority: ack, then write, then idle (see module docs).
        if state.pending_acks > 0 {
            vec![RstpAction::Send(ACK)]
        } else if let Some(&m) = state.decoded.get(state.written) {
            vec![RstpAction::Write(m)]
        } else {
            vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
        }
    }

    fn step(
        &self,
        state: &GammaReceiverState,
        action: &RstpAction,
    ) -> Result<GammaReceiverState, StepError> {
        match action {
            RstpAction::Recv(Packet::Data(s)) => {
                let mut next = state.clone();
                // Figure 4: j := j + 1; A := A ∪ {p}; decode on |A| = δ2.
                next.pending_acks += 1;
                if *s >= self.k {
                    next.decode_failures += 1;
                    return Ok(next);
                }
                next.burst.insert(*s);
                if next.burst.len() == self.codec.packets_per_block() {
                    match self.codec.decode_block(&next.burst) {
                        Ok(bits) => {
                            let remaining = self.expected_bits.saturating_sub(next.decoded.len());
                            let take = bits.len().min(remaining);
                            next.decoded.extend(bits.into_iter().take(take));
                        }
                        Err(_) => next.decode_failures += 1,
                    }
                    next.burst.clear();
                }
                Ok(next)
            }
            RstpAction::Send(Packet::Ack(0)) => {
                if state.pending_acks == 0 {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "send(ack) requires j > 0".into(),
                    });
                }
                let mut next = state.clone();
                next.pending_acks -= 1;
                Ok(next)
            }
            RstpAction::Write(m) => {
                let Some(&expected) = state.decoded.get(state.written) else {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "write requires a decoded, unwritten message".into(),
                    });
                };
                if *m != expected {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: format!("m must equal ŷ_k = {expected}"),
                    });
                }
                let mut next = state.clone();
                next.written += 1;
                Ok(next)
            }
            RstpAction::ReceiverInternal(InternalKind::Idle) => {
                if state.pending_acks > 0 || state.written < state.decoded.len() {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "idle_r requires k > i and j = 0".into(),
                    });
                }
                Ok(state.clone())
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_automata::automaton::{check_deterministic, check_enabled_consistent};

    fn params() -> TimingParams {
        TimingParams::from_ticks(2, 3, 9).unwrap() // δ1 = 5, δ2 = 3
    }

    /// Run a full lock-step round trip: transmitter sends a burst, we hand
    /// the packets to the receiver, shuttle acks back, and repeat until
    /// quiescent. Returns (written bits, transmitter sends).
    fn lockstep(
        t: &GammaTransmitter,
        r: &GammaReceiver,
    ) -> (Vec<Message>, usize, GammaReceiverState) {
        let mut ts = t.initial_state();
        let mut rs = r.initial_state();
        let mut written = Vec::new();
        let mut sends = 0usize;
        for _ in 0..1_000_000 {
            // Transmitter takes its enabled local action if progress-making.
            let t_actions = t.enabled(&ts);
            check_deterministic(t, &ts).unwrap();
            check_enabled_consistent(t, &ts).unwrap();
            check_deterministic(r, &rs).unwrap();
            check_enabled_consistent(r, &rs).unwrap();
            let mut progressed = false;
            if let Some(a) = t_actions.first() {
                if let RstpAction::Send(Packet::Data(s)) = a {
                    ts = t.step(&ts, a).unwrap();
                    sends += 1;
                    // Deliver immediately.
                    rs = r.step(&rs, &RstpAction::Recv(Packet::Data(*s))).unwrap();
                    progressed = true;
                }
            }
            // Receiver takes its enabled local action.
            match r.enabled(&rs).first() {
                Some(RstpAction::Send(Packet::Ack(0))) => {
                    rs = r.step(&rs, &RstpAction::Send(ACK)).unwrap();
                    ts = t.step(&ts, &RstpAction::Recv(ACK)).unwrap();
                    progressed = true;
                }
                Some(RstpAction::Write(m)) => {
                    let m = *m;
                    written.push(m);
                    rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
                    progressed = true;
                }
                _ => {}
            }
            if !progressed && t.enabled(&ts).iter().all(|a| a.is_idle()) {
                break;
            }
        }
        (written, sends, rs)
    }

    #[test]
    fn full_roundtrip_delivers_input_exactly() {
        let p = params();
        let input = vec![true, false, true, true, false, false, true, false, true];
        let t = GammaTransmitter::new(p, 4, &input).unwrap();
        let r = GammaReceiver::new(p, 4, input.len()).unwrap();
        let (written, sends, rs) = lockstep(&t, &r);
        assert_eq!(written, input);
        assert_eq!(sends, t.num_blocks() * t.delta2() as usize);
        assert_eq!(rs.decode_failures, 0);
        assert_eq!(rs.pending_acks, 0);
    }

    #[test]
    fn transmitter_blocks_until_all_acks_arrive() {
        let p = params(); // δ2 = 3
        let input = vec![true; 4];
        let t = GammaTransmitter::new(p, 2, &input).unwrap();
        let mut s = t.initial_state();
        // Send the whole first burst.
        for _ in 0..t.delta2() {
            let a = t.enabled(&s)[0];
            assert!(a.is_data_send());
            s = t.step(&s, &a).unwrap();
        }
        // Now only idle_t is enabled until δ2 acks arrive.
        assert_eq!(
            t.enabled(&s),
            vec![RstpAction::TransmitterInternal(InternalKind::Idle)]
        );
        s = t
            .step(&s, &RstpAction::TransmitterInternal(InternalKind::Idle))
            .unwrap();
        for i in 0..t.delta2() {
            assert_eq!(s.block, 0, "still on block 0 after {i} acks");
            s = t.step(&s, &RstpAction::Recv(ACK)).unwrap();
        }
        assert_eq!(s.block, 1);
        assert_eq!(s.step_in_burst, 0);
        assert_eq!(s.acks, 0);
        // Next burst's sends are enabled again.
        assert!(t.enabled(&s)[0].is_data_send());
    }

    #[test]
    fn stray_acks_after_completion_are_absorbed() {
        let p = params();
        let t = GammaTransmitter::new(p, 2, &[true]).unwrap();
        let mut s = t.initial_state();
        // Drive to completion.
        while let Some(a) = t.enabled(&s).first().copied() {
            if a.is_idle() {
                s = t.step(&s, &RstpAction::Recv(ACK)).unwrap();
            } else {
                s = t.step(&s, &a).unwrap();
            }
        }
        assert!(t.enabled(&s).is_empty());
        let after = t.step(&s, &RstpAction::Recv(ACK)).unwrap();
        assert_eq!(after, s); // input-enabled, no effect
    }

    #[test]
    fn receiver_ack_first_priority() {
        let p = params(); // δ2 = 3
        let r = GammaReceiver::new(p, 2, 2).unwrap();
        let mut s = r.initial_state();
        // Deliver a full burst; now j = 3 and (likely) bits decoded.
        for sym in [0u64, 0, 1] {
            s = r.step(&s, &RstpAction::Recv(Packet::Data(sym))).unwrap();
        }
        assert_eq!(s.pending_acks, 3);
        // Acks drain before any write.
        for _ in 0..3 {
            assert_eq!(r.enabled(&s), vec![RstpAction::Send(ACK)]);
            s = r.step(&s, &RstpAction::Send(ACK)).unwrap();
        }
        assert!(matches!(r.enabled(&s)[0], RstpAction::Write(_)));
    }

    #[test]
    fn receiver_rejects_unfounded_ack_and_idle() {
        let p = params();
        let r = GammaReceiver::new(p, 2, 2).unwrap();
        let s0 = r.initial_state();
        assert!(matches!(
            r.step(&s0, &RstpAction::Send(ACK)),
            Err(StepError::PreconditionFalse { .. })
        ));
        let s1 = r.step(&s0, &RstpAction::Recv(Packet::Data(0))).unwrap();
        assert!(matches!(
            r.step(&s1, &RstpAction::ReceiverInternal(InternalKind::Idle)),
            Err(StepError::PreconditionFalse { .. })
        ));
    }

    #[test]
    fn burst_size_is_delta2() {
        let p = params();
        let t = GammaTransmitter::new(p, 2, &[true; 8]).unwrap();
        let r = GammaReceiver::new(p, 2, 8).unwrap();
        assert_eq!(t.delta2(), 3);
        assert_eq!(r.burst_size(), 3);
        // k=2, δ2=3: μ_2(3) = 4 -> 2 bits per burst -> 4 bursts for 8 bits.
        assert_eq!(t.bits_per_block(), 2);
        assert_eq!(t.num_blocks(), 4);
    }

    #[test]
    fn alphabet_too_small_rejected() {
        let p = params();
        assert!(GammaTransmitter::new(p, 1, &[true]).is_err());
        assert!(GammaReceiver::new(p, 1, 1).is_err());
    }

    #[test]
    fn reordered_burst_still_decodes() {
        let p = params();
        let input = vec![false, true, true, false];
        let t = GammaTransmitter::new(p, 3, &input).unwrap();
        let r = GammaReceiver::new(p, 3, input.len()).unwrap();
        let mut ts = t.initial_state();
        let mut rs = r.initial_state();
        let mut written = Vec::new();
        while !t.enabled(&ts).is_empty() {
            // Collect one burst.
            let mut burst = Vec::new();
            while let Some(&a) = t.enabled(&ts).first() {
                match a {
                    RstpAction::Send(Packet::Data(s)) => {
                        ts = t.step(&ts, &a).unwrap();
                        burst.push(s);
                    }
                    _ => break,
                }
            }
            // Deliver it reversed.
            for &s in burst.iter().rev() {
                rs = r.step(&rs, &RstpAction::Recv(Packet::Data(s))).unwrap();
            }
            // Drain receiver locals, shuttling acks.
            loop {
                match r.enabled(&rs).first().copied() {
                    Some(RstpAction::Send(Packet::Ack(0))) => {
                        rs = r.step(&rs, &RstpAction::Send(ACK)).unwrap();
                        ts = t.step(&ts, &RstpAction::Recv(ACK)).unwrap();
                    }
                    Some(RstpAction::Write(m)) => {
                        written.push(m);
                        rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
                    }
                    _ => break,
                }
            }
        }
        assert_eq!(written, input);
    }
}
