//! `A^α` — the simple r-passive solution of paper §4 (Figure 1).
//!
//! The transmitter sends one raw message bit per round, then idles long
//! enough (`δ1` steps in total per round) that the packet is guaranteed
//! delivered before the next one is sent: consecutive sends are at least
//! `δ1 · c1 ≥ d` apart, so packets arrive in order and the receiver simply
//! writes each packet as it arrives.
//!
//! Effort: one message per `δ1`-step round, each step at most `c2`, giving
//! `eff(A^α) = δ1 · c2` — the paper's `d·c2/c1` when `c1 | d`.
//!
//! Figure 1 correspondence (transmitter): variable `i` is
//! [`AlphaTransmitterState::next`], `j` is [`AlphaTransmitterState::idle_count`];
//! `send(p)` has precondition `j = 0 ∧ p = x_i` and effect `j := 1`, and
//! `wait_t` has precondition `0 < j < δ1` with effect
//! `j := j + 1; if j = δ1 then (i := i+1; j := 0)`. One adjustment: when
//! `δ1 = 1` the figure's round logic never fires `wait_t`, so the
//! `j = δ1` check is applied in `send`'s effect as well — for `δ1 ≥ 2`
//! the behaviors coincide with the figure exactly.
//!
//! Figure 1 correspondence (receiver): the unbounded array `y_1, …` is
//! [`AlphaReceiverState::received`], counter `i` is its length, and `k` is
//! [`AlphaReceiverState::written`] (`k` in the figure is 1-based; `written`
//! counts completed writes, so `written = k - 1`).

use crate::action::{InternalKind, Message, Packet, RstpAction};
use crate::params::TimingParams;
use rstp_automata::{ActionClass, Automaton, StepError};

/// The transmitter of `A^α` (Figure 1, left column).
#[derive(Clone, Debug)]
pub struct AlphaTransmitter {
    input: Vec<Message>,
    delta1: u64,
}

/// State of [`AlphaTransmitter`]: the figure's `(i, j)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlphaTransmitterState {
    /// Figure 1's `i`: index of the next message to send (0-based).
    pub next: usize,
    /// Figure 1's `j`: steps taken in the current round (0 = ready to send).
    pub idle_count: u64,
}

impl AlphaTransmitter {
    /// Creates the transmitter for `input` under `params`.
    #[must_use]
    pub fn new(params: TimingParams, input: Vec<Message>) -> Self {
        AlphaTransmitter {
            input,
            delta1: params.delta1(),
        }
    }

    /// The input sequence `X`.
    #[must_use]
    pub fn input(&self) -> &[Message] {
        &self.input
    }

    /// The round length `δ1` in steps.
    #[must_use]
    pub fn delta1(&self) -> u64 {
        self.delta1
    }

    /// Total local steps this transmitter takes: `δ1` per message.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.delta1 * self.input.len() as u64
    }

    fn packet_for(&self, index: usize) -> Packet {
        Packet::Data(u64::from(self.input[index]))
    }

    /// Advances the round counters after a step: `j := j + 1;
    /// if j = δ1 then (i := i + 1; j := 0)`.
    fn advance(&self, state: &AlphaTransmitterState) -> AlphaTransmitterState {
        let j = state.idle_count + 1;
        if j == self.delta1 {
            AlphaTransmitterState {
                next: state.next + 1,
                idle_count: 0,
            }
        } else {
            AlphaTransmitterState {
                next: state.next,
                idle_count: j,
            }
        }
    }
}

impl Automaton for AlphaTransmitter {
    type Action = RstpAction;
    type State = AlphaTransmitterState;

    fn initial_state(&self) -> AlphaTransmitterState {
        AlphaTransmitterState {
            next: 0,
            idle_count: 0,
        }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Send(Packet::Data(_)) => Some(ActionClass::Output),
            RstpAction::TransmitterInternal(InternalKind::Wait) => Some(ActionClass::Internal),
            _ => None, // r-passive: in(A_t) = ∅, no acks exist
        }
    }

    fn enabled(&self, state: &AlphaTransmitterState) -> Vec<RstpAction> {
        if state.idle_count == 0 {
            if state.next < self.input.len() {
                vec![RstpAction::Send(self.packet_for(state.next))]
            } else {
                vec![] // all of X transmitted: quiescent
            }
        } else {
            // 0 < j < δ1 (advance() never leaves j = δ1 standing).
            vec![RstpAction::TransmitterInternal(InternalKind::Wait)]
        }
    }

    fn step(
        &self,
        state: &AlphaTransmitterState,
        action: &RstpAction,
    ) -> Result<AlphaTransmitterState, StepError> {
        match action {
            RstpAction::Send(p) => {
                if state.idle_count != 0 || state.next >= self.input.len() {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: format!(
                            "send requires j = 0 and i < |X| (j = {}, i = {})",
                            state.idle_count, state.next
                        ),
                    });
                }
                if *p != self.packet_for(state.next) {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: format!("p must equal x_i = {}", self.packet_for(state.next)),
                    });
                }
                Ok(self.advance(state))
            }
            RstpAction::TransmitterInternal(InternalKind::Wait) => {
                if state.idle_count == 0 || state.idle_count >= self.delta1 {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: format!("wait_t requires 0 < j < δ1 (j = {})", state.idle_count),
                    });
                }
                Ok(self.advance(state))
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

/// The receiver of `A^α` (Figure 1, right column).
#[derive(Clone, Copy, Debug, Default)]
pub struct AlphaReceiver;

/// State of [`AlphaReceiver`]: the figure's `(y, i, k)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlphaReceiverState {
    /// Figure 1's array `y_1, …, y_i`: messages received so far.
    pub received: Vec<Message>,
    /// Completed writes (the figure's `k - 1`).
    pub written: usize,
}

impl AlphaReceiver {
    /// Creates the receiver. It needs no parameters: it writes whatever
    /// arrives, in arrival order.
    #[must_use]
    pub fn new() -> Self {
        AlphaReceiver
    }
}

impl Automaton for AlphaReceiver {
    type Action = RstpAction;
    type State = AlphaReceiverState;

    fn initial_state(&self) -> AlphaReceiverState {
        AlphaReceiverState::default()
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Recv(Packet::Data(_)) => Some(ActionClass::Input),
            RstpAction::Write(_) => Some(ActionClass::Output),
            RstpAction::ReceiverInternal(InternalKind::Idle) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &AlphaReceiverState) -> Vec<RstpAction> {
        if let Some(&m) = state.received.get(state.written) {
            vec![RstpAction::Write(m)]
        } else {
            // Figure 1: idle_r is enabled exactly when there is nothing to
            // write, so the receiver always has a local step available.
            vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
        }
    }

    fn step(
        &self,
        state: &AlphaReceiverState,
        action: &RstpAction,
    ) -> Result<AlphaReceiverState, StepError> {
        match action {
            RstpAction::Recv(Packet::Data(s)) => {
                let mut next = state.clone();
                next.received.push(*s != 0);
                Ok(next)
            }
            RstpAction::Write(m) => {
                let Some(&expected) = state.received.get(state.written) else {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "write requires k <= i (a received, unwritten message)".into(),
                    });
                };
                if *m != expected {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: format!("m must equal y_k = {expected}"),
                    });
                }
                let mut next = state.clone();
                next.written += 1;
                Ok(next)
            }
            RstpAction::ReceiverInternal(InternalKind::Idle) => {
                if state.written < state.received.len() {
                    return Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "idle_r requires k > i (nothing to write)".into(),
                    });
                }
                Ok(state.clone())
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_automata::automaton::{check_deterministic, check_enabled_consistent};

    fn params() -> TimingParams {
        TimingParams::from_ticks(2, 3, 8).unwrap() // δ1 = 4
    }

    /// Drive the transmitter to quiescence, returning the action log.
    fn run_transmitter(t: &AlphaTransmitter) -> Vec<RstpAction> {
        let mut state = t.initial_state();
        let mut log = Vec::new();
        for _ in 0..10_000 {
            check_deterministic(t, &state).unwrap();
            check_enabled_consistent(t, &state).unwrap();
            let Some(action) = t.enabled(&state).into_iter().next() else {
                break;
            };
            state = t.step(&state, &action).unwrap();
            log.push(action);
        }
        log
    }

    #[test]
    fn transmitter_round_structure_matches_figure_1() {
        let t = AlphaTransmitter::new(params(), vec![true, false]);
        let log = run_transmitter(&t);
        // Two rounds of (send, wait, wait, wait) with δ1 = 4.
        assert_eq!(log.len() as u64, t.total_steps());
        assert_eq!(log[0], RstpAction::Send(Packet::Data(1)));
        for a in &log[1..4] {
            assert_eq!(*a, RstpAction::TransmitterInternal(InternalKind::Wait));
        }
        assert_eq!(log[4], RstpAction::Send(Packet::Data(0)));
        for a in &log[5..8] {
            assert_eq!(*a, RstpAction::TransmitterInternal(InternalKind::Wait));
        }
    }

    #[test]
    fn sends_are_delta1_steps_apart() {
        let t = AlphaTransmitter::new(params(), vec![true, true, false, true]);
        let log = run_transmitter(&t);
        let send_positions: Vec<usize> = log
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_data_send())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(send_positions.len(), 4);
        for w in send_positions.windows(2) {
            assert_eq!((w[1] - w[0]) as u64, t.delta1());
        }
    }

    #[test]
    fn delta1_equal_one_degenerates_to_back_to_back_sends() {
        let p = TimingParams::from_ticks(5, 5, 5).unwrap(); // δ1 = 1
        let t = AlphaTransmitter::new(p, vec![false, true, false]);
        assert_eq!(t.delta1(), 1);
        let log = run_transmitter(&t);
        assert_eq!(
            log,
            vec![
                RstpAction::Send(Packet::Data(0)),
                RstpAction::Send(Packet::Data(1)),
                RstpAction::Send(Packet::Data(0)),
            ]
        );
    }

    #[test]
    fn empty_input_is_immediately_quiescent() {
        let t = AlphaTransmitter::new(params(), vec![]);
        assert!(t.enabled(&t.initial_state()).is_empty());
    }

    #[test]
    fn transmitter_rejects_wrong_packet_and_bad_timing() {
        let t = AlphaTransmitter::new(params(), vec![true]);
        let s0 = t.initial_state();
        // Wrong payload: x_0 = 1.
        let err = t.step(&s0, &RstpAction::Send(Packet::Data(0)));
        assert!(matches!(err, Err(StepError::PreconditionFalse { .. })));
        // wait_t before any send: j = 0.
        let err = t.step(&s0, &RstpAction::TransmitterInternal(InternalKind::Wait));
        assert!(matches!(err, Err(StepError::PreconditionFalse { .. })));
        // send twice in a row.
        let s1 = t.step(&s0, &RstpAction::Send(Packet::Data(1))).unwrap();
        let err = t.step(&s1, &RstpAction::Send(Packet::Data(1)));
        assert!(matches!(err, Err(StepError::PreconditionFalse { .. })));
    }

    #[test]
    fn transmitter_is_r_passive() {
        let t = AlphaTransmitter::new(params(), vec![true]);
        // No input actions at all: recv of anything is outside acts(A_t).
        assert_eq!(t.classify(&RstpAction::Recv(Packet::Ack(0))), None);
        assert_eq!(t.classify(&RstpAction::Recv(Packet::Data(0))), None);
        assert_eq!(t.classify(&RstpAction::Write(true)), None);
    }

    #[test]
    fn receiver_writes_in_arrival_order() {
        let r = AlphaReceiver::new();
        let mut s = r.initial_state();
        s = r.step(&s, &RstpAction::Recv(Packet::Data(1))).unwrap();
        s = r.step(&s, &RstpAction::Recv(Packet::Data(0))).unwrap();
        assert_eq!(r.enabled(&s), vec![RstpAction::Write(true)]);
        s = r.step(&s, &RstpAction::Write(true)).unwrap();
        assert_eq!(r.enabled(&s), vec![RstpAction::Write(false)]);
        s = r.step(&s, &RstpAction::Write(false)).unwrap();
        assert_eq!(
            r.enabled(&s),
            vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
        );
    }

    #[test]
    fn receiver_idle_is_a_no_op_enabled_only_when_caught_up() {
        let r = AlphaReceiver::new();
        let s0 = r.initial_state();
        let idle = RstpAction::ReceiverInternal(InternalKind::Idle);
        assert_eq!(r.step(&s0, &idle).unwrap(), s0);
        let s1 = r.step(&s0, &RstpAction::Recv(Packet::Data(1))).unwrap();
        assert!(matches!(
            r.step(&s1, &idle),
            Err(StepError::PreconditionFalse { .. })
        ));
    }

    #[test]
    fn receiver_rejects_wrong_write() {
        let r = AlphaReceiver::new();
        let s0 = r.initial_state();
        // Nothing received yet.
        assert!(matches!(
            r.step(&s0, &RstpAction::Write(true)),
            Err(StepError::PreconditionFalse { .. })
        ));
        let s1 = r.step(&s0, &RstpAction::Recv(Packet::Data(1))).unwrap();
        // Wrong value: y_1 = 1.
        assert!(matches!(
            r.step(&s1, &RstpAction::Write(false)),
            Err(StepError::PreconditionFalse { .. })
        ));
    }

    #[test]
    fn receiver_is_deterministic_everywhere_reachable() {
        let r = AlphaReceiver::new();
        let mut s = r.initial_state();
        for round in 0..5 {
            check_deterministic(&r, &s).unwrap();
            check_enabled_consistent(&r, &s).unwrap();
            s = r
                .step(&s, &RstpAction::Recv(Packet::Data(round % 2)))
                .unwrap();
            check_deterministic(&r, &s).unwrap();
            let w = r.enabled(&s)[0];
            s = r.step(&s, &w).unwrap();
        }
    }

    #[test]
    fn nonbinary_symbols_coerce_to_true() {
        // Input-enabledness: the receiver must accept any data packet; any
        // nonzero symbol reads as the message 1.
        let r = AlphaReceiver::new();
        let s = r
            .step(&r.initial_state(), &RstpAction::Recv(Packet::Data(7)))
            .unwrap();
        assert_eq!(s.received, vec![true]);
    }

    #[test]
    fn total_steps_formula() {
        let t = AlphaTransmitter::new(params(), vec![true; 10]);
        assert_eq!(t.total_steps(), 40);
        assert_eq!(t.input().len(), 10);
    }
}
