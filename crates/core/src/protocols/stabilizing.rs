//! Self-stabilizing protocol variants — correct transfer from *any*
//! corrupted automaton state.
//!
//! Every other protocol in this crate assumes the paper's clean start:
//! transmitter, receiver, and channel begin in their initial states. The
//! self-stabilization literature (Dolev's self-stabilizing ARQ over
//! bounded-capacity omitting/duplicating/non-FIFO channels; Delaët et
//! al.'s snap-stabilization) asks for more: after an adversary overwrites
//! the registers with arbitrary values mid-run, the system must *converge*
//! — within a bounded stabilization window, the suffix of written messages
//! again satisfies the Y-prefix-of-X invariant.
//!
//! Two stabilizing variants live here:
//!
//! * [`StabStenningTransmitter`] / [`StabStenningReceiver`] — a stabilizing
//!   Stenning baseline. Stop-and-wait with sequence tags recycled mod
//!   [`TAGS`] (a *bounded* alphabet, unlike Stenning's unbounded one), plus
//!   a three-phase recovery ladder: when `ESCALATE_AFTER` consecutive
//!   retransmission timeouts elapse unacknowledged, the transmitter enters
//!   a **flush** phase (idles long enough that every in-flight packet —
//!   including corrupted ones — drains from the channel, which the timed
//!   channel guarantees within `d`), then a **sync** handshake that forces
//!   the receiver's expected tag to its own, then resumes the run phase.
//!   Every register access first *normalizes* the state (clamps each field
//!   into its domain), so arbitrary corruption leaves the automaton in a
//!   state it can always continue from.
//! * [`stab_beta_transmitter`] / [`StabBetaReceiver`] — a stabilizing β.
//!   The transmitter is the Figure 3 burst schedule with a lengthened
//!   inter-burst silence ([`stab_beta_silence`]); the receiver adds
//!   **gap-reset framing**: if its burst buffer stays non-empty for
//!   [`stab_beta_gap_reset`] consecutive local steps with no arrival, the
//!   partial burst is garbage (arrivals within a burst are never that far
//!   apart) and is discarded. Corruption can destroy at most the bursts it
//!   touches; the next inter-burst silence re-frames the stream.
//!
//! Convergence guarantees are *suffix* guarantees: a corrupted state may
//! lose or fabricate a bounded number of messages around the corruption
//! point (the receiver may falsely claim a message was accepted, a stale
//! ack may advance the transmitter). What stabilization promises — and
//! what the convergence oracle in rstp-check verifies — is that after the
//! documented window ([`stab_stenning_bound`], [`stab_beta_bound`]) all
//! further writes are correct: an end-aligned suffix of `X` for the
//! stabilizing Stenning, a contiguous substring of `X` for the stabilizing
//! β (a passive receiver cannot recover its stream position, so alignment
//! is up to the blocks lost to corruption).
//!
//! All four automata implement [`Corruptible`], exposing their state as a
//! bounded register vector so rstp-check's state-corruption adversary (and
//! the exhaustive small-state suite) can enumerate or sample the *entire*
//! corrupted-state space, reachable or not.

use crate::action::{InternalKind, Message, Packet, RstpAction};
use crate::params::TimingParams;
use crate::protocols::{BetaTransmitter, BetaTransmitterState, ProtocolError};
use rstp_automata::{ActionClass, Automaton, Corruptible, RegisterSpec, StepError};
use rstp_codec::{BlockCodec, Multiset};

/// Number of recycled sequence tags (`seq mod TAGS`).
///
/// 4 tags suffice for stop-and-wait over a fault-free channel: at most one
/// message is outstanding, so live tags differ by at most 1 and the
/// re-acknowledgement window (`expected - 1`) never aliases the frontier.
pub const TAGS: u64 = 4;

/// Consecutive unacknowledged retransmission timeouts before the
/// transmitter escalates to the flush phase.
pub const ESCALATE_AFTER: u64 = 2;

/// Bound on the packets simultaneously in flight, used by the
/// stabilization-window formulas (the timed channel drains everything it
/// holds within `d`, and stop-and-wait keeps the live population small).
pub const P_MAX: u64 = 8;

/// Bound on the garbage tail a corrupted receiver register vector can
/// fabricate (kept small so exhaustive enumeration stays tractable).
pub const GARBAGE_MAX: u64 = 4;

// Register indices, shared with the convergence oracle in rstp-check.

/// Index of `next` in [`StabStenningTransmitter`]'s register vector.
pub const REG_STAB_T_NEXT: usize = 0;
/// Index of the pending-ack register in [`StabStenningReceiver`]'s
/// register vector (`stab_stenning_ack_alphabet()` encodes "none").
pub const REG_STAB_R_PENDING_ACK: usize = 1;
/// Index of the garbage-length register in [`StabStenningReceiver`]'s
/// register vector.
pub const REG_STAB_R_GARBAGE_LEN: usize = 2;
/// Index of `block` in the stabilizing β transmitter's register vector.
pub const REG_BETA_T_BLOCK: usize = 0;
/// Index of the pending-length register in [`StabBetaReceiver`]'s register
/// vector.
pub const REG_BETA_R_PENDING_LEN: usize = 2;

/// The tag carried by message index `i`.
#[must_use]
pub fn tag_of(index: usize) -> u64 {
    (index as u64) % TAGS
}

/// Data symbol of a sync probe for `tag` (data alphabet `[0, TAGS)`).
#[must_use]
pub fn sync_symbol(tag: u64) -> u64 {
    tag % TAGS
}

/// Data symbol carrying `(tag, bit)` (data alphabet `[TAGS, 3·TAGS)`).
#[must_use]
pub fn data_symbol(tag: u64, bit: Message) -> u64 {
    TAGS + 2 * (tag % TAGS) + u64::from(bit)
}

/// Ack symbol answering a sync probe (ack alphabet `[0, TAGS)`).
#[must_use]
pub fn ack_sync_symbol(tag: u64) -> u64 {
    tag % TAGS
}

/// Ack symbol answering a data packet (ack alphabet `[TAGS, 2·TAGS)`).
#[must_use]
pub fn ack_data_symbol(tag: u64) -> u64 {
    TAGS + tag % TAGS
}

/// Size of the stabilizing Stenning data alphabet (`3·TAGS`).
#[must_use]
pub fn stab_stenning_data_alphabet() -> u64 {
    3 * TAGS
}

/// Size of the stabilizing Stenning ack alphabet (`2·TAGS`).
#[must_use]
pub fn stab_stenning_ack_alphabet() -> u64 {
    2 * TAGS
}

/// Default retransmission timeout in local steps (same policy as the
/// Stenning/altbit baselines, floored at 2 so the timer can actually wrap
/// and strike).
#[must_use]
pub fn stab_stenning_timeout(params: TimingParams, timeout_steps: Option<u64>) -> u64 {
    let default = (2 * params.d() + 2 * params.c2()).div_ceil(params.c1()) + 1;
    timeout_steps.unwrap_or(default).max(2)
}

/// Flush-phase length in local steps: long enough that everything in
/// flight at escalation time (data and the acks it may still provoke) has
/// drained from the timed channel.
#[must_use]
pub fn stab_stenning_flush_steps(params: TimingParams) -> u64 {
    (2 * params.d() + params.c2()).div_ceil(params.c1()) + 1
}

/// Documented stabilization window for the stabilizing Stenning pair, in
/// ticks from the corruption instant.
///
/// Worst chain: up to `ESCALATE_AFTER + 1` full timeout periods to strike
/// out (the timer may be corrupted mid-period), the flush drain, the sync
/// handshake (≤ one timeout period plus a round trip), the first repaired
/// data round trip, and the receiver draining ≤ [`P_MAX`] garbage writes —
/// every local step costing at most `c2`.
#[must_use]
pub fn stab_stenning_bound(params: TimingParams, timeout_steps: Option<u64>) -> u64 {
    let timeout = stab_stenning_timeout(params, timeout_steps);
    let flush = stab_stenning_flush_steps(params);
    (params.c2() * (timeout * (ESCALATE_AFTER + 2) + flush + P_MAX + 4) + 3 * params.d()).ticks()
}

/// The stabilizing β receiver's gap-reset threshold, in consecutive
/// silent local steps.
///
/// Within a burst, consecutive arrivals are at most `c2 + d` apart, during
/// which the receiver takes at most `⌊(c2+d)/c1⌋ + 1` steps — strictly
/// fewer than this threshold, so a live burst never resets.
#[must_use]
pub fn stab_beta_gap_reset(params: TimingParams) -> u64 {
    (params.c2() + params.d()) / params.c1() + 2
}

/// The stabilizing β transmitter's inter-burst silence, in `wait_t` steps.
///
/// Chosen so the receiver sees at least [`stab_beta_gap_reset`] silent
/// steps between bursts: `silence·c1 ≥ gap_reset·c2 + d`, hence any
/// partial (corrupted) burst is discarded before the next burst arrives.
#[must_use]
pub fn stab_beta_silence(params: TimingParams) -> u64 {
    (stab_beta_gap_reset(params) * params.c2() + params.d()).div_ceil(params.c1())
}

/// Message bits per burst of the stabilizing β (the Figure 3 codec rate
/// for `(k, δ1)`); falls back to `1` for degenerate shapes.
#[must_use]
pub fn stab_beta_bits_per_block(params: TimingParams, k: u64) -> u64 {
    BlockCodec::new(k, params.delta1()).map_or(1, |c| u64::from(c.bits_per_block()).max(1))
}

/// Documented stabilization window for the stabilizing β pair, in ticks
/// from the corruption instant.
///
/// Worst chain: finish the burst in progress and its silence, one
/// gap-reset of the corrupted partial burst, one full clean burst plus its
/// decode writes, and the receiver draining corrupted pending writes.
#[must_use]
pub fn stab_beta_bound(params: TimingParams, k: u64) -> u64 {
    let silence = stab_beta_silence(params);
    let gap = stab_beta_gap_reset(params);
    let bits = stab_beta_bits_per_block(params, k);
    (params.c2() * (2 * (params.delta1() + silence) + gap + bits + P_MAX + 4) + 2 * params.d())
        .ticks()
}

/// Builds the stabilizing β transmitter: the Figure 3 burst schedule with
/// the lengthened [`stab_beta_silence`] wait phase.
///
/// # Errors
///
/// Same conditions as [`BetaTransmitter::new`].
pub fn stab_beta_transmitter(
    params: TimingParams,
    k: u64,
    input: &[Message],
) -> Result<BetaTransmitter, ProtocolError> {
    BetaTransmitter::with_shape(k, params.delta1(), stab_beta_silence(params), input)
}

/// Recovery phase of the stabilizing Stenning transmitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StabPhase {
    /// Normal stop-and-wait transfer.
    Run,
    /// Channel believed empty; probing the receiver's expected tag.
    Sync,
    /// Idling until every in-flight packet has provably drained.
    Flush {
        /// Remaining flush steps.
        left: u64,
    },
}

impl StabPhase {
    /// Register encoding: 0 = Run, 1 = Sync, 2 = Flush.
    #[must_use]
    pub fn to_register(self) -> u64 {
        match self {
            StabPhase::Run => 0,
            StabPhase::Sync => 1,
            StabPhase::Flush { .. } => 2,
        }
    }
}

/// The stabilizing Stenning transmitter.
#[derive(Clone, Debug)]
pub struct StabStenningTransmitter {
    input: Vec<Message>,
    timeout_steps: u64,
    flush_steps: u64,
}

/// State of [`StabStenningTransmitter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StabStenningTransmitterState {
    /// Index of the message being transmitted (tag = `next mod TAGS`).
    pub next: usize,
    /// Local steps since the last (re)transmission; `0` = send now.
    pub timer: u64,
    /// Consecutive timeout wraps without an acknowledgement.
    pub strikes: u64,
    /// Current recovery phase.
    pub phase: StabPhase,
}

impl StabStenningTransmitter {
    /// Creates the transmitter; `timeout_steps = None` picks the same safe
    /// default as the non-stabilizing baselines.
    #[must_use]
    pub fn new(params: TimingParams, input: Vec<Message>, timeout_steps: Option<u64>) -> Self {
        StabStenningTransmitter {
            timeout_steps: stab_stenning_timeout(params, timeout_steps),
            flush_steps: stab_stenning_flush_steps(params),
            input,
        }
    }

    /// The retransmission period in local steps.
    #[must_use]
    pub fn timeout_steps(&self) -> u64 {
        self.timeout_steps
    }

    /// The flush-phase length in local steps.
    #[must_use]
    pub fn flush_steps(&self) -> u64 {
        self.flush_steps
    }

    /// Clamps every register into its domain; corruption may leave any
    /// values, and stabilization starts by making the state well-formed.
    fn normalize(&self, state: &StabStenningTransmitterState) -> StabStenningTransmitterState {
        let mut s = state.clone();
        s.next = s.next.min(self.input.len());
        s.timer %= self.timeout_steps;
        s.strikes = s.strikes.min(ESCALATE_AFTER);
        if let StabPhase::Flush { left } = s.phase {
            s.phase = StabPhase::Flush {
                left: left.clamp(1, self.flush_steps),
            };
        }
        s
    }

    fn outgoing_symbol(&self, s: &StabStenningTransmitterState) -> Option<u64> {
        match s.phase {
            StabPhase::Sync => Some(sync_symbol(tag_of(s.next))),
            // `normalize` clamps `next` to `input.len()` *inclusive*, so
            // a corrupted Run state can point one past the end. Staying
            // silent is the right recovery: the strike counter escalates
            // to a sync, exactly as for any other lost symbol.
            StabPhase::Run => self
                .input
                .get(s.next)
                .map(|&bit| data_symbol(tag_of(s.next), bit)),
            StabPhase::Flush { .. } => None,
        }
    }

    /// Applies an incoming ack symbol to a normalized state.
    fn absorb_ack(
        &self,
        s: &StabStenningTransmitterState,
        symbol: u64,
    ) -> StabStenningTransmitterState {
        let mut next = s.clone();
        if s.next >= self.input.len() {
            return next;
        }
        let tag = tag_of(s.next);
        if symbol == ack_data_symbol(tag) && symbol >= TAGS {
            // The current message is acknowledged. Accepted in *every*
            // phase: a short explicit timeout can strike out while the
            // legitimate ack is still in flight, and dropping it here
            // would make the subsequent sync roll the receiver back.
            next.next = s.next + 1;
            next.timer = 0;
            next.strikes = 0;
            next.phase = StabPhase::Run;
        } else if symbol == ack_sync_symbol(tag) && symbol < TAGS && s.phase == StabPhase::Sync {
            next.phase = StabPhase::Run;
            next.timer = 0;
            next.strikes = 0;
        }
        // Anything else is stale or corrupted; input-enabledness absorbs it.
        next
    }
}

impl Automaton for StabStenningTransmitter {
    type Action = RstpAction;
    type State = StabStenningTransmitterState;

    fn initial_state(&self) -> StabStenningTransmitterState {
        StabStenningTransmitterState {
            next: 0,
            timer: 0,
            strikes: 0,
            phase: StabPhase::Run,
        }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Send(Packet::Data(_)) => Some(ActionClass::Output),
            RstpAction::Recv(Packet::Ack(_)) => Some(ActionClass::Input),
            RstpAction::TransmitterInternal(InternalKind::Wait) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &StabStenningTransmitterState) -> Vec<RstpAction> {
        let s = self.normalize(state);
        if s.next >= self.input.len() {
            return vec![];
        }
        match self.outgoing_symbol(&s) {
            Some(symbol) if s.timer == 0 => vec![RstpAction::Send(Packet::Data(symbol))],
            _ => vec![RstpAction::TransmitterInternal(InternalKind::Wait)],
        }
    }

    fn step(
        &self,
        state: &StabStenningTransmitterState,
        action: &RstpAction,
    ) -> Result<StabStenningTransmitterState, StepError> {
        let s = self.normalize(state);
        let precondition_false = |reason: &str| StepError::PreconditionFalse {
            action: format!("{action:?}"),
            reason: reason.into(),
        };
        match action {
            RstpAction::Recv(Packet::Ack(symbol)) => Ok(self.absorb_ack(&s, *symbol)),
            RstpAction::Send(Packet::Data(symbol)) => {
                if s.next >= self.input.len() || s.timer != 0 {
                    return Err(precondition_false(
                        "send requires timer = 0 and unsent input",
                    ));
                }
                match self.outgoing_symbol(&s) {
                    Some(expected) if expected == *symbol => Ok(StabStenningTransmitterState {
                        timer: 1 % self.timeout_steps,
                        ..s
                    }),
                    Some(_) => Err(precondition_false("packet must match the phase's symbol")),
                    None => Err(precondition_false("flush phase sends nothing")),
                }
            }
            RstpAction::TransmitterInternal(InternalKind::Wait) => {
                if s.next >= self.input.len() {
                    return Err(precondition_false("all input acknowledged"));
                }
                match s.phase {
                    StabPhase::Flush { left } => {
                        if left <= 1 {
                            Ok(StabStenningTransmitterState {
                                phase: StabPhase::Sync,
                                timer: 0,
                                ..s
                            })
                        } else {
                            Ok(StabStenningTransmitterState {
                                phase: StabPhase::Flush { left: left - 1 },
                                ..s
                            })
                        }
                    }
                    StabPhase::Sync | StabPhase::Run if s.timer != 0 => {
                        let timer = (s.timer + 1) % self.timeout_steps;
                        let mut out = StabStenningTransmitterState { timer, ..s };
                        if timer == 0 && s.phase == StabPhase::Run {
                            // A full period elapsed unacknowledged.
                            out.strikes = s.strikes + 1;
                            if out.strikes >= ESCALATE_AFTER {
                                out.phase = StabPhase::Flush {
                                    left: self.flush_steps,
                                };
                                out.strikes = 0;
                                out.timer = 0;
                            }
                        }
                        Ok(out)
                    }
                    _ => Err(precondition_false("wait requires a running timer")),
                }
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

impl Corruptible for StabStenningTransmitter {
    fn registers(&self) -> Vec<RegisterSpec> {
        vec![
            RegisterSpec::new("next", self.input.len() as u64),
            RegisterSpec::new("timer", self.timeout_steps - 1),
            RegisterSpec::new("strikes", ESCALATE_AFTER),
            RegisterSpec::new("phase", 2),
            RegisterSpec::new("flush_left", self.flush_steps),
        ]
    }

    fn state_from_registers(&self, regs: &[u64]) -> StabStenningTransmitterState {
        let reg = |i: usize| regs.get(i).copied().unwrap_or(0);
        let phase = match reg(3) {
            0 => StabPhase::Run,
            1 => StabPhase::Sync,
            _ => StabPhase::Flush { left: reg(4) },
        };
        self.normalize(&StabStenningTransmitterState {
            next: usize::try_from(reg(REG_STAB_T_NEXT)).unwrap_or(usize::MAX),
            timer: reg(1),
            strikes: reg(2),
            phase,
        })
    }

    fn state_to_registers(&self, state: &StabStenningTransmitterState) -> Vec<u64> {
        let s = self.normalize(state);
        let flush_left = match s.phase {
            StabPhase::Flush { left } => left,
            _ => 0,
        };
        vec![
            s.next as u64,
            s.timer,
            s.strikes,
            s.phase.to_register(),
            flush_left,
        ]
    }
}

/// The stabilizing Stenning receiver.
#[derive(Clone, Copy, Debug, Default)]
pub struct StabStenningReceiver;

/// State of [`StabStenningReceiver`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StabStenningReceiverState {
    /// The tag expected next.
    pub expected: u64,
    /// Accepted messages, in order.
    pub received: Vec<Message>,
    /// Completed writes.
    pub written: usize,
    /// The single outstanding ack symbol, if any (stop-and-wait provokes
    /// at most one before the next arrival).
    pub pending_ack: Option<u64>,
    /// Whether a sync probe has ever been accepted (diagnostic; clean runs
    /// never sync).
    pub synced: bool,
}

impl StabStenningReceiver {
    /// Creates the receiver.
    #[must_use]
    pub fn new() -> Self {
        StabStenningReceiver
    }

    fn normalize(&self, state: &StabStenningReceiverState) -> StabStenningReceiverState {
        let mut s = state.clone();
        s.expected %= TAGS;
        s.written = s.written.min(s.received.len());
        // The unwritten tail is NOT clamped here: corruption can only
        // fabricate up to `GARBAGE_MAX` entries (the register encoding in
        // `state_from_registers` bounds it), while a *legitimate* tail can
        // grow past any constant when the writer is scheduled more slowly
        // than the channel delivers — the sharded server does exactly that
        // under deadline misses, and truncating here silently dropped
        // accepted messages.
        if s.pending_ack
            .is_some_and(|a| a >= stab_stenning_ack_alphabet())
        {
            s.pending_ack = None;
        }
        s
    }

    fn write_value(&self, s: &StabStenningReceiverState) -> Option<Message> {
        let bit = *s.received.get(s.written)?;
        // Injected convergence bug (test harness only): once a sync probe
        // has been accepted, every later write is negated. Clean runs
        // never sync, so only the corruption adversary can expose this.
        if cfg!(rstp_check_inject_stab_bug) && s.synced {
            Some(!bit)
        } else {
            Some(bit)
        }
    }
}

impl Automaton for StabStenningReceiver {
    type Action = RstpAction;
    type State = StabStenningReceiverState;

    fn initial_state(&self) -> StabStenningReceiverState {
        StabStenningReceiverState::default()
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Recv(Packet::Data(_)) => Some(ActionClass::Input),
            RstpAction::Send(Packet::Ack(_)) => Some(ActionClass::Output),
            RstpAction::Write(_) => Some(ActionClass::Output),
            RstpAction::ReceiverInternal(InternalKind::Idle) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &StabStenningReceiverState) -> Vec<RstpAction> {
        let s = self.normalize(state);
        if let Some(symbol) = s.pending_ack {
            vec![RstpAction::Send(Packet::Ack(symbol))]
        } else if let Some(m) = self.write_value(&s) {
            vec![RstpAction::Write(m)]
        } else {
            vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
        }
    }

    fn step(
        &self,
        state: &StabStenningReceiverState,
        action: &RstpAction,
    ) -> Result<StabStenningReceiverState, StepError> {
        let s = self.normalize(state);
        let precondition_false = |reason: &str| StepError::PreconditionFalse {
            action: format!("{action:?}"),
            reason: reason.into(),
        };
        match action {
            RstpAction::Recv(Packet::Data(symbol)) => {
                let mut next = s.clone();
                if *symbol < TAGS {
                    // Sync probe: adopt the transmitter's tag unconditionally.
                    next.expected = *symbol;
                    next.pending_ack = Some(ack_sync_symbol(*symbol));
                    next.synced = true;
                } else if *symbol < stab_stenning_data_alphabet() {
                    let tag = (*symbol - TAGS) / 2;
                    let bit = (*symbol - TAGS) % 2 == 1;
                    if tag == s.expected {
                        next.received.push(bit);
                        next.expected = (s.expected + 1) % TAGS;
                        next.pending_ack = Some(ack_data_symbol(tag));
                    } else if tag == (s.expected + TAGS - 1) % TAGS {
                        // Retransmission of the message just accepted: the
                        // ack was lost to corruption; re-ack, don't re-store.
                        next.pending_ack = Some(ack_data_symbol(tag));
                    }
                    // Any other tag is unanswerable garbage: stay silent so
                    // the transmitter strikes out and escalates to a sync.
                }
                Ok(next)
            }
            RstpAction::Send(Packet::Ack(symbol)) => match s.pending_ack {
                Some(pending) if pending == *symbol => Ok(StabStenningReceiverState {
                    pending_ack: None,
                    ..s
                }),
                _ => Err(precondition_false("send(ack) must emit the pending ack")),
            },
            RstpAction::Write(m) => {
                if self.write_value(&s) != Some(*m) {
                    return Err(precondition_false(
                        "write requires the next accepted message",
                    ));
                }
                Ok(StabStenningReceiverState {
                    written: s.written + 1,
                    ..s
                })
            }
            RstpAction::ReceiverInternal(InternalKind::Idle) => {
                if s.pending_ack.is_some() || s.written < s.received.len() {
                    return Err(precondition_false("idle_r requires no pending work"));
                }
                Ok(s)
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

impl Corruptible for StabStenningReceiver {
    fn registers(&self) -> Vec<RegisterSpec> {
        vec![
            RegisterSpec::new("expected", TAGS - 1),
            // `2·TAGS` encodes "no pending ack".
            RegisterSpec::new("pending_ack", stab_stenning_ack_alphabet()),
            RegisterSpec::new("garbage_len", GARBAGE_MAX),
            RegisterSpec::new("garbage_bits", (1 << GARBAGE_MAX) - 1),
        ]
    }

    fn state_from_registers(&self, regs: &[u64]) -> StabStenningReceiverState {
        let reg = |i: usize| regs.get(i).copied().unwrap_or(0);
        let garbage_len = reg(REG_STAB_R_GARBAGE_LEN).min(GARBAGE_MAX);
        let bits = reg(3);
        let received = (0..garbage_len).map(|i| bits >> i & 1 == 1).collect();
        let pending = reg(1);
        self.normalize(&StabStenningReceiverState {
            expected: reg(0),
            received,
            written: 0,
            pending_ack: (pending < stab_stenning_ack_alphabet()).then_some(pending),
            synced: false,
        })
    }

    fn state_to_registers(&self, state: &StabStenningReceiverState) -> Vec<u64> {
        let s = self.normalize(state);
        let tail: Vec<Message> = s.received[s.written..]
            .iter()
            .copied()
            .take(GARBAGE_MAX as usize)
            .collect();
        let bits = tail
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | u64::from(b) << i);
        vec![
            s.expected,
            s.pending_ack.unwrap_or_else(stab_stenning_ack_alphabet),
            tail.len() as u64,
            bits,
        ]
    }
}

impl Corruptible for BetaTransmitter {
    fn registers(&self) -> Vec<RegisterSpec> {
        let round = self.delta1() + self.wait_len();
        vec![
            RegisterSpec::new("block", self.num_blocks() as u64),
            RegisterSpec::new("step_in_round", round.saturating_sub(1)),
        ]
    }

    fn state_from_registers(&self, regs: &[u64]) -> BetaTransmitterState {
        let reg = |i: usize| regs.get(i).copied().unwrap_or(0);
        let round = (self.delta1() + self.wait_len()).max(1);
        BetaTransmitterState {
            block: usize::try_from(reg(REG_BETA_T_BLOCK))
                .unwrap_or(usize::MAX)
                .min(self.num_blocks()),
            step_in_round: reg(1).min(round - 1),
        }
    }

    fn state_to_registers(&self, state: &BetaTransmitterState) -> Vec<u64> {
        vec![state.block as u64, state.step_in_round]
    }
}

/// The stabilizing β receiver: the Figure 3 multiset receiver plus
/// gap-reset framing.
#[derive(Clone, Debug)]
pub struct StabBetaReceiver {
    codec: BlockCodec,
    expected_bits: usize,
    k: u64,
    gap_reset: u64,
}

/// State of [`StabBetaReceiver`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StabBetaReceiverState {
    /// The burst in progress (Figure 3's multiset `A`).
    pub burst: Multiset,
    /// Decoded message bits, in order.
    pub decoded: Vec<Message>,
    /// Completed writes.
    pub written: usize,
    /// Consecutive local steps with a non-empty burst and no arrival.
    pub silent_steps: u64,
    /// Gap resets performed (diagnostic; clean runs never reset).
    pub resets: u32,
    /// Bursts that failed to decode.
    pub decode_failures: u32,
}

impl StabBetaReceiver {
    /// Creates the receiver, pair of [`stab_beta_transmitter`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`BetaTransmitter::new`].
    pub fn new(params: TimingParams, k: u64, expected_bits: usize) -> Result<Self, ProtocolError> {
        if k < 2 {
            return Err(ProtocolError::AlphabetTooSmall { k });
        }
        Ok(StabBetaReceiver {
            codec: BlockCodec::new(k, params.delta1())?,
            expected_bits,
            k,
            gap_reset: stab_beta_gap_reset(params),
        })
    }

    /// The burst size the receiver frames on (`δ1`).
    #[must_use]
    pub fn burst_size(&self) -> u64 {
        self.codec.packets_per_block()
    }

    /// The gap-reset threshold in silent local steps.
    #[must_use]
    pub fn gap_reset(&self) -> u64 {
        self.gap_reset
    }

    fn normalize(&self, state: &StabBetaReceiverState) -> StabBetaReceiverState {
        let mut s = state.clone();
        s.written = s.written.min(s.decoded.len());
        // As with the stabilizing Stenning receiver, the decoded-but-
        // unwritten tail is deliberately unclamped: corruption is bounded
        // to `GARBAGE_MAX` fabricated entries at the register boundary,
        // and a long legitimate tail just means the writer is scheduled
        // more slowly than bursts arrive (routine on a loaded shard).
        s.silent_steps = s.silent_steps.min(self.gap_reset);
        s
    }

    fn absorb(&self, state: &mut StabBetaReceiverState, symbol: u64) {
        if symbol >= self.k {
            state.decode_failures += 1;
            return;
        }
        // Injected convergence bug (test harness only): after a framing
        // reset the receiver drops the first symbol of every burst, so no
        // burst ever completes. Clean runs never reset a non-empty burst,
        // so only the corruption adversary can expose this.
        if cfg!(rstp_check_inject_stab_bug) && state.resets > 0 && state.burst.is_empty() {
            return;
        }
        state.burst.insert(symbol);
        if state.burst.len() == self.codec.packets_per_block() {
            match self.codec.decode_block(&state.burst) {
                Ok(bits) => {
                    let remaining = self.expected_bits.saturating_sub(state.decoded.len());
                    let take = bits.len().min(remaining);
                    state.decoded.extend(bits.into_iter().take(take));
                }
                Err(_) => state.decode_failures += 1,
            }
            state.burst.clear();
        }
    }
}

impl Automaton for StabBetaReceiver {
    type Action = RstpAction;
    type State = StabBetaReceiverState;

    fn initial_state(&self) -> StabBetaReceiverState {
        StabBetaReceiverState {
            burst: Multiset::empty(self.k),
            decoded: Vec::new(),
            written: 0,
            silent_steps: 0,
            resets: 0,
            decode_failures: 0,
        }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Recv(Packet::Data(_)) => Some(ActionClass::Input),
            RstpAction::Write(_) => Some(ActionClass::Output),
            RstpAction::ReceiverInternal(_) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, state: &StabBetaReceiverState) -> Vec<RstpAction> {
        let s = self.normalize(state);
        if let Some(&m) = s.decoded.get(s.written) {
            vec![RstpAction::Write(m)]
        } else if !s.burst.is_empty() {
            // A partial burst is either live (an arrival is imminent) or
            // corrupted garbage; count the silence to tell them apart.
            vec![RstpAction::ReceiverInternal(InternalKind::Wait)]
        } else {
            vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
        }
    }

    fn step(
        &self,
        state: &StabBetaReceiverState,
        action: &RstpAction,
    ) -> Result<StabBetaReceiverState, StepError> {
        let s = self.normalize(state);
        let precondition_false = |reason: &str| StepError::PreconditionFalse {
            action: format!("{action:?}"),
            reason: reason.into(),
        };
        match action {
            RstpAction::Recv(Packet::Data(symbol)) => {
                let mut next = s.clone();
                next.silent_steps = 0;
                self.absorb(&mut next, *symbol);
                Ok(next)
            }
            RstpAction::Write(m) => {
                if s.decoded.get(s.written) != Some(m) {
                    return Err(precondition_false(
                        "write requires a decoded, unwritten message",
                    ));
                }
                Ok(StabBetaReceiverState {
                    written: s.written + 1,
                    ..s
                })
            }
            RstpAction::ReceiverInternal(InternalKind::Wait) => {
                if s.burst.is_empty() || s.written < s.decoded.len() {
                    return Err(precondition_false("wait_r requires only a partial burst"));
                }
                let mut next = StabBetaReceiverState {
                    silent_steps: s.silent_steps + 1,
                    ..s
                };
                if next.silent_steps >= self.gap_reset {
                    // Arrivals within a live burst are never this far
                    // apart: the partial burst is corrupted framing.
                    next.burst.clear();
                    next.resets += 1;
                    next.silent_steps = 0;
                }
                Ok(next)
            }
            RstpAction::ReceiverInternal(InternalKind::Idle) => {
                if s.written < s.decoded.len() || !s.burst.is_empty() {
                    return Err(precondition_false("idle_r requires no pending work"));
                }
                Ok(s)
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

impl Corruptible for StabBetaReceiver {
    fn registers(&self) -> Vec<RegisterSpec> {
        vec![
            RegisterSpec::new("burst_fill", self.codec.packets_per_block()),
            RegisterSpec::new("burst_sym", self.k - 1),
            RegisterSpec::new("pending_len", GARBAGE_MAX),
            RegisterSpec::new("pending_bits", (1 << GARBAGE_MAX) - 1),
            RegisterSpec::new("silent_steps", self.gap_reset),
        ]
    }

    fn state_from_registers(&self, regs: &[u64]) -> StabBetaReceiverState {
        let reg = |i: usize| regs.get(i).copied().unwrap_or(0);
        let fill = reg(0).min(self.codec.packets_per_block());
        let sym = reg(1).min(self.k - 1);
        let mut burst = Multiset::empty(self.k);
        for _ in 0..fill {
            burst.insert(sym);
        }
        let pending_len = reg(REG_BETA_R_PENDING_LEN).min(GARBAGE_MAX);
        let bits = reg(3);
        let decoded = (0..pending_len).map(|i| bits >> i & 1 == 1).collect();
        self.normalize(&StabBetaReceiverState {
            burst,
            decoded,
            written: 0,
            silent_steps: reg(4),
            resets: 0,
            decode_failures: 0,
        })
    }

    fn state_to_registers(&self, state: &StabBetaReceiverState) -> Vec<u64> {
        let s = self.normalize(state);
        // A multiset is summarized by its size and smallest element; the
        // round trip is behavioral (framing-equivalent), not structural.
        let sym = (0..self.k).find(|&v| s.burst.mult(v) > 0).unwrap_or(0);
        let tail: Vec<Message> = s.decoded[s.written..]
            .iter()
            .copied()
            .take(GARBAGE_MAX as usize)
            .collect();
        let bits = tail
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | u64::from(b) << i);
        vec![s.burst.len(), sym, tail.len() as u64, bits, s.silent_steps]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 4).unwrap()
    }

    fn stab_pair(input: Vec<Message>) -> (StabStenningTransmitter, StabStenningReceiver) {
        (
            StabStenningTransmitter::new(params(), input, Some(5)),
            StabStenningReceiver::new(),
        )
    }

    /// Drives the pair with instant delivery until quiescent; returns the
    /// receiver's writes.
    fn drive(
        t: &StabStenningTransmitter,
        r: &StabStenningReceiver,
        mut ts: StabStenningTransmitterState,
        mut rs: StabStenningReceiverState,
    ) -> Vec<Message> {
        let mut written = Vec::new();
        for _ in 0..10_000 {
            let t_done = t.enabled(&ts).is_empty();
            if let Some(a) = t.enabled(&ts).first().copied() {
                ts = t.step(&ts, &a).unwrap();
                if let RstpAction::Send(p) = a {
                    rs = r.step(&rs, &RstpAction::Recv(p)).unwrap();
                }
            }
            match r.enabled(&rs).first().copied() {
                Some(RstpAction::Send(Packet::Ack(sym))) => {
                    rs = r.step(&rs, &RstpAction::Send(Packet::Ack(sym))).unwrap();
                    ts = t.step(&ts, &RstpAction::Recv(Packet::Ack(sym))).unwrap();
                }
                Some(RstpAction::Write(m)) => {
                    written.push(m);
                    rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
                }
                _ => {}
            }
            if t_done
                && r.enabled(&rs)
                    .first()
                    .is_some_and(|a| matches!(a, RstpAction::ReceiverInternal(InternalKind::Idle)))
            {
                break;
            }
        }
        written
    }

    #[test]
    fn symbol_spaces_are_disjoint_and_decodable() {
        for tag in 0..TAGS {
            assert!(sync_symbol(tag) < TAGS);
            assert_eq!(ack_sync_symbol(tag), sync_symbol(tag));
            assert!(ack_data_symbol(tag) >= TAGS);
            assert!(ack_data_symbol(tag) < stab_stenning_ack_alphabet());
            for bit in [false, true] {
                let s = data_symbol(tag, bit);
                assert!((TAGS..stab_stenning_data_alphabet()).contains(&s));
                assert_eq!((s - TAGS) / 2, tag);
                assert_eq!((s - TAGS) % 2 == 1, bit);
            }
        }
    }

    #[test]
    fn clean_run_delivers_exactly_x() {
        let input = vec![true, false, false, true, true, false];
        let (t, r) = stab_pair(input.clone());
        let written = drive(&t, &r, t.initial_state(), r.initial_state());
        assert_eq!(written, input);
    }

    /// A writer scheduled more slowly than the channel delivers (the
    /// sharded server under deadline misses) accumulates a long
    /// accepted-but-unwritten tail. That tail is legitimate state and must
    /// never be clamped away — this run accepts 16 messages before the
    /// first write is allowed to fire, then drains them all.
    #[test]
    fn starved_writer_loses_nothing() {
        let input: Vec<Message> = (0..16).map(|i| i % 3 == 0).collect();
        let (_, r) = stab_pair(input.clone());
        let mut rs = r.initial_state();
        for (i, &bit) in input.iter().enumerate() {
            let tag = tag_of(i);
            rs = r
                .step(&rs, &RstpAction::Recv(Packet::Data(data_symbol(tag, bit))))
                .unwrap();
            // Ack each message (acks outrank writes in `enabled`), but
            // never take a write step.
            rs = r
                .step(&rs, &RstpAction::Send(Packet::Ack(ack_data_symbol(tag))))
                .unwrap();
        }
        let mut written = Vec::new();
        while let Some(RstpAction::Write(m)) = r.enabled(&rs).first().copied() {
            written.push(m);
            rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
        }
        assert_eq!(written, input);
    }

    #[test]
    fn clean_run_never_syncs() {
        let input = vec![true, false, true];
        let (t, r) = stab_pair(input);
        let mut ts = t.initial_state();
        let mut rs = r.initial_state();
        for _ in 0..1000 {
            if let Some(a) = t.enabled(&ts).first().copied() {
                ts = t.step(&ts, &a).unwrap();
                if let RstpAction::Send(p) = a {
                    rs = r.step(&rs, &RstpAction::Recv(p)).unwrap();
                    assert!(p.symbol() >= TAGS, "clean run sent a sync probe");
                }
            }
            if let Some(RstpAction::Send(Packet::Ack(sym))) = r.enabled(&rs).first().copied() {
                rs = r.step(&rs, &RstpAction::Send(Packet::Ack(sym))).unwrap();
                ts = t.step(&ts, &RstpAction::Recv(Packet::Ack(sym))).unwrap();
            } else if let Some(RstpAction::Write(m)) = r.enabled(&rs).first().copied() {
                rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
            }
        }
        assert!(!rs.synced);
    }

    #[test]
    fn converges_from_every_corrupted_pair_of_register_vectors_sampled() {
        // Full enumeration lives in tests/stabilization_exhaustive.rs; here
        // a cheap diagonal: transmitter registers × receiver registers.
        let input = vec![true, false, true, false];
        let (t, r) = stab_pair(input.clone());
        let t_specs = t.registers();
        let r_specs = r.registers();
        for i in 0..16u64 {
            let t_regs: Vec<u64> = t_specs
                .iter()
                .enumerate()
                .map(|(j, s)| (i * 7 + j as u64 * 3) % s.domain_size())
                .collect();
            let r_regs: Vec<u64> = r_specs
                .iter()
                .enumerate()
                .map(|(j, s)| (i * 5 + j as u64 * 11) % s.domain_size())
                .collect();
            let ts = t.state_from_registers(&t_regs);
            let rs = r.state_from_registers(&r_regs);
            let next_c = ts.next;
            let written = drive(&t, &r, ts, rs);
            // Convergence: writes after the garbage/seam settle into an
            // end-aligned suffix of X.
            let suffix_ok = (0..=written.len()).any(|cut| {
                let tail = &written[cut..];
                tail.len() <= input.len() && *tail == input[input.len() - tail.len()..]
            });
            assert!(
                suffix_ok,
                "regs t={t_regs:?} r={r_regs:?} wrote {written:?}"
            );
            // Completeness: everything from `next_c` on (minus the bounded
            // seam loss) eventually arrives.
            let floor = input.len().saturating_sub(next_c).saturating_sub(2);
            assert!(
                written.len() >= floor,
                "regs t={t_regs:?} r={r_regs:?} wrote only {written:?}"
            );
        }
    }

    #[test]
    fn transmitter_normalization_clamps_every_register() {
        let (t, _) = stab_pair(vec![true, false]);
        let wild = StabStenningTransmitterState {
            next: usize::MAX,
            timer: u64::MAX,
            strikes: u64::MAX,
            phase: StabPhase::Flush { left: u64::MAX },
        };
        let regs = t.state_to_registers(&wild);
        for (spec, value) in t.registers().iter().zip(&regs) {
            assert!(*value <= spec.max, "{} out of domain", spec.name);
        }
        // And the clamped state is immediately usable.
        let s = t.state_from_registers(&regs);
        assert!(t.enabled(&s).len() <= 1);
    }

    #[test]
    fn register_round_trips_are_behavioral_fixpoints() {
        let input = vec![true, false, true];
        let (t, r) = stab_pair(input);
        let ts = StabStenningTransmitterState {
            next: 1,
            timer: 3,
            strikes: 1,
            phase: StabPhase::Sync,
        };
        assert_eq!(
            t.state_to_registers(&t.state_from_registers(&t.state_to_registers(&ts))),
            t.state_to_registers(&ts)
        );
        let rs = StabStenningReceiverState {
            expected: 2,
            received: vec![true, false, true],
            written: 1,
            pending_ack: Some(ack_data_symbol(1)),
            synced: false,
        };
        assert_eq!(
            r.state_to_registers(&r.state_from_registers(&r.state_to_registers(&rs))),
            r.state_to_registers(&rs)
        );
    }

    #[test]
    fn beta_shape_inequalities_hold() {
        for (c1, c2, d) in [(1, 2, 4), (1, 1, 1), (2, 5, 9), (3, 4, 20), (1, 10, 10)] {
            let p = TimingParams::from_ticks(c1, c2, d).unwrap();
            let gap = stab_beta_gap_reset(p);
            let silence = stab_beta_silence(p);
            // Inter-burst silence always reaches the reset threshold.
            assert!(silence * c1 >= gap * c2 + d, "({c1},{c2},{d})");
            // A live burst's worst inter-arrival gap stays under it.
            assert!((c2 + d) / c1 + 1 < gap, "({c1},{c2},{d})");
        }
    }

    #[test]
    fn stab_beta_clean_run_decodes_exactly_x() {
        let p = params();
        let input: Vec<Message> = (0..11).map(|i| i % 3 == 0).collect();
        let t = stab_beta_transmitter(p, 4, &input).unwrap();
        let r = StabBetaReceiver::new(p, 4, input.len()).unwrap();
        let mut ts = t.initial_state();
        let mut rs = r.initial_state();
        let mut written = Vec::new();
        for _ in 0..10_000 {
            if let Some(a) = t.enabled(&ts).first().copied() {
                ts = t.step(&ts, &a).unwrap();
                if let RstpAction::Send(p) = a {
                    rs = r.step(&rs, &RstpAction::Recv(p)).unwrap();
                }
            }
            if let Some(RstpAction::Write(m)) = r.enabled(&rs).first().copied() {
                written.push(m);
                rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
            }
            if t.enabled(&ts).is_empty() && rs.written == input.len() {
                break;
            }
        }
        assert_eq!(written, input);
        assert_eq!(rs.resets, 0, "clean runs never gap-reset");
    }

    /// Beta twin of `starved_writer_loses_nothing`: the open-loop
    /// transmitter keeps sending whether or not the writer runs, so the
    /// decoded tail grows without bound on a slow shard — and must survive
    /// normalization intact.
    #[test]
    fn stab_beta_starved_writer_loses_nothing() {
        let p = params();
        let input: Vec<Message> = (0..20).map(|i| i % 2 == 0).collect();
        let t = stab_beta_transmitter(p, 4, &input).unwrap();
        let r = StabBetaReceiver::new(p, 4, input.len()).unwrap();
        let mut ts = t.initial_state();
        let mut rs = r.initial_state();
        // Deliver the whole transmission without a single write step.
        for _ in 0..10_000 {
            let Some(a) = t.enabled(&ts).first().copied() else {
                break;
            };
            ts = t.step(&ts, &a).unwrap();
            if let RstpAction::Send(pkt) = a {
                rs = r.step(&rs, &RstpAction::Recv(pkt)).unwrap();
            }
        }
        assert!(rs.decoded.len() >= input.len(), "transmission incomplete");
        let mut written = Vec::new();
        while let Some(RstpAction::Write(m)) = r.enabled(&rs).first().copied() {
            written.push(m);
            rs = r.step(&rs, &RstpAction::Write(m)).unwrap();
        }
        assert_eq!(written, input);
    }

    #[test]
    fn stab_beta_gap_reset_discards_corrupted_partial_burst() {
        let p = params();
        let r = StabBetaReceiver::new(p, 4, 8).unwrap();
        let mut rs = r.state_from_registers(&[2, 3, 0, 0, 0]);
        assert_eq!(rs.burst.len(), 2);
        // Silence: the receiver waits, then discards the garbage burst.
        for _ in 0..r.gap_reset() {
            assert_eq!(
                r.enabled(&rs).first().copied(),
                Some(RstpAction::ReceiverInternal(InternalKind::Wait))
            );
            rs = r
                .step(&rs, &RstpAction::ReceiverInternal(InternalKind::Wait))
                .unwrap();
        }
        assert!(rs.burst.is_empty());
        assert_eq!(rs.resets, 1);
    }

    #[test]
    fn stab_beta_receiver_registers_round_trip() {
        let p = params();
        let r = StabBetaReceiver::new(p, 4, 8).unwrap();
        for regs in [
            vec![0, 0, 0, 0, 0],
            vec![1, 3, 2, 3, 1],
            vec![u64::MAX, u64::MAX, u64::MAX, u64::MAX, u64::MAX],
        ] {
            let s = r.state_from_registers(&regs);
            let out = r.state_to_registers(&s);
            for (spec, value) in r.registers().iter().zip(&out) {
                assert!(*value <= spec.max, "{} out of domain", spec.name);
            }
            assert_eq!(r.state_from_registers(&out), s);
        }
    }

    #[test]
    fn bounds_are_positive_and_monotone_in_d() {
        let p1 = TimingParams::from_ticks(1, 2, 4).unwrap();
        let p2 = TimingParams::from_ticks(1, 2, 16).unwrap();
        assert!(stab_stenning_bound(p1, None) > 0);
        assert!(stab_stenning_bound(p2, None) > stab_stenning_bound(p1, None));
        assert!(stab_beta_bound(p1, 4) > 0);
        assert!(stab_beta_bound(p2, 4) > stab_beta_bound(p1, 4));
    }

    #[test]
    fn transmitter_escalates_to_flush_then_sync_when_unacked() {
        let (t, _) = stab_pair(vec![true]);
        let mut s = t.initial_state();
        let mut saw_flush = false;
        let mut saw_sync_probe = false;
        for _ in 0..200 {
            match t.enabled(&s).first().copied() {
                Some(a @ RstpAction::Send(Packet::Data(sym))) => {
                    if sym < TAGS {
                        saw_sync_probe = true;
                        break;
                    }
                    s = t.step(&s, &a).unwrap();
                }
                Some(a) => {
                    s = t.step(&s, &a).unwrap();
                    if matches!(s.phase, StabPhase::Flush { .. }) {
                        saw_flush = true;
                    }
                }
                None => break,
            }
        }
        assert!(saw_flush, "never escalated to flush");
        assert!(saw_sync_probe, "never probed with a sync");
    }
}
