//! The channel automaton `C(P)` (paper §4).
//!
//! `C(P)` has inputs `{send(p) : p ∈ P}` and outputs `{recv(p) : p ∈ P}`;
//! its fair executions are exactly those admitting a bijection between
//! `send` and `recv` events in which no packet is received before it is
//! sent. In other words the channel is **reliable** (no loss, duplication,
//! or corruption) but orders nothing: any in-flight packet may be the next
//! one delivered. The real-time restriction — delivery within `d` — is a
//! *timing property* layered on top (`Δ(C(P))`, checked by the trace
//! checkers in `rstp-sim`), not part of the untimed automaton.
//!
//! The state is therefore precisely a multiset of in-flight packets.
//! `recv(p)` is enabled iff `p` is in flight; which enabled delivery happens,
//! and when, is chosen by the simulator's delivery adversary.

use crate::action::{Packet, RstpAction};
use rstp_automata::{ActionClass, Automaton, StepError};

/// The state of `C(P)`: the multiset of in-flight packets.
///
/// Stored as an insertion-ordered vector; multiset semantics are preserved
/// because removal is by value and equality of states is only ever taken up
/// to permutation by the checkers. (The simulator also uses the insertion
/// order to break delivery ties deterministically.)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChannelState {
    in_flight: Vec<Packet>,
}

impl ChannelState {
    /// The empty channel.
    #[must_use]
    pub fn empty() -> Self {
        ChannelState::default()
    }

    /// Number of packets in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether no packets are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// The in-flight packets in send order.
    #[must_use]
    pub fn packets(&self) -> &[Packet] {
        &self.in_flight
    }

    /// Multiplicity of `p` among the in-flight packets.
    #[must_use]
    pub fn mult(&self, p: Packet) -> usize {
        self.in_flight.iter().filter(|&&q| q == p).count()
    }
}

/// The channel automaton `C(P)` over the full packet alphabet
/// `P = P^tr ∪ P^rt`.
///
/// All `Packet` values are in `P` — the automaton does not restrict the
/// alphabet, since protocols already send only their own alphabets and a
/// smaller `P` would only shrink `in(C)`, never change behavior.
///
/// # Example
///
/// ```
/// use rstp_automata::Automaton;
/// use rstp_core::{Channel, Packet, RstpAction};
///
/// let ch = Channel::new();
/// let s0 = ch.initial_state();
/// let s1 = ch.step(&s0, &RstpAction::Send(Packet::Data(3))).unwrap();
/// assert_eq!(s1.len(), 1);
/// // The only enabled delivery is recv(data(3)).
/// assert_eq!(ch.enabled(&s1), vec![RstpAction::Recv(Packet::Data(3))]);
/// let s2 = ch.step(&s1, &RstpAction::Recv(Packet::Data(3))).unwrap();
/// assert!(s2.is_empty());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Channel;

impl Channel {
    /// Creates the channel automaton.
    #[must_use]
    pub fn new() -> Self {
        Channel
    }
}

impl Automaton for Channel {
    type Action = RstpAction;
    type State = ChannelState;

    fn initial_state(&self) -> ChannelState {
        ChannelState::empty()
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Send(_) => Some(ActionClass::Input),
            RstpAction::Recv(_) => Some(ActionClass::Output),
            _ => None,
        }
    }

    fn enabled(&self, state: &ChannelState) -> Vec<RstpAction> {
        // One recv per *distinct* in-flight packet (multiplicity does not
        // multiply the enabled set).
        let mut seen: Vec<Packet> = Vec::new();
        for &p in &state.in_flight {
            if !seen.contains(&p) {
                seen.push(p);
            }
        }
        seen.into_iter().map(RstpAction::Recv).collect()
    }

    fn step(&self, state: &ChannelState, action: &RstpAction) -> Result<ChannelState, StepError> {
        match action {
            RstpAction::Send(p) => {
                let mut next = state.clone();
                next.in_flight.push(*p);
                Ok(next)
            }
            RstpAction::Recv(p) => {
                let mut next = state.clone();
                match next.in_flight.iter().position(|q| q == p) {
                    Some(idx) => {
                        next.in_flight.remove(idx);
                        Ok(next)
                    }
                    None => Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: format!("packet {p} is not in flight"),
                    }),
                }
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(p: Packet) -> RstpAction {
        RstpAction::Send(p)
    }

    fn recv(p: Packet) -> RstpAction {
        RstpAction::Recv(p)
    }

    #[test]
    fn starts_empty() {
        let ch = Channel::new();
        assert!(ch.initial_state().is_empty());
        assert!(ch.enabled(&ch.initial_state()).is_empty());
    }

    #[test]
    fn send_then_recv_roundtrip() {
        let ch = Channel::new();
        let s = ch.initial_state();
        let s = ch.step(&s, &send(Packet::Data(1))).unwrap();
        let s = ch.step(&s, &send(Packet::Ack(0))).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.mult(Packet::Data(1)), 1);
        let s = ch.step(&s, &recv(Packet::Data(1))).unwrap();
        let s = ch.step(&s, &recv(Packet::Ack(0))).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn duplicates_tracked_as_multiset() {
        let ch = Channel::new();
        let mut s = ch.initial_state();
        for _ in 0..3 {
            s = ch.step(&s, &send(Packet::Data(7))).unwrap();
        }
        assert_eq!(s.mult(Packet::Data(7)), 3);
        // Only one enabled recv for the triplicated packet.
        assert_eq!(ch.enabled(&s).len(), 1);
        s = ch.step(&s, &recv(Packet::Data(7))).unwrap();
        assert_eq!(s.mult(Packet::Data(7)), 2);
    }

    #[test]
    fn recv_of_absent_packet_rejected() {
        let ch = Channel::new();
        let err = ch.step(&ch.initial_state(), &recv(Packet::Data(0)));
        assert!(matches!(err, Err(StepError::PreconditionFalse { .. })));
    }

    #[test]
    fn non_channel_actions_rejected() {
        let ch = Channel::new();
        let err = ch.step(&ch.initial_state(), &RstpAction::Write(true));
        assert!(matches!(err, Err(StepError::UnknownAction { .. })));
    }

    #[test]
    fn classification() {
        let ch = Channel::new();
        assert_eq!(
            ch.classify(&send(Packet::Data(0))),
            Some(ActionClass::Input)
        );
        assert_eq!(
            ch.classify(&recv(Packet::Ack(0))),
            Some(ActionClass::Output)
        );
        assert_eq!(ch.classify(&RstpAction::Write(false)), None);
    }

    #[test]
    fn enabled_lists_each_distinct_packet_once() {
        let ch = Channel::new();
        let mut s = ch.initial_state();
        for p in [Packet::Data(0), Packet::Data(1), Packet::Data(0)] {
            s = ch.step(&s, &send(p)).unwrap();
        }
        let enabled = ch.enabled(&s);
        assert_eq!(enabled.len(), 2);
        assert!(enabled.contains(&recv(Packet::Data(0))));
        assert!(enabled.contains(&recv(Packet::Data(1))));
    }

    #[test]
    fn any_inflight_packet_may_be_delivered_next() {
        // The channel imposes no order: after sends of 0 then 1, recv(1)
        // first is a legal step — reordering is the adversary's right.
        let ch = Channel::new();
        let mut s = ch.initial_state();
        s = ch.step(&s, &send(Packet::Data(0))).unwrap();
        s = ch.step(&s, &send(Packet::Data(1))).unwrap();
        let s = ch.step(&s, &recv(Packet::Data(1))).unwrap();
        assert_eq!(s.packets(), &[Packet::Data(0)]);
    }
}
