//! The Real-Time Sequence Transmission Problem (RSTP) — problem statement,
//! protocols, and effort bounds.
//!
//! This crate is the primary-contribution layer of a full reproduction of
//! Da-Wei Wang and Lenore D. Zuck, *Real-Time Sequence Transmission
//! Problem* (Yale YALEU/DCS/TR-856, May 1991; PODC 1991): a transmitter must
//! reliably communicate a finite binary sequence `X` to a receiver over a
//! channel that delivers every packet within `d` time units but may reorder
//! freely, while both processes take local steps every `c1`-to-`c2` time
//! units. The **effort** of a solution is the worst-case average time per
//! transmitted message.
//!
//! # What lives where
//!
//! * [`action`] — the shared action alphabet (`send`/`recv`/`write`/idles).
//! * [`params`] — the validated triple `(c1, c2, d)` and the derived step
//!   counts `δ1 = d/c1`, `δ2 = d/c2`.
//! * [`channel`] — the channel automaton `C(P)` (reliable, unordered).
//! * [`protocols`] — `A^α` (Fig 1), `A^β(k)` (Fig 3), `A^γ(k)` (Fig 4), the
//!   alternating-bit baseline, and a self-delimiting framed variant.
//! * [`bounds`] — the closed forms of Theorems 5.3/5.6 and the §6 protocol
//!   guarantees, plus passive/active crossover analysis.
//! * [`ext`] — the §7 future-work model (delivery window `[d_lo, d_hi]`,
//!   per-process step bounds) made concrete.
//!
//! The timed semantics (who steps when, which in-flight packet is delivered
//! when) is the **simulator's** job — see the `rstp-sim` crate, which drives
//! these automata under adversarial schedules and measures effort.
//!
//! # Quickstart
//!
//! ```
//! use rstp_automata::Automaton;
//! use rstp_core::protocols::{BetaReceiver, BetaTransmitter};
//! use rstp_core::{Packet, RstpAction, TimingParams};
//!
//! // c1 = 1, c2 = 2, d = 6: delta1 = 6 fast steps cover one delivery bound.
//! let params = TimingParams::from_ticks(1, 2, 6).unwrap();
//! let input = vec![true, false, true, true, false, false, true];
//!
//! // The optimal r-passive protocol with a 4-symbol packet alphabet.
//! let t = BetaTransmitter::new(params, 4, &input).unwrap();
//! let r = BetaReceiver::new(params, 4, input.len()).unwrap();
//!
//! // Hand-deliver every packet (the simulator normally does this, with
//! // adversarial timing and reordering).
//! let mut ts = t.initial_state();
//! let mut rs = r.initial_state();
//! while let Some(a) = t.enabled(&ts).first().copied() {
//!     ts = t.step(&ts, &a).unwrap();
//!     if let RstpAction::Send(Packet::Data(s)) = a {
//!         rs = r.step(&rs, &RstpAction::Recv(Packet::Data(s))).unwrap();
//!     }
//! }
//! assert_eq!(rs.decoded, input);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod bounds;
pub mod channel;
pub mod ext;
pub mod params;
pub mod protocols;

pub use action::{InternalKind, Message, Owner, Packet, RstpAction, SessionId};
pub use channel::{Channel, ChannelState};
pub use ext::{ProcessTiming, TimingParamsExt};
pub use params::{ParamError, TimingParams};
pub use protocols::ProtocolError;
