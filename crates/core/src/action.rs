//! The concrete action alphabet of RSTP systems (paper §4).
//!
//! A composed RSTP system `A = A_t ∘ A_r ∘ C(P)` uses:
//!
//! * `send(p)` / `recv(p)` for packets `p ∈ P = P^tr ∪ P^rt` — the
//!   transmitter's data alphabet `P^tr = {0, …, k-1}` and the receiver's
//!   acknowledgement alphabet `P^rt` (a single `ack` for `A^γ(k)`; tagged
//!   acks for the alternating-bit baseline),
//! * `write(m)` for messages `m ∈ M = {0, 1}` — the receiver's output tape,
//! * the internal bookkeeping actions `wait_t` / `idle_t` / `idle_r` of the
//!   figures.
//!
//! All protocol automata, the channel, and the simulator share this one
//! action type, which is what makes them composable in the I/O-automata
//! sense.

use core::fmt;

/// A message — the paper fixes `M = {0, 1}` (§4).
pub type Message = bool;

/// A packet on the channel.
///
/// `Data(s)` travels transmitter → receiver and carries a symbol
/// `s ∈ {0, …, k-1}`; `Ack(t)` travels receiver → transmitter and carries a
/// tag (always 0 for `A^γ(k)`, whose ack alphabet is a single packet; the
/// alternating-bit baseline uses tags 0/1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Packet {
    /// A data packet from the transmitter's alphabet `P^tr`.
    Data(u64),
    /// An acknowledgement from the receiver's alphabet `P^rt`.
    Ack(u64),
}

impl Packet {
    /// Whether this packet travels transmitter → receiver.
    #[must_use]
    pub const fn is_data(self) -> bool {
        matches!(self, Packet::Data(_))
    }

    /// Whether this packet travels receiver → transmitter.
    #[must_use]
    pub const fn is_ack(self) -> bool {
        matches!(self, Packet::Ack(_))
    }

    /// The carried symbol or tag.
    #[must_use]
    pub const fn symbol(self) -> u64 {
        match self {
            Packet::Data(s) | Packet::Ack(s) => s,
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Packet::Data(s) => write!(f, "data({s})"),
            Packet::Ack(t) => write!(f, "ack({t})"),
        }
    }
}

/// Identifies one independent RSTP transfer multiplexed over a shared wire.
///
/// The paper studies a single transmitter–receiver pair, so its packets
/// need no addressing. A transfer *server* runs many such pairs at once
/// over one socket, and every packet must then name the session it belongs
/// to. The id is transport metadata like a sequence number: protocols never
/// read it, and two sessions with the same input and timing behave
/// identically regardless of their ids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u32);

impl SessionId {
    /// Wraps a raw 32-bit id.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        SessionId(raw)
    }

    /// The raw 32-bit id as carried on the wire.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for SessionId {
    fn from(raw: u32) -> Self {
        SessionId(raw)
    }
}

/// The named internal actions of the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InternalKind {
    /// `wait_t` — the transmitter's counted idling between bursts
    /// (Figures 1 and 3). Progress: it advances the round counter.
    Wait,
    /// `idle_t` / `idle_r` — true idling: enabled exactly when the process
    /// has nothing else to do, with no effect (the processes must take a
    /// local step at least every `c2`, so *something* must be enabled).
    Idle,
}

/// One action of a composed RSTP system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RstpAction {
    /// `send(p)`: output of the sending process, input of the channel.
    Send(Packet),
    /// `recv(p)`: output of the channel, input of the receiving process.
    Recv(Packet),
    /// `write(m)`: the receiver writes the next message onto `Y`.
    Write(Message),
    /// An internal action of the transmitter.
    TransmitterInternal(InternalKind),
    /// An internal action of the receiver.
    ReceiverInternal(InternalKind),
}

impl RstpAction {
    /// Whether this is a `send` of a data packet (the events whose last
    /// occurrence defines the effort numerator, paper §4).
    #[must_use]
    pub const fn is_data_send(self) -> bool {
        matches!(self, RstpAction::Send(Packet::Data(_)))
    }

    /// Whether this is any `send`.
    #[must_use]
    pub const fn is_send(self) -> bool {
        matches!(self, RstpAction::Send(_))
    }

    /// Whether this is any `recv`.
    #[must_use]
    pub const fn is_recv(self) -> bool {
        matches!(self, RstpAction::Recv(_))
    }

    /// Whether this is a `write`.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, RstpAction::Write(_))
    }

    /// Whether this is a pure idle step (no state change, enabled only when
    /// nothing else is). A process whose only enabled actions are idles is
    /// *settled*: it will never act again unless an input arrives.
    #[must_use]
    pub const fn is_idle(self) -> bool {
        matches!(
            self,
            RstpAction::TransmitterInternal(InternalKind::Idle)
                | RstpAction::ReceiverInternal(InternalKind::Idle)
        )
    }

    /// The packet carried by a `send`/`recv`, if any.
    #[must_use]
    pub const fn packet(self) -> Option<Packet> {
        match self {
            RstpAction::Send(p) | RstpAction::Recv(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for RstpAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RstpAction::Send(p) => write!(f, "send({p})"),
            RstpAction::Recv(p) => write!(f, "recv({p})"),
            RstpAction::Write(m) => write!(f, "write({})", u8::from(*m)),
            RstpAction::TransmitterInternal(InternalKind::Wait) => f.write_str("wait_t"),
            RstpAction::TransmitterInternal(InternalKind::Idle) => f.write_str("idle_t"),
            RstpAction::ReceiverInternal(InternalKind::Wait) => f.write_str("wait_r"),
            RstpAction::ReceiverInternal(InternalKind::Idle) => f.write_str("idle_r"),
        }
    }
}

/// Which process an action belongs to, from the *system* point of view.
///
/// `send`s belong to the sending process, `recv`s to the channel (they are
/// channel outputs / process inputs). Used by trace checkers to select each
/// component's locally controlled events for the `Σ` step-bound property.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Owner {
    /// A locally controlled event of the transmitter.
    Transmitter,
    /// A locally controlled event of the receiver.
    Receiver,
    /// A locally controlled event of the channel (deliveries).
    Channel,
}

impl RstpAction {
    /// The component that controls this action.
    #[must_use]
    pub const fn owner(self) -> Owner {
        match self {
            RstpAction::Send(Packet::Data(_)) | RstpAction::TransmitterInternal(_) => {
                Owner::Transmitter
            }
            RstpAction::Send(Packet::Ack(_))
            | RstpAction::Write(_)
            | RstpAction::ReceiverInternal(_) => Owner::Receiver,
            RstpAction::Recv(_) => Owner::Channel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_direction_and_symbol() {
        assert!(Packet::Data(3).is_data());
        assert!(!Packet::Data(3).is_ack());
        assert!(Packet::Ack(0).is_ack());
        assert_eq!(Packet::Data(5).symbol(), 5);
        assert_eq!(Packet::Ack(1).symbol(), 1);
    }

    #[test]
    fn action_predicates() {
        assert!(RstpAction::Send(Packet::Data(0)).is_data_send());
        assert!(!RstpAction::Send(Packet::Ack(0)).is_data_send());
        assert!(RstpAction::Send(Packet::Ack(0)).is_send());
        assert!(RstpAction::Recv(Packet::Data(1)).is_recv());
        assert!(RstpAction::Write(true).is_write());
        assert!(RstpAction::ReceiverInternal(InternalKind::Idle).is_idle());
        assert!(RstpAction::TransmitterInternal(InternalKind::Idle).is_idle());
        assert!(!RstpAction::TransmitterInternal(InternalKind::Wait).is_idle());
    }

    #[test]
    fn packet_extraction() {
        assert_eq!(
            RstpAction::Send(Packet::Data(2)).packet(),
            Some(Packet::Data(2))
        );
        assert_eq!(RstpAction::Write(false).packet(), None);
    }

    #[test]
    fn ownership() {
        use Owner::*;
        assert_eq!(RstpAction::Send(Packet::Data(0)).owner(), Transmitter);
        assert_eq!(RstpAction::Send(Packet::Ack(0)).owner(), Receiver);
        assert_eq!(RstpAction::Write(true).owner(), Receiver);
        assert_eq!(RstpAction::Recv(Packet::Data(0)).owner(), Channel);
        assert_eq!(RstpAction::Recv(Packet::Ack(0)).owner(), Channel);
        assert_eq!(
            RstpAction::TransmitterInternal(InternalKind::Wait).owner(),
            Transmitter
        );
        assert_eq!(
            RstpAction::ReceiverInternal(InternalKind::Idle).owner(),
            Receiver
        );
    }

    #[test]
    fn display_strings() {
        assert_eq!(
            RstpAction::Send(Packet::Data(7)).to_string(),
            "send(data(7))"
        );
        assert_eq!(RstpAction::Recv(Packet::Ack(0)).to_string(), "recv(ack(0))");
        assert_eq!(RstpAction::Write(true).to_string(), "write(1)");
        assert_eq!(
            RstpAction::TransmitterInternal(InternalKind::Wait).to_string(),
            "wait_t"
        );
        assert_eq!(
            RstpAction::ReceiverInternal(InternalKind::Idle).to_string(),
            "idle_r"
        );
    }

    #[test]
    fn packets_order_deterministically() {
        let mut v = vec![Packet::Ack(0), Packet::Data(2), Packet::Data(0)];
        v.sort();
        assert_eq!(v, vec![Packet::Data(0), Packet::Data(2), Packet::Ack(0)]);
    }
}
